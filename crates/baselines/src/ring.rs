//! Self-stabilizing k-out-of-ℓ exclusion on an **oriented ring** — the prior-work baseline.
//!
//! The two earlier self-stabilizing k-out-of-ℓ exclusion protocols cited by the paper
//! (Datta, Hadid, Villain 2003) circulate ℓ resource tokens on a unidirectional ring with a
//! *controller* that counts and repairs the token population — the same architecture the
//! tree protocol generalises.  This module implements that ring protocol with the same
//! ingredients (resource tokens, a pusher, a priority token, a counter-flushing controller)
//! so that the only variable in the tree-vs-ring comparison (experiment E8) is the topology.
//!
//! On a ring every process has exactly one channel (label 0): it receives from its
//! predecessor and sends to its successor, so the circulation order is the ring itself and no
//! successor pointers are needed.  Counter flushing takes its classic ring form: the root
//! stamps the controller with `myC`; every other process forwards a controller whose stamp
//! differs from its stored value and drops duplicates; the root ends a circulation when a
//! controller carrying its current stamp returns, repairs the token population, increments
//! its stamp and launches the next circulation.  A root timeout restarts a lost controller.

use klex_core::{AppSide, KlConfig, KlInspect, Message};
use rand::rngs::StdRng;
use rand::Rng;
use topology::Ring;
use treenet::app::BoxedDriver;
use treenet::{Context, Corruptible, CsState, Event, Network, NodeId, Process};

/// Messages of the ring baseline: the same vocabulary as the tree protocol.
pub type RingMessage = Message;

/// Root-only controller state.
#[derive(Clone, Debug)]
struct RingRoot {
    my_c: u64,
    reset: bool,
    s_token: u64,
    s_push: u8,
    s_prio: u8,
    ticks: u64,
    last_restart: u64,
}

/// A process of the ring-based self-stabilizing k-out-of-ℓ exclusion protocol.
pub struct RingSsNode {
    cfg: KlConfig,
    /// Request state (`State`, `Need`, `RSet`) and application driver.
    pub app: AppSide,
    /// Whether this process currently holds the priority token.
    pub prio: bool,
    /// Counter-flushing stamp last seen (non-root) — unused by the root, which keeps its own.
    my_c: u64,
    counter_modulus: u64,
    root: Option<RingRoot>,
}

impl RingSsNode {
    /// Creates the process for `node` of an `n`-process ring.  Node 0 is the root.
    pub fn new(node: NodeId, n: usize, cfg: KlConfig, driver: BoxedDriver) -> Self {
        let root = if node == 0 {
            Some(RingRoot {
                my_c: 0,
                reset: false,
                s_token: 0,
                s_push: 0,
                s_prio: 0,
                ticks: 0,
                last_restart: 0,
            })
        } else {
            None
        };
        RingSsNode {
            counter_modulus: cfg.counter_modulus(n),
            cfg,
            app: AppSide::new(node, driver),
            prio: false,
            my_c: 0,
            root,
        }
    }

    /// True for the ring's root (node 0).
    pub fn is_root(&self) -> bool {
        self.root.is_some()
    }

    fn in_reset(&self) -> bool {
        self.root.as_ref().map(|r| r.reset).unwrap_or(false)
    }

    fn bump_s_token(&mut self) {
        let cap = self.cfg.l as u64 + 1;
        if let Some(r) = &mut self.root {
            r.s_token = (r.s_token + 1).min(cap);
        }
    }

    fn handle_resource(&mut self, ctx: &mut Context<'_, Message>) {
        if self.in_reset() {
            return;
        }
        if self.app.wants_more() {
            self.app.reserve(0);
        } else {
            self.bump_s_token();
            ctx.send(0, Message::ResT);
        }
    }

    fn handle_pusher(&mut self, ctx: &mut Context<'_, Message>) {
        if self.in_reset() {
            return;
        }
        let must_release = !self.prio && !self.app.can_enter() && self.app.state != CsState::In;
        if must_release {
            let count = self.app.take_reserved().len();
            for _ in 0..count {
                self.bump_s_token();
                ctx.send(0, Message::ResT);
            }
        }
        if let Some(r) = &mut self.root {
            r.s_push = (r.s_push + 1).min(2);
        }
        ctx.send(0, Message::PushT);
    }

    fn handle_priority(&mut self, ctx: &mut Context<'_, Message>) {
        if self.in_reset() {
            return;
        }
        if !self.prio {
            self.prio = true;
        } else {
            ctx.send(0, Message::PrioT);
        }
    }

    fn root_handle_ctrl(&mut self, c: u64, pt: u64, ppr: u8, ctx: &mut Context<'_, Message>) {
        let l = self.cfg.l as u64;
        let modulus = self.counter_modulus;
        let Some(root) = self.root.as_ref() else { return };
        if c != root.my_c {
            return; // stale or forged controller: dropped
        }
        // The circulation is complete: the root's own reserved tokens and priority are the
        // last ones the controller passes.
        let pt = (pt + self.app.rset.len() as u64).min(l + 1);
        let ppr = (ppr + u8::from(self.prio)).min(2);
        let (s_token, s_push, s_prio) = (root.s_token, root.s_push, root.s_prio);
        let new_c = (root.my_c + 1) % modulus;
        let reset = pt + s_token > l || ppr as u64 + s_prio as u64 > 1 || s_push > 1;
        if reset {
            self.app.rset.clear();
            self.prio = false;
            ctx.emit(Event::Note("reset-start"));
        } else {
            if ppr as u64 + s_prio as u64 == 0 {
                ctx.send(0, Message::PrioT);
            }
            let mut have = pt + s_token;
            while have < l {
                ctx.send(0, Message::ResT);
                have += 1;
            }
            if s_push == 0 {
                ctx.send(0, Message::PushT);
            }
        }
        let root = self.root.as_mut().expect("root state present");
        root.my_c = new_c;
        root.reset = reset;
        root.s_token = 0;
        root.s_push = 0;
        root.s_prio = 0;
        root.last_restart = root.ticks;
        ctx.send(0, Message::Ctrl { c: new_c, r: reset, pt: 0, ppr: 0 });
        ctx.emit(Event::Note("circulation"));
    }

    fn nonroot_handle_ctrl(
        &mut self,
        c: u64,
        r_flag: bool,
        pt: u64,
        ppr: u8,
        ctx: &mut Context<'_, Message>,
    ) {
        let l = self.cfg.l as u64;
        if c == self.my_c {
            // Already forwarded this stamp: do not count anything, but retransmit the message
            // unchanged so the control part cannot deadlock (same rule as the tree protocol's
            // "invalid message from the parent" case).  Stale stamps eventually die at the
            // root, which drops them.
            ctx.send(0, Message::Ctrl { c, r: r_flag, pt, ppr });
            return;
        }
        self.my_c = c;
        if r_flag {
            self.app.rset.clear();
            self.prio = false;
        }
        let pt = (pt + self.app.rset.len() as u64).min(l + 1);
        let ppr = (ppr + u8::from(self.prio)).min(2);
        ctx.send(0, Message::Ctrl { c, r: r_flag, pt, ppr });
    }

    fn root_timeout(&mut self, ctx: &mut Context<'_, Message>) {
        let timeout = self.cfg.timeout_interval;
        let fire = if let Some(r) = &mut self.root {
            r.ticks += 1;
            r.ticks - r.last_restart >= timeout
        } else {
            false
        };
        if fire {
            let (my_c, reset) = {
                let r = self.root.as_ref().expect("root state present");
                (r.my_c, r.reset)
            };
            ctx.send(0, Message::Ctrl { c: my_c, r: reset, pt: 0, ppr: 0 });
            if let Some(r) = &mut self.root {
                r.last_restart = r.ticks;
            }
            ctx.emit(Event::Note("timeout"));
        }
    }
}

impl Process for RingSsNode {
    type Msg = Message;

    fn on_message(&mut self, _from: usize, msg: Message, ctx: &mut Context<'_, Message>) {
        match msg {
            Message::ResT => self.handle_resource(ctx),
            Message::PushT => self.handle_pusher(ctx),
            Message::PrioT => self.handle_priority(ctx),
            Message::Ctrl { c, r, pt, ppr } => {
                if self.is_root() {
                    self.root_handle_ctrl(c, pt, ppr, ctx);
                } else {
                    self.nonroot_handle_ctrl(c, r, pt, ppr, ctx);
                }
            }
            // Garbage and stray snapshot markers alike: not protocol traffic, discarded.
            Message::Garbage(_) | Message::Marker(_) => {}
        }
    }

    fn on_tick(&mut self, ctx: &mut Context<'_, Message>) {
        self.app.poll_request(&self.cfg, ctx);
        self.app.try_enter(ctx);
        if let Some(tokens) = self.app.try_release(ctx) {
            for _ in tokens {
                self.bump_s_token();
                ctx.send(0, Message::ResT);
            }
        }
        if self.prio && !self.app.wants_more() {
            if let Some(r) = &mut self.root {
                r.s_prio = (r.s_prio + 1).min(2);
            }
            ctx.send(0, Message::PrioT);
            self.prio = false;
        }
        if self.is_root() {
            self.root_timeout(ctx);
        }
    }
}

impl KlInspect for RingSsNode {
    fn cs_state(&self) -> CsState {
        self.app.state
    }
    fn need(&self) -> usize {
        self.app.need
    }
    fn reserved(&self) -> usize {
        self.app.reserved()
    }
    fn holds_priority(&self) -> bool {
        self.prio
    }
}

impl Corruptible for RingSsNode {
    fn corrupt(&mut self, rng: &mut StdRng) {
        let cfg = self.cfg;
        self.app.corrupt(&cfg, 1, rng);
        self.prio = rng.gen_bool(0.5);
        self.my_c = rng.gen_range(0..self.counter_modulus);
        if let Some(r) = &mut self.root {
            r.my_c = rng.gen_range(0..self.counter_modulus);
            r.reset = rng.gen_bool(0.3);
            r.s_token = rng.gen_range(0..=(cfg.l as u64 + 1));
            r.s_push = rng.gen_range(0..=2);
            r.s_prio = rng.gen_range(0..=2);
            r.last_restart = r.ticks.saturating_sub(rng.gen_range(0..cfg.timeout_interval));
        }
    }
}

/// Builds an `n`-process ring network running the baseline protocol.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn network(
    n: usize,
    cfg: KlConfig,
    mut driver_for: impl FnMut(NodeId) -> BoxedDriver,
) -> Network<RingSsNode, Ring> {
    assert!(n >= 2, "the ring baseline needs at least two processes");
    Network::new(Ring::new(n), |id| RingSsNode::new(id, n, cfg, driver_for(id)))
}

/// Counts the tokens currently in the ring network (in flight plus held).
pub fn count_tokens(net: &Network<RingSsNode, Ring>) -> klex_core::TokenCensus {
    let mut census = klex_core::TokenCensus::default();
    for (_, _, msg) in net.iter_messages() {
        match msg {
            Message::ResT => census.resource += 1,
            Message::PushT => census.pusher += 1,
            Message::PrioT => census.priority += 1,
            Message::Ctrl { .. } => census.ctrl += 1,
            Message::Garbage(_) => census.garbage += 1,
            Message::Marker(_) => {}
        }
    }
    for node in net.nodes() {
        census.resource += node.reserved();
        if node.holds_priority() {
            census.priority += 1;
        }
    }
    census
}

/// The ring counterpart of [`klex_core::is_legitimate`].
pub fn is_legitimate(net: &Network<RingSsNode, Ring>, cfg: &KlConfig) -> bool {
    let census = count_tokens(net);
    let mut in_use = 0usize;
    for node in net.nodes() {
        if node.reserved() > cfg.k || node.units_in_use() > cfg.k {
            return false;
        }
        in_use += node.units_in_use();
    }
    census.matches(cfg.l) && census.garbage == 0 && in_use <= cfg.l
}

#[cfg(test)]
mod tests {
    use super::*;
    use treenet::app::{AppDriver, Idle};
    use treenet::{run_until, FaultInjector, FaultPlan, RoundRobin};

    struct Fixed {
        units: usize,
        hold: u64,
    }
    impl AppDriver for Fixed {
        fn next_request(&mut self, _n: NodeId, _t: u64) -> Option<usize> {
            Some(self.units)
        }
        fn release_cs(&mut self, _n: NodeId, now: u64, e: u64) -> bool {
            now - e >= self.hold
        }
    }

    #[test]
    fn ring_bootstraps_to_l_1_1() {
        let cfg = KlConfig::new(2, 4, 8);
        let mut net = network(8, cfg, |_| Box::new(Idle) as BoxedDriver);
        let mut sched = RoundRobin::new();
        let out = run_until(&mut net, &mut sched, 1_000_000, |n| is_legitimate(n, &cfg));
        assert!(out.is_satisfied());
        let census = count_tokens(&net);
        assert_eq!((census.resource, census.pusher, census.priority), (cfg.l, 1, 1));
    }

    #[test]
    fn ring_requests_are_served() {
        let cfg = KlConfig::new(2, 3, 6);
        let mut net = network(6, cfg, |id| {
            if id % 2 == 1 {
                Box::new(Fixed { units: 2, hold: 4 }) as BoxedDriver
            } else {
                Box::new(Idle) as BoxedDriver
            }
        });
        let mut sched = RoundRobin::new();
        let out = run_until(&mut net, &mut sched, 2_000_000, |n| {
            [1usize, 3, 5].iter().all(|&v| n.trace().cs_entries(Some(v)) >= 3)
        });
        assert!(out.is_satisfied(), "ring requesters must repeatedly enter their CS");
    }

    #[test]
    fn ring_recovers_from_catastrophic_fault() {
        let cfg = KlConfig::new(1, 2, 6);
        let mut net = network(6, cfg, |_| Box::new(Idle) as BoxedDriver);
        let mut sched = RoundRobin::new();
        let out = run_until(&mut net, &mut sched, 1_000_000, |n| is_legitimate(n, &cfg));
        assert!(out.is_satisfied());
        let mut inj = FaultInjector::new(5);
        inj.inject(&mut net, &FaultPlan::catastrophic(cfg.cmax));
        let out = run_until(&mut net, &mut sched, 2_000_000, |n| is_legitimate(n, &cfg));
        assert!(out.is_satisfied(), "ring baseline must also self-stabilize");
    }

    #[test]
    fn ring_safety_under_saturation() {
        let cfg = KlConfig::new(2, 3, 5);
        let mut net = network(5, cfg, |_| Box::new(Fixed { units: 2, hold: 3 }) as BoxedDriver);
        let mut sched = RoundRobin::new();
        // Let it stabilize, then check the safety bound continuously.
        treenet::run_for(&mut net, &mut sched, 200_000);
        for _ in 0..50_000 {
            net.step(&mut sched);
            let used: usize = net.nodes().map(|n| n.units_in_use()).sum();
            assert!(used <= cfg.l);
        }
    }

    #[test]
    #[should_panic(expected = "at least two processes")]
    fn ring_rejects_single_node() {
        let _ = network(1, KlConfig::new(1, 1, 1), |_| Box::new(Idle) as BoxedDriver);
    }
}
