//! `baselines` — comparator protocols for the k-out-of-ℓ exclusion experiments.
//!
//! The paper positions its contribution against two families of prior work (Section 1,
//! Related Work):
//!
//! * **ℓ-token circulation on rings** — the two existing self-stabilizing k-out-of-ℓ
//!   exclusion protocols (Datta–Hadid–Villain 2003) circulate ℓ tokens on an oriented ring
//!   with a controller.  [`ring`] implements that approach on the [`topology::Ring`]
//!   topology, with the same pusher/priority/controller machinery as the tree protocol, so
//!   the tree-vs-ring comparison (experiment E8) isolates the effect of the topology.
//! * **Permission-based protocols** — non-self-stabilizing protocols in which a requester
//!   obtains permissions from other processes or from per-unit arbiters (Raynal 1991,
//!   Manabe et al.).  [`permission`] implements a static per-unit arbiter scheme in that
//!   spirit, and [`centralized`] implements the degenerate single-arbiter (coordinator)
//!   version, which serves as an upper bound on achievable throughput and a lower bound on
//!   messages per critical section.
//!
//! All baselines implement [`klex_core::KlInspect`] so the same analysis code measures them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod centralized;
pub mod permission;
pub mod ring;

pub use centralized::{CentralizedNode, CoordMessage};
pub use permission::{ArbiterMessage, PermissionNode};
pub use ring::{RingMessage, RingSsNode};
