//! A permission-based baseline: static per-unit arbiters with totally-ordered acquisition.
//!
//! The non-self-stabilizing k-out-of-ℓ exclusion protocols in the literature are
//! permission-based: a requester obtains permissions from other processes (Raynal 1991) or
//! from quorums/arbiters (Manabe et al.).  This module implements a deliberately simple
//! member of that family that is easy to reason about and cheap to measure against:
//!
//! * every resource unit `u ∈ 0..ℓ` has a fixed *arbiter* process (`u mod n`) that grants the
//!   unit to at most one holder at a time, FIFO;
//! * a requester needing `j` units acquires units `0, 1, …, j−1` **in ascending order**,
//!   waiting for each grant before asking for the next (the classic total-order rule, which
//!   makes the protocol deadlock-free), then enters its critical section and finally returns
//!   every unit to its arbiter.
//!
//! The total order makes the protocol conservative — conflicting requests serialise on the
//! lowest-numbered units even when disjoint higher-numbered units are free — so it is used in
//! the experiments as a *message-complexity* comparator (2 messages per unit per critical
//! section plus no background traffic), not as a throughput-optimal permission protocol.
//! It is also not fault-tolerant: lost grants are never regenerated (experiment E10 shows
//! this by injecting message loss).

use klex_core::{KlConfig, KlInspect};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::VecDeque;
use topology::Complete;
use treenet::app::BoxedDriver;
use treenet::{ChannelLabel, Context, Corruptible, CsState, Event, MessageKind, Network, NodeId, Process};

/// Messages of the arbiter baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArbiterMessage {
    /// Ask the arbiter of `unit` for that unit.
    Acquire {
        /// The unit requested.
        unit: usize,
    },
    /// The arbiter grants `unit` to the requester.
    Grant {
        /// The unit granted.
        unit: usize,
    },
    /// The holder returns `unit` to its arbiter.
    Release {
        /// The unit returned.
        unit: usize,
    },
}

impl MessageKind for ArbiterMessage {
    fn kind(&self) -> &'static str {
        match self {
            ArbiterMessage::Acquire { .. } => "Acquire",
            ArbiterMessage::Grant { .. } => "Grant",
            ArbiterMessage::Release { .. } => "Release",
        }
    }
}

impl treenet::ArbitraryMessage for ArbiterMessage {
    fn arbitrary(rng: &mut StdRng) -> Self {
        match rng.gen_range(0..3) {
            0 => ArbiterMessage::Acquire { unit: rng.gen_range(0..8) },
            1 => ArbiterMessage::Grant { unit: rng.gen_range(0..8) },
            _ => ArbiterMessage::Release { unit: rng.gen_range(0..8) },
        }
    }
}

/// Per-unit arbiter bookkeeping: whether the unit is out, and who is waiting for it.
#[derive(Clone, Debug, Default)]
struct UnitState {
    busy: bool,
    waiting: VecDeque<ChannelLabel>,
}

/// A process of the arbiter baseline (every process is both a potential requester and the
/// arbiter of the units assigned to it).
pub struct PermissionNode {
    cfg: KlConfig,
    node: NodeId,
    n: usize,
    state: CsState,
    need: usize,
    held: Vec<usize>,
    next_to_ask: usize,
    asked: bool,
    entered_at: u64,
    driver: BoxedDriver,
    /// Arbiter state for the units homed at this process, keyed by unit id.
    arbited: Vec<(usize, UnitState)>,
}

impl PermissionNode {
    /// Creates the process for `node` in an `n`-process complete network.
    pub fn new(node: NodeId, n: usize, cfg: KlConfig, driver: BoxedDriver) -> Self {
        let arbited =
            (0..cfg.l).filter(|u| u % n == node).map(|u| (u, UnitState::default())).collect();
        PermissionNode {
            cfg,
            node,
            n,
            state: CsState::Out,
            need: 0,
            held: Vec::new(),
            next_to_ask: 0,
            asked: false,
            entered_at: 0,
            driver,
            arbited,
        }
    }

    /// The arbiter (home process) of `unit`.
    pub fn arbiter_of(unit: usize, n: usize) -> NodeId {
        unit % n
    }

    fn arbiter_state(&mut self, unit: usize) -> Option<&mut UnitState> {
        self.arbited.iter_mut().find(|(u, _)| *u == unit).map(|(_, s)| s)
    }

    /// Channel label from this node towards `peer` on the complete graph.
    fn label_to(&self, peer: NodeId) -> ChannelLabel {
        Complete::new(self.n).label_of(self.node, peer)
    }

    /// Grants `unit` locally (self-arbited) or sends the acquire message.
    fn acquire(&mut self, unit: usize, ctx: &mut Context<'_, ArbiterMessage>) {
        let arbiter = Self::arbiter_of(unit, self.n);
        if arbiter == self.node {
            // Local arbiter: grant immediately if free, otherwise queue ourselves (represented
            // by an impossible channel label, handled in `local_release`).
            let free = {
                let st = self.arbiter_state(unit).expect("unit is homed here");
                if st.busy {
                    st.waiting.push_back(usize::MAX);
                    false
                } else {
                    st.busy = true;
                    true
                }
            };
            if free {
                self.got_unit(unit, ctx);
            }
        } else {
            let label = self.label_to(arbiter);
            ctx.send(label, ArbiterMessage::Acquire { unit });
        }
    }

    fn got_unit(&mut self, unit: usize, ctx: &mut Context<'_, ArbiterMessage>) {
        if self.state != CsState::Req || self.held.contains(&unit) {
            // Spurious grant (fault or stale): return it immediately.
            self.give_back(unit, ctx);
            return;
        }
        self.held.push(unit);
        self.asked = false;
        self.next_to_ask = unit + 1;
        if self.held.len() >= self.need {
            self.state = CsState::In;
            self.entered_at = ctx.now;
            ctx.emit(Event::EnterCs { units: self.held.len() });
        }
    }

    fn give_back(&mut self, unit: usize, ctx: &mut Context<'_, ArbiterMessage>) {
        let arbiter = Self::arbiter_of(unit, self.n);
        if arbiter == self.node {
            self.local_release(unit, ctx);
        } else {
            let label = self.label_to(arbiter);
            ctx.send(label, ArbiterMessage::Release { unit });
        }
    }

    /// Releases a locally-arbited unit and hands it to the next waiter, if any.
    fn local_release(&mut self, unit: usize, ctx: &mut Context<'_, ArbiterMessage>) {
        let next = {
            let st = match self.arbiter_state(unit) {
                Some(st) => st,
                None => return,
            };
            st.busy = false;
            st.waiting.pop_front()
        };
        if let Some(waiter) = next {
            {
                let st = self.arbiter_state(unit).expect("unit is homed here");
                st.busy = true;
            }
            if waiter == usize::MAX {
                // We were waiting for our own unit.
                self.got_unit(unit, ctx);
            } else {
                ctx.send(waiter, ArbiterMessage::Grant { unit });
            }
        }
    }
}

impl Process for PermissionNode {
    type Msg = ArbiterMessage;

    fn on_message(
        &mut self,
        from: ChannelLabel,
        msg: ArbiterMessage,
        ctx: &mut Context<'_, ArbiterMessage>,
    ) {
        match msg {
            ArbiterMessage::Acquire { unit } => {
                let grant_now = {
                    match self.arbiter_state(unit) {
                        Some(st) => {
                            if st.busy {
                                st.waiting.push_back(from);
                                false
                            } else {
                                st.busy = true;
                                true
                            }
                        }
                        // Not our unit (stale/forged message): ignore.
                        None => false,
                    }
                };
                if grant_now {
                    ctx.send(from, ArbiterMessage::Grant { unit });
                }
            }
            ArbiterMessage::Grant { unit } => self.got_unit(unit, ctx),
            ArbiterMessage::Release { unit } => self.local_release(unit, ctx),
        }
    }

    fn on_tick(&mut self, ctx: &mut Context<'_, ArbiterMessage>) {
        match self.state {
            CsState::Out => {
                if let Some(units) = self.driver.next_request(self.node, ctx.now) {
                    self.need = units.clamp(1, self.cfg.k);
                    self.state = CsState::Req;
                    self.next_to_ask = 0;
                    self.asked = false;
                    ctx.emit(Event::RequestIssued { units: self.need });
                }
            }
            CsState::Req => {
                // Ordered acquisition: ask for the next unit only when the previous one is
                // held and no request is outstanding.
                if !self.asked && self.held.len() < self.need && self.next_to_ask < self.cfg.l {
                    self.asked = true;
                    let unit = self.next_to_ask;
                    self.acquire(unit, ctx);
                }
            }
            CsState::In => {
                if self.driver.release_cs(self.node, ctx.now, self.entered_at) {
                    let held = std::mem::take(&mut self.held);
                    ctx.emit(Event::ExitCs { units: held.len() });
                    for unit in held {
                        self.give_back(unit, ctx);
                    }
                    self.state = CsState::Out;
                    self.need = 0;
                }
            }
        }
    }
}

impl KlInspect for PermissionNode {
    fn cs_state(&self) -> CsState {
        self.state
    }
    fn need(&self) -> usize {
        self.need
    }
    fn reserved(&self) -> usize {
        self.held.len()
    }
    fn holds_priority(&self) -> bool {
        false
    }
}

impl Corruptible for PermissionNode {
    fn corrupt(&mut self, rng: &mut StdRng) {
        self.state = match rng.gen_range(0..3) {
            0 => CsState::Out,
            1 => CsState::Req,
            _ => CsState::In,
        };
        self.need = rng.gen_range(0..=self.cfg.k);
        self.held.clear();
        self.asked = rng.gen_bool(0.5);
        self.next_to_ask = rng.gen_range(0..=self.cfg.l);
    }
}

/// Builds an `n`-process complete-graph network running the arbiter baseline.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn network(
    n: usize,
    cfg: KlConfig,
    mut driver_for: impl FnMut(NodeId) -> BoxedDriver,
) -> Network<PermissionNode, Complete> {
    assert!(n >= 2, "the arbiter baseline needs at least two processes");
    Network::new(Complete::new(n), |id| PermissionNode::new(id, n, cfg, driver_for(id)))
}

/// Total units currently in use (for safety checks).
pub fn units_in_use(net: &Network<PermissionNode, Complete>) -> usize {
    net.nodes().map(|n| n.units_in_use()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use treenet::app::{AppDriver, Idle};
    use treenet::{run_until, RandomFair, RoundRobin};

    struct Fixed {
        units: usize,
        hold: u64,
    }
    impl AppDriver for Fixed {
        fn next_request(&mut self, _n: NodeId, _t: u64) -> Option<usize> {
            Some(self.units)
        }
        fn release_cs(&mut self, _n: NodeId, now: u64, e: u64) -> bool {
            now - e >= self.hold
        }
    }

    #[test]
    fn single_requester_gets_all_units() {
        let cfg = KlConfig::new(3, 5, 6);
        let mut net = network(6, cfg, |id| {
            if id == 3 {
                Box::new(Fixed { units: 3, hold: 4 }) as BoxedDriver
            } else {
                Box::new(Idle) as BoxedDriver
            }
        });
        let mut sched = RoundRobin::new();
        let out = run_until(&mut net, &mut sched, 300_000, |n| n.trace().cs_entries(Some(3)) >= 3);
        assert!(out.is_satisfied());
    }

    #[test]
    fn no_deadlock_under_contention() {
        let cfg = KlConfig::new(2, 3, 5);
        let mut net = network(5, cfg, |_| Box::new(Fixed { units: 2, hold: 3 }) as BoxedDriver);
        let mut sched = RandomFair::new(4);
        let out = run_until(&mut net, &mut sched, 1_000_000, |n| {
            (0..5).all(|v| n.trace().cs_entries(Some(v)) >= 3)
        });
        assert!(out.is_satisfied(), "ordered acquisition must be deadlock- and starvation-free");
    }

    #[test]
    fn never_over_allocates() {
        let cfg = KlConfig::new(2, 4, 6);
        let mut net = network(6, cfg, |_| Box::new(Fixed { units: 2, hold: 5 }) as BoxedDriver);
        let mut sched = RandomFair::new(8);
        for _ in 0..100_000 {
            net.step(&mut sched);
            assert!(units_in_use(&net) <= cfg.l);
            // A unit is held by at most one process at a time.
            let mut holders = std::collections::BTreeMap::new();
            for (id, node) in net.nodes().enumerate() {
                for &u in &node.held {
                    assert!(
                        holders.insert(u, id).is_none(),
                        "unit {u} held by two processes at once"
                    );
                }
            }
        }
    }

    #[test]
    fn arbiter_assignment_partitions_units() {
        let n = 4;
        let cfg = KlConfig::new(2, 7, n);
        let net = network(n, cfg, |_| Box::new(Idle) as BoxedDriver);
        let mut count = 0;
        for node in net.nodes() {
            count += node.arbited.len();
        }
        assert_eq!(count, cfg.l, "every unit has exactly one arbiter");
    }

    #[test]
    fn lost_grant_is_not_recovered() {
        // Demonstrates (at unit-test scale) that the baseline is not fault tolerant: dropping
        // the only grant in flight blocks the requester forever.
        let cfg = KlConfig::new(1, 1, 3);
        let mut net = network(3, cfg, |id| {
            if id == 2 {
                Box::new(Fixed { units: 1, hold: 1 }) as BoxedDriver
            } else {
                Box::new(Idle) as BoxedDriver
            }
        });
        let mut sched = RoundRobin::new();
        // Wait until the requester's Acquire message is in flight, then drop it.
        let out = run_until(&mut net, &mut sched, 10_000, |n| n.in_flight() > 0);
        assert!(out.is_satisfied());
        assert_eq!(net.trace().cs_entries(Some(2)), 0);
        for v in 0..3usize {
            for l in 0..2usize {
                net.channel_mut(v, l).clear();
            }
        }
        // With the only protocol message lost, nothing is ever retransmitted: the requester
        // stays blocked forever.
        let out = run_until(&mut net, &mut sched, 100_000, |n| n.trace().cs_entries(Some(2)) >= 1);
        assert!(!out.is_satisfied(), "a lost message permanently blocks the permission baseline");
    }
}
