//! A centralized coordinator allocator — the degenerate "single arbiter" baseline.
//!
//! One process (the hub of a star network) owns the whole pool of ℓ units.  A requester sends
//! `Request(units)`; the coordinator grants requests in FIFO order whenever enough units are
//! free, the requester executes its critical section on receipt of `Grant`, and returns the
//! units with `Release(units)`.
//!
//! This is not self-stabilizing and not distributed in any interesting sense — it exists as a
//! reference point: it needs only 3 messages per critical section and trivially satisfies
//! (k,ℓ)-liveness, so it upper-bounds the throughput and lower-bounds the message overhead
//! any token-circulation protocol can hope for (experiments E8/E9).

use klex_core::{KlConfig, KlInspect};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::VecDeque;
use topology::OrientedTree;
use treenet::app::BoxedDriver;
use treenet::{ChannelLabel, Context, Corruptible, CsState, Event, MessageKind, Network, NodeId, Process};

/// Messages of the centralized allocator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoordMessage {
    /// A leaf asks the coordinator for `units` resource units.
    Request {
        /// Units requested.
        units: usize,
    },
    /// The coordinator grants `units` to the destination leaf.
    Grant {
        /// Units granted.
        units: usize,
    },
    /// A leaf returns `units` to the coordinator.
    Release {
        /// Units returned.
        units: usize,
    },
}

impl MessageKind for CoordMessage {
    fn kind(&self) -> &'static str {
        match self {
            CoordMessage::Request { .. } => "Request",
            CoordMessage::Grant { .. } => "Grant",
            CoordMessage::Release { .. } => "Release",
        }
    }
}

impl treenet::ArbitraryMessage for CoordMessage {
    fn arbitrary(rng: &mut StdRng) -> Self {
        match rng.gen_range(0..3) {
            0 => CoordMessage::Request { units: rng.gen_range(0..8) },
            1 => CoordMessage::Grant { units: rng.gen_range(0..8) },
            _ => CoordMessage::Release { units: rng.gen_range(0..8) },
        }
    }
}

/// Coordinator-side bookkeeping.
#[derive(Clone, Debug, Default)]
struct Coordinator {
    free: usize,
    /// FIFO queue of `(channel, units)` pending requests.
    pending: VecDeque<(ChannelLabel, usize)>,
}

/// A process of the centralized allocator: the hub (node 0) runs the coordinator, every other
/// node is a client.
pub struct CentralizedNode {
    cfg: KlConfig,
    node: NodeId,
    state: CsState,
    need: usize,
    granted: usize,
    entered_at: u64,
    driver: BoxedDriver,
    request_sent: bool,
    coordinator: Option<Coordinator>,
}

impl CentralizedNode {
    /// Creates the process for `node`; node 0 becomes the coordinator and never requests.
    pub fn new(node: NodeId, cfg: KlConfig, driver: BoxedDriver) -> Self {
        let coordinator =
            if node == 0 { Some(Coordinator { free: cfg.l, pending: VecDeque::new() }) } else { None };
        CentralizedNode {
            cfg,
            node,
            state: CsState::Out,
            need: 0,
            granted: 0,
            entered_at: 0,
            driver,
            request_sent: false,
            coordinator,
        }
    }

    fn coordinator_grant_loop(&mut self, ctx: &mut Context<'_, CoordMessage>) {
        if let Some(coord) = &mut self.coordinator {
            while let Some(&(channel, units)) = coord.pending.front() {
                if units <= coord.free {
                    coord.free -= units;
                    coord.pending.pop_front();
                    ctx.send(channel, CoordMessage::Grant { units });
                } else {
                    break; // strict FIFO: wait until the head request fits
                }
            }
        }
    }
}

impl Process for CentralizedNode {
    type Msg = CoordMessage;

    fn on_message(&mut self, from: ChannelLabel, msg: CoordMessage, ctx: &mut Context<'_, CoordMessage>) {
        match (self.coordinator.is_some(), msg) {
            (true, CoordMessage::Request { units }) => {
                if let Some(coord) = &mut self.coordinator {
                    coord.pending.push_back((from, units.clamp(1, self.cfg.k)));
                }
                self.coordinator_grant_loop(ctx);
            }
            (true, CoordMessage::Release { units }) => {
                if let Some(coord) = &mut self.coordinator {
                    coord.free = (coord.free + units).min(self.cfg.l);
                }
                self.coordinator_grant_loop(ctx);
            }
            (false, CoordMessage::Grant { units }) => {
                if self.state == CsState::Req {
                    self.granted = units;
                    self.state = CsState::In;
                    self.entered_at = ctx.now;
                    ctx.emit(Event::EnterCs { units });
                } else {
                    // Spurious grant (e.g. injected by a fault): hand the units straight back.
                    ctx.send(0, CoordMessage::Release { units });
                }
            }
            _ => {}
        }
    }

    fn on_tick(&mut self, ctx: &mut Context<'_, CoordMessage>) {
        if self.coordinator.is_some() {
            self.coordinator_grant_loop(ctx);
            return;
        }
        match self.state {
            CsState::Out => {
                if let Some(units) = self.driver.next_request(self.node, ctx.now) {
                    self.need = units.clamp(1, self.cfg.k);
                    self.state = CsState::Req;
                    self.request_sent = false;
                    ctx.emit(Event::RequestIssued { units: self.need });
                }
            }
            CsState::Req => {
                if !self.request_sent {
                    self.request_sent = true;
                    ctx.send(0, CoordMessage::Request { units: self.need });
                }
            }
            CsState::In => {
                if self.driver.release_cs(self.node, ctx.now, self.entered_at) {
                    ctx.send(0, CoordMessage::Release { units: self.granted });
                    ctx.emit(Event::ExitCs { units: self.granted });
                    self.granted = 0;
                    self.need = 0;
                    self.state = CsState::Out;
                }
            }
        }
    }
}

impl KlInspect for CentralizedNode {
    fn cs_state(&self) -> CsState {
        self.state
    }
    fn need(&self) -> usize {
        self.need
    }
    fn reserved(&self) -> usize {
        self.granted
    }
    fn holds_priority(&self) -> bool {
        false
    }
}

impl Corruptible for CentralizedNode {
    fn corrupt(&mut self, rng: &mut StdRng) {
        self.need = rng.gen_range(0..=self.cfg.k);
        self.granted = rng.gen_range(0..=self.cfg.k);
        self.state = match rng.gen_range(0..3) {
            0 => CsState::Out,
            1 => CsState::Req,
            _ => CsState::In,
        };
        self.request_sent = rng.gen_bool(0.5);
        if let Some(coord) = &mut self.coordinator {
            coord.free = rng.gen_range(0..=self.cfg.l);
            coord.pending.clear();
        }
    }
}

/// Builds a star network with the coordinator at the hub and `n - 1` clients.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn network(
    n: usize,
    cfg: KlConfig,
    mut driver_for: impl FnMut(NodeId) -> BoxedDriver,
) -> Network<CentralizedNode, OrientedTree> {
    assert!(n >= 2, "the centralized baseline needs at least two processes");
    let star = topology::builders::star(n);
    Network::new(star, |id| CentralizedNode::new(id, cfg, driver_for(id)))
}

/// Total units currently in use by clients (for safety checks).
pub fn units_in_use(net: &Network<CentralizedNode, OrientedTree>) -> usize {
    net.nodes().map(|n| n.units_in_use()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use treenet::app::{AppDriver, Idle};
    use treenet::{run_until, RandomFair, RoundRobin};

    struct Fixed {
        units: usize,
        hold: u64,
    }
    impl AppDriver for Fixed {
        fn next_request(&mut self, _n: NodeId, _t: u64) -> Option<usize> {
            Some(self.units)
        }
        fn release_cs(&mut self, _n: NodeId, now: u64, e: u64) -> bool {
            now - e >= self.hold
        }
    }

    #[test]
    fn grants_and_releases_cycle() {
        let cfg = KlConfig::new(2, 4, 6);
        let mut net = network(6, cfg, |id| {
            if id == 0 {
                Box::new(Idle) as BoxedDriver
            } else {
                Box::new(Fixed { units: 2, hold: 5 }) as BoxedDriver
            }
        });
        let mut sched = RoundRobin::new();
        let out = run_until(&mut net, &mut sched, 500_000, |n| {
            (1..6).all(|v| n.trace().cs_entries(Some(v)) >= 3)
        });
        assert!(out.is_satisfied(), "every client repeatedly enters its CS");
    }

    #[test]
    fn never_over_allocates() {
        let cfg = KlConfig::new(3, 5, 8);
        let mut net = network(8, cfg, |id| {
            if id == 0 {
                Box::new(Idle) as BoxedDriver
            } else {
                Box::new(Fixed { units: 3, hold: 7 }) as BoxedDriver
            }
        });
        let mut sched = RandomFair::new(2);
        for _ in 0..100_000 {
            net.step(&mut sched);
            assert!(units_in_use(&net) <= cfg.l, "coordinator must never over-allocate");
        }
    }

    #[test]
    fn fifo_order_prevents_starvation_of_large_requests() {
        // One client wants k units, the rest want 1: strict FIFO at the coordinator means the
        // big request is eventually at the head and gets served.
        let cfg = KlConfig::new(3, 3, 6);
        let mut net = network(6, cfg, |id| match id {
            0 => Box::new(Idle) as BoxedDriver,
            1 => Box::new(Fixed { units: 3, hold: 2 }) as BoxedDriver,
            _ => Box::new(Fixed { units: 1, hold: 2 }) as BoxedDriver,
        });
        let mut sched = RoundRobin::new();
        let out = run_until(&mut net, &mut sched, 500_000, |n| n.trace().cs_entries(Some(1)) >= 5);
        assert!(out.is_satisfied(), "the k-unit requester must not starve under FIFO");
    }

    #[test]
    fn spurious_grant_is_returned() {
        let cfg = KlConfig::new(2, 3, 4);
        let mut net = network(4, cfg, |_| Box::new(Idle) as BoxedDriver);
        // Inject a grant at an idle client; it must bounce back as a release.
        net.inject_into(2, 0, CoordMessage::Grant { units: 2 });
        let mut sched = RoundRobin::new();
        treenet::run_for(&mut net, &mut sched, 200);
        assert_eq!(net.metrics().sent_of_kind("Release"), 1);
        assert_eq!(net.node(2).units_in_use(), 0);
    }
}
