//! Flat struct-of-arrays channel storage: the million-node layout of [`crate::Network`].
//!
//! The original network kept its channels as `Vec<Vec<Channel<M>>>` — one heap allocation
//! *per node* plus a pointer indirection on every channel access.  At n = 10^5–10^6 nodes
//! that layout costs a million tiny allocations, scatters the channels of neighbouring nodes
//! across the heap, and makes the per-step endpoint lookup chase two pointers before it
//! touches a message.  [`ChannelSlab`] replaces it with the same CSR (compressed sparse row)
//! scheme the [`crate::engine::EnabledSet`] already uses:
//!
//! * `offsets[v]..offsets[v+1]` delimits the flat channel range of node `v` — a single
//!   allocation holds every channel in node order, so a node's incident channels (and its
//!   tree neighbours', for breadth-first ids) are cache-adjacent;
//! * `endpoints[flat(u, i)]` precomputes `topology.endpoint(u, i)` — the routing hop of every
//!   send becomes one array read instead of a topology method call on the hot path.
//!
//! The slab stores **incoming** channels (`get(v, l)` is the incoming channel of `v` with
//! local label `l`, exactly like the old matrix), while the endpoint table is indexed by the
//! **sender's** flat coordinate: a message sent by `u` on its channel `i` lands on
//! `get(q, j)` where `(q, j) = endpoints[flat(u, i)]`.
//!
//! # Memory model
//!
//! For a tree of n nodes there are exactly 2(n−1) directed links, so the slab holds 2(n−1)
//! channels, n+1 offsets and 2(n−1) endpoint pairs in three flat vectors — O(n) allocations
//! total (three, plus any spill deques individual channels grow), independent of n.  With the
//! inline channel ring of [`crate::channel::INLINE_CAPACITY`] messages, a million-node
//! network allocates its entire steady-state message storage up front and touches no
//! allocator during stepping.

use crate::channel::Channel;
use crate::{ChannelLabel, NodeId};
use topology::Topology;

/// CSR-flat storage of every channel in the network plus the precomputed endpoint table.
///
/// See the [module docs](self) for the layout.
#[derive(Clone, Debug)]
pub struct ChannelSlab<M> {
    /// CSR offsets: channels of node `v` occupy flat indices `offsets[v]..offsets[v+1]`.
    offsets: Vec<u32>,
    /// Every channel of the network, flat, in (node, label) order.
    channels: Vec<Channel<M>>,
    /// `endpoints[flat(u, i)] = (q, j)`: the destination coordinate of a send by `u` on `i`.
    endpoints: Vec<(u32, u32)>,
}

impl<M> ChannelSlab<M> {
    /// Builds the slab for `topo`, with every channel empty and every endpoint precomputed.
    pub fn new<T: Topology>(topo: &T) -> Self {
        let n = topo.len();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut total = 0u32;
        offsets.push(0);
        for v in 0..n {
            total += topo.degree(v) as u32;
            offsets.push(total);
        }
        let mut channels = Vec::with_capacity(total as usize);
        let mut endpoints = Vec::with_capacity(total as usize);
        for v in 0..n {
            for l in 0..topo.degree(v) {
                channels.push(Channel::new());
                let (q, j) = topo.endpoint(v, l);
                endpoints.push((q as u32, j as u32));
            }
        }
        ChannelSlab { offsets, channels, endpoints }
    }

    /// Number of nodes covered.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of channels in the slab (2(n−1) on a tree).
    #[inline]
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// Degree of `node`.
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        (self.offsets[node + 1] - self.offsets[node]) as usize
    }

    /// The flat index of `node`'s channel `label`.
    #[inline]
    pub fn flat(&self, node: NodeId, label: ChannelLabel) -> usize {
        debug_assert!(label < self.degree(node));
        self.offsets[node] as usize + label
    }

    /// The incoming channel of `node` with local label `label`.
    #[inline]
    pub fn get(&self, node: NodeId, label: ChannelLabel) -> &Channel<M> {
        &self.channels[self.flat(node, label)]
    }

    /// Mutable access to the incoming channel of `node` with local label `label`.
    #[inline]
    pub fn get_mut(&mut self, node: NodeId, label: ChannelLabel) -> &mut Channel<M> {
        let flat = self.flat(node, label);
        &mut self.channels[flat]
    }

    /// The precomputed destination `(node, label)` of a send by `node` on `label`.
    #[inline]
    pub fn endpoint(&self, node: NodeId, label: ChannelLabel) -> (NodeId, ChannelLabel) {
        let (q, j) = self.endpoints[self.flat(node, label)];
        (q as NodeId, j as ChannelLabel)
    }

    /// Iterates every channel as `(destination node, incoming label, &channel)`, in flat
    /// (node-major) order with an O(1) per-channel cursor.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, ChannelLabel, &Channel<M>)> {
        (0..self.num_nodes())
            .flat_map(move |v| self.node_channels(v).map(move |(l, ch)| (v, l, ch)))
    }

    /// Iterates the channels of one node as `(label, &channel)`.
    pub fn node_channels(&self, node: NodeId) -> impl Iterator<Item = (ChannelLabel, &Channel<M>)> {
        let base = self.offsets[node] as usize;
        self.channels[base..self.offsets[node + 1] as usize].iter().enumerate()
    }

    /// Resets every channel in place, retaining all allocations
    /// (the [`crate::Network::reset_trial`] path).
    pub fn reset(&mut self) {
        for channel in &mut self.channels {
            channel.reset();
        }
    }

    /// Drains the slab into a per-node `Vec<Vec<Option<Channel>>>` matrix — the cold-path
    /// representation used by topology churn ([`crate::Network::rebuild_from`]), where
    /// channels are claimed one by one across differently-shaped id spaces.
    pub(crate) fn take_rows(&mut self) -> Vec<Vec<Option<Channel<M>>>> {
        let mut rows = Vec::with_capacity(self.num_nodes());
        let mut drained = self.channels.drain(..);
        for v in 0..self.offsets.len() - 1 {
            let degree = (self.offsets[v + 1] - self.offsets[v]) as usize;
            rows.push((0..degree).map(|_| drained.next().map(Some).expect("CSR covers")).collect());
        }
        rows
    }

    /// Rebuilds the slab over `topo` from a (fully populated) per-node channel matrix.
    pub(crate) fn from_rows<T: Topology>(topo: &T, rows: Vec<Vec<Option<Channel<M>>>>) -> Self {
        let mut slab = ChannelSlab::new(topo);
        let mut flat = 0;
        for row in rows {
            for channel in row {
                slab.channels[flat] = channel.expect("every slot of the rebuilt matrix is filled");
                flat += 1;
            }
        }
        slab
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::builders;

    #[test]
    fn slab_mirrors_the_topology_shape() {
        let tree = builders::figure1_tree();
        let slab: ChannelSlab<u32> = ChannelSlab::new(&tree);
        assert_eq!(slab.num_nodes(), tree.len());
        let expected: usize = (0..tree.len()).map(|v| tree.degree(v)).sum();
        assert_eq!(slab.num_channels(), expected);
        for v in 0..tree.len() {
            assert_eq!(slab.degree(v), tree.degree(v));
            for l in 0..tree.degree(v) {
                assert_eq!(slab.endpoint(v, l), tree.endpoint(v, l), "endpoint table at ({v},{l})");
            }
        }
    }

    #[test]
    fn flat_indices_are_dense_and_iter_recovers_coordinates() {
        let tree = builders::binary(15);
        let mut slab: ChannelSlab<u32> = ChannelSlab::new(&tree);
        let mut seen = vec![false; slab.num_channels()];
        for v in 0..tree.len() {
            for l in 0..tree.degree(v) {
                let flat = slab.flat(v, l);
                assert!(!seen[flat], "flat index {flat} reused");
                seen[flat] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        slab.get_mut(3, 0).push(7);
        let found: Vec<(NodeId, ChannelLabel, usize)> =
            slab.iter().filter(|(_, _, ch)| !ch.is_empty()).map(|(v, l, ch)| (v, l, ch.len())).collect();
        assert_eq!(found, vec![(3, 0, 1)]);
    }

    #[test]
    fn rows_round_trip_preserves_contents() {
        let tree = builders::figure1_tree();
        let mut slab: ChannelSlab<u32> = ChannelSlab::new(&tree);
        slab.get_mut(4, 1).push(11);
        slab.get_mut(0, 0).push(22);
        let rows = slab.take_rows();
        let rebuilt = ChannelSlab::from_rows(&tree, rows);
        assert_eq!(rebuilt.get(4, 1).iter().copied().collect::<Vec<_>>(), vec![11]);
        assert_eq!(rebuilt.get(0, 0).iter().copied().collect::<Vec<_>>(), vec![22]);
        assert_eq!(rebuilt.num_channels(), slab_num(&tree));
    }

    fn slab_num(tree: &topology::OrientedTree) -> usize {
        (0..tree.len()).map(|v| tree.degree(v)).sum()
    }
}
