//! In-simulation Chandy–Lamport consistent snapshots.
//!
//! The classic algorithm, run *inside* the simulated network on its existing FIFO channels
//! (not by pausing the simulator): an initiator records its own state and broadcasts a
//! marker message on every outgoing channel; every process, on its **first** marker, records
//! its state, closes the channel the marker arrived on (its in-transit record is empty) and
//! broadcasts markers itself; messages arriving on an already-recorded process's still-open
//! channels are recorded as *in transit* on the cut; a channel closes when its marker
//! arrives.  The cut is complete when every process has recorded and every directed channel
//! has closed — on a tree, exactly 2(n−1) markers, one per directed link.
//!
//! Because channels are FIFO and markers travel the same queues as protocol messages, the
//! recorded global state is a **consistent cut**: a configuration the system could have
//! occupied, reachable from the initiation configuration and reaching the completion
//! configuration.  For the paper's protocols the token census — (ℓ, 1, 1) resource, pusher
//! and priority tokens — is invariant across legitimate executions, so the census of every
//! consistent cut must equal the instantaneous census, which is exactly what the
//! `SafetyMonitor` in the `analysis` crate asserts per cut (and what the snapshot-oracle
//! proptest cross-checks against brute-force instantaneous censuses).
//!
//! # Integration with the engine
//!
//! Marker handling is interposed **outside** the protocol: [`SnapshotRunner::step`] peeks
//! the head of the channel the daemon chose to deliver from, and if it is a marker, consumes
//! it at the network layer ([`crate::Network::consume_marker`]) — the protocol's
//! `on_message` never sees a marker, so protocol behaviour is untouched between marker
//! activations.  When no snapshot is active the runner's step is the plain fused step plus
//! one branch, so the configured interval directly bounds the overhead.

use crate::engine::{EnabledShape, EventScheduler};
use crate::network::Network;
use crate::process::Process;
use crate::scheduler::Activation;
use crate::{ChannelLabel, NodeId};
use topology::Topology;

/// A message type that can carry Chandy–Lamport markers alongside protocol traffic.
///
/// Markers are ordinary messages on the wire (FIFO with everything else — that is what
/// makes the cut consistent) but are consumed by the snapshot layer, never delivered to
/// protocol code.
pub trait SnapshotMessage: Clone {
    /// Constructs the marker message of snapshot `snap`.
    fn marker(snap: u32) -> Self;

    /// Returns `Some(snap)` when `self` is a marker.
    fn as_marker(&self) -> Option<u32>;
}

/// Which node initiates each snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InitiatorPolicy {
    /// The root (node 0) initiates every snapshot.
    Root,
    /// Snapshot i is initiated by node `i mod n` — exercises marker propagation from every
    /// position in the tree.
    Rotate,
}

/// When and from where to snapshot.
#[derive(Clone, Copy, Debug)]
pub struct SnapshotPlan {
    /// Activations between the completion of one snapshot and the initiation of the next
    /// (and before the first).
    pub interval: u64,
    /// Initiator choice per snapshot.
    pub initiator: InitiatorPolicy,
}

/// Receives the pieces of each cut as the runner assembles them.
///
/// The observer sees every recorded node state, every in-transit message, and one
/// completion call per cut.  It owns all protocol-specific interpretation (census counting,
/// safety verdicts); the runner itself is protocol-agnostic.
pub trait SnapshotObserver<P: Process> {
    /// Node `node`'s state was recorded into cut `snap`.
    fn node_state(&mut self, snap: u32, node: NodeId, process: &P);

    /// `msg` was recorded as in transit on `node`'s incoming channel `label` in cut `snap`.
    fn in_transit(&mut self, snap: u32, node: NodeId, label: ChannelLabel, msg: &P::Msg);

    /// Cut `snap` is complete: every node recorded, every channel closed.
    fn cut_complete(&mut self, snap: u32, initiated_at: u64, completed_at: u64);
}

/// Book-keeping of one in-progress cut.
#[derive(Debug)]
struct ActiveCut {
    snap: u32,
    initiated_at: u64,
    /// Per node: has it recorded its state yet?
    recorded: Vec<bool>,
    /// Per flat channel index: is the channel still awaiting its marker?
    open: Vec<bool>,
    /// Channels still awaiting a marker (starts at the total channel count).
    pending_channels: usize,
    /// Nodes still to record.
    pending_nodes: usize,
}

/// Drives a network with periodic Chandy–Lamport snapshots interposed on the fused
/// event-driven path.  See the [module docs](self).
#[derive(Debug)]
pub struct SnapshotRunner {
    plan: SnapshotPlan,
    next_at: u64,
    next_snap: u32,
    active: Option<ActiveCut>,
    cuts_completed: u64,
    markers_sent: u64,
}

impl SnapshotRunner {
    /// A runner that initiates its first snapshot once `net.now()` reaches `plan.interval`.
    ///
    /// # Panics
    ///
    /// Panics if the interval is zero.
    pub fn new(plan: SnapshotPlan) -> Self {
        assert!(plan.interval > 0, "snapshot interval must be positive");
        SnapshotRunner {
            next_at: plan.interval,
            plan,
            next_snap: 0,
            active: None,
            cuts_completed: 0,
            markers_sent: 0,
        }
    }

    /// Number of cuts completed so far.
    pub fn cuts_completed(&self) -> u64 {
        self.cuts_completed
    }

    /// Total marker messages broadcast so far.
    pub fn markers_sent(&self) -> u64 {
        self.markers_sent
    }

    /// True while a cut is being assembled.
    pub fn is_active(&self) -> bool {
        self.active.is_some()
    }

    /// True when the next call to [`SnapshotRunner::step`] will initiate a snapshot (used
    /// by the oracle tests to capture the instantaneous pre-initiation census).
    pub fn initiation_due(&self, now: u64) -> bool {
        self.active.is_none() && now >= self.next_at
    }

    /// One activation of the network under `daemon`, with snapshot interposition: initiates
    /// a snapshot when due, consumes markers at the network layer, and records in-transit
    /// messages on open channels.  Exactly one daemon activation is executed per call
    /// (marker deliveries consume the activation, like any delivery).
    pub fn step<P, T, S, O>(&mut self, net: &mut Network<P, T>, daemon: &mut S, observer: &mut O)
    where
        P: Process,
        P::Msg: SnapshotMessage,
        T: Topology,
        S: EventScheduler,
        O: SnapshotObserver<P>,
    {
        if self.initiation_due(net.now()) {
            self.initiate(net, observer);
        }
        let activation = daemon.next_event(&EnabledShape::new(net.enabled_set()));
        if self.active.is_some() {
            if let Activation::Deliver { node, channel } = activation {
                let head_marker =
                    net.channel(node, channel).iter().next().and_then(|m| m.as_marker());
                if let Some(snap) = head_marker {
                    net.consume_marker(node, channel);
                    self.on_marker(snap, node, channel, net, observer);
                    return;
                }
                // A protocol message delivered on a recorded node's still-open channel is
                // part of the cut's in-transit record (peeked before the delivery consumes
                // it).
                let cut = self.active.as_mut().expect("checked active");
                if cut.recorded[node] && cut.open[net.flat_index(node, channel)] {
                    if let Some(msg) = net.channel(node, channel).iter().next() {
                        observer.in_transit(cut.snap, node, channel, msg);
                    }
                }
            }
        }
        net.execute(activation);
    }

    /// Starts a new cut: record the initiator, broadcast its markers, open every other
    /// channel for in-transit recording.
    fn initiate<P, T, O>(&mut self, net: &mut Network<P, T>, observer: &mut O)
    where
        P: Process,
        P::Msg: SnapshotMessage,
        T: Topology,
        O: SnapshotObserver<P>,
    {
        let n = net.len();
        let snap = self.next_snap;
        self.next_snap = self.next_snap.wrapping_add(1);
        let initiator = match self.plan.initiator {
            InitiatorPolicy::Root => 0,
            InitiatorPolicy::Rotate => (snap as usize) % n,
        };
        let mut cut = ActiveCut {
            snap,
            initiated_at: net.now(),
            recorded: vec![false; n],
            open: vec![true; net.num_flat_channels()],
            pending_channels: net.num_flat_channels(),
            pending_nodes: n,
        };
        observer.node_state(snap, initiator, net.node(initiator));
        cut.recorded[initiator] = true;
        cut.pending_nodes -= 1;
        self.markers_sent += net.broadcast_from(initiator, P::Msg::marker(snap)) as u64;
        self.active = Some(cut);
        // A single-node network has no channels: the cut completes at initiation.
        self.try_complete(net, observer);
    }

    /// Handles a consumed marker of snapshot `snap` on `node`'s incoming channel `label`.
    fn on_marker<P, T, O>(
        &mut self,
        snap: u32,
        node: NodeId,
        label: ChannelLabel,
        net: &mut Network<P, T>,
        observer: &mut O,
    ) where
        P: Process,
        P::Msg: SnapshotMessage,
        T: Topology,
        O: SnapshotObserver<P>,
    {
        let Some(cut) = self.active.as_mut() else { return };
        debug_assert_eq!(cut.snap, snap, "non-overlapping snapshots carry the active id");
        if !cut.recorded[node] {
            // First marker: record the node; the marker's channel closes with an empty
            // in-transit record, the node's other channels stay open.
            observer.node_state(cut.snap, node, net.node(node));
            cut.recorded[node] = true;
            cut.pending_nodes -= 1;
            self.markers_sent += net.broadcast_from(node, P::Msg::marker(cut.snap)) as u64;
        }
        let flat = net.flat_index(node, label);
        let cut = self.active.as_mut().expect("still active");
        if cut.open[flat] {
            cut.open[flat] = false;
            cut.pending_channels -= 1;
        }
        self.try_complete(net, observer);
    }

    fn try_complete<P, T, O>(&mut self, net: &Network<P, T>, observer: &mut O)
    where
        P: Process,
        T: Topology,
        O: SnapshotObserver<P>,
    {
        let done = matches!(&self.active, Some(cut) if cut.pending_nodes == 0 && cut.pending_channels == 0);
        if done {
            let cut = self.active.take().expect("checked");
            observer.cut_complete(cut.snap, cut.initiated_at, net.now());
            self.cuts_completed += 1;
            self.next_at = net.now() + self.plan.interval;
        }
    }
}

/// Runs `steps` activations with snapshots interposed — the snapshot-enabled counterpart of
/// [`crate::engine::run`].
pub fn run_with_snapshots<P, T, S, O>(
    net: &mut Network<P, T>,
    daemon: &mut S,
    steps: u64,
    runner: &mut SnapshotRunner,
    observer: &mut O,
) where
    P: Process,
    P::Msg: SnapshotMessage,
    T: Topology,
    S: EventScheduler,
    O: SnapshotObserver<P>,
{
    for _ in 0..steps {
        runner.step(net, daemon, observer);
    }
}

/// Runs until `pred` holds or `max_steps` activations, with snapshots interposed — the
/// snapshot-enabled counterpart of [`crate::engine::run_until`].
pub fn run_until_with_snapshots<P, T, S, O>(
    net: &mut Network<P, T>,
    daemon: &mut S,
    max_steps: u64,
    runner: &mut SnapshotRunner,
    observer: &mut O,
    mut pred: impl FnMut(&Network<P, T>) -> bool,
) -> crate::runner::RunOutcome
where
    P: Process,
    P::Msg: SnapshotMessage,
    T: Topology,
    S: EventScheduler,
    O: SnapshotObserver<P>,
{
    use crate::runner::RunOutcome;
    if pred(net) {
        return RunOutcome::Satisfied(net.now());
    }
    for _ in 0..max_steps {
        runner.step(net, daemon, observer);
        if pred(net) {
            return RunOutcome::Satisfied(net.now());
        }
    }
    RunOutcome::Exhausted(net.now())
}
