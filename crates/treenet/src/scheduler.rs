//! Daemons (schedulers): fair, synchronous and adversarial activation orders, in two
//! engine flavours.
//!
//! The paper assumes executions that are *asynchronous but fair*: every process takes
//! infinitely many steps, with unbounded (finite) delays between them.  A [`Scheduler`]
//! chooses, at each simulation step, which process is activated and whether it consumes a
//! message or only runs its bottom-of-loop actions.  In the terminology of the
//! self-stabilization literature the bundled schedulers realise the four classic daemons:
//!
//! * [`RandomFair`] — a **randomized central daemon**: each step activates one uniformly
//!   chosen process, delivering from a uniformly chosen non-empty channel with probability
//!   `deliver_bias`.  Fair with probability 1; the default model of an arbitrary
//!   asynchronous execution (alias [`CentralDaemon`]).
//! * [`RoundRobin`] — a **weakly fair distributed daemon**, serialized: processes are
//!   activated cyclically and serve their channels cyclically; the closest deterministic
//!   analogue of "everyone moves at the same rate" (alias [`DistributedDaemon`]).
//! * [`Synchronous`] — the **synchronous daemon**: rounds in which every process acts once
//!   on the channel occupancy *snapshotted at the start of the round*, serialized in id
//!   order (alias [`SynchronousDaemon`]).
//! * [`Adversarial`] — a **bounded-unfairness adversary** that starves designated victims as
//!   long as the fairness bound allows; used to stress worst-case waiting times (Theorem 2)
//!   (alias [`AdversarialDaemon`]).
//!
//! # Two engines, one semantics
//!
//! Each daemon exists in two implementations that produce **bit-identical activation
//! sequences** (same RNG, same number of draws, same ranges, same order — the
//! trace-equivalence suite in `tests/engine_equivalence.rs` asserts this):
//!
//! * the **event-driven** daemons in this module read the enabled set that the network
//!   maintains incrementally (see [`crate::engine`]) — O(1) per decision, no per-step
//!   allocation, and additionally usable through the fused monomorphized loop
//!   [`crate::engine::run`];
//! * the **scan-based** reference daemons in [`baseline`] re-derive channel occupancy from
//!   scratch on every step through [`NetworkView`] — the original engine, retained as the
//!   executable specification the event engine is tested against.

use crate::engine::EnabledShape;
use crate::network::{EnabledView, NetworkView};
use crate::{ChannelLabel, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One scheduling decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    /// Deliver the head message of `node`'s incoming channel `channel` (if the channel is
    /// empty, the activation degrades to a tick).
    Deliver {
        /// The destination process.
        node: NodeId,
        /// The incoming channel to read.
        channel: ChannelLabel,
    },
    /// Activate `node` without delivering a message (bottom-of-loop actions only).
    Tick {
        /// The activated process.
        node: NodeId,
    },
}

/// Chooses the next activation based on the observable network shape.
pub trait Scheduler {
    /// Returns the next activation to execute.
    fn next_activation(&mut self, view: &dyn EnabledView) -> Activation;
}

/// Internal abstraction over the two ways a daemon reads network shape: through the
/// dynamically dispatched [`EnabledView`] (drop-in [`Scheduler`] use, with scan fallbacks
/// for foreign views) or through the concrete [`EnabledShape`] (the fused loop).  Each
/// daemon's decision logic is written once against this trait and instantiated for both, so
/// the two paths cannot drift apart.
trait ShapeView {
    fn num_nodes(&self) -> usize;
    fn degree(&self, node: NodeId) -> usize;
    fn deliverable_count(&self, node: NodeId) -> usize;
    fn next_deliverable_from(&self, node: NodeId, start: ChannelLabel) -> Option<ChannelLabel>;
    fn nth_deliverable(&self, node: NodeId, idx: usize) -> Option<ChannelLabel>;
    fn snapshot_deliverable(&self, round: &mut Vec<Option<ChannelLabel>>);
}

impl ShapeView for &dyn EnabledView {
    #[inline]
    fn num_nodes(&self) -> usize {
        NetworkView::num_nodes(*self)
    }
    #[inline]
    fn degree(&self, node: NodeId) -> usize {
        NetworkView::degree(*self, node)
    }
    #[inline]
    fn deliverable_count(&self, node: NodeId) -> usize {
        EnabledView::deliverable_count(*self, node)
    }
    #[inline]
    fn next_deliverable_from(&self, node: NodeId, start: ChannelLabel) -> Option<ChannelLabel> {
        EnabledView::next_deliverable_from(*self, node, start)
    }
    #[inline]
    fn nth_deliverable(&self, node: NodeId, idx: usize) -> Option<ChannelLabel> {
        EnabledView::nth_deliverable(*self, node, idx)
    }
    #[inline]
    fn snapshot_deliverable(&self, round: &mut Vec<Option<ChannelLabel>>) {
        EnabledView::snapshot_deliverable(*self, round);
    }
}

impl ShapeView for EnabledShape<'_> {
    #[inline]
    fn num_nodes(&self) -> usize {
        EnabledShape::num_nodes(self)
    }
    #[inline]
    fn degree(&self, node: NodeId) -> usize {
        EnabledShape::degree(self, node)
    }
    #[inline]
    fn deliverable_count(&self, node: NodeId) -> usize {
        EnabledShape::deliverable_count(self, node)
    }
    #[inline]
    fn next_deliverable_from(&self, node: NodeId, start: ChannelLabel) -> Option<ChannelLabel> {
        EnabledShape::next_deliverable_from(self, node, start)
    }
    #[inline]
    fn nth_deliverable(&self, node: NodeId, idx: usize) -> Option<ChannelLabel> {
        EnabledShape::nth_deliverable(self, node, idx)
    }
    #[inline]
    fn snapshot_deliverable(&self, round: &mut Vec<Option<ChannelLabel>>) {
        // O(enabled) per round: only the delivery-enabled nodes of the dense list are
        // visited; everyone else keeps the `None` from the reset.
        round.clear();
        round.resize(self.num_nodes(), None);
        for i in 0..self.enabled_len() {
            let v = self.enabled_node(i);
            round[v] = self.next_deliverable_from(v, 0);
        }
    }
}

/// Deterministic fair scheduler: nodes are activated cyclically; each node serves its
/// incoming channels in round-robin order, interleaved with ticks.
///
/// Event-driven: the per-node channel probe reads the maintained enabled set instead of
/// scanning every channel.  Bit-identical to [`baseline::RoundRobin`].
#[derive(Clone, Debug, Default)]
pub struct RoundRobin {
    cursor: usize,
    channel_cursor: Vec<usize>,
}

impl RoundRobin {
    /// Creates a round-robin scheduler.
    pub fn new() -> Self {
        RoundRobin::default()
    }

    #[inline]
    fn decide<V: ShapeView>(&mut self, view: &V) -> Activation {
        let n = view.num_nodes();
        if self.channel_cursor.len() != n {
            self.channel_cursor = vec![0; n];
        }
        let node = self.cursor % n;
        self.cursor = (self.cursor + 1) % n;
        let degree = view.degree(node);
        if degree == 0 || view.deliverable_count(node) == 0 {
            return Activation::Tick { node };
        }
        let start = self.channel_cursor[node] % degree;
        let channel = view
            .next_deliverable_from(node, start)
            .expect("deliverable_count > 0 guarantees a non-empty channel");
        self.channel_cursor[node] = (channel + 1) % degree;
        Activation::Deliver { node, channel }
    }
}

impl Scheduler for RoundRobin {
    fn next_activation(&mut self, view: &dyn EnabledView) -> Activation {
        self.decide(&view)
    }
}

impl crate::engine::EventScheduler for RoundRobin {
    #[inline]
    fn next_event(&mut self, shape: &EnabledShape<'_>) -> Activation {
        self.decide(shape)
    }
}

/// Seeded random fair scheduler (randomized central daemon).
///
/// Each step activates a uniformly random node.  With probability `deliver_bias` (default
/// 0.75) it delivers from a uniformly chosen non-empty incoming channel of that node (if
/// any); otherwise the node just ticks.  Every node is activated infinitely often with
/// probability 1, satisfying the paper's fairness assumption.
///
/// Event-driven: the non-empty-channel count and the chosen channel are read from the
/// maintained enabled set — no per-step scan or allocation.  The RNG discipline (one node
/// draw; then, only if the node has deliverable messages, one Bernoulli draw; then, only on
/// success, one channel draw) is exactly that of [`baseline::RandomFair`], so the streams
/// coincide.
#[derive(Clone, Debug)]
pub struct RandomFair {
    rng: StdRng,
    deliver_bias: f64,
}

impl RandomFair {
    /// Creates a random scheduler from a seed.
    pub fn new(seed: u64) -> Self {
        RandomFair { rng: StdRng::seed_from_u64(seed), deliver_bias: 0.75 }
    }

    /// Overrides the probability of preferring a delivery over a tick when messages are
    /// available (clamped to `[0, 1]`).
    pub fn with_deliver_bias(mut self, bias: f64) -> Self {
        self.deliver_bias = bias.clamp(0.0, 1.0);
        self
    }

    #[inline]
    fn decide<V: ShapeView>(&mut self, view: &V) -> Activation {
        let n = view.num_nodes();
        let node = self.rng.gen_range(0..n);
        let deliverable = view.deliverable_count(node);
        if deliverable > 0 && self.rng.gen_bool(self.deliver_bias) {
            let idx = self.rng.gen_range(0..deliverable);
            let channel =
                view.nth_deliverable(node, idx).expect("idx < deliverable_count");
            Activation::Deliver { node, channel }
        } else {
            Activation::Tick { node }
        }
    }
}

impl Scheduler for RandomFair {
    fn next_activation(&mut self, view: &dyn EnabledView) -> Activation {
        self.decide(&view)
    }
}

impl crate::engine::EventScheduler for RandomFair {
    #[inline]
    fn next_event(&mut self, shape: &EnabledShape<'_>) -> Activation {
        self.decide(shape)
    }
}

/// The synchronous daemon, serialized: execution proceeds in rounds of `n` activations; at
/// the start of a round the channel occupancy is snapshotted, and within the round every
/// process acts once, in id order, on that snapshot — process `v` delivers from its lowest
/// channel that was non-empty *at the round boundary*, or ticks if it had none.
///
/// Because only `v` itself ever consumes `v`'s incoming messages, the snapshot stays valid
/// for the process it concerns throughout the round; messages arriving mid-round are
/// deliberately ignored until the next round, which is what makes the daemon synchronous.
///
/// Event-driven: the snapshot is assembled from the maintained enabled set (O(enabled)
/// instead of O(total channels)).  Bit-identical to [`baseline::Synchronous`].
#[derive(Clone, Debug, Default)]
pub struct Synchronous {
    round: Vec<Option<ChannelLabel>>,
    cursor: usize,
}

impl Synchronous {
    /// Creates a synchronous-daemon scheduler.
    pub fn new() -> Self {
        Synchronous::default()
    }

    #[inline]
    fn decide<V: ShapeView>(&mut self, view: &V) -> Activation {
        let n = view.num_nodes();
        if self.round.len() != n {
            // The network changed size under us: restart the round.
            self.cursor = 0;
        }
        if self.cursor == 0 {
            view.snapshot_deliverable(&mut self.round);
        }
        let node = self.cursor;
        self.cursor = (self.cursor + 1) % n;
        match self.round[node] {
            Some(channel) => Activation::Deliver { node, channel },
            None => Activation::Tick { node },
        }
    }
}

impl Scheduler for Synchronous {
    fn next_activation(&mut self, view: &dyn EnabledView) -> Activation {
        self.decide(&view)
    }
}

impl crate::engine::EventScheduler for Synchronous {
    #[inline]
    fn next_event(&mut self, shape: &EnabledShape<'_>) -> Activation {
        self.decide(shape)
    }
}

/// A bounded-unfairness scheduler used to stress waiting times.
///
/// The designated `victims` are starved of activations: they are only activated once every
/// `patience` scheduler decisions; all other decisions go (round-robin) to the non-victims.
/// Because victims are still activated infinitely often, the execution remains fair in the
/// paper's sense, but it approximates the worst case used in the waiting-time analysis,
/// where all other processes move as often as possible between two steps of the victim.
///
/// Event-driven; bit-identical to [`baseline::Adversarial`].
#[derive(Clone, Debug)]
pub struct Adversarial {
    victims: Vec<NodeId>,
    patience: u64,
    counter: u64,
    inner: RoundRobin,
    victim_cursor: usize,
    victim_channel_cursor: usize,
}

impl Adversarial {
    /// Creates an adversarial scheduler that activates each of `victims` only once every
    /// `patience` steps (`patience >= 1`).
    pub fn new(victims: Vec<NodeId>, patience: u64) -> Self {
        Adversarial {
            victims,
            patience: patience.max(1),
            counter: 0,
            inner: RoundRobin::new(),
            victim_cursor: 0,
            victim_channel_cursor: 0,
        }
    }

    #[inline]
    fn decide<V: ShapeView>(&mut self, view: &V) -> Activation {
        self.counter += 1;
        if !self.victims.is_empty() && self.counter.is_multiple_of(self.patience) {
            let node = self.victims[self.victim_cursor % self.victims.len()];
            self.victim_cursor += 1;
            let degree = view.degree(node);
            if degree == 0 || view.deliverable_count(node) == 0 {
                return Activation::Tick { node };
            }
            let start = self.victim_channel_cursor % degree;
            let channel = view
                .next_deliverable_from(node, start)
                .expect("deliverable_count > 0 guarantees a non-empty channel");
            self.victim_channel_cursor = (channel + 1) % degree;
            return Activation::Deliver { node, channel };
        }
        // Otherwise schedule a non-victim (fall back to any node if everyone is a victim).
        loop {
            let act = self.inner.decide(view);
            let node = match act {
                Activation::Deliver { node, .. } | Activation::Tick { node } => node,
            };
            if !self.victims.contains(&node) || self.victims.len() == view.num_nodes() {
                return act;
            }
        }
    }
}

impl Scheduler for Adversarial {
    fn next_activation(&mut self, view: &dyn EnabledView) -> Activation {
        self.decide(&view)
    }
}

impl crate::engine::EventScheduler for Adversarial {
    #[inline]
    fn next_event(&mut self, shape: &EnabledShape<'_>) -> Activation {
        self.decide(shape)
    }
}

impl Scheduler for Box<dyn Scheduler + '_> {
    fn next_activation(&mut self, view: &dyn EnabledView) -> Activation {
        self.as_mut().next_activation(view)
    }
}

/// The randomized central daemon: exactly one process activated per step.
pub type CentralDaemon = RandomFair;
/// The weakly fair distributed daemon, serialized as a deterministic cyclic sweep.
pub type DistributedDaemon = RoundRobin;
/// The synchronous daemon, serialized in rounds over a round-boundary snapshot.
pub type SynchronousDaemon = Synchronous;
/// The bounded-unfairness adversary of the waiting-time experiments.
pub type AdversarialDaemon = Adversarial;

pub mod baseline {
    //! The original scan-based daemons, retained as the executable reference semantics.
    //!
    //! Every step re-derives channel occupancy by scanning the activated node's channels
    //! through [`crate::NetworkView`] — O(degree) virtual calls and, for [`RandomFair`], a fresh
    //! `Vec` per delivery decision.  The event-driven daemons in [`super`] produce
    //! bit-identical activation sequences (asserted by the trace-equivalence suite); these
    //! implementations exist as the specification they are checked against, and as the
    //! baseline of the `BENCH_treenet.json` engine comparison.

    use super::{Activation, Scheduler};
    use crate::network::EnabledView;
    use crate::{ChannelLabel, NodeId};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Scan-based reference implementation of [`super::RoundRobin`].
    #[derive(Clone, Debug, Default)]
    pub struct RoundRobin {
        cursor: usize,
        channel_cursor: Vec<usize>,
    }

    impl RoundRobin {
        /// Creates a round-robin scheduler.
        pub fn new() -> Self {
            RoundRobin::default()
        }
    }

    impl Scheduler for RoundRobin {
        fn next_activation(&mut self, view: &dyn EnabledView) -> Activation {
            let n = view.num_nodes();
            if self.channel_cursor.len() != n {
                self.channel_cursor = vec![0; n];
            }
            let node = self.cursor % n;
            self.cursor = (self.cursor + 1) % n;
            let degree = view.degree(node);
            if degree == 0 {
                return Activation::Tick { node };
            }
            // Serve the next non-empty channel after the cursor, if any; otherwise tick.
            let start = self.channel_cursor[node];
            for off in 0..degree {
                let ch = (start + off) % degree;
                if view.channel_len(node, ch) > 0 {
                    self.channel_cursor[node] = (ch + 1) % degree;
                    return Activation::Deliver { node, channel: ch };
                }
            }
            Activation::Tick { node }
        }
    }

    /// Scan-based reference implementation of [`super::RandomFair`].
    #[derive(Clone, Debug)]
    pub struct RandomFair {
        rng: StdRng,
        deliver_bias: f64,
    }

    impl RandomFair {
        /// Creates a random scheduler from a seed.
        pub fn new(seed: u64) -> Self {
            RandomFair { rng: StdRng::seed_from_u64(seed), deliver_bias: 0.75 }
        }

        /// Overrides the probability of preferring a delivery over a tick when messages are
        /// available (clamped to `[0, 1]`).
        pub fn with_deliver_bias(mut self, bias: f64) -> Self {
            self.deliver_bias = bias.clamp(0.0, 1.0);
            self
        }
    }

    impl Scheduler for RandomFair {
        fn next_activation(&mut self, view: &dyn EnabledView) -> Activation {
            let n = view.num_nodes();
            let node = self.rng.gen_range(0..n);
            let degree = view.degree(node);
            let non_empty: Vec<ChannelLabel> =
                (0..degree).filter(|&c| view.channel_len(node, c) > 0).collect();
            if !non_empty.is_empty() && self.rng.gen_bool(self.deliver_bias) {
                let channel = non_empty[self.rng.gen_range(0..non_empty.len())];
                Activation::Deliver { node, channel }
            } else {
                Activation::Tick { node }
            }
        }
    }

    /// Scan-based reference implementation of [`super::Synchronous`]: the round snapshot is
    /// rebuilt by scanning every channel of every node at each round boundary.
    #[derive(Clone, Debug, Default)]
    pub struct Synchronous {
        round: Vec<Option<ChannelLabel>>,
        cursor: usize,
    }

    impl Synchronous {
        /// Creates a synchronous-daemon scheduler.
        pub fn new() -> Self {
            Synchronous::default()
        }
    }

    impl Scheduler for Synchronous {
        fn next_activation(&mut self, view: &dyn EnabledView) -> Activation {
            let n = view.num_nodes();
            if self.round.len() != n {
                self.round = vec![None; n];
                self.cursor = 0;
            }
            if self.cursor == 0 {
                for (v, slot) in self.round.iter_mut().enumerate() {
                    *slot = (0..view.degree(v)).find(|&c| view.channel_len(v, c) > 0);
                }
            }
            let node = self.cursor;
            self.cursor = (self.cursor + 1) % n;
            match self.round[node] {
                Some(channel) => Activation::Deliver { node, channel },
                None => Activation::Tick { node },
            }
        }
    }

    /// Scan-based reference implementation of [`super::Adversarial`].
    #[derive(Clone, Debug)]
    pub struct Adversarial {
        victims: Vec<NodeId>,
        patience: u64,
        counter: u64,
        inner: RoundRobin,
        victim_cursor: usize,
        victim_channel_cursor: usize,
    }

    impl Adversarial {
        /// Creates an adversarial scheduler that activates each of `victims` only once every
        /// `patience` steps (`patience >= 1`).
        pub fn new(victims: Vec<NodeId>, patience: u64) -> Self {
            Adversarial {
                victims,
                patience: patience.max(1),
                counter: 0,
                inner: RoundRobin::new(),
                victim_cursor: 0,
                victim_channel_cursor: 0,
            }
        }
    }

    impl Scheduler for Adversarial {
        fn next_activation(&mut self, view: &dyn EnabledView) -> Activation {
            self.counter += 1;
            if !self.victims.is_empty() && self.counter.is_multiple_of(self.patience) {
                let node = self.victims[self.victim_cursor % self.victims.len()];
                self.victim_cursor += 1;
                let degree = view.degree(node);
                if degree == 0 {
                    return Activation::Tick { node };
                }
                let start = self.victim_channel_cursor;
                for off in 0..degree {
                    let ch = (start + off) % degree;
                    if view.channel_len(node, ch) > 0 {
                        self.victim_channel_cursor = (ch + 1) % degree;
                        return Activation::Deliver { node, channel: ch };
                    }
                }
                return Activation::Tick { node };
            }
            // Otherwise schedule a non-victim (fall back to any node if everyone is a victim).
            loop {
                let act = self.inner.next_activation(view);
                let node = match act {
                    Activation::Deliver { node, .. } | Activation::Tick { node } => node,
                };
                if !self.victims.contains(&node) || self.victims.len() == view.num_nodes() {
                    return act;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fake network view with controllable channel contents; uses the scan-based
    /// [`EnabledView`] defaults, so it also exercises those.
    struct FakeView {
        degrees: Vec<usize>,
        lens: Vec<Vec<usize>>,
        now: u64,
    }

    impl NetworkView for FakeView {
        fn num_nodes(&self) -> usize {
            self.degrees.len()
        }
        fn degree(&self, node: NodeId) -> usize {
            self.degrees[node]
        }
        fn channel_len(&self, node: NodeId, label: ChannelLabel) -> usize {
            self.lens[node][label]
        }
        fn now(&self) -> u64 {
            self.now
        }
    }

    impl EnabledView for FakeView {}

    fn view() -> FakeView {
        FakeView {
            degrees: vec![2, 3, 1],
            lens: vec![vec![0, 2], vec![0, 0, 0], vec![5]],
            now: 0,
        }
    }

    #[test]
    fn round_robin_cycles_all_nodes() {
        let v = view();
        let mut s = RoundRobin::new();
        let mut nodes_seen = vec![0u32; 3];
        for _ in 0..9 {
            let act = s.next_activation(&v);
            let node = match act {
                Activation::Deliver { node, .. } | Activation::Tick { node } => node,
            };
            nodes_seen[node] += 1;
        }
        assert_eq!(nodes_seen, vec![3, 3, 3]);
    }

    #[test]
    fn round_robin_prefers_non_empty_channels() {
        let v = view();
        let mut s = RoundRobin::new();
        let a0 = s.next_activation(&v);
        assert_eq!(a0, Activation::Deliver { node: 0, channel: 1 });
        let a1 = s.next_activation(&v);
        assert_eq!(a1, Activation::Tick { node: 1 });
        let a2 = s.next_activation(&v);
        assert_eq!(a2, Activation::Deliver { node: 2, channel: 0 });
    }

    #[test]
    fn random_fair_touches_every_node() {
        let v = view();
        let mut s = RandomFair::new(42);
        let mut seen = [false; 3];
        for _ in 0..200 {
            let act = s.next_activation(&v);
            let node = match act {
                Activation::Deliver { node, .. } | Activation::Tick { node } => node,
            };
            seen[node] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_fair_is_deterministic_per_seed() {
        let v = view();
        let mut a = RandomFair::new(7);
        let mut b = RandomFair::new(7);
        for _ in 0..50 {
            assert_eq!(a.next_activation(&v), b.next_activation(&v));
        }
    }

    #[test]
    fn adversarial_starves_victims_but_not_forever() {
        let v = view();
        let mut s = Adversarial::new(vec![2], 10);
        let mut victim_activations = 0;
        for _ in 0..100 {
            let act = s.next_activation(&v);
            let node = match act {
                Activation::Deliver { node, .. } | Activation::Tick { node } => node,
            };
            if node == 2 {
                victim_activations += 1;
            }
        }
        assert_eq!(victim_activations, 10, "victim activated exactly once per patience window");
    }

    #[test]
    fn adversarial_with_all_victims_still_schedules() {
        let v = view();
        let mut s = Adversarial::new(vec![0, 1, 2], 3);
        for _ in 0..30 {
            let _ = s.next_activation(&v);
        }
    }

    #[test]
    fn synchronous_round_uses_boundary_snapshot() {
        let v = view();
        let mut s = Synchronous::new();
        // Round 1: node 0 delivers from channel 1, node 1 ticks, node 2 delivers.
        assert_eq!(s.next_activation(&v), Activation::Deliver { node: 0, channel: 1 });
        assert_eq!(s.next_activation(&v), Activation::Tick { node: 1 });
        assert_eq!(s.next_activation(&v), Activation::Deliver { node: 2, channel: 0 });
        // Round 2 re-snapshots (the fake view is static, so the same decisions repeat).
        assert_eq!(s.next_activation(&v), Activation::Deliver { node: 0, channel: 1 });
    }

    /// Every event-driven daemon agrees with its scan-based reference on the same static
    /// view (a cheap equivalence smoke; the full suite drives real networks).
    #[test]
    fn event_daemons_match_baseline_on_fake_view() {
        let v = view();
        let mut pairs: Vec<(Box<dyn Scheduler>, Box<dyn Scheduler>)> = vec![
            (Box::new(RoundRobin::new()), Box::new(baseline::RoundRobin::new())),
            (Box::new(RandomFair::new(11)), Box::new(baseline::RandomFair::new(11))),
            (Box::new(Synchronous::new()), Box::new(baseline::Synchronous::new())),
            (
                Box::new(Adversarial::new(vec![1], 4)),
                Box::new(baseline::Adversarial::new(vec![1], 4)),
            ),
        ];
        for (event, reference) in pairs.iter_mut() {
            for _ in 0..120 {
                assert_eq!(event.next_activation(&v), reference.next_activation(&v));
            }
        }
    }
}
