//! Schedulers: fair and adversarial activation orders.
//!
//! The paper assumes executions that are *asynchronous but fair*: every process takes
//! infinitely many steps, with unbounded (finite) delays between them.  A [`Scheduler`]
//! chooses, at each simulation step, which process is activated and whether it consumes a
//! message or only runs its bottom-of-loop actions.
//!
//! * [`RoundRobin`] — a deterministic fair scheduler; each node is activated in turn and
//!   serves its channels cyclically.  Closest to a synchronous daemon; useful for
//!   reproducible unit tests.
//! * [`RandomFair`] — a seeded random scheduler; activations are drawn uniformly among all
//!   nodes, delivering from a uniformly chosen non-empty channel when one exists.  Fair with
//!   probability 1, and a good model of an arbitrary asynchronous execution.
//! * [`Adversarial`] — delays a designated set of *victim* nodes as long as the fairness
//!   bound allows (they are only activated once every `patience` steps); used to stress
//!   worst-case waiting times (Theorem 2).

use crate::network::NetworkView;
use crate::{ChannelLabel, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One scheduling decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    /// Deliver the head message of `node`'s incoming channel `channel` (if the channel is
    /// empty, the activation degrades to a tick).
    Deliver {
        /// The destination process.
        node: NodeId,
        /// The incoming channel to read.
        channel: ChannelLabel,
    },
    /// Activate `node` without delivering a message (bottom-of-loop actions only).
    Tick {
        /// The activated process.
        node: NodeId,
    },
}

/// Chooses the next activation based on the observable network shape.
pub trait Scheduler {
    /// Returns the next activation to execute.
    fn next_activation(&mut self, view: &dyn NetworkView) -> Activation;
}

/// Deterministic fair scheduler: nodes are activated cyclically; each node serves its incoming
/// channels in round-robin order, interleaved with ticks.
#[derive(Clone, Debug, Default)]
pub struct RoundRobin {
    cursor: usize,
    channel_cursor: Vec<usize>,
}

impl RoundRobin {
    /// Creates a round-robin scheduler.
    pub fn new() -> Self {
        RoundRobin::default()
    }
}

impl Scheduler for RoundRobin {
    fn next_activation(&mut self, view: &dyn NetworkView) -> Activation {
        let n = view.num_nodes();
        if self.channel_cursor.len() != n {
            self.channel_cursor = vec![0; n];
        }
        let node = self.cursor % n;
        self.cursor = (self.cursor + 1) % n;
        let degree = view.degree(node);
        if degree == 0 {
            return Activation::Tick { node };
        }
        // Serve the next non-empty channel after the cursor, if any; otherwise tick.
        let start = self.channel_cursor[node];
        for off in 0..degree {
            let ch = (start + off) % degree;
            if view.channel_len(node, ch) > 0 {
                self.channel_cursor[node] = (ch + 1) % degree;
                return Activation::Deliver { node, channel: ch };
            }
        }
        Activation::Tick { node }
    }
}

/// Seeded random fair scheduler.
///
/// Each step activates a uniformly random node.  With probability `deliver_bias` (default
/// 0.75) it delivers from a uniformly chosen non-empty incoming channel of that node (if any);
/// otherwise the node just ticks.  Every node is activated infinitely often with probability
/// 1, satisfying the paper's fairness assumption.
#[derive(Clone, Debug)]
pub struct RandomFair {
    rng: StdRng,
    deliver_bias: f64,
}

impl RandomFair {
    /// Creates a random scheduler from a seed.
    pub fn new(seed: u64) -> Self {
        RandomFair { rng: StdRng::seed_from_u64(seed), deliver_bias: 0.75 }
    }

    /// Overrides the probability of preferring a delivery over a tick when messages are
    /// available (clamped to `[0, 1]`).
    pub fn with_deliver_bias(mut self, bias: f64) -> Self {
        self.deliver_bias = bias.clamp(0.0, 1.0);
        self
    }
}

impl Scheduler for RandomFair {
    fn next_activation(&mut self, view: &dyn NetworkView) -> Activation {
        let n = view.num_nodes();
        let node = self.rng.gen_range(0..n);
        let degree = view.degree(node);
        let non_empty: Vec<ChannelLabel> =
            (0..degree).filter(|&c| view.channel_len(node, c) > 0).collect();
        if !non_empty.is_empty() && self.rng.gen_bool(self.deliver_bias) {
            let channel = non_empty[self.rng.gen_range(0..non_empty.len())];
            Activation::Deliver { node, channel }
        } else {
            Activation::Tick { node }
        }
    }
}

/// A bounded-unfairness scheduler used to stress waiting times.
///
/// The designated `victims` are starved of activations: they are only activated once every
/// `patience` scheduler decisions; all other decisions go (round-robin) to the non-victims.
/// Because victims are still activated infinitely often, the execution remains fair in the
/// paper's sense, but it approximates the worst case used in the waiting-time analysis, where
/// all other processes move as often as possible between two steps of the victim.
#[derive(Clone, Debug)]
pub struct Adversarial {
    victims: Vec<NodeId>,
    patience: u64,
    counter: u64,
    inner: RoundRobin,
    victim_cursor: usize,
    victim_channel_cursor: usize,
}

impl Adversarial {
    /// Creates an adversarial scheduler that activates each of `victims` only once every
    /// `patience` steps (`patience >= 1`).
    pub fn new(victims: Vec<NodeId>, patience: u64) -> Self {
        Adversarial {
            victims,
            patience: patience.max(1),
            counter: 0,
            inner: RoundRobin::new(),
            victim_cursor: 0,
            victim_channel_cursor: 0,
        }
    }
}

impl Scheduler for Adversarial {
    fn next_activation(&mut self, view: &dyn NetworkView) -> Activation {
        self.counter += 1;
        if !self.victims.is_empty() && self.counter.is_multiple_of(self.patience) {
            let node = self.victims[self.victim_cursor % self.victims.len()];
            self.victim_cursor += 1;
            let degree = view.degree(node);
            if degree == 0 {
                return Activation::Tick { node };
            }
            let start = self.victim_channel_cursor;
            for off in 0..degree {
                let ch = (start + off) % degree;
                if view.channel_len(node, ch) > 0 {
                    self.victim_channel_cursor = (ch + 1) % degree;
                    return Activation::Deliver { node, channel: ch };
                }
            }
            return Activation::Tick { node };
        }
        // Otherwise schedule a non-victim (fall back to any node if everyone is a victim).
        loop {
            let act = self.inner.next_activation(view);
            let node = match act {
                Activation::Deliver { node, .. } | Activation::Tick { node } => node,
            };
            if !self.victims.contains(&node) || self.victims.len() == view.num_nodes() {
                return act;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fake network view with controllable channel contents.
    struct FakeView {
        degrees: Vec<usize>,
        lens: Vec<Vec<usize>>,
        now: u64,
    }

    impl NetworkView for FakeView {
        fn num_nodes(&self) -> usize {
            self.degrees.len()
        }
        fn degree(&self, node: NodeId) -> usize {
            self.degrees[node]
        }
        fn channel_len(&self, node: NodeId, label: ChannelLabel) -> usize {
            self.lens[node][label]
        }
        fn now(&self) -> u64 {
            self.now
        }
    }

    fn view() -> FakeView {
        FakeView {
            degrees: vec![2, 3, 1],
            lens: vec![vec![0, 2], vec![0, 0, 0], vec![5]],
            now: 0,
        }
    }

    #[test]
    fn round_robin_cycles_all_nodes() {
        let v = view();
        let mut s = RoundRobin::new();
        let mut nodes_seen = vec![0u32; 3];
        for _ in 0..9 {
            let act = s.next_activation(&v);
            let node = match act {
                Activation::Deliver { node, .. } | Activation::Tick { node } => node,
            };
            nodes_seen[node] += 1;
        }
        assert_eq!(nodes_seen, vec![3, 3, 3]);
    }

    #[test]
    fn round_robin_prefers_non_empty_channels() {
        let v = view();
        let mut s = RoundRobin::new();
        let a0 = s.next_activation(&v);
        assert_eq!(a0, Activation::Deliver { node: 0, channel: 1 });
        let a1 = s.next_activation(&v);
        assert_eq!(a1, Activation::Tick { node: 1 });
        let a2 = s.next_activation(&v);
        assert_eq!(a2, Activation::Deliver { node: 2, channel: 0 });
    }

    #[test]
    fn random_fair_touches_every_node() {
        let v = view();
        let mut s = RandomFair::new(42);
        let mut seen = [false; 3];
        for _ in 0..200 {
            let act = s.next_activation(&v);
            let node = match act {
                Activation::Deliver { node, .. } | Activation::Tick { node } => node,
            };
            seen[node] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_fair_is_deterministic_per_seed() {
        let v = view();
        let mut a = RandomFair::new(7);
        let mut b = RandomFair::new(7);
        for _ in 0..50 {
            assert_eq!(a.next_activation(&v), b.next_activation(&v));
        }
    }

    #[test]
    fn adversarial_starves_victims_but_not_forever() {
        let v = view();
        let mut s = Adversarial::new(vec![2], 10);
        let mut victim_activations = 0;
        for _ in 0..100 {
            let act = s.next_activation(&v);
            let node = match act {
                Activation::Deliver { node, .. } | Activation::Tick { node } => node,
            };
            if node == 2 {
                victim_activations += 1;
            }
        }
        assert_eq!(victim_activations, 10, "victim activated exactly once per patience window");
    }

    #[test]
    fn adversarial_with_all_victims_still_schedules() {
        let v = view();
        let mut s = Adversarial::new(vec![0, 1, 2], 3);
        for _ in 0..30 {
            let _ = s.next_activation(&v);
        }
    }
}
