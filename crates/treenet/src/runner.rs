//! Convenience run loops: run for a fixed horizon, until a predicate holds, or to quiescence.
//!
//! These loops drive any [`Scheduler`] through the dynamically dispatched path; with the
//! (default) event-driven daemons each scheduling decision is still O(1) against the
//! maintained enabled set.  For long unconditional runs the fused loop [`crate::engine::run`]
//! is faster still (no virtual dispatch at all) and produces the identical execution.
//! [`run_until_quiescent`] relies on [`crate::Network::in_flight`], which the enabled set
//! maintains in O(1) — quiescence detection adds nothing to the per-step cost.
//!
//! Experiments that repeat a run over many seeds should not rebuild the network per trial:
//! [`crate::Network::reset_trial`] (re-initialize processes in place) and
//! [`crate::Network::reset_from`] (clone a pristine template) return a run-worn network to
//! its boot state while reusing every allocation — channel buffers, enabled-set arrays,
//! trace and metric vectors — which is the multi-trial fast path used by the experiment
//! harness.

use crate::network::Network;
use crate::process::Process;
use crate::scheduler::Scheduler;
use topology::Topology;

/// Why a bounded run stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// The stop predicate became true at the reported logical time.
    Satisfied(u64),
    /// The step budget was exhausted before the predicate held; carries the logical time at
    /// which the budget ran out, so callers can report *when* they gave up.
    Exhausted(u64),
    /// The network became quiescent (no message in flight) at the reported logical time.
    Quiescent(u64),
}

impl RunOutcome {
    /// The logical time at which the run stopped for a definite reason (the predicate held or
    /// the network went quiescent); `None` when the budget merely ran out.
    pub fn time(&self) -> Option<u64> {
        match self {
            RunOutcome::Satisfied(t) | RunOutcome::Quiescent(t) => Some(*t),
            RunOutcome::Exhausted(_) => None,
        }
    }

    /// The logical time at which the run stopped, for *any* reason — including budget
    /// exhaustion.
    pub fn at(&self) -> u64 {
        match self {
            RunOutcome::Satisfied(t) | RunOutcome::Quiescent(t) | RunOutcome::Exhausted(t) => *t,
        }
    }

    /// True when the predicate was satisfied.
    pub fn is_satisfied(&self) -> bool {
        matches!(self, RunOutcome::Satisfied(_))
    }

    /// True when the step budget ran out before the run stopped for a definite reason.
    pub fn is_exhausted(&self) -> bool {
        matches!(self, RunOutcome::Exhausted(_))
    }
}

/// Runs exactly `steps` activations.
pub fn run_for<P: Process, T: Topology>(
    net: &mut Network<P, T>,
    scheduler: &mut impl Scheduler,
    steps: u64,
) {
    for _ in 0..steps {
        net.step(scheduler);
    }
}

/// Runs until `pred(net)` holds (checked after every activation) or `max_steps` activations
/// have been executed.
pub fn run_until<P: Process, T: Topology>(
    net: &mut Network<P, T>,
    scheduler: &mut impl Scheduler,
    max_steps: u64,
    mut pred: impl FnMut(&Network<P, T>) -> bool,
) -> RunOutcome {
    if pred(net) {
        return RunOutcome::Satisfied(net.now());
    }
    for _ in 0..max_steps {
        net.step(scheduler);
        if pred(net) {
            return RunOutcome::Satisfied(net.now());
        }
    }
    RunOutcome::Exhausted(net.now())
}

/// Runs until no message is in flight for a full sweep of `grace` consecutive activations
/// (i.e. the network is quiescent: nothing will ever change again unless a process
/// spontaneously sends), or until `max_steps` is exhausted.
///
/// A protocol with a root timeout is never truly quiescent; this helper is meant for the
/// *non*-self-stabilizing protocol variants, where quiescence with unsatisfied requests is
/// exactly the deadlock illustrated in Figure 2 of the paper.
pub fn run_until_quiescent<P: Process, T: Topology>(
    net: &mut Network<P, T>,
    scheduler: &mut impl Scheduler,
    max_steps: u64,
    grace: u64,
) -> RunOutcome {
    let mut quiet_for = 0u64;
    for _ in 0..max_steps {
        if net.in_flight() == 0 {
            quiet_for += 1;
            if quiet_for >= grace {
                return RunOutcome::Quiescent(net.now());
            }
        } else {
            quiet_for = 0;
        }
        net.step(scheduler);
    }
    if net.in_flight() == 0 {
        RunOutcome::Quiescent(net.now())
    } else {
        RunOutcome::Exhausted(net.now())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::{Context, MessageKind};
    use crate::scheduler::RoundRobin;
    use crate::ChannelLabel;
    use topology::builders;

    #[derive(Clone, Debug)]
    struct Ping;
    impl MessageKind for Ping {
        fn kind(&self) -> &'static str {
            "ping"
        }
    }

    /// Root sends a bounded number of pings down; everyone forwards until they die out at
    /// leaves (leaf swallows them), so the network eventually becomes quiescent.
    struct Limited {
        is_root: bool,
        to_send: u32,
        seen: u32,
    }
    impl Process for Limited {
        type Msg = Ping;
        fn on_message(&mut self, from: ChannelLabel, _m: Ping, ctx: &mut Context<'_, Ping>) {
            self.seen += 1;
            // Forward towards children only (never back to channel 0 unless root).
            if ctx.degree > 1 || self.is_root {
                let next = (from + 1) % ctx.degree;
                if next != 0 || self.is_root {
                    ctx.send(next, Ping);
                }
            }
        }
        fn on_tick(&mut self, ctx: &mut Context<'_, Ping>) {
            if self.is_root && self.to_send > 0 {
                self.to_send -= 1;
                ctx.send(0, Ping);
            }
        }
    }

    fn net() -> crate::network::Network<Limited, topology::OrientedTree> {
        crate::network::Network::new(builders::chain(5), |id| Limited {
            is_root: id == 0,
            to_send: 3,
            seen: 0,
        })
    }

    #[test]
    fn run_for_advances_the_clock() {
        let mut n = net();
        let mut s = RoundRobin::new();
        run_for(&mut n, &mut s, 42);
        assert_eq!(n.now(), 42);
    }

    #[test]
    fn run_until_detects_predicate() {
        let mut n = net();
        let mut s = RoundRobin::new();
        let out = run_until(&mut n, &mut s, 10_000, |net| net.node(1).seen >= 3);
        assert!(out.is_satisfied());
        assert!(out.time().unwrap() > 0);
    }

    #[test]
    fn run_until_gives_up_after_budget() {
        let mut n = net();
        let mut s = RoundRobin::new();
        let out = run_until(&mut n, &mut s, 50, |net| net.node(4).seen >= 100);
        assert_eq!(out, RunOutcome::Exhausted(50));
        assert_eq!(out.time(), None);
        assert_eq!(out.at(), 50);
        assert!(out.is_exhausted());
    }

    #[test]
    fn run_until_quiescent_terminates_on_dead_network() {
        let mut n = net();
        let mut s = RoundRobin::new();
        let out = run_until_quiescent(&mut n, &mut s, 100_000, 20);
        assert!(matches!(out, RunOutcome::Quiescent(_)));
        assert_eq!(n.in_flight(), 0);
    }

    #[test]
    fn predicate_checked_before_first_step() {
        let mut n = net();
        let mut s = RoundRobin::new();
        let out = run_until(&mut n, &mut s, 10, |_| true);
        assert_eq!(out, RunOutcome::Satisfied(0));
    }
}
