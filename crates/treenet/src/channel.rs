//! Reliable FIFO channels with an inline fast path.
//!
//! # Storage
//!
//! The token census of the protocols this simulator runs is tiny: in a legitimate
//! configuration the whole network holds exactly `(ℓ, 1, 1)` tokens, so the overwhelming
//! majority of links carry **at most two** in-flight messages at any instant.  [`Channel`]
//! therefore keeps its first [`INLINE_CAPACITY`] messages in an inline ring buffer embedded
//! in the channel itself; only deeper backlogs spill into a heap-allocated `VecDeque`.
//! Steady-state stepping — push one token, pop one token — touches no heap memory at all,
//! and once a spill deque has been allocated its capacity is retained, so even bursty links
//! stop allocating after their first burst.
//!
//! # Counter semantics
//!
//! The channel keeps three monotonic counters so the metrics layer can report link
//! utilisation, with fault injection (message loss) accounted separately from delivery.
//! Every mutation path touches exactly the counters listed here:
//!
//! | mutation | models | `enqueued` | `delivered` | `lost` | queue length |
//! |---|---|---|---|---|---|
//! | [`push`](Channel::push) | a process sending | +1 | — | — | +1 |
//! | [`insert`](Channel::insert) | a faulty initial configuration / duplication | +1 | — | — | +1 |
//! | [`pop`](Channel::pop) (hit) | a delivery activation | — | +1 | — | −1 |
//! | [`remove`](Channel::remove) (hit) | fault-injected loss of one message | — | — | +1 | −1 |
//! | [`clear`](Channel::clear) | fault-injected loss of the whole queue | — | — | +len | −len |
//! | [`unpush`](Channel::unpush) (hit) | undo of the most recent `push` | −1 | — | — | −1 |
//! | [`unpop`](Channel::unpop) | undo of the most recent `pop` | — | −1 | — | +1 |
//! | [`reset`](Channel::reset) | a fresh trial reusing this allocation | =0 | =0 | =0 | =0 |
//!
//! The table implies the conservation law checked by this module's tests — at every instant
//!
//! > `enqueued == delivered + lost + len()`
//!
//! which is what makes the counters trustworthy for utilisation metrics: a message is
//! *either* still in flight, *or* was delivered to the process, *or* was lost to a fault.
//! (`unpush`/`unpop` are the exact inverses used by the exhaustive checker's undo log — see
//! `Network::execute_undoable` — and keep the law intact by reversing the original
//! counter movement rather than inventing a new one.)

use std::collections::VecDeque;

/// Number of messages stored inline before a channel spills to the heap.
///
/// Chosen from the census `(ℓ, 1, 1)`: with the paper's token counts, links hold ≤ 2
/// messages in every legitimate configuration, and 4 covers the transient bursts of the
/// bootstrap and fault-recovery phases in almost all executions.
pub const INLINE_CAPACITY: usize = 4;

/// A reliable FIFO channel: the incoming message queue of one directed link.
///
/// Channels never lose or reorder messages once the system is past its (possibly faulty)
/// initial configuration, matching the paper's link assumptions.  See the
/// [module docs](self) for the storage layout and the exact counter semantics of every
/// mutation path.
#[derive(Clone, Debug)]
pub struct Channel<M> {
    /// Inline ring: the queue's first `inline_len` messages live at
    /// `inline[(head + i) % INLINE_CAPACITY]`, *before* everything in `spill`.
    inline: [Option<M>; INLINE_CAPACITY],
    head: usize,
    inline_len: usize,
    /// Overflow storage; messages here come after every inline message.
    spill: VecDeque<M>,
    delivered: u64,
    enqueued: u64,
    lost: u64,
}

impl<M> Default for Channel<M> {
    fn default() -> Self {
        Channel::new()
    }
}

impl<M> Channel<M> {
    /// Creates an empty channel.
    pub fn new() -> Self {
        Channel {
            inline: std::array::from_fn(|_| None),
            head: 0,
            inline_len: 0,
            spill: VecDeque::new(),
            delivered: 0,
            enqueued: 0,
            lost: 0,
        }
    }

    #[inline]
    fn slot(&self, i: usize) -> usize {
        (self.head + i) % INLINE_CAPACITY
    }

    /// Appends a message at the tail of the channel (`enqueued += 1`).
    #[inline]
    pub fn push(&mut self, msg: M) {
        self.enqueued += 1;
        self.push_raw(msg);
    }

    /// Tail-append storage step shared by [`push`](Channel::push) and the tail case of
    /// [`insert`](Channel::insert); touches no counter.
    #[inline]
    fn push_raw(&mut self, msg: M) {
        if self.inline_len < INLINE_CAPACITY && self.spill.is_empty() {
            let at = self.slot(self.inline_len);
            self.inline[at] = Some(msg);
            self.inline_len += 1;
        } else {
            self.spill.push_back(msg);
        }
    }

    /// Removes and returns the head message, if any (`delivered += 1` on a hit).
    #[inline]
    pub fn pop(&mut self) -> Option<M> {
        if self.inline_len > 0 {
            let msg = self.inline[self.head].take();
            debug_assert!(msg.is_some(), "inline slots within inline_len are occupied");
            self.head = (self.head + 1) % INLINE_CAPACITY;
            self.inline_len -= 1;
            if self.inline_len == 0 {
                self.head = 0;
            }
            self.delivered += 1;
            msg
        } else {
            let msg = self.spill.pop_front();
            if msg.is_some() {
                self.delivered += 1;
            }
            msg
        }
    }

    /// Removes and returns the **tail** message, reversing the counter movement of the
    /// [`push`](Channel::push) that appended it (`enqueued -= 1` on a hit).
    ///
    /// This is the undo-log inverse of `push`: a `push` followed by `unpush` leaves the
    /// channel — contents *and* counters — exactly as it was.
    pub fn unpush(&mut self) -> Option<M> {
        let msg = if let Some(msg) = self.spill.pop_back() {
            Some(msg)
        } else if self.inline_len > 0 {
            let at = self.slot(self.inline_len - 1);
            let msg = self.inline[at].take();
            self.inline_len -= 1;
            if self.inline_len == 0 {
                self.head = 0;
            }
            msg
        } else {
            None
        };
        if msg.is_some() {
            self.enqueued -= 1;
        }
        msg
    }

    /// Puts `msg` back at the **head** of the channel, reversing the counter movement of the
    /// [`pop`](Channel::pop) that removed it (`delivered -= 1`).
    ///
    /// This is the undo-log inverse of `pop`: popping a message and `unpop`ping it leaves
    /// the channel — contents *and* counters — exactly as it was.
    pub fn unpop(&mut self, msg: M) {
        self.delivered -= 1;
        if self.inline_len > 0 || self.spill.is_empty() {
            if self.inline_len == INLINE_CAPACITY {
                // Inline ring is full: displace its tail into the spill front to keep the
                // "inline before spill" order.
                let at = self.slot(INLINE_CAPACITY - 1);
                let tail = self.inline[at].take().expect("full ring has a tail");
                self.spill.push_front(tail);
                self.inline_len -= 1;
            }
            self.head = (self.head + INLINE_CAPACITY - 1) % INLINE_CAPACITY;
            self.inline[self.head] = Some(msg);
            self.inline_len += 1;
        } else {
            self.spill.push_front(msg);
        }
    }

    /// Number of messages currently in flight on this channel.
    #[inline]
    pub fn len(&self) -> usize {
        self.inline_len + self.spill.len()
    }

    /// True when no message is in flight.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.inline_len == 0 && self.spill.is_empty()
    }

    /// Iterates over the in-flight messages from head to tail without removing them.
    pub fn iter(&self) -> impl Iterator<Item = &M> {
        (0..self.inline_len)
            .map(|i| self.inline[self.slot(i)].as_ref().expect("occupied inline slot"))
            .chain(self.spill.iter())
    }

    /// Removes every in-flight message, counting each as fault-injected loss
    /// (`lost += len()`).  Spill capacity is retained.
    pub fn clear(&mut self) {
        self.lost += self.len() as u64;
        self.drop_contents();
    }

    /// Empties the channel and zeroes all counters, retaining the spill allocation: the
    /// trial-reuse reset (a freshly built channel, minus the allocator traffic).
    pub fn reset(&mut self) {
        self.drop_contents();
        self.delivered = 0;
        self.enqueued = 0;
        self.lost = 0;
    }

    fn drop_contents(&mut self) {
        for slot in &mut self.inline {
            *slot = None;
        }
        self.head = 0;
        self.inline_len = 0;
        self.spill.clear();
    }

    /// Removes the message at `index` (0 = head), returning it; counts a hit as
    /// fault-injected loss (`lost += 1`).  Used by fault injection to model message loss in
    /// the faulty initial configuration.
    pub fn remove(&mut self, index: usize) -> Option<M> {
        let msg = if index < self.inline_len {
            let removed = self.inline[self.slot(index)].take();
            for i in index..self.inline_len - 1 {
                self.inline[self.slot(i)] = self.inline[self.slot(i + 1)].take();
            }
            self.inline_len -= 1;
            if self.inline_len == 0 {
                self.head = 0;
            }
            removed
        } else {
            self.spill.remove(index - self.inline_len)
        };
        if msg.is_some() {
            self.lost += 1;
        }
        msg
    }

    /// Inserts a message at `index` (0 = head), counting it as enqueued traffic
    /// (`enqueued += 1`).  Used by fault injection to model arbitrary initial channel
    /// contents and duplications.
    ///
    /// # Panics
    ///
    /// Panics if `index > len()`.
    pub fn insert(&mut self, index: usize, msg: M) {
        assert!(index <= self.len(), "insert index {index} out of bounds");
        self.enqueued += 1;
        if index == self.len() {
            // Exact-tail insert is a plain append — in particular when the inline ring is
            // full and the spill is empty, the message belongs at the spill front, not in
            // the ring.
            self.push_raw(msg);
        } else if index < self.inline_len {
            if self.inline_len == INLINE_CAPACITY {
                let at = self.slot(INLINE_CAPACITY - 1);
                let tail = self.inline[at].take().expect("full ring has a tail");
                self.spill.push_front(tail);
                self.inline_len -= 1;
            }
            for i in (index..self.inline_len).rev() {
                self.inline[self.slot(i + 1)] = self.inline[self.slot(i)].take();
            }
            self.inline[self.slot(index)] = Some(msg);
            self.inline_len += 1;
        } else {
            self.spill.insert(index - self.inline_len, msg);
        }
    }

    /// Total number of messages ever delivered (popped) from this channel.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Total number of messages ever enqueued (pushed or fault-inserted) on this channel.
    pub fn enqueued(&self) -> u64 {
        self.enqueued
    }

    /// Total number of messages removed by fault injection (`clear`/`remove`) rather than
    /// delivered.
    pub fn lost(&self) -> u64 {
        self.lost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn law<M>(ch: &Channel<M>) {
        assert_eq!(
            ch.enqueued(),
            ch.delivered() + ch.lost() + ch.len() as u64,
            "conservation law: enqueued == delivered + lost + len"
        );
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut ch = Channel::new();
        ch.push(1);
        ch.push(2);
        ch.push(3);
        assert_eq!(ch.pop(), Some(1));
        assert_eq!(ch.pop(), Some(2));
        assert_eq!(ch.pop(), Some(3));
        assert_eq!(ch.pop(), None);
        law(&ch);
    }

    #[test]
    fn fifo_order_survives_spilling_past_the_inline_capacity() {
        let mut ch = Channel::new();
        for i in 0..3 * INLINE_CAPACITY {
            ch.push(i);
        }
        law(&ch);
        assert_eq!(ch.len(), 3 * INLINE_CAPACITY);
        assert_eq!(ch.iter().copied().collect::<Vec<_>>(), (0..3 * INLINE_CAPACITY).collect::<Vec<_>>());
        for i in 0..3 * INLINE_CAPACITY {
            assert_eq!(ch.pop(), Some(i));
        }
        assert!(ch.is_empty());
        law(&ch);
    }

    #[test]
    fn interleaved_push_pop_crosses_the_spill_boundary_in_order() {
        // Drive the queue length up and down across INLINE_CAPACITY repeatedly; the popped
        // sequence must stay 0, 1, 2, ...
        let mut ch = Channel::new();
        let mut next_push = 0u32;
        let mut next_pop = 0u32;
        for (grow, shrink) in [(6, 3), (5, 7), (9, 10)] {
            for _ in 0..grow {
                ch.push(next_push);
                next_push += 1;
            }
            for _ in 0..shrink {
                assert_eq!(ch.pop(), Some(next_pop));
                next_pop += 1;
            }
            law(&ch);
        }
        assert!(ch.is_empty());
    }

    #[test]
    fn counters_track_traffic() {
        let mut ch = Channel::new();
        assert!(ch.is_empty());
        ch.push("a");
        ch.push("b");
        assert_eq!(ch.len(), 2);
        assert_eq!(ch.enqueued(), 2);
        ch.pop();
        assert_eq!(ch.delivered(), 1);
        assert_eq!(ch.len(), 1);
        assert_eq!(ch.lost(), 0);
        law(&ch);
    }

    #[test]
    fn each_mutation_path_touches_exactly_its_documented_counters() {
        let mut ch = Channel::new();
        ch.push(1); // enqueued 1
        ch.insert(0, 0); // enqueued 2
        assert_eq!((ch.enqueued(), ch.delivered(), ch.lost()), (2, 0, 0));
        assert_eq!(ch.pop(), Some(0)); // delivered 1
        assert_eq!((ch.enqueued(), ch.delivered(), ch.lost()), (2, 1, 0));
        assert_eq!(ch.remove(0), Some(1)); // lost 1
        assert_eq!((ch.enqueued(), ch.delivered(), ch.lost()), (2, 1, 1));
        ch.push(7);
        ch.push(8);
        ch.clear(); // lost 3
        assert_eq!((ch.enqueued(), ch.delivered(), ch.lost()), (4, 1, 3));
        law(&ch);
    }

    #[test]
    fn unpush_and_unpop_are_exact_inverses() {
        let mut ch = Channel::new();
        for i in 0..6 {
            ch.push(i); // crosses the spill boundary
        }
        let before: Vec<i32> = ch.iter().copied().collect();
        let counters = (ch.enqueued(), ch.delivered(), ch.lost());

        ch.push(99);
        assert_eq!(ch.unpush(), Some(99));
        assert_eq!(ch.iter().copied().collect::<Vec<_>>(), before);
        assert_eq!((ch.enqueued(), ch.delivered(), ch.lost()), counters);

        let head = ch.pop().unwrap();
        ch.unpop(head);
        assert_eq!(ch.iter().copied().collect::<Vec<_>>(), before);
        assert_eq!((ch.enqueued(), ch.delivered(), ch.lost()), counters);
        law(&ch);

        // unpop onto a full inline ring displaces into the spill without reordering.
        let mut full = Channel::new();
        for i in 1..=INLINE_CAPACITY as i32 {
            full.push(i);
        }
        full.delivered = 1; // pretend 0 was popped earlier so unpop's decrement is in range
        full.enqueued += 1;
        full.unpop(0);
        assert_eq!(
            full.iter().copied().collect::<Vec<_>>(),
            (0..=INLINE_CAPACITY as i32).collect::<Vec<_>>()
        );
        law(&full);
    }

    #[test]
    fn unpush_drains_back_through_the_inline_ring() {
        let mut ch = Channel::new();
        for i in 0..6 {
            ch.push(i);
        }
        for expected in (0..6).rev() {
            assert_eq!(ch.unpush(), Some(expected));
            law(&ch);
        }
        assert_eq!(ch.unpush(), None);
        assert_eq!(ch.enqueued(), 0);
        assert!(ch.is_empty());
    }

    #[test]
    fn insert_and_remove_for_fault_injection() {
        let mut ch = Channel::new();
        ch.push(10);
        ch.push(30);
        ch.insert(1, 20);
        assert_eq!(ch.iter().copied().collect::<Vec<_>>(), vec![10, 20, 30]);
        assert_eq!(ch.remove(0), Some(10));
        assert_eq!(ch.remove(5), None);
        law(&ch);
        ch.clear();
        assert!(ch.is_empty());
        law(&ch);
    }

    #[test]
    fn insert_and_remove_work_across_the_spill_boundary() {
        let mut ch = Channel::new();
        for i in 0..7 {
            ch.push(i);
        }
        ch.insert(2, 100); // inline region
        ch.insert(6, 200); // spill region
        assert_eq!(
            ch.iter().copied().collect::<Vec<_>>(),
            vec![0, 1, 100, 2, 3, 4, 200, 5, 6]
        );
        law(&ch);
        assert_eq!(ch.remove(2), Some(100)); // inline region
        assert_eq!(ch.remove(5), Some(200)); // spill region
        assert_eq!(ch.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4, 5, 6]);
        law(&ch);
        // Inserting at the exact tail appends.
        ch.insert(7, 7);
        assert_eq!(ch.iter().copied().collect::<Vec<_>>(), (0..8).collect::<Vec<_>>());
        law(&ch);
    }

    #[test]
    fn insert_at_the_exact_tail_appends_at_every_fill_level() {
        // Regression: inserting at index == len() on a full inline ring with an empty spill
        // used to overwrite the head slot.  The tail insert must behave as a push at every
        // fill level, including exactly INLINE_CAPACITY (the FaultInjector picks positions
        // in 0..=len, so the boundary is reachable in production).
        for prefill in 0..3 * INLINE_CAPACITY {
            let mut ch = Channel::new();
            for i in 0..prefill {
                ch.push(i as i32);
            }
            ch.insert(prefill, 1000);
            law(&ch);
            let mut expected: Vec<i32> = (0..prefill as i32).collect();
            expected.push(1000);
            assert_eq!(ch.iter().copied().collect::<Vec<_>>(), expected, "prefill {prefill}");
            for want in expected {
                assert_eq!(ch.pop(), Some(want), "prefill {prefill}");
            }
            law(&ch);
        }
    }

    #[test]
    fn reset_empties_and_zeroes_counters() {
        let mut ch = Channel::new();
        for i in 0..9 {
            ch.push(i);
        }
        ch.pop();
        ch.remove(0);
        ch.reset();
        assert!(ch.is_empty());
        assert_eq!((ch.enqueued(), ch.delivered(), ch.lost()), (0, 0, 0));
        law(&ch);
        // The channel is fully usable after a reset.
        ch.push(1);
        assert_eq!(ch.pop(), Some(1));
        law(&ch);
    }
}
