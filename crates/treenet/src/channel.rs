//! Reliable FIFO channels.

use std::collections::VecDeque;

/// A reliable FIFO channel: the incoming message queue of one directed link.
///
/// Channels never lose or reorder messages once the system is past its (possibly faulty)
/// initial configuration, matching the paper's link assumptions.  The channel keeps simple
/// counters so the metrics layer can report link utilisation.
#[derive(Clone, Debug, Default)]
pub struct Channel<M> {
    queue: VecDeque<M>,
    delivered: u64,
    enqueued: u64,
}

impl<M> Channel<M> {
    /// Creates an empty channel.
    pub fn new() -> Self {
        Channel { queue: VecDeque::new(), delivered: 0, enqueued: 0 }
    }

    /// Appends a message at the tail of the channel.
    pub fn push(&mut self, msg: M) {
        self.enqueued += 1;
        self.queue.push_back(msg);
    }

    /// Removes and returns the head message, if any.
    pub fn pop(&mut self) -> Option<M> {
        let m = self.queue.pop_front();
        if m.is_some() {
            self.delivered += 1;
        }
        m
    }

    /// Number of messages currently in flight on this channel.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when no message is in flight.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Iterates over the in-flight messages from head to tail without removing them.
    pub fn iter(&self) -> impl Iterator<Item = &M> {
        self.queue.iter()
    }

    /// Removes every in-flight message (used by fault injection).
    pub fn clear(&mut self) {
        self.queue.clear();
    }

    /// Removes the message at `index` (0 = head), returning it. Used by fault injection to
    /// model message loss in the faulty initial configuration.
    pub fn remove(&mut self, index: usize) -> Option<M> {
        self.queue.remove(index)
    }

    /// Inserts a message at `index` (0 = head). Used by fault injection to model arbitrary
    /// initial channel contents and duplications.
    ///
    /// # Panics
    ///
    /// Panics if `index > len()`.
    pub fn insert(&mut self, index: usize, msg: M) {
        self.enqueued += 1;
        self.queue.insert(index, msg);
    }

    /// Total number of messages ever delivered (popped) from this channel.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Total number of messages ever enqueued on this channel.
    pub fn enqueued(&self) -> u64 {
        self.enqueued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_is_preserved() {
        let mut ch = Channel::new();
        ch.push(1);
        ch.push(2);
        ch.push(3);
        assert_eq!(ch.pop(), Some(1));
        assert_eq!(ch.pop(), Some(2));
        assert_eq!(ch.pop(), Some(3));
        assert_eq!(ch.pop(), None);
    }

    #[test]
    fn counters_track_traffic() {
        let mut ch = Channel::new();
        assert!(ch.is_empty());
        ch.push("a");
        ch.push("b");
        assert_eq!(ch.len(), 2);
        assert_eq!(ch.enqueued(), 2);
        ch.pop();
        assert_eq!(ch.delivered(), 1);
        assert_eq!(ch.len(), 1);
    }

    #[test]
    fn insert_and_remove_for_fault_injection() {
        let mut ch = Channel::new();
        ch.push(10);
        ch.push(30);
        ch.insert(1, 20);
        assert_eq!(ch.iter().copied().collect::<Vec<_>>(), vec![10, 20, 30]);
        assert_eq!(ch.remove(0), Some(10));
        assert_eq!(ch.remove(5), None);
        ch.clear();
        assert!(ch.is_empty());
    }
}
