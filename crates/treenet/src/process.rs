//! The process abstraction: local algorithms, their execution context, and emitted events.

use crate::{ChannelLabel, NodeId};
use serde::Serialize;

/// Classification of a message for metrics purposes.
///
/// The simulator is generic over the protocol's message type; implementing this trait lets
/// the metrics layer count messages per kind (resource token, pusher, control, ...) without
/// knowing the concrete type.
pub trait MessageKind {
    /// A short static name of the message kind, e.g. `"ResT"` or `"ctrl"`.
    fn kind(&self) -> &'static str;
}

/// A local algorithm executed by one process of the network.
///
/// A process reacts to two stimuli, mirroring the structure of the paper's
/// `repeat forever` loop:
///
/// * [`Process::on_message`] — one message has been received from one incident channel
///   (the body of the per-channel `if receive ⟨...⟩ from q` blocks);
/// * [`Process::on_tick`] — the bottom-of-loop actions (critical-section entry/exit, release
///   of a held priority token, the root's timeout), plus interaction with the application
///   (issuing new requests).
///
/// The simulator calls `on_tick` after every `on_message` and also on dedicated tick
/// activations, so the bottom-of-loop actions are evaluated at least as often as in the
/// paper's loop structure.
pub trait Process {
    /// The protocol's message type.
    type Msg: Clone + std::fmt::Debug + MessageKind;

    /// Handles one message received on channel `from`.
    fn on_message(&mut self, from: ChannelLabel, msg: Self::Msg, ctx: &mut Context<'_, Self::Msg>);

    /// Executes the bottom-of-loop actions.
    fn on_tick(&mut self, ctx: &mut Context<'_, Self::Msg>);
}

/// An application-level event emitted by a process, recorded in the execution trace.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub enum Event {
    /// The application switched `State` from `Out` to `Req`, asking for `units` resource units.
    RequestIssued {
        /// Number of resource units requested (1 ≤ units ≤ k).
        units: usize,
    },
    /// The protocol granted the request: `State` switched from `Req` to `In` (`EnterCS()`).
    EnterCs {
        /// Number of resource units held during this critical section.
        units: usize,
    },
    /// The application finished its critical section: `State` switched from `In` to `Out`.
    ExitCs {
        /// Number of resource units released.
        units: usize,
    },
    /// The protocol detected (or decided) something noteworthy, e.g. `"reset"` when the root
    /// starts a reset traversal, or `"circulation"` when the controller completes a traversal.
    Note(&'static str),
}

/// The execution context handed to a process during one activation.
///
/// It exposes the process identity and the only side effects a process may perform: sending
/// messages on its channels and emitting trace events.  Messages are buffered and delivered
/// by the network after the activation returns (send is non-blocking, as in the model).
pub struct Context<'a, M> {
    /// The identifier of the activated process.
    pub node: NodeId,
    /// Number of channels incident to the process (Δp).
    pub degree: usize,
    /// The global activation counter (logical time).
    pub now: u64,
    pub(crate) outbox: &'a mut Vec<(ChannelLabel, M)>,
    pub(crate) events: &'a mut Vec<Event>,
}

impl<'a, M> Context<'a, M> {
    /// Creates a context that is not attached to a network: sends land in `outbox`, events in
    /// `events`.  Useful for unit-testing process logic in isolation.
    pub fn detached(
        node: NodeId,
        degree: usize,
        now: u64,
        outbox: &'a mut Vec<(ChannelLabel, M)>,
        events: &'a mut Vec<Event>,
    ) -> Self {
        Context { node, degree, now, outbox, events }
    }

    /// Sends `msg` on the process's channel `label` (`0 ≤ label < degree`).
    ///
    /// # Panics
    ///
    /// Panics if `label` is out of range — a protocol bug, not a runtime condition.
    pub fn send(&mut self, label: ChannelLabel, msg: M) {
        assert!(
            label < self.degree,
            "process {} tried to send on channel {} but has degree {}",
            self.node,
            label,
            self.degree
        );
        self.outbox.push((label, msg));
    }

    /// Sends `msg` on channel `(label + 1) mod degree` — the DFS retransmission rule used by
    /// every token type in the paper.
    pub fn send_next(&mut self, label: ChannelLabel, msg: M) {
        let next = (label + 1) % self.degree.max(1);
        self.send(next, msg);
    }

    /// Records an application-level event in the execution trace.
    pub fn emit(&mut self, event: Event) {
        self.events.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug)]
    struct Dummy;
    impl MessageKind for Dummy {
        fn kind(&self) -> &'static str {
            "dummy"
        }
    }

    fn ctx<'a>(
        outbox: &'a mut Vec<(ChannelLabel, Dummy)>,
        events: &'a mut Vec<Event>,
    ) -> Context<'a, Dummy> {
        Context { node: 3, degree: 4, now: 17, outbox, events }
    }

    #[test]
    fn send_buffers_messages_in_order() {
        let mut outbox = Vec::new();
        let mut events = Vec::new();
        let mut c = ctx(&mut outbox, &mut events);
        c.send(0, Dummy);
        c.send(3, Dummy);
        assert_eq!(outbox.len(), 2);
        assert_eq!(outbox[0].0, 0);
        assert_eq!(outbox[1].0, 3);
    }

    #[test]
    fn send_next_wraps_around_degree() {
        let mut outbox = Vec::new();
        let mut events = Vec::new();
        let mut c = ctx(&mut outbox, &mut events);
        c.send_next(3, Dummy); // (3+1) % 4 == 0
        c.send_next(1, Dummy); // 2
        assert_eq!(outbox[0].0, 0);
        assert_eq!(outbox[1].0, 2);
    }

    #[test]
    #[should_panic(expected = "tried to send on channel")]
    fn send_rejects_out_of_range_label() {
        let mut outbox = Vec::new();
        let mut events = Vec::new();
        let mut c = ctx(&mut outbox, &mut events);
        c.send(4, Dummy);
    }

    #[test]
    fn emit_records_events() {
        let mut outbox = Vec::new();
        let mut events = Vec::new();
        let mut c = ctx(&mut outbox, &mut events);
        c.emit(Event::RequestIssued { units: 2 });
        c.emit(Event::EnterCs { units: 2 });
        assert_eq!(events.len(), 2);
        assert_eq!(events[0], Event::RequestIssued { units: 2 });
    }
}
