//! Execution traces: time-stamped application events used by the analysis crate.

use crate::process::Event;
use crate::NodeId;
use serde::Serialize;

/// One trace entry: an [`Event`] emitted by `node` at logical time `at`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct TracedEvent {
    /// The global activation counter when the event was emitted.
    pub at: u64,
    /// The process that emitted the event.
    pub node: NodeId,
    /// The event itself.
    pub event: Event,
}

/// An append-only log of application events for one execution.
#[derive(Clone, Debug, Default, Serialize)]
pub struct Trace {
    events: Vec<TracedEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace { events: Vec::new() }
    }

    /// Appends an event.
    pub fn push(&mut self, at: u64, node: NodeId, event: Event) {
        self.events.push(TracedEvent { at, node, event });
    }

    /// All events in emission order.
    pub fn events(&self) -> &[TracedEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no event has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Forgets all events recorded so far (e.g. to measure only the post-stabilization phase).
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Number of critical-section entries recorded, optionally restricted to one node.
    pub fn cs_entries(&self, node: Option<NodeId>) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.event, Event::EnterCs { .. }))
            .filter(|e| node.is_none_or(|n| e.node == n))
            .count()
    }

    /// Number of requests issued, optionally restricted to one node.
    pub fn requests(&self, node: Option<NodeId>) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.event, Event::RequestIssued { .. }))
            .filter(|e| node.is_none_or(|n| e.node == n))
            .count()
    }

    /// Events emitted by `node`, in order.
    pub fn of_node(&self, node: NodeId) -> impl Iterator<Item = &TracedEvent> {
        self.events.iter().filter(move |e| e.node == node)
    }

    /// Events within the half-open logical-time window `[from, to)`.
    pub fn in_window(&self, from: u64, to: u64) -> impl Iterator<Item = &TracedEvent> {
        self.events.iter().filter(move |e| e.at >= from && e.at < to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new();
        t.push(1, 0, Event::RequestIssued { units: 2 });
        t.push(5, 0, Event::EnterCs { units: 2 });
        t.push(9, 0, Event::ExitCs { units: 2 });
        t.push(3, 1, Event::RequestIssued { units: 1 });
        t.push(12, 1, Event::EnterCs { units: 1 });
        t
    }

    #[test]
    fn counts_entries_and_requests() {
        let t = sample();
        assert_eq!(t.len(), 5);
        assert_eq!(t.cs_entries(None), 2);
        assert_eq!(t.cs_entries(Some(0)), 1);
        assert_eq!(t.requests(None), 2);
        assert_eq!(t.requests(Some(1)), 1);
    }

    #[test]
    fn node_and_window_filters() {
        let t = sample();
        assert_eq!(t.of_node(1).count(), 2);
        assert_eq!(t.in_window(0, 6).count(), 3);
        assert_eq!(t.in_window(9, 13).count(), 2);
    }

    #[test]
    fn clear_empties_the_trace() {
        let mut t = sample();
        assert!(!t.is_empty());
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.cs_entries(None), 0);
    }
}
