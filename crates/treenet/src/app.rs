//! The application-side interface of a resource-allocation protocol.
//!
//! Section 2 of the paper defines the interface between a k-out-of-ℓ exclusion protocol and
//! the application requesting resource units:
//!
//! * `State ∈ {Req, In, Out}` — `Out → Req` is performed by the *application* (it wants
//!   `Need` units); `Req → In` and `In → Out` are performed by the *protocol*;
//! * `Need ∈ {0..k}` — the number of units currently requested;
//! * `EnterCS()` — called by the protocol when the request is granted;
//! * `ReleaseCS()` — a predicate that holds when the application has finished its critical
//!   section.
//!
//! [`AppDriver`] is the simulator-side embodiment of the application: protocol nodes consult
//! it on every tick to learn when to issue a new request (`Out → Req`) and when a critical
//! section is finished (`ReleaseCS()`).  Concrete drivers (saturated, random, scripted, ...)
//! live in the `workloads` crate.

use crate::NodeId;
use serde::{Deserialize, Serialize};

/// The application-visible state of a process, as defined in Section 2 of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[derive(Default)]
pub enum CsState {
    /// Not requesting and not using any resource unit.
    #[default]
    Out,
    /// Requesting `Need` resource units; waiting for the protocol to grant them.
    Req,
    /// Executing the critical section, holding the granted resource units.
    In,
}


impl CsState {
    /// True if the transition `from → to` is one the model allows.
    ///
    /// Allowed: `Out → Req` (application), `Req → In` (protocol), `In → Out` (protocol), and
    /// staying in the same state.  Everything else (e.g. `In → Req`) is forbidden.
    pub fn transition_allowed(from: CsState, to: CsState) -> bool {
        use CsState::*;
        matches!((from, to), (Out, Req) | (Req, In) | (In, Out)) || from == to
    }
}

/// The application driving one (or all) processes: decides when to request resource units and
/// how long critical sections last.
///
/// Implementations must be deterministic given their own seed so that whole experiments can
/// be reproduced bit-for-bit.
pub trait AppDriver {
    /// Called on every tick while the process is `Out`.  Returning `Some(units)` switches the
    /// process to `Req` with `Need = units`; returning `None` leaves it idle.
    ///
    /// `units` is clamped by the protocol to `1..=k`.
    fn next_request(&mut self, node: NodeId, now: u64) -> Option<usize>;

    /// Called on every tick while the process is `In` (the paper's `ReleaseCS()` predicate).
    /// `entered_at` is the activation at which the critical section started.  Returning `true`
    /// ends the critical section.
    fn release_cs(&mut self, node: NodeId, now: u64, entered_at: u64) -> bool;
}

/// A driver that never requests anything (a purely passive process).
#[derive(Clone, Copy, Debug, Default)]
pub struct Idle;

impl AppDriver for Idle {
    fn next_request(&mut self, _node: NodeId, _now: u64) -> Option<usize> {
        None
    }

    fn release_cs(&mut self, _node: NodeId, _now: u64, _entered_at: u64) -> bool {
        true
    }
}

/// Boxed driver type used by protocol nodes, avoiding a generic parameter on every node type.
pub type BoxedDriver = Box<dyn AppDriver + Send>;

impl AppDriver for BoxedDriver {
    fn next_request(&mut self, node: NodeId, now: u64) -> Option<usize> {
        self.as_mut().next_request(node, now)
    }

    fn release_cs(&mut self, node: NodeId, now: u64, entered_at: u64) -> bool {
        self.as_mut().release_cs(node, now, entered_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allowed_transitions_match_the_model() {
        use CsState::*;
        assert!(CsState::transition_allowed(Out, Req));
        assert!(CsState::transition_allowed(Req, In));
        assert!(CsState::transition_allowed(In, Out));
        assert!(CsState::transition_allowed(Out, Out));
        assert!(!CsState::transition_allowed(In, Req));
        assert!(!CsState::transition_allowed(Req, Out));
        assert!(!CsState::transition_allowed(Out, In));
    }

    #[test]
    fn idle_driver_never_requests() {
        let mut d = Idle;
        assert_eq!(d.next_request(0, 0), None);
        assert!(d.release_cs(0, 10, 5));
    }

    #[test]
    fn boxed_driver_delegates() {
        let mut d: BoxedDriver = Box::new(Idle);
        assert_eq!(d.next_request(1, 2), None);
        assert!(d.release_cs(1, 3, 2));
    }

    #[test]
    fn default_state_is_out() {
        assert_eq!(CsState::default(), CsState::Out);
    }
}
