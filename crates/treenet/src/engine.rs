//! The event-driven execution core: the maintained enabled set and the fused run loop.
//!
//! # Why an enabled set
//!
//! The original execution core (retained as [`crate::scheduler::baseline`]) re-derives, on
//! *every* step, which channels of the chosen process hold messages by scanning all of its
//! incident channels through the dynamically-dispatched [`crate::NetworkView`] interface.
//! For the guard-activation protocols this simulator runs (every token handler of the paper
//! is a guard "a message of kind X is at the head of channel q"), that scan is wasted work:
//! after an activation of process `p`, the only guards whose truth can have changed are those
//! of `p` itself (it consumed a message) and of `p`'s tree neighbours (they received the
//! messages `p` sent).  Everything else is unchanged.
//!
//! [`EnabledSet`] exploits exactly that structure.  The network maintains, incrementally and
//! in O(1) per message push/pop:
//!
//! * a per-channel occupancy bitset (one bit per `(node, channel)` pair, CSR layout),
//! * a per-node count of non-empty incoming channels,
//! * a dense, swap-removed list of *delivery-enabled* nodes (nodes with at least one
//!   non-empty incoming channel) with back-pointers, and
//! * the total number of in-flight messages.
//!
//! # The enabled-set invariant
//!
//! After every mutation of the network the following holds (this is what the equivalence
//! proptest in `tests/engine_equivalence.rs` checks against brute force):
//!
//! > bit `(v, c)` is set **iff** channel `c` of node `v` is non-empty; `count(v)` equals the
//! > number of set bits of `v`; node `v` is in the dense enabled list **iff** `count(v) > 0`;
//! > and `in_flight` equals the sum of all channel lengths.
//!
//! Every mutation path of [`crate::Network`] preserves it: message delivery and sending in
//! `execute`, the fault-injection entry points `inject_from`/`inject_into`, and direct
//! channel surgery through `channel_mut` (whose guard re-synchronizes the touched channel on
//! drop).  Because each activation of `p` touches only the channels of `p` and its
//! neighbours, the maintenance cost per step is O(messages moved), not O(network).
//!
//! # Daemon equivalence
//!
//! Event-driven daemons draw from the maintained set with the *same RNG discipline* as their
//! scan-based counterparts in [`crate::scheduler::baseline`] (same generator, same number of
//! draws, same ranges, in the same order), so both engines produce bit-identical activation
//! sequences, traces and metrics — the event engine is a pure performance refactor.  The
//! shared decision logic lives in [`crate::scheduler`] and is instantiated twice: once over
//! `&dyn EnabledView` (drop-in [`crate::Scheduler`] use) and once over the concrete
//! [`EnabledShape`] (the fused, fully monomorphized [`run`] loop below, which avoids all
//! virtual dispatch on the hot path).

use crate::network::Network;
use crate::process::Process;
use crate::scheduler::Activation;
use crate::{ChannelLabel, NodeId};
use topology::Topology;

/// The incrementally maintained enabled/dirty set of a [`Network`].
///
/// See the [module documentation](self) for the invariant this structure maintains.  All
/// queries are O(1) or O(degree/64); all updates are O(1).
#[derive(Clone, Debug)]
pub struct EnabledSet {
    /// CSR channel offsets: channels of node `v` occupy flat indices
    /// `offsets[v]..offsets[v+1]`.
    offsets: Vec<u32>,
    /// Known length of every channel, in CSR order.
    lens: Vec<u32>,
    /// CSR word offsets: the occupancy bits of node `v` occupy
    /// `words[word_offsets[v]..word_offsets[v+1]]`, one bit per channel, LSB first.
    word_offsets: Vec<u32>,
    /// Occupancy bitset words.
    words: Vec<u64>,
    /// Per-node count of non-empty incoming channels.
    count: Vec<u32>,
    /// Dense list of delivery-enabled nodes, in unspecified order.
    nodes: Vec<u32>,
    /// `pos[v]` is the index of `v` in `nodes`, or `u32::MAX` when `v` is not enabled.
    pos: Vec<u32>,
    /// Total number of in-flight messages.
    in_flight: u64,
}

const ABSENT: u32 = u32::MAX;

impl EnabledSet {
    /// Creates the enabled set for a network whose node `v` has `degrees[v]` channels, all
    /// initially empty.
    pub(crate) fn new(degrees: &[usize]) -> Self {
        let n = degrees.len();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut word_offsets = Vec::with_capacity(n + 1);
        let (mut co, mut wo) = (0u32, 0u32);
        offsets.push(0);
        word_offsets.push(0);
        for &d in degrees {
            co += d as u32;
            wo += d.div_ceil(64) as u32;
            offsets.push(co);
            word_offsets.push(wo);
        }
        EnabledSet {
            offsets,
            lens: vec![0; co as usize],
            word_offsets,
            words: vec![0; wo as usize],
            count: vec![0; n],
            nodes: Vec::with_capacity(n),
            pos: vec![ABSENT; n],
            in_flight: 0,
        }
    }

    /// Number of processes covered.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.count.len()
    }

    /// Degree of `node` (number of incident channels).
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        (self.offsets[node + 1] - self.offsets[node]) as usize
    }

    /// Number of non-empty incoming channels of `node`.
    #[inline]
    pub fn deliverable_count(&self, node: NodeId) -> usize {
        self.count[node] as usize
    }

    /// Total number of in-flight messages, maintained in O(1).
    #[inline]
    pub fn in_flight(&self) -> u64 {
        self.in_flight
    }

    /// Number of delivery-enabled nodes (nodes with at least one non-empty channel).
    #[inline]
    pub fn enabled_len(&self) -> usize {
        self.nodes.len()
    }

    /// The `idx`-th delivery-enabled node, in unspecified order (`idx < enabled_len()`).
    #[inline]
    pub fn enabled_node(&self, idx: usize) -> NodeId {
        self.nodes[idx] as NodeId
    }

    /// The first non-empty channel of `node` at or cyclically after `start % degree`, or
    /// `None` when the node has no deliverable message.
    #[inline]
    pub fn next_deliverable_from(&self, node: NodeId, start: ChannelLabel) -> Option<ChannelLabel> {
        if self.count[node] == 0 {
            return None;
        }
        let degree = self.degree(node);
        let start = start % degree; // count > 0 implies degree > 0
        let base = self.word_offsets[node] as usize;
        // Search [start, degree), then wrap to [0, start).
        let num_words = degree.div_ceil(64);
        let first_word = start / 64;
        let high = self.words[base + first_word] & (!0u64 << (start % 64));
        if high != 0 {
            return Some(first_word * 64 + high.trailing_zeros() as usize);
        }
        for w in first_word + 1..num_words {
            let word = self.words[base + w];
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
        }
        for w in 0..first_word {
            let word = self.words[base + w];
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
        }
        let low = self.words[base + first_word] & !(!0u64 << (start % 64));
        if low != 0 {
            return Some(first_word * 64 + low.trailing_zeros() as usize);
        }
        None
    }

    /// The `idx`-th non-empty channel of `node` in ascending label order, or `None` when
    /// fewer than `idx + 1` channels are non-empty.
    #[inline]
    pub fn nth_deliverable(&self, node: NodeId, mut idx: usize) -> Option<ChannelLabel> {
        if idx >= self.count[node] as usize {
            return None;
        }
        let base = self.word_offsets[node] as usize;
        let num_words = (self.word_offsets[node + 1] as usize) - base;
        for w in 0..num_words {
            let mut word = self.words[base + w];
            let pc = word.count_ones() as usize;
            if idx < pc {
                for _ in 0..idx {
                    word &= word - 1; // clear lowest set bit
                }
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
            idx -= pc;
        }
        None
    }

    /// Returns the set to its all-empty initial state in place, retaining every allocation
    /// (the trial-reuse path of [`Network::reset_trial`](crate::Network::reset_trial)).
    pub(crate) fn reset(&mut self) {
        self.lens.fill(0);
        self.words.fill(0);
        self.count.fill(0);
        self.nodes.clear();
        self.pos.fill(ABSENT);
        self.in_flight = 0;
    }

    /// Records that channel `channel` of `node` now holds `new_len` messages, updating the
    /// bitset, counts, dense list and in-flight total.  O(1).
    #[inline]
    pub(crate) fn note_len(&mut self, node: NodeId, channel: ChannelLabel, new_len: usize) {
        let flat = self.offsets[node] as usize + channel;
        let old_len = self.lens[flat];
        let new_len = new_len as u32;
        if old_len == new_len {
            return;
        }
        self.lens[flat] = new_len;
        self.in_flight = self.in_flight + new_len as u64 - old_len as u64;
        if (old_len == 0) != (new_len == 0) {
            let word = self.word_offsets[node] as usize + channel / 64;
            self.words[word] ^= 1u64 << (channel % 64);
            if new_len > 0 {
                self.count[node] += 1;
                if self.count[node] == 1 {
                    self.pos[node] = self.nodes.len() as u32;
                    self.nodes.push(node as u32);
                }
            } else {
                self.count[node] -= 1;
                if self.count[node] == 0 {
                    let at = self.pos[node] as usize;
                    let last = self.nodes.pop().expect("node was enabled");
                    if at < self.nodes.len() {
                        self.nodes[at] = last;
                        self.pos[last as usize] = at as u32;
                    }
                    self.pos[node] = ABSENT;
                }
            }
        }
    }
}

/// A borrowed, concrete view of the enabled set handed to [`EventScheduler`]s by the fused
/// run loop.
///
/// Unlike `&dyn `[`crate::EnabledView`], every query on this handle is a direct, inlinable
/// array access — no virtual dispatch on the per-step hot path.
#[derive(Clone, Copy)]
pub struct EnabledShape<'a> {
    set: &'a EnabledSet,
}

impl<'a> EnabledShape<'a> {
    /// Wraps an enabled set.
    #[inline]
    pub fn new(set: &'a EnabledSet) -> Self {
        EnabledShape { set }
    }

    /// Number of processes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.set.num_nodes()
    }

    /// Degree of `node`.
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        self.set.degree(node)
    }

    /// Number of non-empty incoming channels of `node`.
    #[inline]
    pub fn deliverable_count(&self, node: NodeId) -> usize {
        self.set.deliverable_count(node)
    }

    /// First non-empty channel of `node` at or cyclically after `start`.
    #[inline]
    pub fn next_deliverable_from(&self, node: NodeId, start: ChannelLabel) -> Option<ChannelLabel> {
        self.set.next_deliverable_from(node, start)
    }

    /// The `idx`-th non-empty channel of `node` in ascending label order.
    #[inline]
    pub fn nth_deliverable(&self, node: NodeId, idx: usize) -> Option<ChannelLabel> {
        self.set.nth_deliverable(node, idx)
    }

    /// Number of delivery-enabled nodes.
    #[inline]
    pub fn enabled_len(&self) -> usize {
        self.set.enabled_len()
    }

    /// The `idx`-th delivery-enabled node, in unspecified order.
    #[inline]
    pub fn enabled_node(&self, idx: usize) -> NodeId {
        self.set.enabled_node(idx)
    }
}

/// A daemon usable by the fused, monomorphized run loop.
///
/// Every bundled daemon ([`crate::RoundRobin`], [`crate::RandomFair`],
/// [`crate::Synchronous`], [`crate::Adversarial`]) implements both this trait and the
/// dynamically-dispatched [`crate::Scheduler`]; both entry points share one decision
/// function, so the chosen activations are identical — only the dispatch cost differs.
pub trait EventScheduler {
    /// Returns the next activation, reading network shape from the maintained enabled set.
    fn next_event(&mut self, shape: &EnabledShape<'_>) -> Activation;
}

/// Runs `steps` activations of `net` under `daemon` through the fused event-driven loop.
///
/// Equivalent to [`crate::run_for`] with the same daemon (bit-identical activation sequence,
/// trace and metrics) but with every scheduling query inlined against the maintained enabled
/// set — this is the fast path used by the simulation benchmarks and sharded experiment
/// drivers.
pub fn run<P: Process, T: Topology, S: EventScheduler>(
    net: &mut Network<P, T>,
    daemon: &mut S,
    steps: u64,
) {
    net.run_event(daemon, steps, |_| {});
}

/// Like [`run`], additionally invoking `observer` with each executed activation.
///
/// The observer is monomorphized into the loop: passing a no-op closure compiles to the same
/// code as [`run`].  The trace-equivalence tests use it to record activation sequences.
pub fn run_observed<P: Process, T: Topology, S: EventScheduler>(
    net: &mut Network<P, T>,
    daemon: &mut S,
    steps: u64,
    observer: impl FnMut(Activation),
) {
    net.run_event(daemon, steps, observer);
}

/// Runs the fused loop until `pred(net)` holds (checked after every activation) or
/// `max_steps` activations have been executed; returns the outcome exactly like
/// [`crate::run_until`].
pub fn run_until<P: Process, T: Topology, S: EventScheduler>(
    net: &mut Network<P, T>,
    daemon: &mut S,
    max_steps: u64,
    mut pred: impl FnMut(&Network<P, T>) -> bool,
) -> crate::runner::RunOutcome {
    use crate::runner::RunOutcome;
    if pred(net) {
        return RunOutcome::Satisfied(net.now());
    }
    for _ in 0..max_steps {
        net.step_event(daemon);
        if pred(net) {
            return RunOutcome::Satisfied(net.now());
        }
    }
    RunOutcome::Exhausted(net.now())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set_of(degrees: &[usize]) -> EnabledSet {
        EnabledSet::new(degrees)
    }

    #[test]
    fn starts_empty_and_consistent() {
        let s = set_of(&[2, 3, 1]);
        assert_eq!(s.num_nodes(), 3);
        assert_eq!(s.degree(1), 3);
        assert_eq!(s.in_flight(), 0);
        assert_eq!(s.enabled_len(), 0);
        for v in 0..3 {
            assert_eq!(s.deliverable_count(v), 0);
            assert_eq!(s.next_deliverable_from(v, 0), None);
            assert_eq!(s.nth_deliverable(v, 0), None);
        }
    }

    #[test]
    fn note_len_tracks_occupancy_and_dense_list() {
        let mut s = set_of(&[2, 3, 1]);
        s.note_len(1, 2, 4);
        s.note_len(1, 0, 1);
        s.note_len(2, 0, 2);
        assert_eq!(s.in_flight(), 7);
        assert_eq!(s.deliverable_count(1), 2);
        assert_eq!(s.enabled_len(), 2);
        assert_eq!(s.nth_deliverable(1, 0), Some(0));
        assert_eq!(s.nth_deliverable(1, 1), Some(2));
        assert_eq!(s.nth_deliverable(1, 2), None);
        assert_eq!(s.next_deliverable_from(1, 1), Some(2));
        assert_eq!(s.next_deliverable_from(1, 0), Some(0));
        // Cyclic wrap: starting past the last set bit wraps to the lowest one.
        s.note_len(1, 2, 0);
        assert_eq!(s.in_flight(), 3);
        assert_eq!(s.next_deliverable_from(1, 1), Some(0));
        // Draining removes from the dense list.
        s.note_len(1, 0, 0);
        assert_eq!(s.deliverable_count(1), 0);
        assert_eq!(s.enabled_len(), 1);
        assert_eq!(s.enabled_node(0), 2);
    }

    #[test]
    fn note_len_is_idempotent_for_unchanged_lengths() {
        let mut s = set_of(&[1]);
        s.note_len(0, 0, 3);
        s.note_len(0, 0, 3);
        assert_eq!(s.in_flight(), 3);
        assert_eq!(s.deliverable_count(0), 1);
    }

    #[test]
    fn wide_nodes_cross_word_boundaries() {
        // A 130-channel hub: bits span three words.
        let mut s = set_of(&[130]);
        s.note_len(0, 0, 1);
        s.note_len(0, 70, 1);
        s.note_len(0, 129, 1);
        assert_eq!(s.deliverable_count(0), 3);
        assert_eq!(s.nth_deliverable(0, 0), Some(0));
        assert_eq!(s.nth_deliverable(0, 1), Some(70));
        assert_eq!(s.nth_deliverable(0, 2), Some(129));
        assert_eq!(s.next_deliverable_from(0, 1), Some(70));
        assert_eq!(s.next_deliverable_from(0, 71), Some(129));
        s.note_len(0, 0, 0);
        assert_eq!(s.next_deliverable_from(0, 130 - 1), Some(129));
        s.note_len(0, 129, 0);
        assert_eq!(s.next_deliverable_from(0, 100), Some(70), "wraps around");
    }
}
