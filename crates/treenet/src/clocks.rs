//! Optional Lamport logical-clock instrumentation for [`crate::Network`].
//!
//! When enabled (off by default, see [`crate::Network::enable_clocks`]) the network keeps
//! one Lamport clock per node and one stamp queue per channel, parallel to the flat
//! [`crate::slab::ChannelSlab`]:
//!
//! * a **tick** advances the activated node's clock by one;
//! * a **send** advances the sender's clock by one and stamps the message (the stamp rides
//!   the parallel queue of the destination channel, FIFO like the message itself);
//! * a **delivery** pops the head stamp and merges it: `c ← max(c, stamp) + 1`.
//!
//! These are exactly Lamport's happened-before rules, so after any execution
//! `clock(u) < clock(v)` holds whenever an event on `u` happened-before an event on `v` —
//! the property the Chandy–Lamport snapshot tests use to certify that recorded cuts are
//! consistent (no message is received in the cut before it was sent).
//!
//! # Out-of-band mutations
//!
//! Fault injection and scenario seeding mutate channels outside the send/deliver discipline
//! (insert, remove, clear, [`crate::Network::inject_into`]).  The instrumentation stays
//! *structurally* consistent by re-synchronizing the stamp queue with the channel length —
//! truncating on loss, padding with stamp 0 on insertion.  Stamp 0 is the "unknown origin"
//! stamp: a fault-injected message happened-before nothing, which is sound (it only weakens
//! the order the clocks witness, never fabricates one).
//!
//! # Cost when off
//!
//! The network stores the instrumentation as `Option<Box<LamportClocks>>`; every hook site
//! is a single pointer-null check when disabled, and no per-node or per-channel storage
//! exists.  The engine-equivalence suite pins that enabling clocks does not change any
//! activation, trace or metric — the instrumentation is observation only.

use crate::NodeId;
use std::collections::VecDeque;

/// Per-node Lamport clocks plus per-channel stamp queues (parallel to the channel slab).
#[derive(Clone, Debug)]
pub struct LamportClocks {
    /// One Lamport clock per node.
    node: Vec<u64>,
    /// One FIFO stamp queue per flat channel index, parallel to the message queue.
    stamps: Vec<VecDeque<u64>>,
}

impl LamportClocks {
    /// Zeroed clocks for `nodes` nodes and `channels` flat channels.
    pub fn new(nodes: usize, channels: usize) -> Self {
        LamportClocks { node: vec![0; nodes], stamps: vec![VecDeque::new(); channels] }
    }

    /// The current Lamport clock of `node`.
    #[inline]
    pub fn clock(&self, node: NodeId) -> u64 {
        self.node[node]
    }

    /// All node clocks, in node order.
    pub fn clocks(&self) -> &[u64] {
        &self.node
    }

    /// A tick event on `node`.
    #[inline]
    pub(crate) fn on_tick(&mut self, node: NodeId) {
        self.node[node] += 1;
    }

    /// A send by `node` landing on flat channel `dest_flat`: advances the sender's clock and
    /// enqueues the stamp alongside the message.
    #[inline]
    pub(crate) fn on_send(&mut self, node: NodeId, dest_flat: usize) {
        self.node[node] += 1;
        let stamp = self.node[node];
        self.stamps[dest_flat].push_back(stamp);
    }

    /// A message injected onto flat channel `dest_flat` from outside the send discipline
    /// (fault injection, scenario seeding): stamp 0, the unknown-origin stamp.
    #[inline]
    pub(crate) fn on_inject(&mut self, dest_flat: usize) {
        self.stamps[dest_flat].push_back(0);
    }

    /// A delivery to `node` from flat channel `flat`: pops the head stamp and merges it.
    #[inline]
    pub(crate) fn on_deliver(&mut self, node: NodeId, flat: usize) {
        let stamp = self.stamps[flat].pop_front().unwrap_or(0);
        self.node[node] = self.node[node].max(stamp) + 1;
    }

    /// Re-synchronizes the stamp queue of `flat` with a channel that was mutated out of
    /// band: truncates to `len` on loss, pads with unknown-origin stamps on insertion.
    pub(crate) fn resync(&mut self, flat: usize, len: usize) {
        let queue = &mut self.stamps[flat];
        queue.truncate(len);
        while queue.len() < len {
            queue.push_back(0);
        }
    }

    /// Returns every clock and stamp queue to zero, retaining allocations.
    pub(crate) fn reset(&mut self) {
        self.node.fill(0);
        for queue in &mut self.stamps {
            queue.clear();
        }
    }

    /// Re-shapes the instrumentation for a churned network (all history coarsened to zero:
    /// churn is a transient fault, and unknown-origin stamps are the sound default).
    pub(crate) fn reshape(&mut self, nodes: usize, channels: usize) {
        self.node.clear();
        self.node.resize(nodes, 0);
        self.stamps.clear();
        self.stamps.resize(channels, VecDeque::new());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_then_deliver_orders_the_clocks() {
        let mut c = LamportClocks::new(2, 2);
        // Node 0 ticks twice, then sends (stamp 3) onto flat channel 1.
        c.on_tick(0);
        c.on_tick(0);
        c.on_send(0, 1);
        assert_eq!(c.clock(0), 3);
        // Node 1 has a slow clock; delivery merges past the sender.
        c.on_deliver(1, 1);
        assert_eq!(c.clock(1), 4);
        assert!(c.clock(0) < c.clock(1), "happened-before is witnessed");
    }

    #[test]
    fn injected_messages_carry_the_unknown_origin_stamp() {
        let mut c = LamportClocks::new(2, 1);
        c.on_inject(0);
        c.on_tick(1);
        c.on_deliver(1, 0);
        // max(1, 0) + 1: the injection forced no ordering.
        assert_eq!(c.clock(1), 2);
    }

    #[test]
    fn resync_truncates_and_pads() {
        let mut c = LamportClocks::new(1, 1);
        c.on_send(0, 0);
        c.on_send(0, 0);
        c.resync(0, 1);
        assert_eq!(c.stamps[0].len(), 1);
        c.resync(0, 3);
        assert_eq!(c.stamps[0].len(), 3);
        assert_eq!(c.stamps[0][2], 0);
    }
}
