//! Transient-fault injection.
//!
//! Self-stabilization is evaluated by placing the system in an *arbitrary* configuration and
//! measuring whether (and how fast) it recovers.  A configuration consists of (a) every
//! process's local variables and (b) the contents of every channel, the latter bounded by
//! `CMAX` messages per channel (the paper's assumption, needed for bounded-memory
//! stabilization).  [`FaultInjector`] perturbs both.

use crate::network::Network;
use crate::process::{MessageKind, Process};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use topology::Topology;

/// A process whose local state can be set to an arbitrary value, as a transient fault would.
pub trait Corruptible {
    /// Overwrites the local variables with arbitrary values drawn from `rng`.
    ///
    /// Implementations must keep variables inside their declared *domains* (the paper's model
    /// has bounded variables; a transient fault cannot move a variable outside its domain),
    /// but are otherwise free to produce any combination.
    fn corrupt(&mut self, rng: &mut StdRng);
}

/// A message type that can produce arbitrary (possibly garbage) instances, as found in
/// channels after a transient fault.
pub trait ArbitraryMessage: Sized {
    /// Draws an arbitrary message from `rng`.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

/// A process that can be crash-restarted: its local variables return to their *initial*
/// values (the state a freshly booted process would have), as opposed to the arbitrary values
/// produced by [`Corruptible::corrupt`].
///
/// This models the "process crashes" failure pattern the paper's conclusion lists as an open
/// extension: a crash wipes the process's volatile memory and the process then rejoins the
/// computation from its initial state.  For a self-stabilizing protocol a crash-restart is
/// just a particular transient fault (the post-crash configuration is one of the arbitrary
/// configurations convergence already covers), so recovery is guaranteed; the non-stabilizing
/// protocol rungs have no such guarantee — a restarted root re-creates its initial tokens and
/// permanently corrupts the token population.  Experiment E15 measures both effects.
pub trait Restartable {
    /// Resets every local variable to its initial (boot-time) value.
    fn restart(&mut self);
}

/// What kind and how much damage to inject.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Probability that each process has its local state corrupted.
    pub corrupt_node_prob: f64,
    /// Maximum number of arbitrary messages inserted into each channel (the paper's `CMAX`).
    pub channel_garbage_max: usize,
    /// Probability that each in-flight message is dropped.
    pub drop_prob: f64,
    /// Probability that each in-flight message is duplicated in place.
    pub duplicate_prob: f64,
    /// Probability that each channel is completely cleared before garbage insertion.
    pub clear_channel_prob: f64,
}

impl FaultPlan {
    /// A severe fault: every node corrupted, channels cleared and refilled with garbage.
    pub fn catastrophic(cmax: usize) -> Self {
        FaultPlan {
            corrupt_node_prob: 1.0,
            channel_garbage_max: cmax,
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            clear_channel_prob: 1.0,
        }
    }

    /// A moderate fault: half of the nodes corrupted, some messages lost or duplicated, a
    /// little garbage.
    pub fn moderate(cmax: usize) -> Self {
        FaultPlan {
            corrupt_node_prob: 0.5,
            channel_garbage_max: cmax.min(2),
            drop_prob: 0.3,
            duplicate_prob: 0.2,
            clear_channel_prob: 0.0,
        }
    }

    /// A light fault: no local-state corruption, only message loss/duplication.
    pub fn message_only() -> Self {
        FaultPlan {
            corrupt_node_prob: 0.0,
            channel_garbage_max: 0,
            drop_prob: 0.5,
            duplicate_prob: 0.5,
            clear_channel_prob: 0.0,
        }
    }
}

/// Summary of the damage actually injected, for reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultReport {
    /// Number of processes whose local state was corrupted.
    pub nodes_corrupted: usize,
    /// Number of processes crash-restarted (local state reset to its initial value).
    pub nodes_crashed: usize,
    /// Number of garbage messages inserted.
    pub garbage_inserted: usize,
    /// Number of in-flight messages dropped.
    pub messages_dropped: usize,
    /// Number of in-flight messages duplicated.
    pub messages_duplicated: usize,
    /// Number of channels cleared.
    pub channels_cleared: usize,
}

/// Deterministic (seeded) transient-fault injector.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    rng: StdRng,
}

impl FaultInjector {
    /// Creates an injector from a seed.
    pub fn new(seed: u64) -> Self {
        FaultInjector { rng: StdRng::seed_from_u64(seed) }
    }

    /// Applies `plan` to `net`: corrupts local states, clears/drops/duplicates in-flight
    /// messages and inserts channel garbage.  Returns a report of the damage done.
    pub fn inject<P, T>(&mut self, net: &mut Network<P, T>, plan: &FaultPlan) -> FaultReport
    where
        P: Process + Corruptible,
        P::Msg: ArbitraryMessage + MessageKind,
        T: Topology,
    {
        let mut report = FaultReport::default();
        let n = net.len();

        for v in 0..n {
            if self.rng.gen_bool(plan.corrupt_node_prob.clamp(0.0, 1.0)) {
                net.node_mut(v).corrupt(&mut self.rng);
                report.nodes_corrupted += 1;
            }
        }

        for v in 0..n {
            let degree = net.topology().degree(v);
            for l in 0..degree {
                if plan.clear_channel_prob > 0.0
                    && self.rng.gen_bool(plan.clear_channel_prob.clamp(0.0, 1.0))
                {
                    let mut ch = net.channel_mut(v, l);
                    if !ch.is_empty() {
                        report.messages_dropped += ch.len();
                    }
                    ch.clear();
                    report.channels_cleared += 1;
                }
                // Drop and duplicate surviving messages.
                if plan.drop_prob > 0.0 || plan.duplicate_prob > 0.0 {
                    let len = net.channel(v, l).len();
                    // Walk backwards so removals do not disturb earlier indices.
                    for idx in (0..len).rev() {
                        if plan.drop_prob > 0.0
                            && self.rng.gen_bool(plan.drop_prob.clamp(0.0, 1.0))
                        {
                            net.channel_mut(v, l).remove(idx);
                            report.messages_dropped += 1;
                        } else if plan.duplicate_prob > 0.0
                            && self.rng.gen_bool(plan.duplicate_prob.clamp(0.0, 1.0))
                        {
                            let dup = net.channel(v, l).iter().nth(idx).cloned();
                            if let Some(dup) = dup {
                                net.channel_mut(v, l).insert(idx, dup);
                                report.messages_duplicated += 1;
                            }
                        }
                    }
                }
                // Insert up to channel_garbage_max arbitrary messages at random positions.
                if plan.channel_garbage_max > 0 {
                    let count = self.rng.gen_range(0..=plan.channel_garbage_max);
                    for _ in 0..count {
                        let msg = P::Msg::arbitrary(&mut self.rng);
                        let pos = self.rng.gen_range(0..=net.channel(v, l).len());
                        net.channel_mut(v, l).insert(pos, msg);
                        report.garbage_inserted += 1;
                    }
                }
            }
        }
        report
    }

    /// Crash-restarts the given processes: each one's local state is reset to its initial
    /// value, and — when `lose_incoming` is true — its incoming channels are emptied, modelling
    /// the loss of every message that was addressed to the crashed process.
    ///
    /// Duplicate node ids are restarted only once.  Returns a report whose `nodes_crashed`,
    /// `messages_dropped` and `channels_cleared` fields describe the damage.
    pub fn crash<P, T>(
        &mut self,
        net: &mut Network<P, T>,
        nodes: &[crate::NodeId],
        lose_incoming: bool,
    ) -> FaultReport
    where
        P: Process + Restartable,
        T: Topology,
    {
        let mut report = FaultReport::default();
        let mut seen = vec![false; net.len()];
        for &v in nodes {
            if v >= net.len() || seen[v] {
                continue;
            }
            seen[v] = true;
            net.node_mut(v).restart();
            report.nodes_crashed += 1;
            if lose_incoming {
                let degree = net.topology().degree(v);
                for l in 0..degree {
                    let dropped = net.channel(v, l).len();
                    if dropped > 0 {
                        report.messages_dropped += dropped;
                    }
                    net.channel_mut(v, l).clear();
                    report.channels_cleared += 1;
                }
            }
        }
        report
    }

    /// Corrupts the local state of exactly the listed processes (duplicates corrupted only
    /// once; out-of-range ids ignored).
    ///
    /// This is the targeted counterpart of [`FaultInjector::inject`]'s per-node corruption
    /// coin, for adversarial fault placers that choose their victims from the *live*
    /// configuration — e.g. the fault-schedule engine's token-holder-path event, which
    /// corrupts the whole root path the resource tokens travel on.
    pub fn corrupt_nodes<P, T>(
        &mut self,
        net: &mut Network<P, T>,
        nodes: &[crate::NodeId],
    ) -> FaultReport
    where
        P: Process + Corruptible,
        T: Topology,
    {
        let mut report = FaultReport::default();
        let mut seen = vec![false; net.len()];
        for &v in nodes {
            if v >= net.len() || seen[v] {
                continue;
            }
            seen[v] = true;
            net.node_mut(v).corrupt(&mut self.rng);
            report.nodes_corrupted += 1;
        }
        report
    }

    /// Crash-restarts `count` distinct processes chosen uniformly at random (see
    /// [`FaultInjector::crash`]).  Returns the chosen processes and the damage report.
    pub fn crash_random<P, T>(
        &mut self,
        net: &mut Network<P, T>,
        count: usize,
        lose_incoming: bool,
    ) -> (Vec<crate::NodeId>, FaultReport)
    where
        P: Process + Restartable,
        T: Topology,
    {
        let n = net.len();
        let mut ids: Vec<crate::NodeId> = (0..n).collect();
        // Partial Fisher–Yates: the first `count` entries are a uniform sample.
        let count = count.min(n);
        for i in 0..count {
            let j = self.rng.gen_range(i..n);
            ids.swap(i, j);
        }
        ids.truncate(count);
        let report = self.crash(net, &ids, lose_incoming);
        (ids, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::{Context, Event};
    use crate::ChannelLabel;
    use topology::builders;

    #[derive(Clone, Debug, PartialEq)]
    enum M {
        Real(u32),
        Junk(u8),
    }
    impl MessageKind for M {
        fn kind(&self) -> &'static str {
            match self {
                M::Real(_) => "real",
                M::Junk(_) => "junk",
            }
        }
    }
    impl ArbitraryMessage for M {
        fn arbitrary(rng: &mut StdRng) -> Self {
            M::Junk(rng.gen())
        }
    }

    struct Node {
        counter: u32,
    }
    impl Process for Node {
        type Msg = M;
        fn on_message(&mut self, _f: ChannelLabel, _m: M, _ctx: &mut Context<'_, M>) {}
        fn on_tick(&mut self, _ctx: &mut Context<'_, M>) {
            let _ = Event::Note("noop");
        }
    }
    impl Corruptible for Node {
        fn corrupt(&mut self, rng: &mut StdRng) {
            self.counter = rng.gen_range(0..100);
        }
    }

    fn net() -> Network<Node, topology::OrientedTree> {
        Network::new(builders::figure1_tree(), |_| Node { counter: 0 })
    }

    #[test]
    fn catastrophic_fault_corrupts_every_node() {
        let mut n = net();
        let mut inj = FaultInjector::new(1);
        let report = inj.inject(&mut n, &FaultPlan::catastrophic(3));
        assert_eq!(report.nodes_corrupted, 8);
        assert_eq!(report.channels_cleared, n.topology().directed_channels());
        // Garbage bounded by CMAX per channel.
        assert!(report.garbage_inserted <= 3 * n.topology().directed_channels());
        assert_eq!(n.in_flight(), report.garbage_inserted);
    }

    #[test]
    fn message_only_fault_leaves_local_state_alone() {
        let mut n = net();
        n.inject_into(0, 0, M::Real(7));
        n.inject_into(0, 1, M::Real(8));
        let mut inj = FaultInjector::new(2);
        let report = inj.inject(&mut n, &FaultPlan::message_only());
        assert_eq!(report.nodes_corrupted, 0);
        assert_eq!(report.garbage_inserted, 0);
        assert!(report.messages_dropped + report.messages_duplicated <= 4);
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let run = |seed| {
            let mut n = net();
            n.inject_into(4, 1, M::Real(1));
            let mut inj = FaultInjector::new(seed);
            inj.inject(&mut n, &FaultPlan::moderate(2))
        };
        assert_eq!(run(9), run(9));
    }

    impl Restartable for Node {
        fn restart(&mut self) {
            self.counter = 0;
        }
    }

    #[test]
    fn crash_restarts_state_and_optionally_clears_incoming_channels() {
        let mut n = net();
        n.node_mut(3).counter = 42;
        n.node_mut(4).counter = 7;
        n.inject_into(3, 0, M::Real(1));
        n.inject_into(3, 0, M::Real(2));
        n.inject_into(4, 0, M::Real(3));
        let mut inj = FaultInjector::new(5);
        // Crash node 3 with message loss, node 4 without; duplicates are collapsed.
        let report = inj.crash(&mut n, &[3, 3], true);
        assert_eq!(report.nodes_crashed, 1);
        assert_eq!(report.messages_dropped, 2);
        assert_eq!(n.node(3).counter, 0);
        assert_eq!(n.channel(3, 0).len(), 0);
        let report = inj.crash(&mut n, &[4], false);
        assert_eq!(report.nodes_crashed, 1);
        assert_eq!(report.messages_dropped, 0);
        assert_eq!(n.node(4).counter, 0);
        assert_eq!(n.channel(4, 0).len(), 1, "without message loss the channel is untouched");
    }

    #[test]
    fn crash_random_picks_distinct_nodes_and_is_deterministic() {
        let pick = |seed| {
            let mut n = net();
            let mut inj = FaultInjector::new(seed);
            let (ids, report) = inj.crash_random(&mut n, 3, false);
            assert_eq!(report.nodes_crashed, 3);
            ids
        };
        let a = pick(11);
        let b = pick(11);
        assert_eq!(a, b, "same seed, same victims");
        assert_eq!(a.len(), 3);
        let unique: std::collections::BTreeSet<_> = a.iter().collect();
        assert_eq!(unique.len(), 3, "victims are distinct");
        // Requesting more crashes than processes clamps to n.
        let mut n = net();
        let mut inj = FaultInjector::new(1);
        let (ids, _) = inj.crash_random(&mut n, 100, false);
        assert_eq!(ids.len(), 8);
    }

    #[test]
    fn zero_plan_is_a_no_op() {
        let mut n = net();
        n.inject_into(1, 0, M::Real(3));
        let mut inj = FaultInjector::new(3);
        let plan = FaultPlan {
            corrupt_node_prob: 0.0,
            channel_garbage_max: 0,
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            clear_channel_prob: 0.0,
        };
        let report = inj.inject(&mut n, &plan);
        assert_eq!(report, FaultReport::default());
        assert_eq!(n.in_flight(), 1);
    }
}
