//! `treenet` — a discrete-event simulator for asynchronous message-passing protocols on
//! oriented trees (and other topologies).
//!
//! The paper's computation model (Section 2) is reproduced faithfully:
//!
//! * every process runs an infinite loop; in a *step* it receives at most one message from one
//!   of its incident channels and then updates local variables and possibly sends messages;
//! * links are **reliable** and **FIFO**, and may initially contain up to `CMAX` arbitrary
//!   messages (the bounded-garbage assumption required by Gouda–Multari for deterministic
//!   self-stabilization with bounded memory);
//! * executions are **asynchronous but fair**: every process takes infinitely many steps but
//!   there is no bound on the delay between two steps of a process.
//!
//! The simulator realises a step as an [`Activation`] chosen by a pluggable [`Scheduler`]:
//! either *deliver* the head message of one incoming channel to its process, or give the
//! process a *tick* (one pass over the bottom-of-loop actions: request issuing, critical
//! section entry/exit, timeouts).  Fair schedulers ([`scheduler::RoundRobin`],
//! [`scheduler::RandomFair`]) guarantee the paper's fairness assumption; the
//! [`scheduler::Synchronous`] daemon serializes lock-step rounds; the
//! [`scheduler::Adversarial`] scheduler exercises bounded unfairness to stress waiting times.
//!
//! # Two execution engines
//!
//! Every daemon exists in two flavours with **bit-identical semantics** (same activation
//! sequences, traces and metrics):
//!
//! * the **event-driven engine** ([`engine`]) — the default: the network incrementally
//!   maintains the set of enabled delivery guards (non-empty channels), daemons read it in
//!   O(1), and the fused loop [`engine::run`] monomorphizes daemon + network into one
//!   allocation-free hot loop;
//! * the **scan-based baseline** ([`scheduler::baseline`]) — the original engine that
//!   re-derives channel occupancy on every step, retained as the executable specification
//!   for the trace-equivalence suite and the `BENCH_treenet.json` comparison.
//!
//! Transient faults are modelled by [`fault::FaultInjector`], which corrupts local process
//! state (through the [`fault::Corruptible`] trait), injects bounded channel garbage
//! (through [`fault::ArbitraryMessage`]), and deletes or duplicates in-flight messages —
//! exactly the "arbitrary configuration" from which a self-stabilizing protocol must recover.
//! Crash-restart failures (the paper conclusion's "other failure patterns") are modelled by
//! [`fault::Restartable`] and [`fault::FaultInjector::crash`]: the victim's local state
//! returns to its boot-time value and, optionally, its incoming messages are lost.
//!
//! Execution produces a [`trace::Trace`] of application-level events (requests, critical
//! section entries and exits) and [`metrics::Metrics`] (messages sent per kind, activations),
//! from which the `analysis` crate derives waiting times, throughput, fairness and
//! convergence measurements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod channel;
pub mod clocks;
pub mod engine;
pub mod fault;
pub mod metrics;
pub mod network;
pub mod process;
pub mod runner;
pub mod scheduler;
pub mod slab;
pub mod snapshot;
pub mod trace;

pub use app::{AppDriver, CsState};
pub use channel::Channel;
pub use clocks::LamportClocks;
pub use engine::{EnabledSet, EnabledShape, EventScheduler};
pub use fault::{ArbitraryMessage, Corruptible, FaultInjector, FaultPlan, FaultReport, Restartable};
pub use metrics::Metrics;
pub use network::{ChannelMut, EnabledView, Network, NetworkView, StepUndo};
pub use process::{Context, Event, MessageKind, Process};
pub use runner::{run_for, run_until, run_until_quiescent, RunOutcome};
pub use scheduler::{
    Activation, Adversarial, AdversarialDaemon, CentralDaemon, DistributedDaemon, RandomFair,
    RoundRobin, Scheduler, Synchronous, SynchronousDaemon,
};
pub use slab::ChannelSlab;
pub use snapshot::{
    run_until_with_snapshots, run_with_snapshots, InitiatorPolicy, SnapshotMessage,
    SnapshotObserver, SnapshotPlan, SnapshotRunner,
};
pub use trace::{Trace, TracedEvent};

/// Re-export of the node identifier type used throughout.
pub type NodeId = topology::NodeId;
/// Re-export of the channel label type used throughout.
pub type ChannelLabel = topology::ChannelLabel;
