//! The network engine: nodes, channels, and step execution.
//!
//! The network is the keeper of the *enabled-set invariant* documented in [`crate::engine`]:
//! every mutation of a channel (delivery, send, injection, or direct surgery through
//! [`Network::channel_mut`]) immediately updates the maintained [`EnabledSet`], so
//! event-driven daemons can read "which guards are enabled" in O(1) instead of rescanning.

use crate::channel::Channel;
use crate::clocks::LamportClocks;
use crate::engine::{EnabledSet, EnabledShape, EventScheduler};
use crate::metrics::Metrics;
use crate::process::{Context, MessageKind, Process};
use crate::scheduler::{Activation, Scheduler};
use crate::slab::ChannelSlab;
use crate::trace::Trace;
use crate::{ChannelLabel, NodeId};
use topology::Topology;

/// A read-only view of the network handed to schedulers: which channels hold messages, node
/// degrees, and the logical clock.  Schedulers must not see protocol state, only "shape".
pub trait NetworkView {
    /// Number of processes.
    fn num_nodes(&self) -> usize;
    /// Degree of `node`.
    fn degree(&self, node: NodeId) -> usize;
    /// Number of in-flight messages on `node`'s incoming channel `label`.
    fn channel_len(&self, node: NodeId, label: ChannelLabel) -> usize;
    /// The global activation counter.
    fn now(&self) -> u64;

    /// Total number of in-flight messages across the whole network.
    fn messages_in_flight(&self) -> usize {
        let mut total = 0;
        for v in 0..self.num_nodes() {
            for l in 0..self.degree(v) {
                total += self.channel_len(v, l);
            }
        }
        total
    }
}

/// The enabled-set extension of [`NetworkView`]: O(1) answers to "which guards are enabled".
///
/// [`Network`] overrides every method with a constant-time read of its maintained
/// [`EnabledSet`]; the provided defaults fall back to scanning through [`NetworkView`], so
/// any view (e.g. the fakes used in scheduler unit tests) satisfies the trait — at scan
/// cost — by declaring an empty `impl`.  Both implementations return identical answers,
/// which is exactly the enabled-set invariant the equivalence proptest checks.
pub trait EnabledView: NetworkView {
    /// Number of non-empty incoming channels of `node`.
    fn deliverable_count(&self, node: NodeId) -> usize {
        (0..self.degree(node)).filter(|&c| self.channel_len(node, c) > 0).count()
    }

    /// The first non-empty channel of `node` at or cyclically after `start % degree`, or
    /// `None` when the node has no deliverable message.
    fn next_deliverable_from(&self, node: NodeId, start: ChannelLabel) -> Option<ChannelLabel> {
        let degree = self.degree(node);
        if degree == 0 {
            return None;
        }
        let start = start % degree;
        (0..degree).map(|off| (start + off) % degree).find(|&c| self.channel_len(node, c) > 0)
    }

    /// The `idx`-th non-empty channel of `node` in ascending label order, or `None` when
    /// fewer than `idx + 1` channels are non-empty.
    fn nth_deliverable(&self, node: NodeId, idx: usize) -> Option<ChannelLabel> {
        (0..self.degree(node)).filter(|&c| self.channel_len(node, c) > 0).nth(idx)
    }

    /// Fills `round` with, per node, the lowest non-empty incoming channel (or `None`) —
    /// the round-boundary snapshot taken by the [`crate::Synchronous`] daemon.
    ///
    /// The default scans every node; [`Network`] overrides it to visit only the
    /// delivery-enabled nodes of its maintained dense list (O(enabled) per round).  Both
    /// fill the same slots, so the snapshots are identical.
    fn snapshot_deliverable(&self, round: &mut Vec<Option<ChannelLabel>>) {
        round.clear();
        round.resize(self.num_nodes(), None);
        for (v, slot) in round.iter_mut().enumerate() {
            if self.deliverable_count(v) > 0 {
                *slot = self.next_deliverable_from(v, 0);
            }
        }
    }
}

/// Mutable access to one incoming channel, returned by [`Network::channel_mut`].
///
/// Dereferences to [`Channel`]; when the guard is dropped, the enabled set is
/// re-synchronized with the channel's (possibly changed) length, so direct channel surgery
/// by fault injectors and the exhaustive checker cannot break the enabled-set invariant.
pub struct ChannelMut<'a, M> {
    channel: &'a mut Channel<M>,
    enabled: &'a mut EnabledSet,
    clocks: Option<&'a mut LamportClocks>,
    node: NodeId,
    label: ChannelLabel,
    flat: usize,
}

impl<M> std::ops::Deref for ChannelMut<'_, M> {
    type Target = Channel<M>;
    fn deref(&self) -> &Channel<M> {
        self.channel
    }
}

impl<M> std::ops::DerefMut for ChannelMut<'_, M> {
    fn deref_mut(&mut self) -> &mut Channel<M> {
        self.channel
    }
}

impl<M> Drop for ChannelMut<'_, M> {
    fn drop(&mut self) {
        self.enabled.note_len(self.node, self.label, self.channel.len());
        if let Some(clocks) = self.clocks.as_deref_mut() {
            clocks.resync(self.flat, self.channel.len());
        }
    }
}

/// The undo record of one activation, captured by [`Network::execute_undoable`] and applied
/// by [`Network::revert`].
///
/// An activation of process `p` can change at most one channel by *consuming* (the delivered
/// head message of one of `p`'s incoming channels) and finitely many channels by *producing*
/// (one push per message `p` sent, each onto a neighbour's incoming channel).  The record
/// stores exactly those effects: the consumed message itself (so it can be put back at the
/// head) and the ordered list of channels pushed (so the pushes can be popped back off the
/// tails).  Everything else an activation touches — the logical clock, metrics, the trace —
/// is *not* recorded: those are run-time accumulators outside the configuration abstraction,
/// and [`Network::revert`] deliberately leaves them alone.
///
/// The record is reusable: `execute_undoable` clears it before recording, and `revert`
/// drains it, so one `StepUndo` value serves an entire exploration.
#[derive(Debug, Default)]
pub struct StepUndo<M> {
    /// The message popped by a delivery, with the channel it came from.
    delivered: Option<(NodeId, ChannelLabel, M)>,
    /// Channels pushed by the activation, in push order.
    sent: Vec<(NodeId, ChannelLabel)>,
}

impl<M> StepUndo<M> {
    /// An empty record.
    pub fn new() -> Self {
        StepUndo { delivered: None, sent: Vec::new() }
    }

    /// The channel whose head was consumed by the recorded activation, if any.
    pub fn delivered_channel(&self) -> Option<(NodeId, ChannelLabel)> {
        self.delivered.as_ref().map(|&(node, label, _)| (node, label))
    }

    /// The channels pushed by the recorded activation, in push order (a channel appears once
    /// per message pushed onto it).
    pub fn sent_channels(&self) -> &[(NodeId, ChannelLabel)] {
        &self.sent
    }

    fn clear(&mut self) {
        self.delivered = None;
        self.sent.clear();
    }
}

/// The recording hook threaded through the execution core: [`Network::execute`] instantiates
/// it with the no-op `()` (compiling to exactly the unrecorded step), while
/// [`Network::execute_undoable`] instantiates it with a [`StepUndo`].  Monomorphization
/// keeps the plain path free of both the clone and the journal pushes.
trait UndoSink<M> {
    /// Called once when the activation consumes a delivered message.
    fn record_delivered(&mut self, node: NodeId, label: ChannelLabel, msg: &M);

    /// The journal receiving `(node, label)` per pushed message, when recording.
    fn journal(&mut self) -> Option<&mut Vec<(NodeId, ChannelLabel)>>;
}

impl<M> UndoSink<M> for () {
    #[inline]
    fn record_delivered(&mut self, _node: NodeId, _label: ChannelLabel, _msg: &M) {}

    #[inline]
    fn journal(&mut self) -> Option<&mut Vec<(NodeId, ChannelLabel)>> {
        None
    }
}

impl<M: Clone> UndoSink<M> for StepUndo<M> {
    #[inline]
    fn record_delivered(&mut self, node: NodeId, label: ChannelLabel, msg: &M) {
        self.delivered = Some((node, label, msg.clone()));
    }

    #[inline]
    fn journal(&mut self) -> Option<&mut Vec<(NodeId, ChannelLabel)>> {
        Some(&mut self.sent)
    }
}

/// A simulated network: a topology, one process per node, and one FIFO channel per directed
/// link.
///
/// Channels live in a flat struct-of-arrays [`ChannelSlab`] (see [`crate::slab`] for the
/// million-node memory model): `slab.get(v, l)` is the *incoming* channel of node `v` with
/// local label `l`; a message sent by `u` on its channel `i` is pushed onto `slab.get(q, j)`
/// where `(q, j) = slab.endpoint(u, i)` — the precomputed `topo.endpoint(u, i)`.
///
/// Optional Lamport-clock instrumentation ([`crate::clocks`]) hangs off `clocks`: a single
/// null check per hook site when disabled, see [`Network::enable_clocks`].
pub struct Network<P: Process, T: Topology> {
    topo: T,
    nodes: Vec<P>,
    slab: ChannelSlab<P::Msg>,
    enabled: EnabledSet,
    clocks: Option<Box<LamportClocks>>,
    now: u64,
    trace: Trace,
    metrics: Metrics,
    outbox: Vec<(ChannelLabel, P::Msg)>,
    event_buf: Vec<crate::process::Event>,
}

impl<P: Process, T: Topology> Network<P, T> {
    /// Builds a network over `topo` with the processes produced by `make_node(id)`.
    ///
    /// # Panics
    ///
    /// Panics if the topology is empty.
    pub fn new(topo: T, mut make_node: impl FnMut(NodeId) -> P) -> Self {
        let n = topo.len();
        assert!(n > 0, "a network needs at least one process");
        let nodes: Vec<P> = (0..n).map(&mut make_node).collect();
        let slab = ChannelSlab::new(&topo);
        let degrees: Vec<usize> = (0..n).map(|v| topo.degree(v)).collect();
        Network {
            topo,
            nodes,
            slab,
            enabled: EnabledSet::new(&degrees),
            clocks: None,
            now: 0,
            trace: Trace::new(),
            metrics: Metrics::new(n),
            outbox: Vec::new(),
            event_buf: Vec::new(),
        }
    }

    /// The topology the network runs on.
    pub fn topology(&self) -> &T {
        &self.topo
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the network has no processes (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Immutable access to the process at `node`.
    pub fn node(&self, node: NodeId) -> &P {
        &self.nodes[node]
    }

    /// Mutable access to the process at `node` (used by fault injection and scenario setup).
    pub fn node_mut(&mut self, node: NodeId) -> &mut P {
        &mut self.nodes[node]
    }

    /// Iterates over all processes.
    pub fn nodes(&self) -> impl Iterator<Item = &P> {
        self.nodes.iter()
    }

    /// The logical clock: number of activations executed so far.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The execution trace recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Mutable access to the trace (e.g. to clear it after stabilization).
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// The metrics recorded so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable access to the metrics (e.g. to reset them after stabilization).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Iterates over every in-flight message as `(destination node, incoming label, message)`.
    pub fn iter_messages(&self) -> impl Iterator<Item = (NodeId, ChannelLabel, &P::Msg)> {
        self.slab.iter().flat_map(|(v, l, ch)| ch.iter().map(move |m| (v, l, m)))
    }

    /// Total number of in-flight messages, maintained in O(1) by the enabled set.
    pub fn in_flight(&self) -> usize {
        self.enabled.in_flight() as usize
    }

    /// Read-only access to the maintained enabled set (diagnostics, tests, and the
    /// brute-force consistency proptest).
    pub fn enabled_set(&self) -> &EnabledSet {
        &self.enabled
    }

    /// Direct access to one incoming channel (fault injection and tests).
    pub fn channel(&self, node: NodeId, label: ChannelLabel) -> &Channel<P::Msg> {
        self.slab.get(node, label)
    }

    /// Mutable access to one incoming channel (fault injection and tests).
    ///
    /// The returned guard re-synchronizes the enabled set (and, when enabled, the Lamport
    /// stamp queues) on drop, so arbitrary surgery (clear, insert, remove) keeps the
    /// enabled-set invariant.
    pub fn channel_mut(&mut self, node: NodeId, label: ChannelLabel) -> ChannelMut<'_, P::Msg> {
        let flat = self.slab.flat(node, label);
        ChannelMut {
            channel: self.slab.get_mut(node, label),
            enabled: &mut self.enabled,
            clocks: self.clocks.as_deref_mut(),
            node,
            label,
            flat,
        }
    }

    /// The flat slab index of `node`'s incoming channel `label` (see [`crate::slab`]).
    #[inline]
    pub fn flat_index(&self, node: NodeId, label: ChannelLabel) -> usize {
        self.slab.flat(node, label)
    }

    /// Total number of directed channels in the network (2(n−1) on a tree).
    #[inline]
    pub fn num_flat_channels(&self) -> usize {
        self.slab.num_channels()
    }

    /// Enables per-node Lamport-clock instrumentation (see [`crate::clocks`]).  Idempotent;
    /// clocks start at zero and existing in-flight messages get unknown-origin stamps.
    pub fn enable_clocks(&mut self) {
        if self.clocks.is_none() {
            let mut clocks =
                Box::new(LamportClocks::new(self.nodes.len(), self.slab.num_channels()));
            for (v, l, ch) in self.slab.iter() {
                clocks.resync(self.slab.flat(v, l), ch.len());
            }
            self.clocks = Some(clocks);
        }
    }

    /// The Lamport clocks, when instrumentation is enabled.
    pub fn clocks(&self) -> Option<&LamportClocks> {
        self.clocks.as_deref()
    }

    /// Enqueues `msg` as if `from_node` had sent it on its channel `label`; bypasses the
    /// process code.  Used to seed scenarios and by fault injection.
    pub fn inject_from(&mut self, from_node: NodeId, label: ChannelLabel, msg: P::Msg) {
        let (dest, dest_label) = self.slab.endpoint(from_node, label);
        self.metrics.record_send(from_node, msg.kind());
        if let Some(clocks) = self.clocks.as_deref_mut() {
            clocks.on_send(from_node, self.slab.flat(dest, dest_label));
        }
        let channel = self.slab.get_mut(dest, dest_label);
        channel.push(msg);
        let len = channel.len();
        self.enabled.note_len(dest, dest_label, len);
    }

    /// Enqueues `msg` directly onto `node`'s incoming channel `label` (fault injection).
    pub fn inject_into(&mut self, node: NodeId, label: ChannelLabel, msg: P::Msg) {
        if let Some(clocks) = self.clocks.as_deref_mut() {
            clocks.on_inject(self.slab.flat(node, label));
        }
        let channel = self.slab.get_mut(node, label);
        channel.push(msg);
        let len = channel.len();
        self.enabled.note_len(node, label, len);
    }

    /// Sends one copy of `msg` on **every** outgoing channel of `node`, bypassing process
    /// code — the marker broadcast of the Chandy–Lamport snapshot layer.  Returns the number
    /// of copies sent (the node's degree).
    pub fn broadcast_from(&mut self, node: NodeId, msg: P::Msg) -> usize {
        let degree = self.topo.degree(node);
        for label in 0..degree {
            self.inject_from(node, label, msg.clone());
        }
        degree
    }

    /// Consumes the head message of `node`'s incoming channel `label` **without** delivering
    /// it to the process — the marker-consumption step of the snapshot layer.  Counts as one
    /// activation (a delivery) on the logical clock and in the metrics.
    ///
    /// # Panics
    ///
    /// Panics if the channel is empty (the snapshot runner only consumes a peeked head).
    pub fn consume_marker(&mut self, node: NodeId, label: ChannelLabel) -> P::Msg {
        self.now += 1;
        self.metrics.activations += 1;
        self.metrics.deliveries += 1;
        let flat = self.slab.flat(node, label);
        let channel = self.slab.get_mut(node, label);
        let msg = channel.pop().expect("consume_marker requires a non-empty channel");
        let len = channel.len();
        self.enabled.note_len(node, label, len);
        if let Some(clocks) = self.clocks.as_deref_mut() {
            clocks.on_deliver(node, flat);
        }
        msg
    }

    /// Executes one activation chosen by `scheduler`. Returns the activation executed.
    pub fn step(&mut self, scheduler: &mut impl Scheduler) -> Activation {
        let activation = scheduler.next_activation(self);
        self.execute(activation);
        activation
    }

    /// Executes one activation chosen by `daemon` through the fused event-driven path: the
    /// daemon reads the maintained enabled set directly, with no virtual dispatch.
    ///
    /// Produces exactly the same activation as [`Network::step`] with the same daemon (the
    /// bundled daemons share one decision function between both paths).
    pub fn step_event<S: EventScheduler>(&mut self, daemon: &mut S) -> Activation {
        let activation = daemon.next_event(&EnabledShape::new(&self.enabled));
        self.execute(activation);
        activation
    }

    /// The fused event-driven run loop: `steps` activations chosen by `daemon` against the
    /// maintained enabled set, with `observer` invoked after each.  Monomorphized over the
    /// daemon and the observer so the whole step inlines into one allocation-free loop.
    pub(crate) fn run_event<S: EventScheduler>(
        &mut self,
        daemon: &mut S,
        steps: u64,
        mut observer: impl FnMut(Activation),
    ) {
        for _ in 0..steps {
            let activation = daemon.next_event(&EnabledShape::new(&self.enabled));
            self.execute(activation);
            observer(activation);
        }
    }

    /// Executes a specific activation (exposed so tests can drive precise interleavings).
    pub fn execute(&mut self, activation: Activation) {
        self.execute_recorded(activation, &mut ());
    }

    /// Executes `activation` exactly like [`Network::execute`] while recording its channel
    /// effects into `undo`, so [`Network::revert`] can put the channels back.
    ///
    /// The recorded effects are the consumed head message (if the activation was a
    /// delivery) and every channel pushed.  The activated process's *local state* is not
    /// recorded — callers that need full-configuration undo (the exhaustive checker's
    /// delta engine) snapshot the one activated node themselves, which is cheap because an
    /// activation mutates no other process.
    pub fn execute_undoable(&mut self, activation: Activation, undo: &mut StepUndo<P::Msg>)
    where
        P::Msg: Clone,
    {
        undo.clear();
        self.execute_recorded(activation, undo);
    }

    /// Reverts the channel effects recorded by [`Network::execute_undoable`], draining
    /// `undo`: pushed messages are popped back off the channel tails (in reverse push
    /// order) and the consumed message, if any, returns to the head of its channel.  The
    /// enabled set is re-synchronized and the channel counters reverse their original
    /// movement (see [`crate::channel`]), so channels are restored bit-exactly.
    ///
    /// The logical clock, metrics and trace are **not** rewound — they are run-time
    /// accumulators outside the configuration abstraction (the same fields
    /// checker-style `restore` paths leave untouched).
    pub fn revert(&mut self, undo: &mut StepUndo<P::Msg>) {
        for &(node, label) in undo.sent.iter().rev() {
            let channel = self.slab.get_mut(node, label);
            let popped = channel.unpush();
            debug_assert!(popped.is_some(), "recorded push must still be on the channel");
            let len = channel.len();
            self.enabled.note_len(node, label, len);
            if let Some(clocks) = self.clocks.as_deref_mut() {
                clocks.resync(self.slab.flat(node, label), len);
            }
        }
        undo.sent.clear();
        if let Some((node, label, msg)) = undo.delivered.take() {
            let channel = self.slab.get_mut(node, label);
            channel.unpop(msg);
            let len = channel.len();
            self.enabled.note_len(node, label, len);
            if let Some(clocks) = self.clocks.as_deref_mut() {
                clocks.resync(self.slab.flat(node, label), len);
            }
        }
    }

    fn execute_recorded<U: UndoSink<P::Msg>>(&mut self, activation: Activation, undo: &mut U) {
        self.now += 1;
        self.metrics.activations += 1;
        match activation {
            Activation::Deliver { node, channel } => {
                let msg = self.slab.get_mut(node, channel).pop();
                match msg {
                    Some(msg) => {
                        let len = self.slab.get(node, channel).len();
                        self.enabled.note_len(node, channel, len);
                        self.metrics.deliveries += 1;
                        if let Some(clocks) = self.clocks.as_deref_mut() {
                            clocks.on_deliver(node, self.slab.flat(node, channel));
                        }
                        undo.record_delivered(node, channel, &msg);
                        self.run_node(node, Some((channel, msg)), undo);
                    }
                    None => {
                        // The scheduler raced an empty channel; treat it as a tick so time
                        // still advances and fairness is preserved.
                        self.metrics.ticks += 1;
                        if let Some(clocks) = self.clocks.as_deref_mut() {
                            clocks.on_tick(node);
                        }
                        self.run_node(node, None, undo);
                    }
                }
            }
            Activation::Tick { node } => {
                self.metrics.ticks += 1;
                if let Some(clocks) = self.clocks.as_deref_mut() {
                    clocks.on_tick(node);
                }
                self.run_node(node, None, undo);
            }
        }
    }

    fn run_node<U: UndoSink<P::Msg>>(
        &mut self,
        node: NodeId,
        incoming: Option<(ChannelLabel, P::Msg)>,
        undo: &mut U,
    ) {
        debug_assert!(self.outbox.is_empty() && self.event_buf.is_empty());
        let degree = self.topo.degree(node);
        {
            let mut ctx = Context {
                node,
                degree,
                now: self.now,
                outbox: &mut self.outbox,
                events: &mut self.event_buf,
            };
            let proc = &mut self.nodes[node];
            if let Some((label, msg)) = incoming {
                proc.on_message(label, msg, &mut ctx);
            }
            proc.on_tick(&mut ctx);
        }
        // Flush sends: route each buffered message through the topology.  The scratch
        // buffers are drained in place and handed back, so their capacity is reused and the
        // (dominant) tick-only steps touch nothing beyond the two emptiness checks.
        if !self.outbox.is_empty() {
            let mut outbox = std::mem::take(&mut self.outbox);
            for (label, msg) in outbox.drain(..) {
                let (dest, dest_label) = self.slab.endpoint(node, label);
                self.metrics.record_send(node, msg.kind());
                if let Some(clocks) = self.clocks.as_deref_mut() {
                    clocks.on_send(node, self.slab.flat(dest, dest_label));
                }
                let channel = self.slab.get_mut(dest, dest_label);
                channel.push(msg);
                let len = channel.len();
                self.enabled.note_len(dest, dest_label, len);
                if let Some(journal) = undo.journal() {
                    journal.push((dest, dest_label));
                }
            }
            self.outbox = outbox;
        }
        // Flush events into the trace.
        if !self.event_buf.is_empty() {
            let mut events = std::mem::take(&mut self.event_buf);
            for ev in events.drain(..) {
                self.trace.push(self.now, node, ev);
            }
            self.event_buf = events;
        }
    }

    /// Resets the network for a fresh trial **in place**, reusing every allocation: channels
    /// are emptied with their spill capacity retained, the enabled set, clock, trace and
    /// metrics return to their boot values, and `reset_node(v, &mut process)` re-initializes
    /// each process (typically [`crate::Restartable::restart`] plus installing the trial's
    /// freshly seeded driver).
    ///
    /// This is the multi-trial fast path of the experiment harness: after `reset_trial` the
    /// network is observationally identical to a freshly built one, without re-allocating
    /// the channel matrix, enabled-set arrays, or metric vectors.
    pub fn reset_trial(&mut self, mut reset_node: impl FnMut(NodeId, &mut P)) {
        for (v, node) in self.nodes.iter_mut().enumerate() {
            reset_node(v, node);
        }
        self.reset_runtime();
    }

    /// Resets this network to match `template` (same topology shape required), reusing every
    /// allocation: processes are cloned from the template's, channel contents are copied,
    /// and the clock copies the template's.  The trace and metrics restart at zero, as do
    /// the per-channel traffic counters — the reset network is a fresh *trial* of the
    /// template's configuration, not a forensic copy of its history.
    ///
    /// Use [`Network::reset_trial`] instead when per-trial state (e.g. a seeded driver)
    /// cannot be cloned from a template.
    ///
    /// # Panics
    ///
    /// Panics if `template`'s shape (node count or channel degrees) differs.
    pub fn reset_from(&mut self, template: &Network<P, T>)
    where
        P: Clone,
        P::Msg: Clone,
    {
        assert_eq!(
            self.nodes.len(),
            template.nodes.len(),
            "reset_from requires identically shaped networks"
        );
        self.nodes.clone_from(&template.nodes);
        self.reset_runtime();
        for v in 0..self.nodes.len() {
            assert_eq!(
                template.slab.degree(v),
                self.slab.degree(v),
                "reset_from requires identical degrees (node {v})"
            );
            for l in 0..self.slab.degree(v) {
                let src = template.slab.get(v, l);
                let dst = self.slab.get_mut(v, l);
                for msg in src.iter() {
                    dst.push(msg.clone());
                }
                let len = dst.len();
                self.enabled.note_len(v, l, len);
                if let Some(clocks) = self.clocks.as_deref_mut() {
                    clocks.resync(self.slab.flat(v, l), len);
                }
            }
        }
        self.now = template.now;
    }

    /// Rebuilds this network over the (churned) topology of `donor`, carrying state over —
    /// the topology-churn primitive of the fault-schedule engine.
    ///
    /// `donor` is a freshly constructed network over the *new* topology; `old_of_new[v]`
    /// names the node of `self` that becomes node `v` of the rebuilt network (`None` for a
    /// freshly joined node).  The carryover rules are chosen so the result is always
    /// structurally consistent, and every deviation from a clean rebuild is a bona-fide
    /// transient fault of the paper's model:
    ///
    /// * a surviving node keeps its process state iff its labelled neighbourhood is
    ///   unchanged — same degree, and every channel label leads to the same surviving
    ///   neighbour.  A node whose incident edges changed (the churn parent, a rewired
    ///   node's old and new parents) is restarted from the donor's fresh process: the
    ///   local-state reset at the locus of churn.  This also guarantees no carried process
    ///   ever references a channel label outside its new degree;
    /// * a channel is carried whole — contents *and* conservation counters — iff both of
    ///   its endpoints survive and the link itself survives (matched by endpoint pair, not
    ///   by label, so links whose labels shifted still carry).  Messages on severed links
    ///   vanish with their channel: the whole-channel loss of a topology fault;
    /// * the logical clock, the trace, and the aggregate metrics counters continue across
    ///   the churn (they are run-time accumulators, not configuration); the per-node send
    ///   counters are remapped onto the new id space via [`Metrics::remap_nodes`].
    ///
    /// The enabled set is rebuilt for the new degree structure and re-synced from the
    /// carried channels, so the CSR layout and every incremental invariant hold by
    /// construction.
    ///
    /// # Panics
    ///
    /// Panics if `old_of_new` does not have one entry per donor node, names an
    /// out-of-range old node, or maps two new ids to the same old node.
    pub fn rebuild_from(&mut self, mut donor: Network<P, T>, old_of_new: &[Option<NodeId>]) {
        let old_n = self.nodes.len();
        let new_n = donor.nodes.len();
        assert_eq!(old_of_new.len(), new_n, "old_of_new must cover every donor node");
        let mut claimed = vec![false; old_n];
        for &ov in old_of_new.iter().flatten() {
            assert!(ov < old_n, "old node {ov} out of range");
            assert!(!claimed[ov], "old node {ov} mapped twice");
            claimed[ov] = true;
        }

        let mut old_nodes: Vec<Option<P>> = self.nodes.drain(..).map(Some).collect();
        // The flat slab drains into a per-node matrix for the claim-by-endpoint walk — this
        // is the cold path of topology churn, not the stepping path.
        let mut old_channels: Vec<Vec<Option<Channel<P::Msg>>>> = self.slab.take_rows();

        let new_topo = donor.topo;
        let mut nodes = donor.nodes;
        let mut channels: Vec<Vec<Option<Channel<P::Msg>>>> = donor.slab.take_rows();
        let old_topo = &self.topo;

        for v in 0..new_n {
            let Some(ov) = old_of_new[v] else { continue };
            let degree = new_topo.degree(v);
            let same_neighbourhood = degree == old_topo.degree(ov)
                && (0..degree).all(|l| {
                    old_of_new[new_topo.endpoint(v, l).0] == Some(old_topo.endpoint(ov, l).0)
                });
            if same_neighbourhood {
                nodes[v] = old_nodes[ov].take().expect("each old node is claimed once");
            }
            // Channels carry independently of the process decision: in-flight messages
            // outlive a local restart, exactly as they outlive a crash.
            for l in 0..degree {
                let Some(old_peer) = old_of_new[new_topo.endpoint(v, l).0] else { continue };
                let survived = (0..old_topo.degree(ov))
                    .find(|&ol| old_topo.endpoint(ov, ol).0 == old_peer);
                if let Some(ol) = survived {
                    channels[v][l] =
                        Some(old_channels[ov][ol].take().expect("each old channel is claimed once"));
                }
            }
        }

        let slab = ChannelSlab::from_rows(&new_topo, channels);
        let degrees: Vec<usize> = (0..new_n).map(|v| new_topo.degree(v)).collect();
        let mut enabled = EnabledSet::new(&degrees);
        for (v, l, channel) in slab.iter() {
            enabled.note_len(v, l, channel.len());
        }

        self.topo = new_topo;
        self.nodes = nodes;
        self.slab = slab;
        self.enabled = enabled;
        if let Some(clocks) = self.clocks.as_deref_mut() {
            // Churn is a transient fault: clock history is coarsened to zero and every
            // carried message gets the unknown-origin stamp, which is sound (see
            // `crate::clocks`).
            clocks.reshape(new_n, self.slab.num_channels());
            for (v, l, ch) in self.slab.iter() {
                clocks.resync(self.slab.flat(v, l), ch.len());
            }
        }
        self.metrics.remap_nodes(old_of_new);
        // Per-step scratch never survives an activation; clear it anyway so a rebuild
        // mid-surgery can't smuggle stale labels across topologies.
        self.outbox.clear();
        self.event_buf.clear();
    }

    /// Zeroes every run-time accumulator in place (channels, enabled set, clock, trace,
    /// metrics), keeping all allocations.  Process state is untouched.
    fn reset_runtime(&mut self) {
        self.slab.reset();
        self.enabled.reset();
        if let Some(clocks) = self.clocks.as_deref_mut() {
            clocks.reset();
        }
        self.now = 0;
        self.trace.clear();
        self.metrics.reset();
    }
}

impl<P: Process, T: Topology> NetworkView for Network<P, T> {
    fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn degree(&self, node: NodeId) -> usize {
        self.topo.degree(node)
    }

    fn channel_len(&self, node: NodeId, label: ChannelLabel) -> usize {
        self.slab.get(node, label).len()
    }

    fn now(&self) -> u64 {
        self.now
    }

    fn messages_in_flight(&self) -> usize {
        self.enabled.in_flight() as usize
    }
}

impl<P: Process, T: Topology> EnabledView for Network<P, T> {
    fn deliverable_count(&self, node: NodeId) -> usize {
        self.enabled.deliverable_count(node)
    }

    fn next_deliverable_from(&self, node: NodeId, start: ChannelLabel) -> Option<ChannelLabel> {
        self.enabled.next_deliverable_from(node, start)
    }

    fn nth_deliverable(&self, node: NodeId, idx: usize) -> Option<ChannelLabel> {
        self.enabled.nth_deliverable(node, idx)
    }

    fn snapshot_deliverable(&self, round: &mut Vec<Option<ChannelLabel>>) {
        round.clear();
        round.resize(self.enabled.num_nodes(), None);
        for i in 0..self.enabled.enabled_len() {
            let v = self.enabled.enabled_node(i);
            round[v] = self.enabled.next_deliverable_from(v, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::{Event, MessageKind};
    use crate::scheduler::RoundRobin;
    use topology::builders;

    /// A toy protocol: forwards every received number to channel (from+1) mod Δ, incremented.
    /// The root emits one initial message on its first tick.
    #[derive(Clone)]
    struct Forwarder {
        is_root: bool,
        started: bool,
        received: Vec<u64>,
    }

    #[derive(Clone, Debug)]
    struct Num(u64);
    impl MessageKind for Num {
        fn kind(&self) -> &'static str {
            "num"
        }
    }

    impl Process for Forwarder {
        type Msg = Num;

        fn on_message(&mut self, from: ChannelLabel, msg: Num, ctx: &mut Context<'_, Num>) {
            self.received.push(msg.0);
            ctx.send_next(from, Num(msg.0 + 1));
        }

        fn on_tick(&mut self, ctx: &mut Context<'_, Num>) {
            if self.is_root && !self.started {
                self.started = true;
                ctx.send(0, Num(0));
                ctx.emit(Event::Note("started"));
            }
        }
    }

    fn forwarder_net(
    ) -> Network<Forwarder, topology::OrientedTree> {
        let tree = builders::figure1_tree();
        Network::new(tree, |id| Forwarder { is_root: id == 0, started: false, received: vec![] })
    }

    #[test]
    fn message_travels_the_virtual_ring() {
        let mut net = forwarder_net();
        let mut sched = RoundRobin::new();
        // Run enough activations for the token to do several loops of the ring.
        for _ in 0..2000 {
            net.step(&mut sched);
        }
        // Every node received the counter at least once; the counter increases strictly, so
        // the token never duplicated or disappeared.
        for v in 0..net.len() {
            assert!(!net.node(v).received.is_empty(), "node {v} never saw the token");
        }
        let all: Vec<u64> = {
            let mut evs: Vec<(u64, u64)> = Vec::new();
            for v in 0..net.len() {
                // can't easily interleave, so just check each node's local sequence increases
                let r = &net.node(v).received;
                for w in r.windows(2) {
                    assert!(w[1] > w[0]);
                }
                evs.push((v as u64, r.len() as u64));
            }
            evs.iter().map(|e| e.1).collect()
        };
        assert!(all.iter().sum::<u64>() > 8);
        assert_eq!(net.trace().events().len(), 1);
        assert!(net.metrics().messages_sent > 8);
        assert_eq!(net.metrics().sent_of_kind("num"), net.metrics().messages_sent);
    }

    #[test]
    fn deliver_on_empty_channel_degrades_to_tick() {
        let mut net = forwarder_net();
        let before = net.now();
        net.execute(Activation::Deliver { node: 3, channel: 0 });
        assert_eq!(net.now(), before + 1);
        assert_eq!(net.metrics().ticks, 1);
        assert_eq!(net.metrics().deliveries, 0);
    }

    #[test]
    fn inject_from_routes_through_topology() {
        let mut net = forwarder_net();
        // Simulate node 1 (a) sending on its channel 0 (towards the root).
        net.inject_from(1, 0, Num(41));
        // The root's channel 0 leads to a=1, so the message sits on root's incoming channel 0.
        assert_eq!(net.channel(0, 0).len(), 1);
        net.execute(Activation::Deliver { node: 0, channel: 0 });
        assert_eq!(net.node(0).received, vec![41]);
    }

    #[test]
    fn execute_undoable_then_revert_restores_all_channels() {
        let mut net = forwarder_net();
        // Seed a message so a delivery (which also triggers a forward-send) is available.
        net.inject_from(1, 0, Num(41));
        let before: Vec<Vec<Vec<u64>>> = (0..net.len())
            .map(|v| {
                (0..net.topology().degree(v))
                    .map(|l| net.channel(v, l).iter().map(|m| m.0).collect())
                    .collect()
            })
            .collect();
        let in_flight = net.in_flight();

        let mut undo = StepUndo::new();
        net.execute_undoable(Activation::Deliver { node: 0, channel: 0 }, &mut undo);
        assert_eq!(undo.delivered_channel(), Some((0, 0)));
        // Two pushes: the forwarded token, plus the root's first-tick initial message
        // (on_tick runs within the same activation).
        assert_eq!(undo.sent_channels().len(), 2);
        assert_ne!(net.in_flight(), 0);

        net.revert(&mut undo);
        let after: Vec<Vec<Vec<u64>>> = (0..net.len())
            .map(|v| {
                (0..net.topology().degree(v))
                    .map(|l| net.channel(v, l).iter().map(|m| m.0).collect())
                    .collect()
            })
            .collect();
        assert_eq!(after, before, "channel contents are restored bit-exactly");
        assert_eq!(net.in_flight(), in_flight, "the enabled set is re-synchronized");
        // The record drained; reverting again is a no-op.
        assert_eq!(undo.delivered_channel(), None);
        assert!(undo.sent_channels().is_empty());
        net.revert(&mut undo);
        assert_eq!(net.in_flight(), in_flight);
    }

    #[test]
    fn execute_undoable_tick_records_only_sends() {
        let mut net = forwarder_net();
        let mut undo = StepUndo::new();
        // The root's first tick emits the initial message.
        net.execute_undoable(Activation::Tick { node: 0 }, &mut undo);
        assert_eq!(undo.delivered_channel(), None);
        assert_eq!(undo.sent_channels().len(), 1);
        net.revert(&mut undo);
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn reset_trial_matches_a_freshly_built_network() {
        let mut net = forwarder_net();
        let mut sched = RoundRobin::new();
        for _ in 0..500 {
            net.step(&mut sched);
        }
        net.reset_trial(|id, node| {
            *node = Forwarder { is_root: id == 0, started: false, received: vec![] };
        });
        assert_eq!(net.now(), 0);
        assert_eq!(net.in_flight(), 0);
        assert_eq!(net.metrics().activations, 0);
        assert!(net.trace().events().is_empty());
        for v in 0..net.len() {
            for l in 0..net.topology().degree(v) {
                assert!(net.channel(v, l).is_empty());
                assert_eq!(net.channel(v, l).enqueued(), 0);
            }
        }
        // Re-running from the reset state reproduces a fresh network's execution.
        let mut fresh = forwarder_net();
        let mut s1 = RoundRobin::new();
        let mut s2 = RoundRobin::new();
        for _ in 0..300 {
            assert_eq!(net.step(&mut s1), fresh.step(&mut s2));
        }
        for v in 0..net.len() {
            assert_eq!(net.node(v).received, fresh.node(v).received);
        }
    }

    fn fresh_forwarder(id: NodeId) -> Forwarder {
        Forwarder { is_root: id == 0, started: false, received: vec![] }
    }

    /// Brute-force re-derivation of the enabled set from the channel matrix.
    fn assert_enabled_consistent(net: &Network<Forwarder, topology::OrientedTree>) {
        let enabled = net.enabled_set();
        let mut in_flight = 0usize;
        for v in 0..net.len() {
            let degree = net.topology().degree(v);
            assert_eq!(enabled.degree(v), degree);
            let nonempty: Vec<usize> =
                (0..degree).filter(|&l| !net.channel(v, l).is_empty()).collect();
            assert_eq!(enabled.deliverable_count(v), nonempty.len());
            for (i, &l) in nonempty.iter().enumerate() {
                assert_eq!(enabled.nth_deliverable(v, i), Some(l));
            }
            in_flight += (0..degree).map(|l| net.channel(v, l).len()).sum::<usize>();
        }
        assert_eq!(net.in_flight(), in_flight);
    }

    #[test]
    fn rebuild_from_carries_survivors_and_restarts_the_churn_locus() {
        // Figure-1 tree: r{a,d}, a{b,c}, d{e,f,g}; ids 0=r, 1=a, 2=b, 3=c, 4=d, 5=e...
        let mut net = forwarder_net();
        let mut sched = RoundRobin::new();
        for _ in 0..50 {
            net.step(&mut sched);
        }
        let received_before: Vec<Vec<u64>> =
            (0..net.len()).map(|v| net.node(v).received.clone()).collect();
        let clock = net.now();
        let messages_sent = net.metrics().messages_sent;

        // A fresh leaf joins under node 1 (a): only node 1's neighbourhood changes.
        let grown = net.topology().with_leaf_added(1);
        let donor = Network::new(grown, fresh_forwarder);
        let old_of_new: Vec<Option<NodeId>> = (0..8).map(Some).chain([None]).collect();
        // Park a message on a surviving link and one on the changed node's parent link.
        net.inject_into(2, 0, Num(77));
        let parked = net.channel(2, 0).len();
        net.rebuild_from(donor, &old_of_new);

        assert_eq!(net.len(), 9);
        assert_eq!(net.now(), clock, "the logical clock continues across churn");
        assert_eq!(net.metrics().messages_sent, messages_sent);
        assert_enabled_consistent(&net);
        // Node 1 gained a channel: restarted.  Its old subtree kept their state.
        assert!(net.node(1).received.is_empty(), "churn locus is restarted");
        assert_eq!(net.node(2).received, received_before[2]);
        assert_eq!(net.node(4).received, received_before[4]);
        assert!(net.node(8).received.is_empty(), "joined leaf boots fresh");
        // The surviving link 2<-parent carried contents and counters.
        assert_eq!(net.channel(2, 0).len(), parked);
        let law = |v: NodeId, l: ChannelLabel| {
            let ch = net.channel(v, l);
            assert_eq!(ch.enqueued(), ch.delivered() + ch.lost() + ch.len() as u64);
        };
        for v in 0..net.len() {
            for l in 0..net.topology().degree(v) {
                law(v, l);
            }
        }
        // The rebuilt network keeps running.
        for _ in 0..200 {
            net.step(&mut sched);
        }
        assert_enabled_consistent(&net);
    }

    #[test]
    fn rebuild_from_after_leaf_removal_remaps_ids() {
        let mut net = forwarder_net();
        let mut sched = RoundRobin::new();
        for _ in 0..60 {
            net.step(&mut sched);
        }
        // Remove leaf 3 (c, child of a): ids 4..8 shift down by one.
        let received_before: Vec<Vec<u64>> =
            (0..net.len()).map(|v| net.node(v).received.clone()).collect();
        let (shrunk, old_of_new) = net.topology().with_leaf_removed(3);
        let map: Vec<Option<NodeId>> = old_of_new.iter().copied().map(Some).collect();
        let donor = Network::new(shrunk, fresh_forwarder);
        net.rebuild_from(donor, &map);

        assert_eq!(net.len(), 7);
        assert_enabled_consistent(&net);
        // Old node 4 (d) is new node 3 with an unchanged neighbourhood: state carried.
        assert_eq!(net.node(3).received, received_before[4]);
        // Node 1 (a) lost a child: restarted.
        assert!(net.node(1).received.is_empty());
        for _ in 0..200 {
            net.step(&mut sched);
        }
        assert_enabled_consistent(&net);
    }

    #[test]
    #[should_panic(expected = "mapped twice")]
    fn rebuild_from_rejects_a_non_injective_map() {
        let mut net = forwarder_net();
        let donor = Network::new(builders::figure1_tree(), fresh_forwarder);
        let map: Vec<Option<NodeId>> = vec![Some(0); 8];
        net.rebuild_from(donor, &map);
    }

    #[test]
    fn reset_from_clones_template_state_and_reuses_the_network() {
        // Template: a pristine network with one injected message.
        let mut template = forwarder_net();
        template.inject_into(4, 0, Num(7));
        // Worn-out network: run it far away from the template's state.
        let mut net = forwarder_net();
        let mut sched = RoundRobin::new();
        for _ in 0..400 {
            net.step(&mut sched);
        }
        net.reset_from(&template);
        assert_eq!(net.now(), template.now());
        assert_eq!(net.in_flight(), 1);
        assert_eq!(net.channel(4, 0).iter().map(|m| m.0).collect::<Vec<_>>(), vec![7]);
        assert_eq!(net.metrics().activations, 0, "metrics restart at zero");
        // Both copies now run identically.
        let mut s1 = RoundRobin::new();
        let mut s2 = RoundRobin::new();
        for _ in 0..300 {
            assert_eq!(net.step(&mut s1), template.step(&mut s2));
        }
        for v in 0..net.len() {
            assert_eq!(net.node(v).received, template.node(v).received);
        }
    }

    #[test]
    fn in_flight_and_view_agree() {
        let mut net = forwarder_net();
        net.inject_into(4, 0, Num(1));
        net.inject_into(4, 2, Num(2));
        assert_eq!(net.in_flight(), 2);
        assert_eq!(net.messages_in_flight(), 2);
        assert_eq!(net.channel_len(4, 2), 1);
        assert_eq!(net.iter_messages().count(), 2);
    }
}
