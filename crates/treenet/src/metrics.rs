//! Execution metrics: message counts per kind, activations, per-node traffic.

use crate::NodeId;
use serde::Serialize;
use std::collections::BTreeMap;

/// Counters accumulated by the simulator during a run.
#[derive(Clone, Debug, Default, Serialize)]
pub struct Metrics {
    /// Total number of activations executed (message deliveries + ticks).
    pub activations: u64,
    /// Number of activations that delivered a message.
    pub deliveries: u64,
    /// Number of tick-only activations.
    pub ticks: u64,
    /// Total number of messages sent by processes.
    pub messages_sent: u64,
    /// Messages sent, broken down by [`crate::MessageKind::kind`].
    pub messages_by_kind: BTreeMap<&'static str, u64>,
    /// Messages sent per node.
    pub sent_by_node: Vec<u64>,
}

impl Metrics {
    /// Creates zeroed metrics for a network of `n` nodes.
    pub fn new(n: usize) -> Self {
        Metrics { sent_by_node: vec![0; n], ..Metrics::default() }
    }

    /// Records one sent message of the given kind by `node`.
    pub fn record_send(&mut self, node: NodeId, kind: &'static str) {
        self.messages_sent += 1;
        *self.messages_by_kind.entry(kind).or_insert(0) += 1;
        if let Some(slot) = self.sent_by_node.get_mut(node) {
            *slot += 1;
        }
    }

    /// Number of messages of `kind` sent so far.
    pub fn sent_of_kind(&self, kind: &str) -> u64 {
        self.messages_by_kind.get(kind).copied().unwrap_or(0)
    }

    /// Resets every counter to zero (e.g. to measure only the post-stabilization phase),
    /// keeping the per-node vector length.
    pub fn reset(&mut self) {
        let n = self.sent_by_node.len();
        *self = Metrics::new(n);
    }

    /// Remaps the per-node send counters onto a churned id space: entry `v` of the result
    /// is the old counter of node `old_of_new[v]`, or `0` for a freshly joined node.  The
    /// aggregate counters are untouched — a departed node's traffic already happened.
    pub fn remap_nodes(&mut self, old_of_new: &[Option<NodeId>]) {
        let old = std::mem::take(&mut self.sent_by_node);
        self.sent_by_node = old_of_new
            .iter()
            .map(|slot| slot.and_then(|ov| old.get(ov).copied()).unwrap_or(0))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_send_updates_all_counters() {
        let mut m = Metrics::new(3);
        m.record_send(1, "ResT");
        m.record_send(1, "ResT");
        m.record_send(2, "ctrl");
        assert_eq!(m.messages_sent, 3);
        assert_eq!(m.sent_of_kind("ResT"), 2);
        assert_eq!(m.sent_of_kind("ctrl"), 1);
        assert_eq!(m.sent_of_kind("PushT"), 0);
        assert_eq!(m.sent_by_node, vec![0, 2, 1]);
    }

    #[test]
    fn out_of_range_node_is_ignored_gracefully() {
        let mut m = Metrics::new(1);
        m.record_send(5, "ResT");
        assert_eq!(m.messages_sent, 1);
        assert_eq!(m.sent_by_node, vec![0]);
    }

    #[test]
    fn remap_nodes_shifts_and_zeroes_counters() {
        let mut m = Metrics::new(4);
        for (node, sends) in [(0, 1), (1, 2), (2, 3), (3, 4)] {
            for _ in 0..sends {
                m.record_send(node, "ResT");
            }
        }
        // Node 1 leaves (ids above shift down), then a fresh node joins at the tail.
        m.remap_nodes(&[Some(0), Some(2), Some(3), None]);
        assert_eq!(m.sent_by_node, vec![1, 3, 4, 0]);
        assert_eq!(m.messages_sent, 10, "aggregates survive the remap");
    }

    #[test]
    fn reset_zeroes_but_keeps_size() {
        let mut m = Metrics::new(4);
        m.activations = 10;
        m.record_send(0, "x");
        m.reset();
        assert_eq!(m.activations, 0);
        assert_eq!(m.messages_sent, 0);
        assert_eq!(m.sent_by_node.len(), 4);
    }
}
