//! Execution metrics: message counts per kind, activations, per-node traffic.

use crate::NodeId;
use serde::Serialize;
use std::collections::BTreeMap;

/// Above this many nodes, [`Metrics`] serializes `sent_by_node` as a summary (total, top
/// senders, log₂ histogram) instead of the dense per-node vector: a 10^6-node network would
/// otherwise emit multi-megabyte JSONL rows for every trial.
pub const SENT_BY_NODE_INLINE_MAX: usize = 256;

/// Number of top senders retained in the summarized `sent_by_node` encoding.
const SUMMARY_TOP: usize = 8;

/// Number of log₂ buckets in the summarized `sent_by_node` histogram: bucket 0 counts nodes
/// that sent nothing, bucket `i` (1 ≤ i < 7) counts nodes with sends in `[2^(i−1), 2^i)`,
/// and the last bucket collects everything above.
const SUMMARY_BUCKETS: usize = 8;

/// Counters accumulated by the simulator during a run.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// Total number of activations executed (message deliveries + ticks).
    pub activations: u64,
    /// Number of activations that delivered a message.
    pub deliveries: u64,
    /// Number of tick-only activations.
    pub ticks: u64,
    /// Total number of messages sent by processes.
    pub messages_sent: u64,
    /// Messages sent, broken down by [`crate::MessageKind::kind`].
    pub messages_by_kind: BTreeMap<&'static str, u64>,
    /// Messages sent per node.
    pub sent_by_node: Vec<u64>,
}

impl Metrics {
    /// Creates zeroed metrics for a network of `n` nodes.
    pub fn new(n: usize) -> Self {
        Metrics { sent_by_node: vec![0; n], ..Metrics::default() }
    }

    /// Records one sent message of the given kind by `node`.
    pub fn record_send(&mut self, node: NodeId, kind: &'static str) {
        self.messages_sent += 1;
        *self.messages_by_kind.entry(kind).or_insert(0) += 1;
        if let Some(slot) = self.sent_by_node.get_mut(node) {
            *slot += 1;
        }
    }

    /// Number of messages of `kind` sent so far.
    pub fn sent_of_kind(&self, kind: &str) -> u64 {
        self.messages_by_kind.get(kind).copied().unwrap_or(0)
    }

    /// Resets every counter to zero (e.g. to measure only the post-stabilization phase),
    /// keeping the per-node vector length.
    pub fn reset(&mut self) {
        let n = self.sent_by_node.len();
        *self = Metrics::new(n);
    }

    /// Remaps the per-node send counters onto a churned id space: entry `v` of the result
    /// is the old counter of node `old_of_new[v]`, or `0` for a freshly joined node.  The
    /// aggregate counters are untouched — a departed node's traffic already happened.
    pub fn remap_nodes(&mut self, old_of_new: &[Option<NodeId>]) {
        let old = std::mem::take(&mut self.sent_by_node);
        self.sent_by_node = old_of_new
            .iter()
            .map(|slot| slot.and_then(|ov| old.get(ov).copied()).unwrap_or(0))
            .collect();
    }
}

impl Serialize for Metrics {
    /// Hand-rolled so `sent_by_node` can switch representation by size: at or below
    /// [`SENT_BY_NODE_INLINE_MAX`] nodes the output is byte-identical to the old derived
    /// encoding (a dense array); above it, a summary object
    /// `{"nodes":…,"total":…,"top":[[node,count],…],"histogram":[…]}` bounds the row size
    /// regardless of n.  The field order matches the struct declaration, as the derive
    /// would emit.
    fn serialize_json(&self, out: &mut String) {
        out.push_str("{\"activations\":");
        self.activations.serialize_json(out);
        out.push_str(",\"deliveries\":");
        self.deliveries.serialize_json(out);
        out.push_str(",\"ticks\":");
        self.ticks.serialize_json(out);
        out.push_str(",\"messages_sent\":");
        self.messages_sent.serialize_json(out);
        out.push_str(",\"messages_by_kind\":");
        self.messages_by_kind.serialize_json(out);
        out.push_str(",\"sent_by_node\":");
        if self.sent_by_node.len() <= SENT_BY_NODE_INLINE_MAX {
            self.sent_by_node.serialize_json(out);
        } else {
            self.serialize_sent_summary(out);
        }
        out.push('}');
    }
}

impl Metrics {
    fn serialize_sent_summary(&self, out: &mut String) {
        let total: u64 = self.sent_by_node.iter().sum();
        let mut top: Vec<(u64, usize)> =
            self.sent_by_node.iter().copied().enumerate().map(|(v, c)| (c, v)).collect();
        // Highest count first; ties resolved by lowest node id for determinism.
        top.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        top.truncate(SUMMARY_TOP);
        let mut histogram = [0u64; SUMMARY_BUCKETS];
        for &count in &self.sent_by_node {
            let bucket = match count {
                0 => 0,
                c => (64 - c.leading_zeros() as usize).min(SUMMARY_BUCKETS - 1),
            };
            histogram[bucket] += 1;
        }
        out.push_str("{\"nodes\":");
        self.sent_by_node.len().serialize_json(out);
        out.push_str(",\"total\":");
        total.serialize_json(out);
        out.push_str(",\"top\":[");
        for (i, (count, node)) in top.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            node.serialize_json(out);
            out.push(',');
            count.serialize_json(out);
            out.push(']');
        }
        out.push_str("],\"histogram\":[");
        for (i, bucket) in histogram.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            bucket.serialize_json(out);
        }
        out.push_str("]}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_send_updates_all_counters() {
        let mut m = Metrics::new(3);
        m.record_send(1, "ResT");
        m.record_send(1, "ResT");
        m.record_send(2, "ctrl");
        assert_eq!(m.messages_sent, 3);
        assert_eq!(m.sent_of_kind("ResT"), 2);
        assert_eq!(m.sent_of_kind("ctrl"), 1);
        assert_eq!(m.sent_of_kind("PushT"), 0);
        assert_eq!(m.sent_by_node, vec![0, 2, 1]);
    }

    #[test]
    fn out_of_range_node_is_ignored_gracefully() {
        let mut m = Metrics::new(1);
        m.record_send(5, "ResT");
        assert_eq!(m.messages_sent, 1);
        assert_eq!(m.sent_by_node, vec![0]);
    }

    #[test]
    fn remap_nodes_shifts_and_zeroes_counters() {
        let mut m = Metrics::new(4);
        for (node, sends) in [(0, 1), (1, 2), (2, 3), (3, 4)] {
            for _ in 0..sends {
                m.record_send(node, "ResT");
            }
        }
        // Node 1 leaves (ids above shift down), then a fresh node joins at the tail.
        m.remap_nodes(&[Some(0), Some(2), Some(3), None]);
        assert_eq!(m.sent_by_node, vec![1, 3, 4, 0]);
        assert_eq!(m.messages_sent, 10, "aggregates survive the remap");
    }

    #[test]
    fn small_networks_serialize_the_dense_vector_byte_identically() {
        // Pin: at or below the inline threshold the encoding is exactly what the serde
        // derive produced before summarization existed — dense array, declaration order.
        let mut m = Metrics::new(3);
        m.activations = 5;
        m.deliveries = 2;
        m.ticks = 3;
        m.record_send(1, "ResT");
        m.record_send(1, "ctrl");
        m.record_send(2, "ResT");
        m.activations = 5; // record_send does not touch activations; keep the pinned value
        let mut out = String::new();
        m.serialize_json(&mut out);
        assert_eq!(
            out,
            "{\"activations\":5,\"deliveries\":2,\"ticks\":3,\"messages_sent\":3,\
             \"messages_by_kind\":{\"ResT\":2,\"ctrl\":1},\"sent_by_node\":[0,2,1]}"
        );
    }

    #[test]
    fn threshold_boundary_stays_dense() {
        let m = Metrics::new(SENT_BY_NODE_INLINE_MAX);
        let mut out = String::new();
        m.serialize_json(&mut out);
        assert!(out.contains("\"sent_by_node\":[0,"), "exactly-at-threshold stays dense");
    }

    #[test]
    fn large_networks_serialize_a_bounded_summary() {
        let n = SENT_BY_NODE_INLINE_MAX + 1;
        let mut m = Metrics::new(n);
        // Node 7 is the heaviest sender, node 40 second; 100 nodes sent exactly once.
        for _ in 0..70 {
            m.record_send(7, "ResT");
        }
        for _ in 0..9 {
            m.record_send(40, "ResT");
        }
        for v in 100..200 {
            m.record_send(v, "ResT");
        }
        let mut out = String::new();
        m.serialize_json(&mut out);
        assert!(!out.contains("\"sent_by_node\":["), "dense vector must not appear");
        assert!(out.contains("\"sent_by_node\":{\"nodes\":257,\"total\":179,"));
        assert!(out.contains("\"top\":[[7,70],[40,9],[100,1]"), "sorted by count, ties by id");
        // Histogram: 155 zero-senders, 100 nodes in [1,2), node 40 in [8,16) → bucket 4,
        // node 7 in [64,128) → bucket 7 (the overflow bucket).
        assert!(out.contains("\"histogram\":[155,100,0,0,1,0,0,1]"), "got: {out}");
        // The row stays small no matter how many nodes there are.
        assert!(out.len() < 500, "summary must bound the row size, got {} bytes", out.len());
    }

    #[test]
    fn reset_zeroes_but_keeps_size() {
        let mut m = Metrics::new(4);
        m.activations = 10;
        m.record_send(0, "x");
        m.reset();
        assert_eq!(m.activations, 0);
        assert_eq!(m.messages_sent, 0);
        assert_eq!(m.sent_by_node.len(), 4);
    }
}
