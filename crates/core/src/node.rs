//! The application-facing half of a protocol node: `State`, `Need`, `RSet`, and the
//! interactions with the application driver.
//!
//! Every protocol variant (naive, pusher, non-stabilizing, self-stabilizing) manages requests
//! identically — only the token machinery differs — so this logic is shared.

use crate::config::KlConfig;
use crate::message::Message;
use rand::rngs::StdRng;
use rand::Rng;
use treenet::app::BoxedDriver;
use treenet::{ChannelLabel, Context, CsState, Event, NodeId};

/// The request-handling state of one process: the paper's `State`, `Need` and `RSet`
/// variables plus the application driver that animates them.
pub struct AppSide {
    /// This process's identifier (used when consulting the driver).
    pub node: NodeId,
    /// The paper's `State ∈ {Req, In, Out}`.
    pub state: CsState,
    /// The paper's `Need ∈ [0..k]`: units requested by the application.
    pub need: usize,
    /// The paper's `RSet`: the multiset of channel labels on which reserved resource tokens
    /// arrived.  `|RSet|` is the number of units currently reserved.
    pub rset: Vec<ChannelLabel>,
    /// Activation at which the current critical section started (meaningful while `In`).
    pub entered_at: u64,
    driver: BoxedDriver,
}

impl AppSide {
    /// Creates the application side for `node`, driven by `driver`.
    pub fn new(node: NodeId, driver: BoxedDriver) -> Self {
        AppSide { node, state: CsState::Out, need: 0, rset: Vec::new(), entered_at: 0, driver }
    }

    /// Number of reserved resource tokens, `|RSet|`.
    pub fn reserved(&self) -> usize {
        self.rset.len()
    }

    /// True when the process is an unsatisfied requester: `State = Req ∧ |RSet| < Need`.
    pub fn wants_more(&self) -> bool {
        self.state == CsState::Req && self.rset.len() < self.need
    }

    /// True when the process may enter its critical section: `State = Req ∧ |RSet| ≥ Need`.
    pub fn can_enter(&self) -> bool {
        self.state == CsState::Req && self.rset.len() >= self.need
    }

    /// Reserves a resource token that arrived on channel `from` (adds it to `RSet`).
    pub fn reserve(&mut self, from: ChannelLabel) {
        self.rset.push(from);
    }

    /// Empties `RSet`, returning the channel labels of the tokens that were reserved.
    pub fn take_reserved(&mut self) -> Vec<ChannelLabel> {
        std::mem::take(&mut self.rset)
    }

    /// `Out → Req` transition: consults the application driver and, if it wants units,
    /// switches to `Req` (clamping the request to `1..=k`) and records the event.
    pub fn poll_request(&mut self, cfg: &KlConfig, ctx: &mut Context<'_, Message>) {
        if self.state != CsState::Out {
            return;
        }
        if let Some(units) = self.driver.next_request(self.node, ctx.now) {
            let units = units.clamp(1, cfg.k);
            self.need = units;
            self.state = CsState::Req;
            ctx.emit(Event::RequestIssued { units });
        }
    }

    /// `Req → In` transition (the paper's lines 78–81 / 62–65): enters the critical section
    /// when enough tokens are reserved.  Returns true if the transition happened.
    pub fn try_enter(&mut self, ctx: &mut Context<'_, Message>) -> bool {
        if self.can_enter() {
            self.state = CsState::In;
            self.entered_at = ctx.now;
            ctx.emit(Event::EnterCs { units: self.need });
            true
        } else {
            false
        }
    }

    /// `In → Out` transition (the paper's lines 82–91 / 66–72): when the application is done
    /// (`ReleaseCS()` holds), returns the reserved tokens to be retransmitted and records the
    /// event.  Returns `None` while the critical section is still running.
    pub fn try_release(&mut self, ctx: &mut Context<'_, Message>) -> Option<Vec<ChannelLabel>> {
        if self.state != CsState::In {
            return None;
        }
        if self.driver.release_cs(self.node, ctx.now, self.entered_at) {
            let tokens = self.take_reserved();
            self.state = CsState::Out;
            self.need = 0;
            ctx.emit(Event::ExitCs { units: tokens.len() });
            Some(tokens)
        } else {
            None
        }
    }

    /// Units currently *used* in the sense of the safety property: the tokens held while
    /// executing the critical section.
    pub fn units_in_use(&self) -> usize {
        if self.state == CsState::In {
            self.rset.len()
        } else {
            0
        }
    }

    /// Replaces the application driver (the multi-trial reuse path: a restarted node gets
    /// the next trial's freshly seeded driver instead of being rebuilt around it).
    pub fn set_driver(&mut self, driver: BoxedDriver) {
        self.driver = driver;
    }

    /// Crash-restart of the request state: `State`, `Need`, `RSet` and the entry timestamp
    /// return to their initial values (the application driver is external to the process and
    /// survives the crash).
    pub fn restart(&mut self) {
        self.state = CsState::Out;
        self.need = 0;
        self.rset.clear();
        self.entered_at = 0;
    }

    /// Transient-fault corruption of the request state: `State`, `Need` and `RSet` are set to
    /// arbitrary values within their domains (`Need ≤ k`, `|RSet| ≤ k`, labels `< degree`).
    pub fn corrupt(&mut self, cfg: &KlConfig, degree: usize, rng: &mut StdRng) {
        self.state = match rng.gen_range(0..3) {
            0 => CsState::Out,
            1 => CsState::Req,
            _ => CsState::In,
        };
        self.need = rng.gen_range(0..=cfg.k);
        let reserved = rng.gen_range(0..=cfg.k);
        self.rset = (0..reserved).map(|_| rng.gen_range(0..degree.max(1))).collect();
        self.entered_at = 0;
    }
}

impl std::fmt::Debug for AppSide {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppSide")
            .field("node", &self.node)
            .field("state", &self.state)
            .field("need", &self.need)
            .field("rset", &self.rset)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treenet::app::{AppDriver, Idle};

    /// Requests `units` once, holds the critical section for `hold` activations.
    struct OneShot {
        units: usize,
        hold: u64,
        fired: bool,
    }
    impl AppDriver for OneShot {
        fn next_request(&mut self, _node: NodeId, _now: u64) -> Option<usize> {
            if self.fired {
                None
            } else {
                self.fired = true;
                Some(self.units)
            }
        }
        fn release_cs(&mut self, _node: NodeId, now: u64, entered_at: u64) -> bool {
            now.saturating_sub(entered_at) >= self.hold
        }
    }

    fn ctx<'a>(
        outbox: &'a mut Vec<(ChannelLabel, Message)>,
        events: &'a mut Vec<Event>,
        now: u64,
    ) -> Context<'a, Message> {
        Context::detached(0, 2, now, outbox, events)
    }

    fn cfg() -> KlConfig {
        KlConfig::new(2, 4, 5)
    }

    #[test]
    fn full_request_cycle() {
        let mut app = AppSide::new(0, Box::new(OneShot { units: 2, hold: 0, fired: false }));
        let mut outbox = Vec::new();
        let mut events = Vec::new();

        {
            let mut c = ctx(&mut outbox, &mut events, 1);
            app.poll_request(&cfg(), &mut c);
        }
        assert_eq!(app.state, CsState::Req);
        assert_eq!(app.need, 2);
        assert!(app.wants_more());

        app.reserve(0);
        assert!(app.wants_more());
        app.reserve(1);
        assert!(app.can_enter());

        {
            let mut c = ctx(&mut outbox, &mut events, 2);
            assert!(app.try_enter(&mut c));
        }
        assert_eq!(app.state, CsState::In);
        assert_eq!(app.units_in_use(), 2);

        {
            let mut c = ctx(&mut outbox, &mut events, 3);
            let released = app.try_release(&mut c).expect("hold time 0 releases immediately");
            assert_eq!(released, vec![0, 1]);
        }
        assert_eq!(app.state, CsState::Out);
        assert_eq!(app.reserved(), 0);
        assert_eq!(events.len(), 3);
    }

    #[test]
    fn request_is_clamped_to_k() {
        let mut app = AppSide::new(3, Box::new(OneShot { units: 99, hold: 0, fired: false }));
        let mut outbox = Vec::new();
        let mut events = Vec::new();
        let mut c = ctx(&mut outbox, &mut events, 1);
        app.poll_request(&cfg(), &mut c);
        assert_eq!(app.need, 2, "requests larger than k are clamped to k");
    }

    #[test]
    fn release_waits_for_hold_time() {
        let mut app = AppSide::new(0, Box::new(OneShot { units: 1, hold: 10, fired: false }));
        let mut outbox = Vec::new();
        let mut events = Vec::new();
        {
            let mut c = ctx(&mut outbox, &mut events, 1);
            app.poll_request(&cfg(), &mut c);
        }
        app.reserve(1);
        {
            let mut c = ctx(&mut outbox, &mut events, 2);
            app.try_enter(&mut c);
        }
        {
            let mut c = ctx(&mut outbox, &mut events, 5);
            assert!(app.try_release(&mut c).is_none(), "held for only 3 activations");
        }
        {
            let mut c = ctx(&mut outbox, &mut events, 12);
            assert!(app.try_release(&mut c).is_some());
        }
    }

    #[test]
    fn idle_driver_never_transitions() {
        let mut app = AppSide::new(0, Box::new(Idle));
        let mut outbox = Vec::new();
        let mut events = Vec::new();
        let mut c = ctx(&mut outbox, &mut events, 1);
        app.poll_request(&cfg(), &mut c);
        assert_eq!(app.state, CsState::Out);
        assert!(!app.try_enter(&mut c));
        assert!(app.try_release(&mut c).is_none());
    }

    #[test]
    fn restart_returns_to_the_initial_state() {
        let mut app = AppSide::new(0, Box::new(OneShot { units: 2, hold: 0, fired: false }));
        let mut outbox = Vec::new();
        let mut events = Vec::new();
        {
            let mut c = ctx(&mut outbox, &mut events, 1);
            app.poll_request(&cfg(), &mut c);
        }
        app.reserve(0);
        app.reserve(1);
        {
            let mut c = ctx(&mut outbox, &mut events, 2);
            app.try_enter(&mut c);
        }
        app.restart();
        assert_eq!(app.state, CsState::Out);
        assert_eq!(app.need, 0);
        assert_eq!(app.reserved(), 0);
        assert_eq!(app.entered_at, 0);
    }

    #[test]
    fn corrupt_stays_within_domains() {
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = cfg();
        for _ in 0..200 {
            let mut app = AppSide::new(0, Box::new(Idle));
            app.corrupt(&cfg, 3, &mut rng);
            assert!(app.need <= cfg.k);
            assert!(app.reserved() <= cfg.k);
            for &label in &app.rset {
                assert!(label < 3);
            }
        }
    }
}
