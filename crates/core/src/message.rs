//! The protocol's message vocabulary.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use treenet::{ArbitraryMessage, MessageKind, SnapshotMessage};

/// A message of the k-out-of-ℓ exclusion protocol, `⟨type, value…⟩` in the paper's notation.
///
/// * [`Message::ResT`] — a resource token; one per resource unit, ℓ in a legitimate
///   configuration.
/// * [`Message::PushT`] — the pusher token; exactly one in a legitimate configuration.  It
///   forces processes that are neither in nor about to enter their critical section to
///   release reserved resource tokens, preventing the deadlock of Figure 2.
/// * [`Message::PrioT`] — the priority token; exactly one in a legitimate configuration.  Its
///   holder is immune to the pusher, preventing the livelock of Figure 3.
/// * [`Message::Ctrl`] — the controller, `⟨ctrl, C, R, PT, PPr⟩`: a counter-flushing DFS
///   token that counts the other tokens during one circulation so the root can repair their
///   number (create the missing ones, or reset the network when there are too many).
/// * [`Message::Garbage`] — an arbitrary corrupted message, as may populate channels after a
///   transient fault.  Legitimate protocol code never sends it; it exists so fault injection
///   can produce genuinely foreign channel content that the protocol must flush out.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Message {
    /// A resource token (one unit of the shared resource).
    ResT,
    /// The pusher token.
    PushT,
    /// The priority token.
    PrioT,
    /// The controller token `⟨ctrl, C, R, PT, PPr⟩`.
    Ctrl {
        /// The counter-flushing flag value `C` (the sender's `myC`).
        c: u64,
        /// The reset flag `R`: when true, every visited process erases its reserved tokens.
        r: bool,
        /// Number of resource tokens *passed* by the controller so far in this circulation.
        pt: u64,
        /// Number of priority tokens passed by the controller so far in this circulation.
        ppr: u8,
    },
    /// An arbitrary corrupted message (never produced by correct protocol code).
    Garbage(u16),
    /// A Chandy–Lamport snapshot marker carrying its snapshot id.  Markers are consumed by
    /// the snapshot layer ([`treenet::SnapshotRunner`]) before protocol code sees them and
    /// are never counted as tokens — the token census of a cut ignores them entirely.
    Marker(u32),
}

impl Message {
    /// True for resource tokens.
    pub fn is_resource(&self) -> bool {
        matches!(self, Message::ResT)
    }

    /// True for the pusher token.
    pub fn is_pusher(&self) -> bool {
        matches!(self, Message::PushT)
    }

    /// True for the priority token.
    pub fn is_priority(&self) -> bool {
        matches!(self, Message::PrioT)
    }

    /// True for controller messages.
    pub fn is_ctrl(&self) -> bool {
        matches!(self, Message::Ctrl { .. })
    }
}

impl MessageKind for Message {
    fn kind(&self) -> &'static str {
        match self {
            Message::ResT => "ResT",
            Message::PushT => "PushT",
            Message::PrioT => "PrioT",
            Message::Ctrl { .. } => "ctrl",
            Message::Garbage(_) => "garbage",
            Message::Marker(_) => "marker",
        }
    }
}

impl SnapshotMessage for Message {
    fn marker(snap: u32) -> Self {
        Message::Marker(snap)
    }

    fn as_marker(&self) -> Option<u32> {
        match self {
            Message::Marker(snap) => Some(*snap),
            _ => None,
        }
    }
}

impl ArbitraryMessage for Message {
    fn arbitrary(rng: &mut StdRng) -> Self {
        // Faults can forge any message type, including plausible-looking tokens and
        // controllers with arbitrary field values.  Markers are deliberately excluded: the
        // range 0..5 is pinned by the fuzz corpus signatures, and forging markers would let
        // fault injection confuse the snapshot layer rather than the protocol under test.
        match rng.gen_range(0..5) {
            0 => Message::ResT,
            1 => Message::PushT,
            2 => Message::PrioT,
            3 => Message::Ctrl {
                c: rng.gen_range(0..1_000),
                r: rng.gen_bool(0.3),
                pt: rng.gen_range(0..16),
                ppr: rng.gen_range(0..3),
            },
            _ => Message::Garbage(rng.gen()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn kinds_are_distinct() {
        let msgs = [
            Message::ResT,
            Message::PushT,
            Message::PrioT,
            Message::Ctrl { c: 0, r: false, pt: 0, ppr: 0 },
            Message::Garbage(9),
            Message::Marker(0),
        ];
        let kinds: std::collections::BTreeSet<&str> = msgs.iter().map(|m| m.kind()).collect();
        assert_eq!(kinds.len(), msgs.len());
    }

    #[test]
    fn predicates_match_variants() {
        assert!(Message::ResT.is_resource());
        assert!(Message::PushT.is_pusher());
        assert!(Message::PrioT.is_priority());
        assert!(Message::Ctrl { c: 1, r: true, pt: 2, ppr: 1 }.is_ctrl());
        assert!(!Message::Garbage(0).is_ctrl());
        assert!(!Message::ResT.is_pusher());
    }

    #[test]
    fn marker_roundtrips_through_the_snapshot_trait() {
        let m = <Message as SnapshotMessage>::marker(7);
        assert_eq!(m, Message::Marker(7));
        assert_eq!(m.as_marker(), Some(7));
        assert_eq!(Message::ResT.as_marker(), None);
        assert_eq!(m.kind(), "marker");
    }

    #[test]
    fn arbitrary_covers_all_variants() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut kinds = std::collections::BTreeSet::new();
        for _ in 0..500 {
            kinds.insert(Message::arbitrary(&mut rng).kind());
        }
        assert_eq!(kinds.len(), 5, "fault injection should be able to forge every message kind");
    }
}
