//! Rung 3 of the protocol ladder: resource tokens + pusher + **priority** token.
//!
//! The priority token (`PrioT`) cancels the effect of the pusher for one process at a time.
//! A process that receives the priority token keeps it while it has an unsatisfied request
//! (variable `Prio` records the arrival channel); while holding it, the process does **not**
//! release its reserved resource tokens when the pusher arrives.  When its request is
//! satisfied (or if it has none), the priority token is forwarded along the virtual ring.
//!
//! This removes the starvation of Figure 3 and yields a correct k-out-of-ℓ exclusion
//! protocol — but not a fault-tolerant one: tokens lost or duplicated by a transient fault
//! are never repaired.  Rung 4 ([`crate::ss`]) adds the counter-flushing controller for that.

use crate::config::KlConfig;
use crate::inspect::KlInspect;
use crate::message::Message;
use crate::node::AppSide;
use rand::rngs::StdRng;
use rand::Rng;
use topology::OrientedTree;
use treenet::app::BoxedDriver;
use treenet::{ChannelLabel, Context, Corruptible, CsState, Network, NodeId, Process};

/// A process running the full (non-fault-tolerant) k-out-of-ℓ exclusion protocol.
pub struct NonStabNode {
    cfg: KlConfig,
    /// Request state (`State`, `Need`, `RSet`) and application driver.
    pub app: AppSide,
    /// The paper's `Prio` variable: the channel the held priority token arrived on, if any.
    pub prio: Option<ChannelLabel>,
    is_root: bool,
    degree: usize,
    /// Whether the root has already created its initial tokens.  Public so that experiment
    /// scenarios can construct exact paper configurations (e.g. Figure 2's deadlock state)
    /// without going through the bootstrap.
    pub bootstrapped: bool,
}

impl NonStabNode {
    /// Creates the process for `node` with `degree` incident channels.
    pub fn new(node: NodeId, degree: usize, cfg: KlConfig, driver: BoxedDriver) -> Self {
        NonStabNode {
            cfg,
            app: AppSide::new(node, driver),
            prio: None,
            is_root: node == 0,
            degree,
            bootstrapped: false,
        }
    }

    fn handle_pusher(&mut self, from: ChannelLabel, ctx: &mut Context<'_, Message>) {
        // Corrected guard (see crate docs): only a process *without* the priority token
        // releases its reservations.  `literal_pusher_guard` restores the paper's printed
        // guard for the ablation experiment.
        let prio_cond = if self.cfg.literal_pusher_guard {
            self.prio.is_some()
        } else {
            self.prio.is_none()
        };
        let must_release =
            prio_cond && !self.app.can_enter() && self.app.state != CsState::In;
        if must_release {
            for label in self.app.take_reserved() {
                ctx.send_next(label, Message::ResT);
            }
        }
        ctx.send_next(from, Message::PushT);
    }

    fn handle_priority(&mut self, from: ChannelLabel, ctx: &mut Context<'_, Message>) {
        if self.prio.is_none() {
            self.prio = Some(from);
        } else {
            ctx.send_next(from, Message::PrioT);
        }
    }

    /// Bottom-of-loop priority release (paper lines 92–98 / 73–76): forward the priority
    /// token unless the process is an unsatisfied requester.
    fn release_priority_if_satisfied(&mut self, ctx: &mut Context<'_, Message>) {
        if let Some(label) = self.prio {
            if !self.app.wants_more() {
                ctx.send_next(label, Message::PrioT);
                self.prio = None;
            }
        }
    }
}

impl Process for NonStabNode {
    type Msg = Message;

    fn on_message(&mut self, from: ChannelLabel, msg: Message, ctx: &mut Context<'_, Message>) {
        match msg {
            Message::ResT => {
                if self.app.wants_more() {
                    self.app.reserve(from);
                } else {
                    ctx.send_next(from, Message::ResT);
                }
            }
            Message::PushT => self.handle_pusher(from, ctx),
            Message::PrioT => self.handle_priority(from, ctx),
            _ => {}
        }
    }

    fn on_tick(&mut self, ctx: &mut Context<'_, Message>) {
        if self.is_root && !self.bootstrapped {
            self.bootstrapped = true;
            if self.degree > 0 {
                ctx.send(0, Message::PrioT);
                for _ in 0..self.cfg.l {
                    ctx.send(0, Message::ResT);
                }
                ctx.send(0, Message::PushT);
            }
        }
        self.app.poll_request(&self.cfg, ctx);
        self.app.try_enter(ctx);
        if let Some(tokens) = self.app.try_release(ctx) {
            for label in tokens {
                ctx.send_next(label, Message::ResT);
            }
        }
        self.release_priority_if_satisfied(ctx);
    }
}

impl KlInspect for NonStabNode {
    fn cs_state(&self) -> CsState {
        self.app.state
    }
    fn need(&self) -> usize {
        self.app.need
    }
    fn reserved(&self) -> usize {
        self.app.reserved()
    }
    fn holds_priority(&self) -> bool {
        self.prio.is_some()
    }
}

impl treenet::Restartable for NonStabNode {
    fn restart(&mut self) {
        self.app.restart();
        self.prio = None;
        // See `NaiveNode`: the restarted root will re-create its initial tokens, permanently
        // inflating the token population — the non-stabilizing protocol never repairs it.
        self.bootstrapped = false;
    }
}

impl Corruptible for NonStabNode {
    fn corrupt(&mut self, rng: &mut StdRng) {
        let cfg = self.cfg;
        let degree = self.degree;
        self.app.corrupt(&cfg, degree, rng);
        self.prio =
            if rng.gen_bool(0.5) { Some(rng.gen_range(0..degree.max(1))) } else { None };
        self.bootstrapped = rng.gen_bool(0.5);
    }
}

/// Builds a network of [`NonStabNode`]s over `tree`.
///
/// # Panics
///
/// Panics if the tree has fewer than two nodes.
pub fn network(
    tree: OrientedTree,
    cfg: KlConfig,
    mut driver_for: impl FnMut(NodeId) -> BoxedDriver,
) -> Network<NonStabNode, OrientedTree> {
    use topology::Topology;
    assert!(tree.len() >= 2, "token circulation needs at least two processes");
    let degrees: Vec<usize> = (0..tree.len()).map(|v| tree.degree(v)).collect();
    Network::new(tree, |id| NonStabNode::new(id, degrees[id], cfg, driver_for(id)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use treenet::app::{AppDriver, Idle};
    use treenet::{run_until, RandomFair, RoundRobin};

    struct Fixed {
        units: usize,
        hold: u64,
    }
    impl AppDriver for Fixed {
        fn next_request(&mut self, _n: NodeId, _t: u64) -> Option<usize> {
            Some(self.units)
        }
        fn release_cs(&mut self, _n: NodeId, now: u64, e: u64) -> bool {
            now - e >= self.hold
        }
    }

    /// Figure 3 workload on the 3-node tree: r and b request 1 unit, a requests 2, with
    /// l = 3 and k = 2 (2-out-of-3 exclusion).
    fn figure3_workload(id: NodeId) -> BoxedDriver {
        match id {
            1 => Box::new(Fixed { units: 2, hold: 4 }),
            0 | 2 => Box::new(Fixed { units: 1, hold: 4 }),
            _ => Box::new(Idle),
        }
    }

    #[test]
    fn priority_prevents_figure3_starvation() {
        let tree = topology::builders::figure3_tree();
        let cfg = KlConfig::new(2, 3, 3);
        let mut net = network(tree, cfg, figure3_workload);
        let mut sched = RoundRobin::new();
        let out = run_until(&mut net, &mut sched, 500_000, |n| {
            n.trace().cs_entries(Some(1)) >= 5
        });
        assert!(
            out.is_satisfied(),
            "with the priority token the large requester (node a) must keep entering its CS"
        );
    }

    #[test]
    fn every_requester_is_served_under_saturation() {
        let tree = topology::builders::figure1_tree();
        let cfg = KlConfig::new(3, 5, 8);
        let mut net = network(tree, cfg, |id| match id {
            1 => Box::new(Fixed { units: 3, hold: 5 }) as BoxedDriver,
            2..=4 => Box::new(Fixed { units: 2, hold: 5 }) as BoxedDriver,
            _ => Box::new(Idle) as BoxedDriver,
        });
        let mut sched = RandomFair::new(7);
        let out = run_until(&mut net, &mut sched, 800_000, |n| {
            (1..=4).all(|v| n.trace().cs_entries(Some(v)) >= 2)
        });
        assert!(out.is_satisfied(), "fairness: every requester repeatedly enters its CS");
    }

    #[test]
    fn exactly_one_priority_token_exists() {
        let tree = topology::builders::binary(7);
        let cfg = KlConfig::new(1, 2, 7);
        let mut net = network(tree, cfg, |_| Box::new(Idle) as BoxedDriver);
        let mut sched = RoundRobin::new();
        treenet::run_for(&mut net, &mut sched, 100);
        for _ in 0..5_000 {
            net.step(&mut sched);
            let in_flight = net.iter_messages().filter(|(_, _, m)| m.is_priority()).count();
            let held = net.nodes().filter(|n| n.holds_priority()).count();
            assert_eq!(in_flight + held, 1, "exactly one priority token in the system");
        }
    }

    #[test]
    fn safety_holds_under_saturation() {
        let tree = topology::builders::caterpillar(3, 2);
        let cfg = KlConfig::new(2, 4, 9);
        let mut net = network(tree, cfg, |_| Box::new(Fixed { units: 2, hold: 3 }) as BoxedDriver);
        let mut sched = RandomFair::new(3);
        for _ in 0..40_000 {
            net.step(&mut sched);
            let used: usize = net.nodes().map(|n| n.units_in_use()).sum();
            assert!(used <= cfg.l);
            for node in net.nodes() {
                assert!(node.units_in_use() <= cfg.k);
            }
        }
    }

    #[test]
    fn literal_pusher_guard_is_selectable() {
        // Sanity check that the ablation switch changes behaviour: with the literal guard the
        // priority holder is evicted like everyone else, so its reservations are not sticky.
        let tree = topology::builders::figure3_tree();
        let cfg = KlConfig::new(2, 3, 3).with_literal_pusher_guard(true);
        let mut net = network(tree, cfg, figure3_workload);
        let mut sched = RoundRobin::new();
        // Just run it; the protocol must still be safe (no more than l units in use).
        for _ in 0..20_000 {
            net.step(&mut sched);
            let used: usize = net.nodes().map(|n| n.units_in_use()).sum();
            assert!(used <= cfg.l);
        }
    }
}
