//! Token censuses and legitimate-configuration predicates.
//!
//! The convergence argument of the paper (Lemmas 6–8) is phrased in terms of the number of
//! tokens present in the system: a configuration is on the way to legitimacy once there are
//! exactly ℓ resource tokens, one priority token and one pusher token, and the safety bounds
//! on reservations hold.  These helpers compute that census over a whole network — counting
//! both in-flight tokens (in channels) and held tokens (reserved in `RSet`s, or a `Prio`
//! variable pointing at a channel) — and decide legitimacy.

use crate::config::KlConfig;
use crate::inspect::KlInspect;
use crate::message::Message;
use serde::Serialize;
use topology::Topology;
use treenet::{Network, Process};

/// The number of tokens of each kind currently in the system.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct TokenCensus {
    /// Resource tokens: in flight plus reserved in `RSet`s.
    pub resource: usize,
    /// Pusher tokens (always in flight: no process ever holds the pusher).
    pub pusher: usize,
    /// Priority tokens: in flight plus held (`Prio ≠ ⊥`).
    pub priority: usize,
    /// Controller messages in flight.
    pub ctrl: usize,
    /// Garbage (non-protocol) messages in flight.
    pub garbage: usize,
}

impl TokenCensus {
    /// True when the circulating-token population matches a legitimate configuration:
    /// exactly `l` resource tokens, one pusher and one priority token.
    pub fn matches(&self, l: usize) -> bool {
        self.resource == l && self.pusher == 1 && self.priority == 1
    }
}

/// Counts every token in `net`, both in flight and held by processes.
pub fn count_tokens<P, T>(net: &Network<P, T>) -> TokenCensus
where
    P: Process<Msg = Message> + KlInspect,
    T: Topology,
{
    let mut census = TokenCensus::default();
    for (_, _, msg) in net.iter_messages() {
        match msg {
            Message::ResT => census.resource += 1,
            Message::PushT => census.pusher += 1,
            Message::PrioT => census.priority += 1,
            Message::Ctrl { .. } => census.ctrl += 1,
            Message::Garbage(_) => census.garbage += 1,
            // Snapshot markers are observability traffic, not tokens: they exist only while
            // a cut is being assembled and never enter the census.
            Message::Marker(_) => {}
        }
    }
    for node in net.nodes() {
        census.resource += node.reserved();
        if node.holds_priority() {
            census.priority += 1;
        }
    }
    census
}

/// True when every per-process safety bound holds: no process reserves more than `k` tokens,
/// no process uses more than `k` units, and at most `l` units are in use overall.
pub fn safety_holds<P, T>(net: &Network<P, T>, cfg: &KlConfig) -> bool
where
    P: Process<Msg = Message> + KlInspect,
    T: Topology,
{
    let mut in_use = 0usize;
    for node in net.nodes() {
        if node.reserved() > cfg.k || node.units_in_use() > cfg.k {
            return false;
        }
        in_use += node.units_in_use();
    }
    in_use <= cfg.l
}

/// The legitimacy predicate used by the convergence experiments: the token census is exactly
/// `(ℓ, 1, 1)`, the per-process safety bounds hold, and no garbage message survives.
///
/// (The number of in-flight controller messages is *not* constrained: the root's timeout may
/// legitimately produce a transient duplicate which counter flushing later discards.)
pub fn is_legitimate<P, T>(net: &Network<P, T>, cfg: &KlConfig) -> bool
where
    P: Process<Msg = Message> + KlInspect,
    T: Topology,
{
    let census = count_tokens(net);
    census.matches(cfg.l) && census.garbage == 0 && safety_holds(net, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use crate::nonstab;
    use treenet::app::{AppDriver, BoxedDriver, Idle};
    use treenet::NodeId;

    #[test]
    fn census_counts_in_flight_and_reserved() {
        let tree = topology::builders::figure1_tree();
        let cfg = KlConfig::new(2, 4, 8);
        struct Grab;
        impl AppDriver for Grab {
            fn next_request(&mut self, _n: NodeId, _t: u64) -> Option<usize> {
                Some(2)
            }
            fn release_cs(&mut self, _n: NodeId, _now: u64, _e: u64) -> bool {
                false
            }
        }
        let mut net = naive::network(tree, cfg, |id| {
            if id == 2 {
                Box::new(Grab) as BoxedDriver
            } else {
                Box::new(Idle) as BoxedDriver
            }
        });
        let mut sched = treenet::RoundRobin::new();
        treenet::run_for(&mut net, &mut sched, 10_000);
        let census = count_tokens(&net);
        assert_eq!(census.resource, cfg.l, "reserved + in-flight resource tokens = l");
        assert_eq!(census.pusher, 0);
        assert_eq!(census.priority, 0);
    }

    #[test]
    fn census_matches_and_legitimacy() {
        let tree = topology::builders::figure3_tree();
        let cfg = KlConfig::new(2, 3, 3);
        let mut net = nonstab::network(tree, cfg, |_| Box::new(Idle) as BoxedDriver);
        let mut sched = treenet::RoundRobin::new();
        treenet::run_for(&mut net, &mut sched, 5_000);
        let census = count_tokens(&net);
        assert!(census.matches(cfg.l));
        assert!(is_legitimate(&net, &cfg));
        assert!(safety_holds(&net, &cfg));
    }

    #[test]
    fn surplus_tokens_break_legitimacy() {
        let tree = topology::builders::figure3_tree();
        let cfg = KlConfig::new(2, 3, 3);
        let mut net = nonstab::network(tree, cfg, |_| Box::new(Idle) as BoxedDriver);
        let mut sched = treenet::RoundRobin::new();
        treenet::run_for(&mut net, &mut sched, 2_000);
        net.inject_into(1, 0, Message::ResT);
        assert!(!is_legitimate(&net, &cfg));
        let census = count_tokens(&net);
        assert_eq!(census.resource, cfg.l + 1);
    }

    #[test]
    fn garbage_breaks_legitimacy() {
        let tree = topology::builders::figure3_tree();
        let cfg = KlConfig::new(2, 3, 3);
        let mut net = nonstab::network(tree, cfg, |_| Box::new(Idle) as BoxedDriver);
        let mut sched = treenet::RoundRobin::new();
        treenet::run_for(&mut net, &mut sched, 2_000);
        assert!(is_legitimate(&net, &cfg));
        net.inject_into(2, 0, Message::Garbage(1));
        assert!(!is_legitimate(&net, &cfg));
    }

    #[test]
    fn default_census_is_empty() {
        let census = TokenCensus::default();
        assert!(!census.matches(1));
        assert_eq!(census.resource + census.pusher + census.priority, 0);
    }
}
