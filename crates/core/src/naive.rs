//! Rung 1 of the protocol ladder: the "naive" circulation of ℓ resource tokens.
//!
//! ℓ resource tokens circulate the virtual ring in DFS order.  A requester reserves every
//! token it receives until it has `Need` of them, enters its critical section, and releases
//! them afterwards; every other process forwards tokens immediately.
//!
//! This protocol is safe but **not live**: as Figure 2 of the paper shows, several requesters
//! can each reserve part of the tokens they need and wait forever for the rest (a deadlock).
//! The experiment `fig2_deadlock` reproduces that execution.

use crate::config::KlConfig;
use crate::inspect::KlInspect;
use crate::message::Message;
use crate::node::AppSide;
use rand::rngs::StdRng;
use topology::OrientedTree;
use treenet::app::BoxedDriver;
use treenet::{ChannelLabel, Context, Corruptible, CsState, Network, NodeId, Process};

/// A process running the naive ℓ-token circulation.
pub struct NaiveNode {
    cfg: KlConfig,
    /// Request state (`State`, `Need`, `RSet`) and application driver.
    pub app: AppSide,
    is_root: bool,
    degree: usize,
    /// Whether the root has already created its initial tokens.  Public so that experiment
    /// scenarios can construct exact paper configurations (e.g. Figure 2's deadlock state)
    /// without going through the bootstrap.
    pub bootstrapped: bool,
}

impl NaiveNode {
    /// Creates the process for `node` of a tree where the node has `degree` channels.
    ///
    /// The root (node 0) creates the ℓ resource tokens on its first activation; there is no
    /// fault-tolerance mechanism, so this variant assumes a clean start.
    pub fn new(node: NodeId, degree: usize, cfg: KlConfig, driver: BoxedDriver) -> Self {
        NaiveNode {
            cfg,
            app: AppSide::new(node, driver),
            is_root: node == 0,
            degree,
            bootstrapped: false,
        }
    }

    fn forward_token(&self, from: ChannelLabel, ctx: &mut Context<'_, Message>) {
        ctx.send_next(from, Message::ResT);
    }
}

impl Process for NaiveNode {
    type Msg = Message;

    fn on_message(&mut self, from: ChannelLabel, msg: Message, ctx: &mut Context<'_, Message>) {
        // The naive protocol has no other token types; anything else is ignored garbage.
        if msg == Message::ResT {
            if self.app.wants_more() {
                self.app.reserve(from);
            } else {
                self.forward_token(from, ctx);
            }
        }
    }

    fn on_tick(&mut self, ctx: &mut Context<'_, Message>) {
        if self.is_root && !self.bootstrapped {
            self.bootstrapped = true;
            if self.degree > 0 {
                for _ in 0..self.cfg.l {
                    ctx.send(0, Message::ResT);
                }
            }
        }
        self.app.poll_request(&self.cfg, ctx);
        self.app.try_enter(ctx);
        if let Some(tokens) = self.app.try_release(ctx) {
            for label in tokens {
                ctx.send_next(label, Message::ResT);
            }
        }
    }
}

impl KlInspect for NaiveNode {
    fn cs_state(&self) -> CsState {
        self.app.state
    }
    fn need(&self) -> usize {
        self.app.need
    }
    fn reserved(&self) -> usize {
        self.app.reserved()
    }
    fn holds_priority(&self) -> bool {
        false
    }
}

impl Corruptible for NaiveNode {
    fn corrupt(&mut self, rng: &mut StdRng) {
        let cfg = self.cfg;
        let degree = self.degree;
        self.app.corrupt(&cfg, degree, rng);
    }
}

impl treenet::Restartable for NaiveNode {
    fn restart(&mut self) {
        self.app.restart();
        // A restarted root forgets that it already created its ℓ tokens and will create them
        // again — the naive protocol has no mechanism to repair the resulting surplus.
        self.bootstrapped = false;
    }
}

/// Builds a network of [`NaiveNode`]s over `tree`, one application driver per node.
///
/// # Panics
///
/// Panics if the tree has fewer than two nodes (token circulation needs at least one link).
pub fn network(
    tree: OrientedTree,
    cfg: KlConfig,
    mut driver_for: impl FnMut(NodeId) -> BoxedDriver,
) -> Network<NaiveNode, OrientedTree> {
    use topology::Topology;
    assert!(tree.len() >= 2, "token circulation needs at least two processes");
    let degrees: Vec<usize> = (0..tree.len()).map(|v| tree.degree(v)).collect();
    Network::new(tree, |id| NaiveNode::new(id, degrees[id], cfg, driver_for(id)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use treenet::app::{AppDriver, Idle};
    use treenet::{run_until, RoundRobin};

    struct Once(usize, bool);
    impl AppDriver for Once {
        fn next_request(&mut self, _n: NodeId, _t: u64) -> Option<usize> {
            if self.1 {
                None
            } else {
                self.1 = true;
                Some(self.0)
            }
        }
        fn release_cs(&mut self, _n: NodeId, now: u64, entered: u64) -> bool {
            now - entered >= 5
        }
    }

    #[test]
    fn single_requester_is_satisfied() {
        let tree = topology::builders::figure1_tree();
        let cfg = KlConfig::new(2, 3, 8);
        let mut net = network(tree, cfg, |id| {
            if id == 5 {
                Box::new(Once(2, false)) as BoxedDriver
            } else {
                Box::new(Idle) as BoxedDriver
            }
        });
        let mut sched = RoundRobin::new();
        let out = run_until(&mut net, &mut sched, 50_000, |n| n.trace().cs_entries(Some(5)) >= 1);
        assert!(out.is_satisfied(), "a lone requester must eventually enter its critical section");
        // After the CS the tokens are back in circulation: total count is still l.
        let reserved: usize = net.nodes().map(|n| n.reserved()).sum();
        let in_flight =
            net.iter_messages().filter(|(_, _, m)| m.is_resource()).count();
        assert_eq!(reserved + in_flight, cfg.l);
    }

    #[test]
    fn tokens_are_conserved_without_requests() {
        let tree = topology::builders::binary(7);
        let cfg = KlConfig::new(1, 4, 7);
        let mut net = network(tree, cfg, |_| Box::new(Idle) as BoxedDriver);
        let mut sched = RoundRobin::new();
        for _ in 0..5_000 {
            net.step(&mut sched);
            let total = net.iter_messages().filter(|(_, _, m)| m.is_resource()).count()
                + net.nodes().map(|n| n.reserved()).sum::<usize>();
            assert_eq!(total, cfg.l, "resource tokens must be conserved");
        }
    }

    #[test]
    fn safety_holds_under_saturation() {
        let tree = topology::builders::chain(6);
        let cfg = KlConfig::new(2, 3, 6);
        struct Always;
        impl AppDriver for Always {
            fn next_request(&mut self, _n: NodeId, _t: u64) -> Option<usize> {
                Some(1)
            }
            fn release_cs(&mut self, _n: NodeId, now: u64, e: u64) -> bool {
                now - e >= 3
            }
        }
        let mut net = network(tree, cfg, |_| Box::new(Always) as BoxedDriver);
        let mut sched = RoundRobin::new();
        for _ in 0..20_000 {
            net.step(&mut sched);
            let used: usize = net.nodes().map(|n| n.units_in_use()).sum();
            assert!(used <= cfg.l);
            for node in net.nodes() {
                assert!(node.units_in_use() <= cfg.k);
            }
        }
    }

    #[test]
    fn ignores_foreign_messages() {
        let tree = topology::builders::chain(3);
        let cfg = KlConfig::new(1, 2, 3);
        let mut net = network(tree, cfg, |_| Box::new(Idle) as BoxedDriver);
        net.inject_into(1, 0, Message::PushT);
        net.inject_into(1, 0, Message::Garbage(7));
        let mut sched = RoundRobin::new();
        for _ in 0..100 {
            net.step(&mut sched);
        }
        // Foreign messages are consumed, not forwarded forever.
        assert_eq!(net.iter_messages().filter(|(_, _, m)| !m.is_resource()).count(), 0);
    }

    #[test]
    #[should_panic(expected = "at least two processes")]
    fn rejects_single_node_networks() {
        let tree = topology::builders::chain(1);
        let _ = network(tree, KlConfig::new(1, 1, 1), |_| Box::new(Idle) as BoxedDriver);
    }
}
