//! Rung 2 of the protocol ladder: ℓ resource tokens plus the **pusher** token.
//!
//! The pusher (`PushT`) permanently circulates the virtual ring.  When a process that is
//! neither executing its critical section nor able to enter it receives the pusher, it must
//! release all its reserved resource tokens before forwarding the pusher.  This breaks the
//! deadlock of Figure 2: partially-satisfied requesters can no longer hoard tokens forever.
//!
//! The price is the **livelock** of Figure 3: a process with a large request can be forced to
//! release its tokens over and over while smaller requests keep being satisfied, so it may
//! starve.  The experiment `fig3_livelock` reproduces that execution; rung 3 ([`crate::nonstab`])
//! adds the priority token to fix it.

use crate::config::KlConfig;
use crate::inspect::KlInspect;
use crate::message::Message;
use crate::node::AppSide;
use rand::rngs::StdRng;
use rand::Rng;
use topology::OrientedTree;
use treenet::app::BoxedDriver;
use treenet::{ChannelLabel, Context, Corruptible, CsState, Network, NodeId, Process};

/// A process running the ℓ-token + pusher circulation (no priority token).
pub struct PusherNode {
    cfg: KlConfig,
    /// Request state (`State`, `Need`, `RSet`) and application driver.
    pub app: AppSide,
    is_root: bool,
    degree: usize,
    /// Whether the root has already created its initial tokens.  Public so that experiment
    /// scenarios can construct exact paper configurations (e.g. Figure 2's deadlock state)
    /// without going through the bootstrap.
    pub bootstrapped: bool,
}

impl PusherNode {
    /// Creates the process for `node` with `degree` incident channels.
    pub fn new(node: NodeId, degree: usize, cfg: KlConfig, driver: BoxedDriver) -> Self {
        PusherNode {
            cfg,
            app: AppSide::new(node, driver),
            is_root: node == 0,
            degree,
            bootstrapped: false,
        }
    }

    /// The pusher's effect: release all reserved tokens unless the process is in, or enabled
    /// to enter, its critical section.
    fn handle_pusher(&mut self, from: ChannelLabel, ctx: &mut Context<'_, Message>) {
        let must_release = !self.app.can_enter() && self.app.state != CsState::In;
        if must_release {
            for label in self.app.take_reserved() {
                ctx.send_next(label, Message::ResT);
            }
        }
        ctx.send_next(from, Message::PushT);
    }
}

impl Process for PusherNode {
    type Msg = Message;

    fn on_message(&mut self, from: ChannelLabel, msg: Message, ctx: &mut Context<'_, Message>) {
        match msg {
            Message::ResT => {
                if self.app.wants_more() {
                    self.app.reserve(from);
                } else {
                    ctx.send_next(from, Message::ResT);
                }
            }
            Message::PushT => self.handle_pusher(from, ctx),
            _ => {}
        }
    }

    fn on_tick(&mut self, ctx: &mut Context<'_, Message>) {
        if self.is_root && !self.bootstrapped {
            self.bootstrapped = true;
            if self.degree > 0 {
                for _ in 0..self.cfg.l {
                    ctx.send(0, Message::ResT);
                }
                ctx.send(0, Message::PushT);
            }
        }
        self.app.poll_request(&self.cfg, ctx);
        self.app.try_enter(ctx);
        if let Some(tokens) = self.app.try_release(ctx) {
            for label in tokens {
                ctx.send_next(label, Message::ResT);
            }
        }
    }
}

impl KlInspect for PusherNode {
    fn cs_state(&self) -> CsState {
        self.app.state
    }
    fn need(&self) -> usize {
        self.app.need
    }
    fn reserved(&self) -> usize {
        self.app.reserved()
    }
    fn holds_priority(&self) -> bool {
        false
    }
}

impl Corruptible for PusherNode {
    fn corrupt(&mut self, rng: &mut StdRng) {
        let cfg = self.cfg;
        let degree = self.degree;
        self.app.corrupt(&cfg, degree, rng);
        self.bootstrapped = rng.gen_bool(0.5);
    }
}

impl treenet::Restartable for PusherNode {
    fn restart(&mut self) {
        self.app.restart();
        // See `NaiveNode`: the restarted root will re-create its initial tokens.
        self.bootstrapped = false;
    }
}

/// Builds a network of [`PusherNode`]s over `tree`.
///
/// # Panics
///
/// Panics if the tree has fewer than two nodes.
pub fn network(
    tree: OrientedTree,
    cfg: KlConfig,
    mut driver_for: impl FnMut(NodeId) -> BoxedDriver,
) -> Network<PusherNode, OrientedTree> {
    use topology::Topology;
    assert!(tree.len() >= 2, "token circulation needs at least two processes");
    let degrees: Vec<usize> = (0..tree.len()).map(|v| tree.degree(v)).collect();
    Network::new(tree, |id| PusherNode::new(id, degrees[id], cfg, driver_for(id)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use treenet::app::{AppDriver, Idle};
    use treenet::{run_until, RoundRobin};

    struct Fixed {
        units: usize,
        hold: u64,
    }
    impl AppDriver for Fixed {
        fn next_request(&mut self, _n: NodeId, _t: u64) -> Option<usize> {
            Some(self.units)
        }
        fn release_cs(&mut self, _n: NodeId, now: u64, e: u64) -> bool {
            now - e >= self.hold
        }
    }

    /// The Figure 2 deadlock workload: needs 3/2/2/2 on the figure-1 tree with l = 5, k = 3.
    fn figure2_workload(id: NodeId) -> BoxedDriver {
        match id {
            1 => Box::new(Fixed { units: 3, hold: 5 }),
            2..=4 => Box::new(Fixed { units: 2, hold: 5 }),
            _ => Box::new(Idle),
        }
    }

    #[test]
    fn pusher_resolves_figure2_deadlock_workload() {
        let tree = topology::builders::figure1_tree();
        let cfg = KlConfig::new(3, 5, 8);
        let mut net = network(tree, cfg, figure2_workload);
        let mut sched = RoundRobin::new();
        // The pusher only guarantees *deadlock freedom*, not fairness (that is rung 3's job):
        // critical sections keep being entered, by more than one requester, even though the
        // requests over-subscribe the 5 tokens.
        let out = run_until(&mut net, &mut sched, 400_000, |n| {
            n.trace().cs_entries(None) >= 10
                && (1..=4).filter(|&v| n.trace().cs_entries(Some(v)) >= 1).count() >= 2
        });
        assert!(out.is_satisfied(), "the pusher must prevent the Figure-2 deadlock");
    }

    #[test]
    fn pusher_token_is_conserved() {
        let tree = topology::builders::binary(7);
        let cfg = KlConfig::new(2, 3, 7);
        let mut net = network(tree, cfg, |_| Box::new(Idle) as BoxedDriver);
        let mut sched = RoundRobin::new();
        treenet::run_for(&mut net, &mut sched, 100);
        for _ in 0..5_000 {
            net.step(&mut sched);
            let pushers = net.iter_messages().filter(|(_, _, m)| m.is_pusher()).count();
            assert_eq!(pushers, 1, "exactly one pusher in flight (no process ever holds it)");
        }
    }

    #[test]
    fn pusher_evicts_partial_reservations() {
        // Node 1 sits in its critical section forever holding one of the two tokens, so node
        // 2's request for two units can never be satisfied: it reserves the remaining token,
        // and the pusher must keep evicting that partial reservation so the token never stops
        // circulating.
        let tree = topology::builders::chain(3);
        let cfg = KlConfig::new(2, 2, 3);
        let mut net = network(tree, cfg, |id| match id {
            1 => Box::new(Fixed { units: 1, hold: u64::MAX }) as BoxedDriver,
            2 => Box::new(Fixed { units: 2, hold: 1 }) as BoxedDriver,
            _ => Box::new(Idle) as BoxedDriver,
        });
        let mut sched = RoundRobin::new();
        // The single token must keep moving: observe it in flight repeatedly even though node
        // 2 keeps trying to hoard it.
        let mut seen_in_flight = 0u32;
        let mut seen_reserved = 0u32;
        for _ in 0..30_000 {
            net.step(&mut sched);
            let in_flight = net.iter_messages().any(|(_, _, m)| m.is_resource());
            if in_flight {
                seen_in_flight += 1;
            }
            if net.node(2).reserved() > 0 {
                seen_reserved += 1;
            }
        }
        assert!(seen_reserved > 0, "node 2 does reserve the token at times");
        assert!(seen_in_flight > 1_000, "the pusher keeps the token circulating");
    }

    #[test]
    fn safety_holds_under_saturation() {
        let tree = topology::builders::star(6);
        let cfg = KlConfig::new(2, 4, 6);
        let mut net = network(tree, cfg, |_| Box::new(Fixed { units: 2, hold: 4 }) as BoxedDriver);
        let mut sched = RoundRobin::new();
        for _ in 0..30_000 {
            net.step(&mut sched);
            let used: usize = net.nodes().map(|n| n.units_in_use()).sum();
            assert!(used <= cfg.l);
            for node in net.nodes() {
                assert!(node.units_in_use() <= cfg.k);
            }
        }
    }
}
