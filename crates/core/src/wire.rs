//! Wire format: a compact binary encoding of the protocol's messages.
//!
//! The simulator exchanges [`Message`] values directly, but a real deployment (the
//! "implementing our solution in a real network" perspective of the paper's conclusion) needs
//! an octet representation.  This module defines one — small enough that a control token fits
//! in 19 bytes — together with a strict decoder and a *lossy* decoder that maps any
//! undecodable frame to [`Message::Garbage`], which is exactly how the protocol treats
//! corrupted channel content: it is consumed and discarded, and the self-stabilization
//! machinery restores the token population.
//!
//! | Message | Layout (little-endian) | Size |
//! |---|---|---|
//! | `ResT` | `0x01` | 1 byte |
//! | `PushT` | `0x02` | 1 byte |
//! | `PrioT` | `0x03` | 1 byte |
//! | `Ctrl { c, r, pt, ppr }` | `0x04, c: u64, r: u8, pt: u64, ppr: u8` | 19 bytes |
//! | `Garbage(x)` | `0x05, x: u16` | 3 bytes |
//! | `Marker(s)` | `0x06, s: u32` | 5 bytes |

use crate::message::Message;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Tag byte of a resource token frame.
const TAG_RES: u8 = 0x01;
/// Tag byte of a pusher frame.
const TAG_PUSH: u8 = 0x02;
/// Tag byte of a priority frame.
const TAG_PRIO: u8 = 0x03;
/// Tag byte of a controller frame.
const TAG_CTRL: u8 = 0x04;
/// Tag byte of a garbage frame.
const TAG_GARBAGE: u8 = 0x05;
/// Tag byte of a snapshot-marker frame.
const TAG_MARKER: u8 = 0x06;

/// Why a frame could not be decoded strictly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The frame is empty.
    Empty,
    /// The first byte is not a known tag.
    UnknownTag(u8),
    /// The frame is shorter than its tag requires.
    Truncated {
        /// Bytes expected for this tag.
        expected: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The frame has extra bytes after a complete message.
    TrailingBytes(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Empty => write!(f, "empty frame"),
            WireError::UnknownTag(tag) => write!(f, "unknown tag byte 0x{tag:02x}"),
            WireError::Truncated { expected, got } => {
                write!(f, "truncated frame: expected {expected} bytes, got {got}")
            }
            WireError::TrailingBytes(extra) => write!(f, "{extra} trailing bytes after frame"),
        }
    }
}

impl std::error::Error for WireError {}

/// Number of bytes the encoding of `msg` occupies.
pub fn encoded_len(msg: &Message) -> usize {
    match msg {
        Message::ResT | Message::PushT | Message::PrioT => 1,
        Message::Ctrl { .. } => 19,
        Message::Garbage(_) => 3,
        Message::Marker(_) => 5,
    }
}

/// Appends the encoding of `msg` to `buf`.
pub fn encode_into(msg: &Message, buf: &mut BytesMut) {
    match *msg {
        Message::ResT => buf.put_u8(TAG_RES),
        Message::PushT => buf.put_u8(TAG_PUSH),
        Message::PrioT => buf.put_u8(TAG_PRIO),
        Message::Ctrl { c, r, pt, ppr } => {
            buf.put_u8(TAG_CTRL);
            buf.put_u64_le(c);
            buf.put_u8(u8::from(r));
            buf.put_u64_le(pt);
            buf.put_u8(ppr);
        }
        Message::Garbage(x) => {
            buf.put_u8(TAG_GARBAGE);
            buf.put_u16_le(x);
        }
        Message::Marker(s) => {
            buf.put_u8(TAG_MARKER);
            buf.put_u32_le(s);
        }
    }
}

/// Encodes `msg` as a standalone frame.
pub fn encode(msg: &Message) -> Bytes {
    let mut buf = BytesMut::with_capacity(encoded_len(msg));
    encode_into(msg, &mut buf);
    buf.freeze()
}

/// Strictly decodes one frame: the buffer must contain exactly one well-formed message.
pub fn decode(frame: &[u8]) -> Result<Message, WireError> {
    if frame.is_empty() {
        return Err(WireError::Empty);
    }
    let mut buf = frame;
    let tag = buf.get_u8();
    let needed = match tag {
        TAG_RES | TAG_PUSH | TAG_PRIO => 0,
        TAG_CTRL => 18,
        TAG_GARBAGE => 2,
        TAG_MARKER => 4,
        other => return Err(WireError::UnknownTag(other)),
    };
    if buf.remaining() < needed {
        return Err(WireError::Truncated { expected: needed + 1, got: frame.len() });
    }
    let msg = match tag {
        TAG_RES => Message::ResT,
        TAG_PUSH => Message::PushT,
        TAG_PRIO => Message::PrioT,
        TAG_CTRL => {
            let c = buf.get_u64_le();
            let r = buf.get_u8() != 0;
            let pt = buf.get_u64_le();
            let ppr = buf.get_u8();
            Message::Ctrl { c, r, pt, ppr }
        }
        TAG_GARBAGE => Message::Garbage(buf.get_u16_le()),
        TAG_MARKER => Message::Marker(buf.get_u32_le()),
        _ => unreachable!("tag already validated"),
    };
    if buf.has_remaining() {
        return Err(WireError::TrailingBytes(buf.remaining()));
    }
    Ok(msg)
}

/// Decodes a frame the way a deployed process would: anything that does not parse strictly is
/// treated as a corrupted message, i.e. [`Message::Garbage`] carrying a 16-bit checksum of the
/// offending bytes.  The protocol consumes garbage without retransmitting it, and the
/// controller restores the token census afterwards, so lossy decoding composes with
/// self-stabilization instead of crashing on bad input.
pub fn decode_lossy(frame: &[u8]) -> Message {
    decode(frame).unwrap_or_else(|_| Message::Garbage(checksum(frame)))
}

/// Appends the encodings of `msgs` back to back, as they would travel on one FIFO channel.
///
/// Frames are self-delimiting (the tag byte determines the length), so no extra framing is
/// needed; [`decode_stream`] recovers the original sequence.
pub fn encode_stream<'a>(msgs: impl IntoIterator<Item = &'a Message>) -> Bytes {
    let mut buf = BytesMut::new();
    for msg in msgs {
        encode_into(msg, &mut buf);
    }
    buf.freeze()
}

/// Decodes a concatenation of frames (one FIFO channel's content) back into messages.
///
/// Decoding is resilient the same way [`decode_lossy`] is: if the stream ends in a truncated
/// or unknown frame, the remaining bytes are consumed as a single [`Message::Garbage`] so the
/// FIFO content is never silently dropped and the channel drains completely.
pub fn decode_stream(mut stream: &[u8]) -> Vec<Message> {
    let mut out = Vec::new();
    while !stream.is_empty() {
        let len = match stream[0] {
            TAG_RES | TAG_PUSH | TAG_PRIO => 1,
            TAG_CTRL => 19,
            TAG_GARBAGE => 3,
            TAG_MARKER => 5,
            _ => stream.len(),
        };
        if len > stream.len() {
            out.push(Message::Garbage(checksum(stream)));
            break;
        }
        let (frame, rest) = stream.split_at(len);
        out.push(decode_lossy(frame));
        stream = rest;
    }
    out
}

/// A tiny 16-bit checksum (Fletcher-16) used to tag garbage frames deterministically.
fn checksum(bytes: &[u8]) -> u16 {
    let mut sum1: u16 = 0;
    let mut sum2: u16 = 0;
    for &b in bytes {
        sum1 = (sum1 + u16::from(b)) % 255;
        sum2 = (sum2 + sum1) % 255;
    }
    (sum2 << 8) | sum1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_variants() -> Vec<Message> {
        vec![
            Message::ResT,
            Message::PushT,
            Message::PrioT,
            Message::Ctrl { c: 0, r: false, pt: 0, ppr: 0 },
            Message::Ctrl { c: u64::MAX, r: true, pt: 42, ppr: 2 },
            Message::Garbage(0),
            Message::Garbage(u16::MAX),
            Message::Marker(0),
            Message::Marker(u32::MAX),
        ]
    }

    #[test]
    fn roundtrip_every_variant() {
        for msg in all_variants() {
            let frame = encode(&msg);
            assert_eq!(frame.len(), encoded_len(&msg));
            assert_eq!(decode(&frame).unwrap(), msg, "roundtrip of {msg:?}");
            assert_eq!(decode_lossy(&frame), msg);
        }
    }

    #[test]
    fn token_frames_are_a_single_byte() {
        assert_eq!(encode(&Message::ResT).as_ref(), &[0x01]);
        assert_eq!(encode(&Message::PushT).as_ref(), &[0x02]);
        assert_eq!(encode(&Message::PrioT).as_ref(), &[0x03]);
    }

    #[test]
    fn ctrl_layout_is_stable() {
        let frame = encode(&Message::Ctrl { c: 0x0102030405060708, r: true, pt: 5, ppr: 2 });
        assert_eq!(frame.len(), 19);
        assert_eq!(frame[0], 0x04);
        // Little-endian c.
        assert_eq!(&frame[1..9], &[0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01]);
        assert_eq!(frame[9], 1);
        assert_eq!(frame[10], 5);
        assert_eq!(frame[18], 2);
    }

    #[test]
    fn strict_decode_rejects_malformed_frames() {
        assert_eq!(decode(&[]), Err(WireError::Empty));
        assert_eq!(decode(&[0x99]), Err(WireError::UnknownTag(0x99)));
        assert_eq!(decode(&[0x04, 1, 2]), Err(WireError::Truncated { expected: 19, got: 3 }));
        assert_eq!(decode(&[0x01, 0x00]), Err(WireError::TrailingBytes(1)));
        assert!(decode(&[0x05, 0x01]).is_err(), "garbage frame needs two payload bytes");
    }

    #[test]
    fn lossy_decode_maps_malformed_frames_to_garbage() {
        for junk in [&[][..], &[0x99][..], &[0x04, 1, 2][..], &[0x01, 0x00][..]] {
            match decode_lossy(junk) {
                Message::Garbage(_) => {}
                other => panic!("expected garbage for {junk:?}, got {other:?}"),
            }
        }
        // Deterministic: the same junk maps to the same garbage value.
        assert_eq!(decode_lossy(&[0x99, 0x01]), decode_lossy(&[0x99, 0x01]));
    }

    #[test]
    fn stream_roundtrip_preserves_fifo_order() {
        let channel = vec![
            Message::ResT,
            Message::Ctrl { c: 9, r: true, pt: 3, ppr: 1 },
            Message::PushT,
            Message::PrioT,
            Message::Garbage(77),
            Message::ResT,
        ];
        let stream = encode_stream(&channel);
        assert_eq!(
            stream.len(),
            channel.iter().map(encoded_len).sum::<usize>(),
            "frames are packed back to back"
        );
        assert_eq!(decode_stream(&stream), channel);
    }

    #[test]
    fn stream_decoding_degrades_gracefully_on_corruption() {
        // A valid token, then a truncated controller frame: the tail becomes one garbage
        // message instead of being dropped.
        let mut bytes = encode(&Message::ResT).to_vec();
        bytes.extend_from_slice(&encode(&Message::Ctrl { c: 1, r: false, pt: 0, ppr: 0 })[..7]);
        let decoded = decode_stream(&bytes);
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[0], Message::ResT);
        assert!(matches!(decoded[1], Message::Garbage(_)));

        // An unknown tag mid-stream swallows the rest as garbage (the decoder cannot know
        // where the next frame starts), but never panics and never loses the prefix.
        let mut bytes = encode(&Message::PushT).to_vec();
        bytes.push(0xEE);
        bytes.extend_from_slice(&encode(&Message::ResT));
        let decoded = decode_stream(&bytes);
        assert_eq!(decoded[0], Message::PushT);
        assert!(matches!(decoded[1], Message::Garbage(_)));
        assert_eq!(decoded.len(), 2);

        assert!(decode_stream(&[]).is_empty());
    }

    #[test]
    fn error_messages_are_descriptive() {
        assert!(WireError::Empty.to_string().contains("empty"));
        assert!(WireError::UnknownTag(7).to_string().contains("0x07"));
        assert!(WireError::Truncated { expected: 19, got: 2 }.to_string().contains("19"));
        assert!(WireError::TrailingBytes(3).to_string().contains("3"));
    }
}
