//! Rung 4: the **self-stabilizing** k-out-of-ℓ exclusion protocol — Algorithms 1 and 2 of the
//! paper.
//!
//! On top of the three circulating token types of [`crate::nonstab`], the self-stabilizing
//! protocol adds a *controller*: a counter-flushing DFS token (`⟨ctrl, C, R, PT, PPr⟩`) that
//! the root circulates forever.  During one circulation the controller counts the resource,
//! priority and pusher tokens it *passes* (fields `PT`, `PPr`, and the root-local counters
//! `SToken`, `SPrio`, `SPush` count the tokens that complete a loop through the root without
//! being passed).  When a circulation terminates the root knows the token population and
//! repairs it: it creates missing tokens, or — if there are too many of some kind — starts a
//! *reset* circulation (`R = true`) that erases every resource/priority/pusher token so the
//! next circulation can recreate exactly ℓ, 1 and 1 of them.
//!
//! The controller itself is made self-stabilizing with Varghese's counter flushing: each
//! process holds a counter `myC ∈ [0 .. 2(n−1)(CMAX+1)]` and a successor pointer `Succ`; the
//! root retransmits the controller on a timeout and bumps `myC` at the end of every
//! circulation, so any stale or forged controller messages are eventually ignored
//! (flushed) and exactly one valid controller circulates in DFS order.
//!
//! # Code ↔ paper line map
//!
//! | Paper (Algorithm 1, root) | Here |
//! |---|---|
//! | lines 10–19 (ResT)  | `SsNode::handle_resource` |
//! | lines 20–34 (PushT) | `SsNode::handle_pusher` |
//! | lines 35–41 (PrioT) | `SsNode::handle_priority` |
//! | lines 42–76 (ctrl)  | `SsNode::root_handle_ctrl` |
//! | lines 78–98 (bottom of loop) | `SsNode::bottom_of_loop` |
//! | lines 99–102 (timeout) | `SsNode::root_timeout` |
//!
//! | Paper (Algorithm 2, non-root) | Here |
//! |---|---|
//! | lines 9–15 (ResT)   | `SsNode::handle_resource` |
//! | lines 16–24 (PushT) | `SsNode::handle_pusher` |
//! | lines 25–31 (PrioT) | `SsNode::handle_priority` |
//! | lines 32–60 (ctrl)  | `SsNode::nonroot_handle_ctrl` |
//! | lines 62–76 (bottom of loop) | `SsNode::bottom_of_loop` |
//!
//! Two deliberate deviations from the printed pseudo-code are applied by default (both are
//! documented in `DESIGN.md` §4b, quantified by experiment E10, and reversible through
//! [`crate::KlConfig`]): the pusher guard reads `Prio = ⊥` instead of the printed `Prio ≠ ⊥`
//! ([`crate::KlConfig::literal_pusher_guard`]), and the root counts its own passed tokens
//! *before* the circulation-completion block rather than after it
//! ([`crate::KlConfig::literal_completion_order`]; see `SsNode::root_handle_ctrl`).

use crate::config::KlConfig;
use crate::inspect::KlInspect;
use crate::message::Message;
use crate::node::AppSide;
use rand::rngs::StdRng;
use rand::Rng;
use topology::{OrientedTree, Topology};
use treenet::app::BoxedDriver;
use treenet::{ChannelLabel, Context, Corruptible, CsState, Event, Network, NodeId, Process};

/// Root-only state of Algorithm 1.
#[derive(Clone, Debug)]
pub struct RootState {
    /// Counter-flushing value `myC`.
    pub my_c: u64,
    /// Successor pointer `Succ`: the channel the root expects the controller back from, and
    /// sends it to next.
    pub succ: ChannelLabel,
    /// The `Reset` flag: true while a reset circulation is in progress.
    pub reset: bool,
    /// `SToken ∈ [0 .. ℓ+1]`: resource tokens seen starting a new loop at the root during the
    /// current controller circulation.
    pub s_token: u64,
    /// `SPush ∈ [0 .. 2]`.
    pub s_push: u8,
    /// `SPrio ∈ [0 .. 2]`.
    pub s_prio: u8,
    /// Local activation counter used to implement `TimeOut()` / `RestartTimer()`.
    ticks: u64,
    /// Value of `ticks` at the last `RestartTimer()`.
    last_restart: u64,
}

impl RootState {
    fn new() -> Self {
        RootState {
            my_c: 0,
            succ: 0,
            reset: false,
            s_token: 0,
            s_push: 0,
            s_prio: 0,
            ticks: 0,
            last_restart: 0,
        }
    }
}

/// Non-root state of Algorithm 2.
#[derive(Clone, Debug)]
pub struct NonRootState {
    /// Counter-flushing value `myC`.
    pub my_c: u64,
    /// Successor pointer `Succ`.
    pub succ: ChannelLabel,
}

impl NonRootState {
    fn new() -> Self {
        NonRootState { my_c: 0, succ: 0 }
    }
}

/// Which algorithm this process runs.
#[derive(Clone, Debug)]
pub enum SsRole {
    /// The distinguished root `r`, running Algorithm 1.
    Root(RootState),
    /// Any other process, running Algorithm 2.
    NonRoot(NonRootState),
}

/// A process of the self-stabilizing k-out-of-ℓ exclusion protocol.
pub struct SsNode {
    cfg: KlConfig,
    /// Request state (`State`, `Need`, `RSet`) and application driver.
    pub app: AppSide,
    /// The paper's `Prio` variable.
    pub prio: Option<ChannelLabel>,
    /// Root or non-root algorithm state.
    pub role: SsRole,
    degree: usize,
    counter_modulus: u64,
}

impl SsNode {
    /// Creates the process for `node` of an `n`-process tree where the node has `degree`
    /// incident channels.
    pub fn new(node: NodeId, degree: usize, n: usize, cfg: KlConfig, driver: BoxedDriver) -> Self {
        let role = if node == 0 {
            SsRole::Root(RootState::new())
        } else {
            SsRole::NonRoot(NonRootState::new())
        };
        SsNode {
            counter_modulus: cfg.counter_modulus(n),
            cfg,
            app: AppSide::new(node, driver),
            prio: None,
            role,
            degree,
        }
    }

    /// The configuration this node runs with.
    pub fn config(&self) -> &KlConfig {
        &self.cfg
    }

    /// True for the root.
    pub fn is_root(&self) -> bool {
        matches!(self.role, SsRole::Root(_))
    }

    /// Root state accessor (panics on non-root; internal use only after checking the role).
    fn root(&mut self) -> &mut RootState {
        match &mut self.role {
            SsRole::Root(r) => r,
            SsRole::NonRoot(_) => unreachable!("root state requested on a non-root process"),
        }
    }

    /// Root `Reset` flag (false on non-roots, which have no such variable).
    fn in_reset(&self) -> bool {
        match &self.role {
            SsRole::Root(r) => r.reset,
            SsRole::NonRoot(_) => false,
        }
    }

    /// `SToken ← min(SToken + 1, ℓ + 1)` when a resource token leaves the root on channel 0
    /// after arriving from the last channel, i.e. starts a new loop of the virtual ring.
    fn bump_s_token(&mut self) {
        let cap = self.cfg.l as u64 + 1;
        if let SsRole::Root(r) = &mut self.role {
            r.s_token = (r.s_token + 1).min(cap);
        }
    }

    // ------------------------------------------------------------------------------------
    // Token handlers (shared by Algorithm 1 and Algorithm 2; the root-only counter updates
    // are guarded by the role).
    // ------------------------------------------------------------------------------------

    /// ResT reception — Algorithm 1 lines 10–19, Algorithm 2 lines 9–15.
    fn handle_resource(&mut self, from: ChannelLabel, ctx: &mut Context<'_, Message>) {
        if self.in_reset() {
            // Root, during a reset circulation: the token is swallowed (erased).
            return;
        }
        if self.app.wants_more() {
            self.app.reserve(from);
        } else {
            if self.is_root() && from + 1 == self.degree {
                self.bump_s_token();
            }
            ctx.send_next(from, Message::ResT);
        }
    }

    /// PushT reception — Algorithm 1 lines 20–34, Algorithm 2 lines 16–24.
    fn handle_pusher(&mut self, from: ChannelLabel, ctx: &mut Context<'_, Message>) {
        if self.in_reset() {
            return;
        }
        // Corrected guard: a process releases its reservations only if it does NOT hold the
        // priority token (and is neither in nor about to enter its critical section).  The
        // literal guard from the paper's listing is available for the ablation study.
        let prio_cond = if self.cfg.literal_pusher_guard {
            self.prio.is_some()
        } else {
            self.prio.is_none()
        };
        let must_release = prio_cond && !self.app.can_enter() && self.app.state != CsState::In;
        if must_release {
            let released = self.app.take_reserved();
            for label in released {
                if self.is_root() && label + 1 == self.degree {
                    self.bump_s_token();
                }
                ctx.send_next(label, Message::ResT);
            }
        }
        if self.is_root() && from + 1 == self.degree {
            if let SsRole::Root(r) = &mut self.role {
                r.s_push = (r.s_push + 1).min(2);
            }
        }
        ctx.send_next(from, Message::PushT);
    }

    /// PrioT reception — Algorithm 1 lines 35–41, Algorithm 2 lines 25–31.
    fn handle_priority(&mut self, from: ChannelLabel, ctx: &mut Context<'_, Message>) {
        if self.in_reset() {
            return;
        }
        if self.prio.is_none() {
            self.prio = Some(from);
        } else {
            ctx.send_next(from, Message::PrioT);
        }
    }

    // ------------------------------------------------------------------------------------
    // Controller handling.
    // ------------------------------------------------------------------------------------

    /// Number of reserved tokens that arrived on channel `q` (`|RSet|_q` in the paper): the
    /// tokens the controller *passes* when it traverses that channel.
    fn reserved_from(&self, q: ChannelLabel) -> u64 {
        self.app.rset.iter().filter(|&&label| label == q).count() as u64
    }

    /// ctrl reception at the root — Algorithm 1 lines 42–76.
    ///
    /// One accounting correction is applied by default (see the crate documentation and
    /// `EXPERIMENTS.md`): the root's own *passed* tokens (`|RSet|_q`, line 69) are added to
    /// `PT` **before** the completion block of lines 45–68 rather than after it.  With the
    /// printed ordering, resource tokens reserved at the root that arrived from its last
    /// channel are credited to the *next* circulation, so the completed circulation
    /// undercounts, the root creates surplus tokens, and the following circulation detects
    /// the surplus and resets — a cycle that recurs whenever the root is a requester.
    /// [`KlConfig::literal_completion_order`] restores the printed ordering for the ablation
    /// experiment E10.
    fn root_handle_ctrl(
        &mut self,
        q: ChannelLabel,
        c: u64,
        mut pt: u64,
        mut ppr: u8,
        ctx: &mut Context<'_, Message>,
    ) {
        let l = self.cfg.l as u64;
        let modulus = self.counter_modulus;
        let literal_order = self.cfg.literal_completion_order;
        // Validity: the message must come from Succ and carry the current flag value.
        {
            let r = self.root();
            if !(q == r.succ && c == r.my_c) {
                return; // invalid: ignored (not retransmitted)
            }
            r.succ = (r.succ + 1) % ctx.degree;
        }
        // Line 69–72 (corrected placement): count the root's own passed tokens into the
        // circulation that traversed channel `q`.
        if !literal_order {
            let passed = self.reserved_from(q);
            pt = (pt + passed).min(l + 1);
            if self.prio == Some(q) {
                ppr = (ppr + 1).min(2);
            }
        }
        let completed = self.root().succ == 0;
        if completed {
            // Lines 45–68: the controller finished a full circulation.
            {
                let r = self.root();
                r.my_c = (r.my_c + 1) % modulus;
                r.reset = pt + r.s_token > l || ppr as u64 + r.s_prio as u64 > 1 || r.s_push > 1;
            }
            if self.root().reset {
                // Lines 48–50: start a reset circulation; drop local reservations.
                self.app.rset.clear();
                self.prio = None;
                ctx.emit(Event::Note("reset-start"));
            } else {
                // Lines 51–62: repair deficits by creating the missing tokens on channel 0.
                let create_prio = {
                    let r = self.root();
                    (ppr as u64 + r.s_prio as u64) < 1
                };
                if create_prio {
                    ctx.send(0, Message::PrioT);
                }
                loop {
                    let deficit = {
                        let r = self.root();
                        pt + r.s_token < l
                    };
                    if !deficit {
                        break;
                    }
                    ctx.send(0, Message::ResT);
                    self.bump_s_token();
                }
                let create_push = {
                    let r = self.root();
                    r.s_push < 1
                };
                if create_push {
                    ctx.send(0, Message::PushT);
                }
            }
            // Lines 63–67: reset the per-circulation counters.
            {
                let r = self.root();
                r.s_token = 0;
                r.s_prio = 0;
                r.s_push = 0;
            }
            pt = 0;
            ppr = 0;
            ctx.emit(Event::Note("circulation"));
        }
        // Lines 69–74 in the printed order (ablation only): count the root's passed tokens
        // after the completion block, crediting them to the next circulation.
        if literal_order {
            let passed = self.reserved_from(q);
            pt = (pt + passed).min(l + 1);
            if self.prio == Some(q) {
                ppr = (ppr + 1).min(2);
            }
        }
        let (succ, my_c, reset) = {
            let r = self.root();
            (r.succ, r.my_c, r.reset)
        };
        ctx.send(succ, Message::Ctrl { c: my_c, r: reset, pt, ppr });
        self.root_restart_timer();
    }

    /// ctrl reception at a non-root process — Algorithm 2 lines 32–60.
    fn nonroot_handle_ctrl(
        &mut self,
        q: ChannelLabel,
        c: u64,
        r_flag: bool,
        mut pt: u64,
        mut ppr: u8,
        ctx: &mut Context<'_, Message>,
    ) {
        let l = self.cfg.l as u64;
        let degree = ctx.degree;
        let mut ok = false;
        let mut clear = false;
        {
            let st = match &mut self.role {
                SsRole::NonRoot(st) => st,
                SsRole::Root(_) => unreachable!("non-root handler on the root"),
            };
            // Lines 34–41: the controller comes back from the successor with a matching flag.
            if q == st.succ && c == st.my_c && st.succ != 0 {
                st.succ = (st.succ + 1) % degree;
                ok = true;
                if r_flag {
                    clear = true;
                }
            }
            // Lines 42–52: the controller arrives from the parent.
            if q == 0 {
                ok = true;
                if st.my_c != c {
                    st.succ = 1.min(degree - 1);
                    if r_flag {
                        clear = true;
                    }
                }
                st.my_c = c;
            }
        }
        if clear {
            self.app.rset.clear();
            self.prio = None;
        }
        if ok {
            // Lines 53–59.
            let passed = self.reserved_from(q);
            pt = (pt + passed).min(l + 1);
            if self.prio == Some(q) {
                ppr = (ppr + 1).min(2);
            }
            let (succ, my_c) = match &self.role {
                SsRole::NonRoot(st) => (st.succ, st.my_c),
                SsRole::Root(_) => unreachable!(),
            };
            ctx.send(succ, Message::Ctrl { c: my_c, r: r_flag, pt, ppr });
        }
    }

    // ------------------------------------------------------------------------------------
    // Bottom-of-loop actions and timeout.
    // ------------------------------------------------------------------------------------

    /// `RestartTimer()`.
    fn root_restart_timer(&mut self) {
        if let SsRole::Root(r) = &mut self.role {
            r.last_restart = r.ticks;
        }
    }

    /// `TimeOut()` + retransmission — Algorithm 1 lines 99–102.
    fn root_timeout(&mut self, ctx: &mut Context<'_, Message>) {
        let timeout = self.cfg.timeout_interval;
        let fire = {
            match &mut self.role {
                SsRole::Root(r) => {
                    r.ticks += 1;
                    r.ticks - r.last_restart >= timeout
                }
                SsRole::NonRoot(_) => false,
            }
        };
        if fire {
            let (succ, my_c, reset) = {
                let r = self.root();
                (r.succ, r.my_c, r.reset)
            };
            ctx.send(succ, Message::Ctrl { c: my_c, r: reset, pt: 0, ppr: 0 });
            self.root_restart_timer();
            ctx.emit(Event::Note("timeout"));
        }
    }

    /// The retransmission `root_timeout` would send right now (Algorithm 1 lines
    /// 99–102): the controller message carrying the current counter, aimed at `Succ`.
    /// `None` on non-root nodes.
    ///
    /// Exposed for executions that run the protocol with its timer disabled (the
    /// bounded-exhaustive checker's state abstraction) but still need the recovery the
    /// timeout provides when every in-flight message has been lost to injected faults.
    pub fn timeout_retransmission(&self) -> Option<(ChannelLabel, Message)> {
        match &self.role {
            SsRole::Root(r) => {
                Some((r.succ, Message::Ctrl { c: r.my_c, r: r.reset, pt: 0, ppr: 0 }))
            }
            SsRole::NonRoot(_) => None,
        }
    }

    /// Lines 78–98 (root) / 62–76 (non-root): request handling and priority release.
    fn bottom_of_loop(&mut self, ctx: &mut Context<'_, Message>) {
        self.app.poll_request(&self.cfg, ctx);
        self.app.try_enter(ctx);
        if let Some(tokens) = self.app.try_release(ctx) {
            for label in tokens {
                if self.is_root() && label + 1 == self.degree {
                    self.bump_s_token();
                }
                ctx.send_next(label, Message::ResT);
            }
        }
        // Priority release: forward the priority token unless the process is an unsatisfied
        // requester.
        if let Some(label) = self.prio {
            if !self.app.wants_more() {
                if self.is_root() && label + 1 == self.degree {
                    if let SsRole::Root(r) = &mut self.role {
                        r.s_prio = (r.s_prio + 1).min(2);
                    }
                }
                ctx.send_next(label, Message::PrioT);
                self.prio = None;
            }
        }
    }
}

impl Process for SsNode {
    type Msg = Message;

    fn on_message(&mut self, from: ChannelLabel, msg: Message, ctx: &mut Context<'_, Message>) {
        match msg {
            Message::ResT => self.handle_resource(from, ctx),
            Message::PushT => self.handle_pusher(from, ctx),
            Message::PrioT => self.handle_priority(from, ctx),
            Message::Ctrl { c, r, pt, ppr } => {
                if self.is_root() {
                    self.root_handle_ctrl(from, c, pt, ppr, ctx);
                } else {
                    self.nonroot_handle_ctrl(from, c, r, pt, ppr, ctx);
                }
            }
            Message::Garbage(_) => {
                // Not a protocol message: consumed and discarded.
            }
            Message::Marker(_) => {
                // Snapshot markers are consumed by the snapshot layer before delivery; one
                // reaching protocol code (e.g. snapshots disabled mid-flight) is treated
                // like garbage: consumed and discarded.
            }
        }
    }

    fn on_tick(&mut self, ctx: &mut Context<'_, Message>) {
        self.bottom_of_loop(ctx);
        if self.is_root() {
            self.root_timeout(ctx);
        }
    }
}

impl KlInspect for SsNode {
    fn cs_state(&self) -> CsState {
        self.app.state
    }
    fn need(&self) -> usize {
        self.app.need
    }
    fn reserved(&self) -> usize {
        self.app.reserved()
    }
    fn holds_priority(&self) -> bool {
        self.prio.is_some()
    }
}

impl treenet::Restartable for SsNode {
    fn restart(&mut self) {
        self.app.restart();
        self.prio = None;
        self.role = if self.is_root() {
            SsRole::Root(RootState::new())
        } else {
            SsRole::NonRoot(NonRootState::new())
        };
    }
}

impl Corruptible for SsNode {
    fn corrupt(&mut self, rng: &mut StdRng) {
        let cfg = self.cfg;
        let degree = self.degree;
        self.app.corrupt(&cfg, degree, rng);
        self.prio =
            if rng.gen_bool(0.5) { Some(rng.gen_range(0..degree.max(1))) } else { None };
        match &mut self.role {
            SsRole::Root(r) => {
                r.my_c = rng.gen_range(0..self.counter_modulus);
                r.succ = rng.gen_range(0..degree.max(1));
                r.reset = rng.gen_bool(0.3);
                r.s_token = rng.gen_range(0..=(cfg.l as u64 + 1));
                r.s_push = rng.gen_range(0..=2);
                r.s_prio = rng.gen_range(0..=2);
                // The timer value itself is not part of the paper's state, but a fault may
                // leave it anywhere in its domain.
                r.last_restart = r.ticks.saturating_sub(rng.gen_range(0..cfg.timeout_interval));
            }
            SsRole::NonRoot(st) => {
                st.my_c = rng.gen_range(0..self.counter_modulus);
                st.succ = rng.gen_range(0..degree.max(1));
            }
        }
    }
}

/// Builds a self-stabilizing k-out-of-ℓ exclusion network over `tree`.
///
/// Started from the all-zero initial state the protocol bootstraps itself: the root's timeout
/// launches the controller, the first completed circulation reports a token deficit, and the
/// root creates exactly ℓ resource tokens, one priority token and one pusher.
///
/// # Panics
///
/// Panics if the tree has fewer than two nodes.
pub fn network(
    tree: OrientedTree,
    cfg: KlConfig,
    mut driver_for: impl FnMut(NodeId) -> BoxedDriver,
) -> Network<SsNode, OrientedTree> {
    assert!(tree.len() >= 2, "token circulation needs at least two processes");
    let n = tree.len();
    let degrees: Vec<usize> = (0..n).map(|v| tree.degree(v)).collect();
    Network::new(tree, |id| SsNode::new(id, degrees[id], n, cfg, driver_for(id)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::legitimacy::{count_tokens, is_legitimate};
    use treenet::app::{AppDriver, Idle};
    use treenet::{run_until, FaultInjector, FaultPlan, RandomFair, RoundRobin};

    struct Fixed {
        units: usize,
        hold: u64,
    }
    impl AppDriver for Fixed {
        fn next_request(&mut self, _n: NodeId, _t: u64) -> Option<usize> {
            Some(self.units)
        }
        fn release_cs(&mut self, _n: NodeId, now: u64, e: u64) -> bool {
            now - e >= self.hold
        }
    }

    fn idle_net(
        tree: OrientedTree,
        cfg: KlConfig,
    ) -> Network<SsNode, OrientedTree> {
        network(tree, cfg, |_| Box::new(Idle) as BoxedDriver)
    }

    /// Runs until the network has been legitimate for `window` consecutive activations.
    ///
    /// Instantaneous legitimacy (token census = (ℓ,1,1)) can occur while the counter-flushing
    /// part is still unstable — e.g. duplicate controllers from bootstrap timeouts are still
    /// in flight — in which case a later mis-counted circulation may transiently disturb the
    /// census again.  The paper's legitimate set requires the controller to be stabilized
    /// too; sustained legitimacy is the empirical counterpart used throughout the tests and
    /// experiments.
    fn run_until_stable(
        net: &mut Network<SsNode, OrientedTree>,
        sched: &mut impl treenet::Scheduler,
        max_steps: u64,
        window: u64,
        cfg: &KlConfig,
    ) -> bool {
        let mut consecutive = 0u64;
        for _ in 0..max_steps {
            net.step(sched);
            if is_legitimate(net, cfg) {
                consecutive += 1;
                if consecutive >= window {
                    return true;
                }
            } else {
                consecutive = 0;
            }
        }
        false
    }

    #[test]
    fn bootstraps_to_exactly_l_1_1_tokens() {
        let tree = topology::builders::figure1_tree();
        let cfg = KlConfig::new(3, 5, 8);
        let mut net = idle_net(tree, cfg);
        let mut sched = RoundRobin::new();
        let out = run_until(&mut net, &mut sched, 2_000_000, |n| is_legitimate(n, &cfg));
        assert!(out.is_satisfied(), "the protocol must bootstrap from the empty configuration");
        let census = count_tokens(&net);
        assert_eq!(census.resource, cfg.l);
        assert_eq!(census.pusher, 1);
        assert_eq!(census.priority, 1);
    }

    #[test]
    fn token_population_is_stable_once_legitimate() {
        let tree = topology::builders::binary(7);
        let cfg = KlConfig::new(2, 4, 7);
        let mut net = idle_net(tree, cfg);
        let mut sched = RoundRobin::new();
        assert!(run_until_stable(&mut net, &mut sched, 2_000_000, 20_000, &cfg));
        // Closure: once legitimate (sustained), the census never changes again.
        for _ in 0..50_000 {
            net.step(&mut sched);
            let census = count_tokens(&net);
            assert_eq!(
                (census.resource, census.pusher, census.priority),
                (cfg.l, 1, 1),
                "token census must stay (l, 1, 1) after stabilization"
            );
        }
    }

    #[test]
    fn requests_are_served_after_bootstrap() {
        let tree = topology::builders::chain(5);
        let cfg = KlConfig::new(2, 3, 5);
        let mut net = network(tree, cfg, |id| {
            if id >= 3 {
                Box::new(Fixed { units: 2, hold: 4 }) as BoxedDriver
            } else {
                Box::new(Idle) as BoxedDriver
            }
        });
        let mut sched = RandomFair::new(11);
        let out = run_until(&mut net, &mut sched, 2_000_000, |n| {
            n.trace().cs_entries(Some(3)) >= 3 && n.trace().cs_entries(Some(4)) >= 3
        });
        assert!(out.is_satisfied(), "requesters must repeatedly enter their critical sections");
    }

    #[test]
    fn recovers_from_catastrophic_fault() {
        let tree = topology::builders::figure1_tree();
        let cfg = KlConfig::new(3, 5, 8);
        let mut net = idle_net(tree, cfg);
        let mut sched = RoundRobin::new();
        // First stabilize...
        let out = run_until(&mut net, &mut sched, 2_000_000, |n| is_legitimate(n, &cfg));
        assert!(out.is_satisfied());
        // ...then hit the system with an arbitrary-configuration fault...
        let mut injector = FaultInjector::new(99);
        injector.inject(&mut net, &FaultPlan::catastrophic(cfg.cmax));
        // ...and it must converge again.
        let out = run_until(&mut net, &mut sched, 4_000_000, |n| is_legitimate(n, &cfg));
        assert!(out.is_satisfied(), "must re-stabilize after a catastrophic transient fault");
    }

    #[test]
    fn recovers_from_token_duplication() {
        let tree = topology::builders::star(6);
        let cfg = KlConfig::new(1, 2, 6);
        let mut net = idle_net(tree, cfg);
        let mut sched = RoundRobin::new();
        let out = run_until(&mut net, &mut sched, 2_000_000, |n| is_legitimate(n, &cfg));
        assert!(out.is_satisfied());
        // Inject 4 extra resource tokens and 2 extra pushers: the controller must detect the
        // surplus and reset the network back to exactly (l, 1, 1).
        for _ in 0..4 {
            net.inject_into(0, 0, Message::ResT);
        }
        net.inject_into(2, 0, Message::PushT);
        net.inject_into(3, 0, Message::PushT);
        assert!(!is_legitimate(&net, &cfg));
        let out = run_until(&mut net, &mut sched, 4_000_000, |n| is_legitimate(n, &cfg));
        assert!(out.is_satisfied(), "must recover from duplicated tokens via reset");
    }

    #[test]
    fn recovers_from_total_token_loss() {
        let tree = topology::builders::chain(4);
        let cfg = KlConfig::new(1, 3, 4);
        let mut net = idle_net(tree, cfg);
        let mut sched = RoundRobin::new();
        let out = run_until(&mut net, &mut sched, 1_000_000, |n| is_legitimate(n, &cfg));
        assert!(out.is_satisfied());
        // Drop every in-flight token.
        use topology::Topology;
        for v in 0..4usize {
            let deg = net.topology().degree(v);
            for l in 0..deg {
                net.channel_mut(v, l).clear();
            }
        }
        let out = run_until(&mut net, &mut sched, 2_000_000, |n| is_legitimate(n, &cfg));
        assert!(out.is_satisfied(), "must recreate lost tokens");
    }

    #[test]
    fn safety_never_violated_after_stabilization() {
        let tree = topology::builders::caterpillar(3, 1);
        let cfg = KlConfig::new(2, 3, 6);
        let mut net =
            network(tree, cfg, |_| Box::new(Fixed { units: 2, hold: 3 }) as BoxedDriver);
        let mut sched = RandomFair::new(5);
        assert!(run_until_stable(&mut net, &mut sched, 3_000_000, 30_000, &cfg));
        for _ in 0..100_000 {
            net.step(&mut sched);
            let used: usize = net.nodes().map(|n| n.units_in_use()).sum();
            assert!(used <= cfg.l, "at most l units in use");
            for node in net.nodes() {
                assert!(node.units_in_use() <= cfg.k, "at most k units per process");
            }
        }
    }

    #[test]
    fn corrupt_keeps_variables_in_domain() {
        use rand::SeedableRng;
        let tree = topology::builders::figure1_tree();
        let cfg = KlConfig::new(3, 5, 8);
        let mut net = idle_net(tree, cfg);
        let mut rng = StdRng::seed_from_u64(4);
        for v in 0..8 {
            for _ in 0..50 {
                net.node_mut(v).corrupt(&mut rng);
                let node = net.node(v);
                assert!(node.app.need <= cfg.k);
                assert!(node.app.reserved() <= cfg.k);
                match &node.role {
                    SsRole::Root(r) => {
                        assert!(r.my_c < cfg.counter_modulus(8));
                        assert!(r.s_token <= cfg.l as u64 + 1);
                        assert!(r.s_push <= 2 && r.s_prio <= 2);
                    }
                    SsRole::NonRoot(st) => {
                        assert!(st.my_c < cfg.counter_modulus(8));
                    }
                }
            }
        }
    }

    #[test]
    fn root_ignores_stale_controllers() {
        let tree = topology::builders::chain(3);
        let cfg = KlConfig::new(1, 1, 3);
        let mut net = idle_net(tree, cfg);
        // Forge a controller with a wrong flag value: the root must not react (no send).
        net.inject_into(0, 0, Message::Ctrl { c: 77, r: false, pt: 0, ppr: 0 });
        let before = net.metrics().sent_of_kind("ctrl");
        net.execute(treenet::Activation::Deliver { node: 0, channel: 0 });
        let after = net.metrics().sent_of_kind("ctrl");
        assert_eq!(before, after, "an invalid controller must be ignored by the root");
    }

    #[test]
    fn recovers_from_crash_restart_of_every_process() {
        use treenet::Restartable as _;
        let tree = topology::builders::binary(7);
        let cfg = KlConfig::new(1, 3, 7);
        let mut net = idle_net(tree, cfg);
        let mut sched = RoundRobin::new();
        let out = run_until(&mut net, &mut sched, 2_000_000, |n| is_legitimate(n, &cfg));
        assert!(out.is_satisfied());
        // Crash-restart every process (including the root) and lose all in-flight messages.
        let mut injector = FaultInjector::new(3);
        let report = injector.crash(&mut net, &(0..7).collect::<Vec<_>>(), true);
        assert_eq!(report.nodes_crashed, 7);
        assert_eq!(net.in_flight(), 0, "all in-flight messages were lost");
        // A restarted node is in its initial state, which the protocol bootstraps from.
        let out = run_until(&mut net, &mut sched, 4_000_000, |n| is_legitimate(n, &cfg));
        assert!(out.is_satisfied(), "crash-restart is a transient fault the protocol absorbs");
        // Restart is idempotent on an already-initial node.
        net.node_mut(1).restart();
        net.node_mut(1).restart();
        assert_eq!(net.node(1).app.state, CsState::Out);
    }

    #[test]
    fn unbounded_counter_variant_bootstraps_and_serves() {
        // The conclusion's unbounded-memory adaptation: same protocol, effectively infinite
        // counter-flushing domain.  It must bootstrap and serve requests exactly like the
        // bounded variant.
        let tree = topology::builders::binary(6);
        let cfg = KlConfig::new(2, 3, 6).with_unbounded_counter(true);
        let mut net =
            network(tree, cfg, |_| Box::new(Fixed { units: 1, hold: 3 }) as BoxedDriver);
        let mut sched = RandomFair::new(23);
        let out = run_until(&mut net, &mut sched, 2_000_000, |n| {
            is_legitimate(n, &cfg) && n.trace().cs_entries(None) >= 10
        });
        assert!(out.is_satisfied(), "the unbounded-counter variant must bootstrap and serve");
    }

    #[test]
    fn unbounded_counter_recovers_when_garbage_exceeds_cmax() {
        // Violate the CMAX assumption: insert far more forged controller messages than the
        // bounded domain was sized for.  The unbounded variant must still converge (the
        // root's flag value eventually out-runs every stale stamp).
        let tree = topology::builders::chain(5);
        let cfg = KlConfig::new(1, 2, 5).with_cmax(0).with_unbounded_counter(true);
        let mut net = idle_net(tree, cfg);
        let mut sched = RoundRobin::new();
        let out = run_until(&mut net, &mut sched, 1_000_000, |n| is_legitimate(n, &cfg));
        assert!(out.is_satisfied());
        // Flood every channel with forged controllers carrying many distinct stamps, far more
        // than CMAX = 0 allows, plus a few forged tokens.
        use topology::Topology;
        for v in 0..5usize {
            let deg = net.topology().degree(v);
            for l in 0..deg {
                for stamp in 0..20u64 {
                    net.inject_into(v, l, Message::Ctrl { c: stamp, r: false, pt: 0, ppr: 0 });
                }
                net.inject_into(v, l, Message::ResT);
            }
        }
        let out = run_until(&mut net, &mut sched, 4_000_000, |n| is_legitimate(n, &cfg));
        assert!(out.is_satisfied(), "unbounded counters must flush arbitrary amounts of garbage");
    }

    #[test]
    fn garbage_messages_are_flushed() {
        let tree = topology::builders::figure1_tree();
        let cfg = KlConfig::new(3, 5, 8);
        let mut net = idle_net(tree, cfg);
        for v in 0..8usize {
            net.inject_into(v, 0, Message::Garbage(v as u16));
        }
        let mut sched = RoundRobin::new();
        let out = run_until(&mut net, &mut sched, 2_000_000, |n| {
            is_legitimate(n, &cfg)
                && n.iter_messages().filter(|(_, _, m)| matches!(m, Message::Garbage(_))).count()
                    == 0
        });
        assert!(out.is_satisfied(), "garbage must disappear and the system must stabilize");
    }
}

#[cfg(test)]
mod controller_unit_tests {
    //! Fine-grained tests of the controller (ctrl) handling rules of Algorithms 1 and 2,
    //! exercised on single processes with a detached context so each rule of the paper can be
    //! checked in isolation.

    use super::*;
    use treenet::app::Idle;
    use treenet::Context;

    fn detached_node(node: NodeId, degree: usize, n: usize, cfg: KlConfig) -> SsNode {
        SsNode::new(node, degree, n, cfg, Box::new(Idle))
    }

    fn deliver(
        node: &mut SsNode,
        from: ChannelLabel,
        msg: Message,
        degree: usize,
    ) -> (Vec<(ChannelLabel, Message)>, Vec<Event>) {
        let mut outbox = Vec::new();
        let mut events = Vec::new();
        {
            let mut ctx = Context::detached(node.app.node, degree, 1, &mut outbox, &mut events);
            node.on_message(from, msg, &mut ctx);
        }
        (outbox, events)
    }

    #[test]
    fn nonroot_forwards_parent_ctrl_with_matching_stamp_without_counting() {
        // Algorithm 2, the "invalid message from channel 0 with myC = c" case: retransmitted
        // to prevent deadlock, but Succ is not advanced.
        let cfg = KlConfig::new(1, 3, 4);
        let mut node = detached_node(1, 3, 4, cfg);
        node.app.state = CsState::Req;
        node.app.need = 1;
        node.app.rset = vec![0]; // one reserved token from the parent
        let (out, _) = deliver(&mut node, 0, Message::Ctrl { c: 0, r: false, pt: 0, ppr: 0 }, 3);
        assert_eq!(out.len(), 1, "the controller must be retransmitted");
        match out[0].1 {
            Message::Ctrl { c, pt, .. } => {
                assert_eq!(c, 0);
                // myC == c, so the reserved token from channel 0 IS counted (line 54 runs
                // because Ok is true) — that is the paper-literal behaviour.
                assert_eq!(pt, 1);
            }
            ref other => panic!("expected a controller, got {other:?}"),
        }
        match &node.role {
            SsRole::NonRoot(st) => assert_eq!(st.succ, 0, "Succ unchanged for a duplicate"),
            _ => unreachable!(),
        }
    }

    #[test]
    fn nonroot_new_circulation_from_parent_resets_succ_and_adopts_stamp() {
        let cfg = KlConfig::new(1, 3, 5);
        let mut node = detached_node(2, 3, 5, cfg);
        let (out, _) = deliver(&mut node, 0, Message::Ctrl { c: 7, r: false, pt: 2, ppr: 0 }, 3);
        match &node.role {
            SsRole::NonRoot(st) => {
                assert_eq!(st.my_c, 7, "myC adopts the parent's stamp");
                assert_eq!(st.succ, 1, "Succ points at the first child");
            }
            _ => unreachable!(),
        }
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 1, "forwarded towards the first child");
    }

    #[test]
    fn nonroot_leaf_bounces_new_circulation_back_to_parent() {
        let cfg = KlConfig::new(1, 2, 3);
        let mut node = detached_node(2, 1, 3, cfg); // a leaf: only the parent channel
        let (out, _) = deliver(&mut node, 0, Message::Ctrl { c: 3, r: false, pt: 0, ppr: 0 }, 1);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 0, "min(1, Δ−1) = 0 for a leaf: straight back to the parent");
    }

    #[test]
    fn nonroot_reset_circulation_erases_reservations_and_priority() {
        let cfg = KlConfig::new(2, 3, 4);
        let mut node = detached_node(1, 2, 4, cfg);
        node.app.state = CsState::Req;
        node.app.need = 2;
        node.app.rset = vec![0, 1];
        node.prio = Some(1);
        let (out, _) = deliver(&mut node, 0, Message::Ctrl { c: 9, r: true, pt: 0, ppr: 0 }, 2);
        assert!(node.app.rset.is_empty(), "reset erases RSet");
        assert!(node.prio.is_none(), "reset erases Prio");
        match out[0].1 {
            Message::Ctrl { r, pt, ppr, .. } => {
                assert!(r);
                assert_eq!((pt, ppr), (0, 0), "nothing left to count after the erase");
            }
            ref other => panic!("expected a controller, got {other:?}"),
        }
    }

    #[test]
    fn nonroot_ignores_ctrl_from_wrong_child_channel() {
        let cfg = KlConfig::new(1, 2, 4);
        let mut node = detached_node(1, 3, 4, cfg);
        // Succ is 0, so a controller from child channel 2 is invalid and silently dropped.
        let (out, _) = deliver(&mut node, 2, Message::Ctrl { c: 0, r: false, pt: 0, ppr: 0 }, 3);
        assert!(out.is_empty(), "invalid controllers from non-parent channels are dropped");
    }

    #[test]
    fn root_completion_counts_last_channel_reservations_with_corrected_order() {
        // The root reserved one token from its last channel; when the controller returns on
        // that channel and completes the circulation, the corrected ordering counts it, so no
        // spurious token is created (pt + SToken == l).
        let cfg = KlConfig::new(1, 1, 3);
        let mut root = detached_node(0, 2, 3, cfg);
        root.app.state = CsState::Req;
        root.app.need = 1;
        root.app.rset = vec![1]; // reserved from the last channel
        if let SsRole::Root(r) = &mut root.role {
            r.succ = 1; // expecting the controller back from channel 1
        }
        let (out, events) =
            deliver(&mut root, 1, Message::Ctrl { c: 0, r: false, pt: 0, ppr: 0 }, 2);
        // No ResT creation: the only resource token is the one the root reserves.
        assert!(
            out.iter().all(|(_, m)| !m.is_resource()),
            "corrected ordering must not create surplus tokens, got {out:?}"
        );
        assert!(events.iter().any(|e| matches!(e, Event::Note("circulation"))));
        // The next circulation starts with a fresh stamp.
        if let SsRole::Root(r) = &root.role {
            assert_eq!(r.my_c, 1);
            assert!(!r.reset);
        }
    }

    #[test]
    fn root_literal_completion_order_creates_surplus_then_resets() {
        // Same situation as above but with the paper-literal ordering: the completed
        // circulation misses the root's reserved token, so a surplus ResT is created; the
        // next completed circulation counts both and triggers a reset.
        let cfg = KlConfig::new(1, 1, 3).with_literal_completion_order(true);
        let mut root = detached_node(0, 2, 3, cfg);
        root.app.state = CsState::Req;
        root.app.need = 1;
        root.app.rset = vec![1];
        if let SsRole::Root(r) = &mut root.role {
            r.succ = 1;
        }
        let (out, _) = deliver(&mut root, 1, Message::Ctrl { c: 0, r: false, pt: 0, ppr: 0 }, 2);
        assert!(
            out.iter().any(|(_, m)| m.is_resource()),
            "literal ordering undercounts and creates a surplus token"
        );
        // Second circulation: the controller passes the still-reserved token (pt = 1) and the
        // surplus one completes a loop through the root (SToken = 1): 1 + 1 > l, so reset.
        if let SsRole::Root(r) = &mut root.role {
            r.succ = 1;
            r.s_token = 1;
        }
        let (_, events) =
            deliver(&mut root, 1, Message::Ctrl { c: 1, r: false, pt: 1, ppr: 0 }, 2);
        assert!(
            events.iter().any(|e| matches!(e, Event::Note("reset-start"))),
            "the following circulation must detect the surplus and reset"
        );
    }

    #[test]
    fn root_ignores_ctrl_from_unexpected_channel_or_stamp() {
        let cfg = KlConfig::new(1, 2, 3);
        let mut root = detached_node(0, 2, 3, cfg);
        // succ = 0, my_c = 0: wrong channel.
        let (out, _) = deliver(&mut root, 1, Message::Ctrl { c: 0, r: false, pt: 0, ppr: 0 }, 2);
        assert!(out.is_empty());
        // right channel, wrong stamp.
        let (out, _) = deliver(&mut root, 0, Message::Ctrl { c: 5, r: false, pt: 0, ppr: 0 }, 2);
        assert!(out.is_empty());
    }

    #[test]
    fn pusher_respects_priority_holder_with_corrected_guard() {
        let cfg = KlConfig::new(2, 3, 4);
        let mut node = detached_node(1, 2, 4, cfg);
        node.app.state = CsState::Req;
        node.app.need = 2;
        node.app.rset = vec![0];
        node.prio = Some(0);
        let (out, _) = deliver(&mut node, 0, Message::PushT, 2);
        assert_eq!(node.app.reserved(), 1, "the priority holder keeps its reservation");
        assert_eq!(out.len(), 1, "only the pusher is forwarded");
        assert!(out[0].1.is_pusher());
    }

    #[test]
    fn pusher_evicts_priority_holder_under_literal_guard() {
        let cfg = KlConfig::new(2, 3, 4).with_literal_pusher_guard(true);
        let mut node = detached_node(1, 2, 4, cfg);
        node.app.state = CsState::Req;
        node.app.need = 2;
        node.app.rset = vec![0];
        node.prio = Some(0);
        let (out, _) = deliver(&mut node, 0, Message::PushT, 2);
        assert_eq!(node.app.reserved(), 0, "the literal guard evicts the priority holder");
        assert!(out.iter().any(|(_, m)| m.is_resource()));
    }

    #[test]
    fn pusher_does_not_evict_processes_in_or_about_to_enter_cs() {
        let cfg = KlConfig::new(2, 3, 4);
        for state in [CsState::In, CsState::Req] {
            let mut node = detached_node(1, 2, 4, cfg);
            node.app.state = state;
            node.app.need = 1;
            node.app.rset = vec![0]; // |RSet| >= Need: enabled (or already in) CS
            let (_, _) = deliver(&mut node, 0, Message::PushT, 2);
            assert_eq!(node.app.reserved(), 1, "state {state:?} keeps its tokens");
        }
    }

    #[test]
    fn pt_field_saturates_at_l_plus_one() {
        // Bounded-memory rule: counter fields saturate instead of growing without bound.
        let cfg = KlConfig::new(2, 2, 4);
        let mut node = detached_node(1, 2, 4, cfg);
        node.app.state = CsState::Req;
        node.app.need = 2;
        node.app.rset = vec![0, 0];
        let (out, _) =
            deliver(&mut node, 0, Message::Ctrl { c: 4, r: false, pt: 2, ppr: 0 }, 2);
        match out[0].1 {
            Message::Ctrl { pt, .. } => assert_eq!(pt, 3, "min(2 + 2, l + 1) = 3"),
            ref other => panic!("expected a controller, got {other:?}"),
        }
    }

    #[test]
    fn root_timeout_retransmits_controller_and_restarts_timer() {
        let cfg = KlConfig::new(1, 2, 3).with_timeout(5);
        let mut root = detached_node(0, 2, 3, cfg);
        let mut sent = 0;
        for _ in 0..20u64 {
            let mut outbox = Vec::new();
            let mut events = Vec::new();
            {
                let mut ctx = Context::detached(0, 2, 1, &mut outbox, &mut events);
                root.on_tick(&mut ctx);
            }
            sent += outbox.iter().filter(|(_, m)| m.is_ctrl()).count();
        }
        // With a timeout of 5 root ticks, 20 ticks produce 4 controller retransmissions.
        assert_eq!(sent, 4);
    }
}
