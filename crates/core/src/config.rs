//! Protocol parameters.

use serde::{Deserialize, Serialize};

/// Parameters of a k-out-of-ℓ exclusion instance.
///
/// `k` and `l` are the problem parameters (`1 ≤ k ≤ ℓ`); the remaining fields configure the
/// self-stabilization machinery:
///
/// * `cmax` — the assumed bound on the number of arbitrary messages initially present in each
///   channel.  It determines the size of the counter-flushing domain
///   `myC ∈ [0 .. 2(n−1)(CMAX+1)]`.
/// * `timeout_interval` — the root's retransmission timeout for the controller, measured in
///   activations of the root.  The paper only requires it to be "sufficiently large to
///   prevent congestion"; [`KlConfig::default_timeout`] derives a generous default from the
///   network size.
/// * `literal_pusher_guard` — reproduce the pusher guard exactly as printed in the paper
///   (`Prio ≠ ⊥`), which contradicts the prose and starves priority holders.  Off by default;
///   used by the ablation experiment E10.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct KlConfig {
    /// Maximum number of units a single request may ask for (1 ≤ k ≤ ℓ).
    pub k: usize,
    /// Total number of resource units (tokens) in the system.
    pub l: usize,
    /// Bound on the number of arbitrary messages initially in each channel (CMAX).
    pub cmax: usize,
    /// Root timeout, in root activations, before the controller is retransmitted.
    pub timeout_interval: u64,
    /// Use the pusher guard exactly as printed in the paper's pseudo-code (see crate docs).
    pub literal_pusher_guard: bool,
    /// Use the controller-completion ordering exactly as printed in Algorithm 1 (see
    /// [`crate::ss`] docs): the root's own passed tokens are credited to the *next*
    /// circulation, which undercounts the completed one whenever the root reserves tokens
    /// received from its last channel and causes spurious creations followed by resets.
    pub literal_completion_order: bool,
    /// Run the counter-flushing counter `myC` over an *unbounded* domain instead of the
    /// paper's bounded domain `[0 .. 2(n−1)(CMAX+1)]`.
    ///
    /// This is the adaptation the paper's conclusion describes: with unbounded process
    /// memory the protocol "can be easily adapted to work without assumptions on channels"
    /// (following Katz–Perry-style extensions, reference \[9\] of the paper).  The bounded
    /// domain is only large enough to out-run the stale values that at most `CMAX` initial
    /// messages per channel can carry; when a fault violates that bound, stale controllers
    /// can keep aliasing the root's flag value and cause spurious circulations, mis-counted
    /// token censuses and repeated resets.  With an unbounded counter the root's flag value
    /// eventually exceeds every stale value in the system no matter how much garbage the
    /// channels initially contained.  Experiment E14 quantifies the difference.
    pub unbounded_counter: bool,
}

impl KlConfig {
    /// Creates a configuration for a network of `n` processes with `k`-out-of-`l` requests,
    /// CMAX = 2, the corrected pusher guard, and the default timeout for `n`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ k ≤ l`.
    pub fn new(k: usize, l: usize, n: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        assert!(k <= l, "k ({k}) must not exceed l ({l})");
        KlConfig {
            k,
            l,
            cmax: 2,
            timeout_interval: Self::default_timeout(n),
            literal_pusher_guard: false,
            literal_completion_order: false,
            unbounded_counter: false,
        }
    }

    /// A generous default timeout: long enough for a controller circulation (2(n−1) hops) to
    /// complete under any of the bundled fair schedulers, with ample slack.
    pub fn default_timeout(n: usize) -> u64 {
        (80 * n.max(2) as u64).max(400)
    }

    /// Overrides CMAX.
    pub fn with_cmax(mut self, cmax: usize) -> Self {
        self.cmax = cmax;
        self
    }

    /// Overrides the root timeout.
    pub fn with_timeout(mut self, interval: u64) -> Self {
        self.timeout_interval = interval.max(1);
        self
    }

    /// Selects the literal (paper-printed) pusher guard for ablation experiments.
    pub fn with_literal_pusher_guard(mut self, literal: bool) -> Self {
        self.literal_pusher_guard = literal;
        self
    }

    /// Selects the literal (paper-printed) controller-completion ordering for ablation
    /// experiments.
    pub fn with_literal_completion_order(mut self, literal: bool) -> Self {
        self.literal_completion_order = literal;
        self
    }

    /// Selects the unbounded counter-flushing domain (the conclusion's unbounded-memory
    /// adaptation, see [`KlConfig::unbounded_counter`]).
    pub fn with_unbounded_counter(mut self, unbounded: bool) -> Self {
        self.unbounded_counter = unbounded;
        self
    }

    /// The modulus of the counter-flushing counter `myC` for a network of `n` processes:
    /// the domain is `[0 .. 2(n−1)(CMAX+1)]`, i.e. `2(n−1)(CMAX+1) + 1` distinct values.
    ///
    /// For `n = 1` the protocol is trivial (the root owns every token); the modulus is
    /// clamped to at least 2 so arithmetic stays well-defined.
    ///
    /// When [`KlConfig::unbounded_counter`] is selected the counter is effectively
    /// unbounded: the modulus is `u64::MAX`, so the root never wraps in any feasible run.
    pub fn counter_modulus(&self, n: usize) -> u64 {
        if self.unbounded_counter {
            return u64::MAX;
        }
        let base = 2 * (n.saturating_sub(1) as u64) * (self.cmax as u64 + 1) + 1;
        base.max(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sets_sane_defaults() {
        let c = KlConfig::new(2, 5, 8);
        assert_eq!(c.k, 2);
        assert_eq!(c.l, 5);
        assert_eq!(c.cmax, 2);
        assert!(!c.literal_pusher_guard);
        assert!(c.timeout_interval >= 400);
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn rejects_k_larger_than_l() {
        KlConfig::new(4, 3, 5);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn rejects_zero_k() {
        KlConfig::new(0, 3, 5);
    }

    #[test]
    fn counter_modulus_matches_paper_domain() {
        let c = KlConfig::new(1, 1, 8).with_cmax(2);
        // 2 * (8-1) * (2+1) + 1 = 43 values.
        assert_eq!(c.counter_modulus(8), 43);
        // Single-node network clamps to 2.
        assert_eq!(c.counter_modulus(1), 2);
    }

    #[test]
    fn builders_override_fields() {
        let c = KlConfig::new(1, 2, 4)
            .with_cmax(5)
            .with_timeout(999)
            .with_literal_pusher_guard(true);
        assert_eq!(c.cmax, 5);
        assert_eq!(c.timeout_interval, 999);
        assert!(c.literal_pusher_guard);
    }

    #[test]
    fn timeout_never_zero() {
        let c = KlConfig::new(1, 1, 2).with_timeout(0);
        assert_eq!(c.timeout_interval, 1);
    }

    #[test]
    fn unbounded_counter_selects_effectively_infinite_modulus() {
        let bounded = KlConfig::new(1, 2, 8);
        let unbounded = KlConfig::new(1, 2, 8).with_unbounded_counter(true);
        assert!(!bounded.unbounded_counter);
        assert!(unbounded.unbounded_counter);
        assert!(bounded.counter_modulus(8) < 100);
        assert_eq!(unbounded.counter_modulus(8), u64::MAX);
        // The unbounded domain does not depend on n or CMAX.
        assert_eq!(unbounded.with_cmax(50).counter_modulus(1_000), u64::MAX);
    }
}
