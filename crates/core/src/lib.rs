//! `klex-core` — the paper's contribution: self-stabilizing k-out-of-ℓ exclusion on oriented
//! tree networks (Datta, Devismes, Horn, Larmore, IPPS 2009), together with the intermediate
//! protocols of its step-by-step construction.
//!
//! # The problem
//!
//! There are ℓ units of a shared resource; any process may request up to `k ≤ ℓ` units at a
//! time.  A k-out-of-ℓ exclusion protocol must guarantee (Section 2 of the paper):
//!
//! * **Safety** — each unit is used by at most one process, each process uses at most `k`
//!   units, at most `ℓ` units are in use;
//! * **Fairness** — every request for at most `k` units is eventually satisfied;
//! * **Efficiency** — as many requests as possible are satisfied simultaneously, formalised
//!   as *(k,ℓ)-liveness*.
//!
//! The protocol must additionally be **self-stabilizing**: starting from *any* configuration
//! (arbitrary local states, up to `CMAX` arbitrary messages per channel) it converges to a
//! legitimate configuration from which the specification holds forever.
//!
//! # The protocol ladder (Section 3)
//!
//! | Module | Tokens | Guarantees |
//! |--------|--------|------------|
//! | [`naive`] | ℓ resource tokens circulating in DFS order | safety only — deadlocks (Fig. 2) |
//! | [`pusher`] | + 1 pusher token | deadlock-free — livelocks/starves (Fig. 3) |
//! | [`nonstab`] | + 1 priority token | correct k-out-of-ℓ exclusion, **not** fault-tolerant |
//! | [`ss`] | + counter-flushing controller, bounded counters | **self-stabilizing** (Algorithms 1 & 2) |
//!
//! All variants share the message vocabulary ([`message::Message`]), the application
//! interface ([`node::AppSide`]), and the DFS retransmission rule (a token received on
//! channel `i` leaves on channel `(i+1) mod Δp`), so experiments can ablate exactly one
//! mechanism at a time.
//!
//! # Faithfulness notes
//!
//! The implementation follows Algorithms 1 and 2 line by line; the module documentation of
//! [`ss`] maps code blocks to line numbers.  One apparent typo in the published pseudo-code
//! is corrected (and kept available behind a switch for the ablation study): the guard of the
//! pusher handler reads `Prio ≠ ⊥` in the paper, which would make the *holder* of the
//! priority token drop its reserved tokens — the opposite of the mechanism described in the
//! prose and used in the proofs of Lemmas 10–12.  [`KlConfig::literal_pusher_guard`] selects
//! the literal (buggy) guard; the default is the corrected `Prio = ⊥`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod inspect;
pub mod legitimacy;
pub mod message;
pub mod naive;
pub mod node;
pub mod nonstab;
pub mod pusher;
pub mod ss;
pub mod wire;

pub use config::KlConfig;
pub use inspect::KlInspect;
pub use legitimacy::{count_tokens, is_legitimate, TokenCensus};
pub use message::Message;
pub use node::AppSide;
pub use ss::{SsNode, SsRole};
