//! Read-only inspection of protocol nodes, used by invariant checkers and experiments.

use treenet::CsState;

/// Read access to the request-related state of a protocol node.
///
/// Every protocol variant in this crate (and the baselines) implements this trait, so the
/// `analysis` crate can check the safety property, take token censuses and detect legitimate
/// configurations without knowing which variant is running.
pub trait KlInspect {
    /// The paper's `State` variable.
    fn cs_state(&self) -> CsState;

    /// The paper's `Need` variable: units currently requested.
    fn need(&self) -> usize;

    /// `|RSet|`: resource tokens currently reserved (held) by this process.
    fn reserved(&self) -> usize;

    /// True when the process currently holds the priority token (`Prio ≠ ⊥`).
    fn holds_priority(&self) -> bool;

    /// Resource units in use in the sense of the safety property: reserved tokens while the
    /// process executes its critical section, 0 otherwise.
    fn units_in_use(&self) -> usize {
        if self.cs_state() == CsState::In {
            self.reserved()
        } else {
            0
        }
    }

    /// True when the process is a requester whose request is not yet satisfied.
    fn is_unsatisfied_requester(&self) -> bool {
        self.cs_state() == CsState::Req && self.reserved() < self.need()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fake {
        state: CsState,
        need: usize,
        reserved: usize,
    }
    impl KlInspect for Fake {
        fn cs_state(&self) -> CsState {
            self.state
        }
        fn need(&self) -> usize {
            self.need
        }
        fn reserved(&self) -> usize {
            self.reserved
        }
        fn holds_priority(&self) -> bool {
            false
        }
    }

    #[test]
    fn units_in_use_only_counts_critical_sections() {
        let waiting = Fake { state: CsState::Req, need: 3, reserved: 2 };
        assert_eq!(waiting.units_in_use(), 0);
        assert!(waiting.is_unsatisfied_requester());

        let working = Fake { state: CsState::In, need: 2, reserved: 2 };
        assert_eq!(working.units_in_use(), 2);
        assert!(!working.is_unsatisfied_requester());

        let idle = Fake { state: CsState::Out, need: 0, reserved: 0 };
        assert_eq!(idle.units_in_use(), 0);
        assert!(!idle.is_unsatisfied_requester());
    }
}
