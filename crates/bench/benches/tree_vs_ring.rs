//! Criterion bench for E8: the same saturated workload on the tree protocol and on the ring
//! baseline, measuring critical-section entries produced per fixed step budget.

use baselines::ring;
use bench::support::{measure_throughput, scheduler, stabilized_ss_network};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use klex_core::KlConfig;
use workloads::all_saturated;

fn bench_tree_vs_ring(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_vs_ring_30k_steps");
    group.sample_size(10);
    const STEPS: u64 = 30_000;
    for &n in &[8usize, 16] {
        let cfg = KlConfig::new(1, 3, n);
        group.bench_with_input(BenchmarkId::new("tree", n), &n, |b, &n| {
            b.iter(|| {
                let tree = topology::builders::random_tree(n, 4);
                let mut boot = scheduler(6);
                let mut net =
                    stabilized_ss_network(tree, cfg, all_saturated(1, 3), &mut boot, 4_000_000)
                        .expect("stabilizes");
                let mut sched = scheduler(12);
                measure_throughput(&mut net, &mut sched, STEPS).0
            })
        });
        group.bench_with_input(BenchmarkId::new("ring", n), &n, |b, &n| {
            b.iter(|| {
                let mut net = ring::network(n, cfg, all_saturated(1, 3));
                let mut boot = scheduler(6);
                bench::support::run_until_stable(
                    &mut net,
                    &mut boot,
                    &cfg,
                    4_000_000,
                    analysis::convergence::default_window(n),
                )
                .expect("ring stabilizes");
                net.trace_mut().clear();
                net.metrics_mut().reset();
                let mut sched = scheduler(12);
                measure_throughput(&mut net, &mut sched, STEPS).0
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tree_vs_ring);
criterion_main!(benches);
