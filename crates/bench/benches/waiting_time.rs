//! Criterion bench for E6: waiting-time measurement kernel under saturation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use bench::support::{scheduler, stabilized_ss_network};
use analysis::waiting::{max_waiting, waiting_times};
use klex_core::KlConfig;
use workloads::all_saturated;

fn bench_waiting(c: &mut Criterion) {
    let mut group = c.benchmark_group("waiting_time_saturated_20k_steps");
    group.sample_size(10);
    for &n in &[6usize, 10] {
        let cfg = KlConfig::new(1, 2, n);
        group.bench_with_input(BenchmarkId::new("chain", n), &n, |b, &n| {
            b.iter(|| {
                let tree = topology::builders::chain(n);
                let mut boot = scheduler(5);
                let mut net =
                    stabilized_ss_network(tree, cfg, all_saturated(1, 3), &mut boot, 2_000_000)
                        .expect("stabilizes");
                let mut sched = scheduler(9);
                treenet::run_for(&mut net, &mut sched, 20_000);
                max_waiting(&waiting_times(net.trace()))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_waiting);
criterion_main!(benches);
