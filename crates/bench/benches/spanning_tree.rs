//! Criterion bench for E11: stabilization of the distributed spanning-tree construction and
//! of the full composition (spanning tree + k-out-of-ℓ exclusion) on general rooted networks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use klex_core::KlConfig;
use stree::composed::compose_with_defaults;
use topology::RootedGraph;
use treenet::app::{BoxedDriver, Idle};
use treenet::{RandomFair, RoundRobin};

fn bench_spanning_tree_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("spanning_tree_convergence");
    group.sample_size(10);
    for &n in &[8usize, 16, 32] {
        for (label, extra) in [("sparse", n / 2), ("dense", 2 * n)] {
            let graph = RootedGraph::random_connected(n, extra, 11);
            group.bench_with_input(
                BenchmarkId::new(label, n),
                &graph,
                |b, graph| {
                    b.iter(|| {
                        let mut net = stree::network_with_defaults(graph.clone());
                        let mut sched = RoundRobin::new();
                        let mut steps = 0u64;
                        while !stree::distances_are_exact(&net) {
                            net.step(&mut sched);
                            steps += 1;
                            assert!(steps < 5_000_000, "spanning tree must converge");
                        }
                        steps
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_full_composition(c: &mut Criterion) {
    let mut group = c.benchmark_group("composition_until_legitimate");
    group.sample_size(10);
    for &n in &[8usize, 16] {
        let graph = RootedGraph::random_connected(n, n, 3);
        let kl = KlConfig::new(1, 2, n);
        group.bench_with_input(BenchmarkId::new("mesh", n), &graph, |b, graph| {
            b.iter(|| {
                let mut sched = RandomFair::new(9);
                let composition = compose_with_defaults(
                    graph.clone(),
                    kl,
                    |_| Box::new(Idle) as BoxedDriver,
                    &mut sched,
                )
                .expect("composition stabilizes");
                composition.total_activations()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spanning_tree_convergence, bench_full_composition);
criterion_main!(benches);
