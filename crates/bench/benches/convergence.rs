//! Criterion bench for E5: convergence (bootstrap and post-fault) of the self-stabilizing
//! protocol.

use bench::support::TreeShape;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use klex_core::{ss, KlConfig};
use treenet::app::{BoxedDriver, Idle};
use treenet::{FaultInjector, FaultPlan, RoundRobin};

fn bench_bootstrap(c: &mut Criterion) {
    let mut group = c.benchmark_group("bootstrap_to_legitimacy");
    group.sample_size(10);
    for &n in &[6usize, 12] {
        for shape in [TreeShape::Chain, TreeShape::Star] {
            let tree = shape.build(n, 1);
            let cfg = KlConfig::new(1, 2, n);
            group.bench_with_input(BenchmarkId::new(shape.label(), n), &tree, |b, tree| {
                b.iter(|| {
                    let mut net =
                        ss::network(tree.clone(), cfg, |_| Box::new(Idle) as BoxedDriver);
                    let mut sched = RoundRobin::new();
                    let out = treenet::run_until(&mut net, &mut sched, 2_000_000, |n| {
                        klex_core::is_legitimate(n, &cfg)
                    });
                    assert!(out.is_satisfied());
                    out.time().unwrap()
                })
            });
        }
    }
    group.finish();
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("recovery_after_catastrophic_fault");
    group.sample_size(10);
    for &n in &[6usize, 12] {
        let tree = topology::builders::binary(n);
        let cfg = KlConfig::new(1, 2, n);
        group.bench_with_input(BenchmarkId::new("binary", n), &tree, |b, tree| {
            b.iter(|| {
                let mut net = ss::network(tree.clone(), cfg, |_| Box::new(Idle) as BoxedDriver);
                let mut sched = RoundRobin::new();
                let out = treenet::run_until(&mut net, &mut sched, 2_000_000, |n| {
                    klex_core::is_legitimate(n, &cfg)
                });
                assert!(out.is_satisfied());
                let mut injector = FaultInjector::new(7);
                injector.inject(&mut net, &FaultPlan::catastrophic(cfg.cmax));
                let out = treenet::run_until(&mut net, &mut sched, 4_000_000, |n| {
                    klex_core::is_legitimate(n, &cfg)
                });
                assert!(out.is_satisfied());
                out.time().unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bootstrap, bench_recovery);
criterion_main!(benches);
