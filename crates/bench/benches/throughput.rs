//! Criterion bench for E9: simulation throughput (steps/second) of the self-stabilizing
//! protocol under load — the raw speed of the simulator kernel.

use bench::support::{measure_throughput, scheduler, stabilized_ss_network};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use klex_core::KlConfig;
use workloads::all_saturated;

fn bench_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("ss_protocol_steps");
    group.sample_size(10);
    const STEPS: u64 = 50_000;
    group.throughput(Throughput::Elements(STEPS));
    for &n in &[8usize, 16, 32] {
        let cfg = KlConfig::new(2, 4, n);
        group.bench_with_input(BenchmarkId::new("random_tree", n), &n, |b, &n| {
            let tree = topology::builders::random_tree(n, 2);
            let mut boot = scheduler(3);
            let net0 =
                stabilized_ss_network(tree, cfg, all_saturated(2, 5), &mut boot, 4_000_000)
                    .expect("stabilizes");
            // Criterion re-runs the closure: measuring on a pre-stabilized snapshot is not
            // possible because Network is not Clone, so re-stabilize cheaply outside timing is
            // not an option here; instead measure steady-state stepping on the same network.
            let net = std::cell::RefCell::new(net0);
            b.iter(|| {
                let mut sched = scheduler(11);
                let (entries, _msgs) =
                    measure_throughput(&mut net.borrow_mut(), &mut sched, STEPS);
                entries
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_steps);
criterion_main!(benches);
