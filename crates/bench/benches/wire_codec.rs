//! Criterion bench for the wire format: encode/decode throughput of the protocol's messages.
//!
//! A deployed process forwards every token it does not reserve, so codec cost sits on the
//! forwarding fast path; these benches record how many messages per second the encoding
//! sustains (single-byte token frames versus 19-byte controller frames), plus the lossy
//! decoder's cost on corrupted input.

use bytes::BytesMut;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use klex_core::{wire, Message};

fn messages() -> Vec<(&'static str, Message)> {
    vec![
        ("resource", Message::ResT),
        ("ctrl", Message::Ctrl { c: 123_456, r: false, pt: 7, ppr: 1 }),
        ("garbage", Message::Garbage(0xBEEF)),
    ]
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_encode");
    for (label, msg) in messages() {
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::from_parameter(label), &msg, |b, msg| {
            let mut buf = BytesMut::with_capacity(64);
            b.iter(|| {
                buf.clear();
                wire::encode_into(msg, &mut buf);
                buf.len()
            })
        });
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_decode");
    for (label, msg) in messages() {
        let frame = wire::encode(&msg);
        group.throughput(Throughput::Bytes(frame.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(label), &frame, |b, frame| {
            b.iter(|| wire::decode(frame).expect("well-formed frame"))
        });
    }
    // Lossy decoding of a corrupted frame (the worst case: checksum over the whole buffer).
    let junk: Vec<u8> = (0..19u8).map(|x| x.wrapping_mul(37).wrapping_add(1)).collect();
    group.bench_function("lossy_corrupted_19_bytes", |b| {
        b.iter(|| wire::decode_lossy(&junk))
    });
    group.finish();
}

criterion_group!(benches, bench_encode, bench_decode);
criterion_main!(benches);
