//! Criterion bench for E1/E4: cost of simulating token circulation and of computing virtual
//! rings, across tree shapes and sizes.

use bench::support::TreeShape;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use klex_core::{naive, KlConfig};
use topology::{Topology, VirtualRing};
use treenet::app::{BoxedDriver, Idle};
use treenet::RoundRobin;

fn bench_virtual_ring(c: &mut Criterion) {
    let mut group = c.benchmark_group("virtual_ring");
    for &n in &[8usize, 32, 128] {
        for shape in [TreeShape::Chain, TreeShape::Star, TreeShape::Random] {
            let tree = shape.build(n, 1);
            group.bench_with_input(
                BenchmarkId::new(shape.label(), n),
                &tree,
                |b, tree| b.iter(|| VirtualRing::of(tree).len()),
            );
        }
    }
    group.finish();
}

fn bench_token_circulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("dfs_token_circulation_10k_steps");
    group.sample_size(10);
    for &n in &[8usize, 32] {
        let tree = topology::builders::random_tree(n, 3);
        group.bench_with_input(BenchmarkId::new("naive_l1", n), &tree, |b, tree| {
            b.iter(|| {
                let cfg = KlConfig::new(1, 1, tree.len());
                let mut net =
                    naive::network(tree.clone(), cfg, |_| Box::new(Idle) as BoxedDriver);
                let mut sched = RoundRobin::new();
                treenet::run_for(&mut net, &mut sched, 10_000);
                net.metrics().messages_sent
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_virtual_ring, bench_token_circulation);
criterion_main!(benches);
