//! Criterion bench for E12: throughput of the bounded-exhaustive checker (configurations
//! explored per second) on the instances the experiment enumerates.

use checker::{drivers, Explorer, Limits};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use klex_core::KlConfig;

fn explore_limits() -> Limits {
    Limits { max_configurations: 2_000_000, max_depth: usize::MAX }
}

fn bench_exploration(c: &mut Criterion) {
    let mut group = c.benchmark_group("exhaustive_exploration");
    group.sample_size(10);

    group.bench_function(BenchmarkId::new("naive_chain3_l2", "full-space"), |b| {
        b.iter(|| {
            let tree = topology::builders::chain(3);
            let cfg = KlConfig::new(2, 2, 3);
            let needs = [0usize, 2, 2];
            let mut net = klex_core::naive::network(tree, cfg, drivers::from_needs(&needs));
            let report = Explorer::new(&mut net).with_limits(explore_limits()).run();
            assert!(report.exhaustive());
            report.configurations
        })
    });

    group.bench_function(BenchmarkId::new("pusher_figure3", "full-space+graph"), |b| {
        b.iter(|| {
            let tree = topology::builders::figure3_tree();
            let cfg = KlConfig::new(2, 3, 3);
            let needs = [1usize, 2, 1];
            let mut net =
                klex_core::pusher::network(tree, cfg, drivers::from_needs_holding(&needs));
            let mut explorer =
                Explorer::new(&mut net).with_limits(explore_limits()).record_graph(true);
            let report = explorer.run();
            assert!(report.exhaustive());
            (report.configurations, explorer.graph().transition_count())
        })
    });

    group.finish();
}

fn bench_cycle_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("starvation_cycle_search");
    group.sample_size(10);
    // Explore the priority-augmented Figure-3 instance once; the bench then measures only the
    // SCC decomposition + cycle search over the recorded graph (the negative case, which has
    // to look at the whole graph).
    let tree = topology::builders::figure3_tree();
    let cfg = KlConfig::new(2, 3, 3);
    let needs = [1usize, 2, 1];
    let mut net = klex_core::nonstab::network(tree, cfg, drivers::from_needs_holding(&needs));
    let mut explorer = Explorer::new(&mut net).with_limits(explore_limits()).record_graph(true);
    let report = explorer.run();
    assert!(report.exhaustive());
    let graph = explorer.into_graph();
    group.bench_function(BenchmarkId::new("nonstab_figure3", graph.len()), |b| {
        b.iter(|| {
            let cycle = checker::cycles::find_progress_cycle(&graph, 1);
            assert!(cycle.is_none());
        })
    });
    group.finish();
}

criterion_group!(benches, bench_exploration, bench_cycle_search);
criterion_main!(benches);
