//! Criterion bench for E12: throughput of the bounded-exhaustive checker (configurations
//! explored per second) on the instances the experiment enumerates, plus a head-to-head
//! comparison of the exploration engines:
//!
//! * `baseline` — the pre-interning loop retained in `checker::explore::baseline`
//!   (SipHash-keyed `HashMap<Configuration, usize>`, full configuration clones);
//! * `interned` — the packed/interned sequential engine (`Explorer::run_interned`), the
//!   delta engine's oracle;
//! * `delta` — the undo-log delta successor engine (`Explorer::run`, the default);
//! * `parallel` — work-stealing parallel delta exploration over the sharded arena
//!   (`Explorer::run_parallel`), one row per worker count.
//!
//! The comparison group also appends a dated entry to the `BENCH_explorer.json` history at
//! the workspace root recording states/second for each engine (the parallel engine at 1, 2,
//! 4 and all-cores workers, with the requested and effective thread counts spelled out), the
//! resulting speedups, and the largest instance whose reachable set the checker has
//! certified exhaustively (`pusher_star7`, 224k+ configurations).  The history keeps the
//! last [`bench::history::MAX_ENTRIES`] runs plus a `trend` block, so the gains are tracked
//! across runs, not just as a single overwritten snapshot (schema documented in
//! ARCHITECTURE.md § Performance baselines).

use analysis::harness::host_cores;
use bench::history::{Entry, History};
use checker::{drivers, explore::baseline, ExploreEngine, Explorer, Limits};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use klex_core::KlConfig;
use serde_json::Value;
use std::path::Path;
use std::time::Instant;

fn explore_limits() -> Limits {
    Limits { max_configurations: 2_000_000, max_depth: usize::MAX }
}

/// The engine-comparison instance: a 5-node star under the pusher-only protocol with four
/// holding requesters competing for three tokens — 15k+ reachable configurations, an order of
/// magnitude beyond the Figure-3 instances, so interning and hashing costs dominate.
fn comparison_net(
) -> treenet::Network<klex_core::pusher::PusherNode, topology::OrientedTree> {
    let tree = topology::builders::star(5);
    let cfg = KlConfig::new(2, 3, 5);
    klex_core::pusher::network(tree, cfg, drivers::from_needs_holding(&[0usize, 2, 1, 2, 1]))
}

/// The certification instance: the largest reachable set the checker has enumerated
/// exhaustively — a 7-node star under the pusher-only protocol, six holding requesters
/// competing for three tokens, 224k+ configurations (an order of magnitude beyond
/// `pusher_star5`).  `emit_engine_baseline` re-certifies it on every bench run and records
/// its size and throughput in `BENCH_explorer.json`.
fn certified_net(
) -> treenet::Network<klex_core::pusher::PusherNode, topology::OrientedTree> {
    let tree = topology::builders::star(7);
    let cfg = KlConfig::new(2, 3, 7);
    klex_core::pusher::network(
        tree,
        cfg,
        drivers::from_needs_holding(&[0usize, 2, 1, 2, 1, 1, 1]),
    )
}

fn bench_exploration(c: &mut Criterion) {
    let mut group = c.benchmark_group("exhaustive_exploration");
    group.sample_size(10);

    group.bench_function(BenchmarkId::new("naive_chain3_l2", "full-space"), |b| {
        b.iter(|| {
            let tree = topology::builders::chain(3);
            let cfg = KlConfig::new(2, 2, 3);
            let needs = [0usize, 2, 2];
            let mut net = klex_core::naive::network(tree, cfg, drivers::from_needs(&needs));
            let report = Explorer::new(&mut net).with_limits(explore_limits()).run();
            assert!(report.exhaustive());
            report.configurations
        })
    });

    group.bench_function(BenchmarkId::new("pusher_figure3", "full-space+graph"), |b| {
        b.iter(|| {
            let tree = topology::builders::figure3_tree();
            let cfg = KlConfig::new(2, 3, 3);
            let mut net =
                klex_core::pusher::network(tree, cfg, drivers::from_needs_holding(&[1usize, 2, 1]));
            let mut explorer =
                Explorer::new(&mut net).with_limits(explore_limits()).record_graph(true);
            let report = explorer.run();
            assert!(report.exhaustive());
            (report.configurations, explorer.graph().transition_count())
        })
    });

    group.finish();
}

fn bench_engine_comparison(c: &mut Criterion) {
    let mut group = c.benchmark_group("explorer_engines");
    group.sample_size(10);

    group.bench_function(BenchmarkId::new("baseline", "pusher_star5"), |b| {
        b.iter(|| {
            let mut net = comparison_net();
            let report = baseline::explore(&mut net, explore_limits());
            assert!(!report.truncated);
            report.configurations
        })
    });

    group.bench_function(BenchmarkId::new("interned", "pusher_star5"), |b| {
        b.iter(|| {
            let mut net = comparison_net();
            let report = Explorer::new(&mut net)
                .with_limits(explore_limits())
                .run_with(ExploreEngine::Interned);
            assert!(report.exhaustive());
            report.configurations
        })
    });

    group.bench_function(BenchmarkId::new("delta", "pusher_star5"), |b| {
        b.iter(|| {
            let mut net = comparison_net();
            let report = Explorer::new(&mut net).with_limits(explore_limits()).run();
            assert!(report.exhaustive());
            report.configurations
        })
    });

    let threads = host_cores();
    group.bench_function(BenchmarkId::new(format!("parallel{threads}"), "pusher_star5"), |b| {
        b.iter(|| {
            let mut net = comparison_net();
            let report = Explorer::new(&mut net)
                .with_limits(explore_limits())
                .run_parallel(comparison_net, threads);
            assert!(report.exhaustive());
            report.configurations
        })
    });

    group.finish();
}

fn bench_cycle_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("starvation_cycle_search");
    group.sample_size(10);
    // Explore the priority-augmented Figure-3 instance once; the bench then measures only the
    // SCC decomposition + cycle search over the recorded graph (the negative case, which has
    // to look at the whole graph).
    let tree = topology::builders::figure3_tree();
    let cfg = KlConfig::new(2, 3, 3);
    let needs = [1usize, 2, 1];
    let mut net = klex_core::nonstab::network(tree, cfg, drivers::from_needs_holding(&needs));
    let mut explorer = Explorer::new(&mut net).with_limits(explore_limits()).record_graph(true);
    let report = explorer.run();
    assert!(report.exhaustive());
    let graph = explorer.into_graph();
    group.bench_function(BenchmarkId::new("nonstab_figure3", graph.len()), |b| {
        b.iter(|| {
            let cycle = checker::cycles::find_progress_cycle(&graph, 1);
            assert!(cycle.is_none());
        })
    });
    group.finish();
}

/// Times `run` (which returns the number of configurations explored) over `rounds` runs and
/// returns the best states/second together with the configuration count.
fn states_per_sec(rounds: usize, mut run: impl FnMut() -> usize) -> (f64, usize) {
    let mut best = 0.0f64;
    let mut configurations = 0;
    for _ in 0..rounds {
        let start = Instant::now();
        configurations = run();
        let rate = configurations as f64 / start.elapsed().as_secs_f64();
        best = best.max(rate);
    }
    (best, configurations)
}

/// Records the engine comparison to `BENCH_explorer.json` at the workspace root: the three
/// sequential engines plus one parallel row per worker count (1, 2, 4 and all cores), and
/// the re-certified `pusher_star7` instance.  Every row records the *requested* worker
/// count next to the *effective* one (capped at the host's cores) — on a single-core
/// runner a 4-thread row is honest about the four workers time-slicing one core.
fn emit_engine_baseline(_c: &mut Criterion) {
    let limits = explore_limits();
    let rounds = 3;
    let cores = host_cores();
    let (baseline_rate, configurations) = states_per_sec(rounds, || {
        let mut net = comparison_net();
        baseline::explore(&mut net, limits).configurations
    });
    let (interned_rate, interned_configs) = states_per_sec(rounds, || {
        let mut net = comparison_net();
        Explorer::new(&mut net)
            .with_limits(limits)
            .run_with(ExploreEngine::Interned)
            .configurations
    });
    let (delta_rate, delta_configs) = states_per_sec(rounds, || {
        let mut net = comparison_net();
        Explorer::new(&mut net).with_limits(limits).run().configurations
    });
    assert_eq!(configurations, interned_configs, "engines must agree on the state space");
    assert_eq!(configurations, delta_configs, "engines must agree on the state space");

    let mut requested: Vec<usize> = vec![1, 2, 4, cores];
    requested.sort_unstable();
    requested.dedup();
    let mut parallel_rows = Vec::new();
    let mut best_parallel_rate = 0.0f64;
    for &threads in &requested {
        let (rate, parallel_configs) = states_per_sec(rounds, || {
            let mut net = comparison_net();
            Explorer::new(&mut net)
                .with_limits(limits)
                .run_parallel(comparison_net, threads)
                .configurations
        });
        assert_eq!(configurations, parallel_configs, "engines must agree on the state space");
        // The 1-thread row is the sequential fallback by construction; keep it out of the
        // parallel-vs-delta headline so the ratio reflects actual multi-worker runs.
        if threads > 1 {
            best_parallel_rate = best_parallel_rate.max(rate);
        }
        parallel_rows.push(
            Entry::new()
                .int("requested_threads", threads as i128)
                .int("effective_threads", threads.min(cores) as i128)
                .num("states_per_sec", rate.round())
                .build(),
        );
    }

    // Re-certify the largest exhaustively-enumerated instance with both the sequential
    // delta engine and the work-stealing engine at full width.
    let mut certified = None;
    let (certified_delta_rate, certified_configs) = states_per_sec(rounds, || {
        let mut net = certified_net();
        let report = Explorer::new(&mut net).with_limits(limits).run();
        let count = report.configurations;
        certified = Some(report);
        count
    });
    let certified = certified.expect("at least one certification round");
    let (certified_parallel_rate, certified_parallel_configs) = states_per_sec(rounds, || {
        let mut net = certified_net();
        Explorer::new(&mut net)
            .with_limits(limits)
            .run_parallel(certified_net, cores)
            .configurations
    });
    assert!(certified.exhaustive(), "the certification instance must enumerate fully");
    assert_eq!(certified_configs, certified_parallel_configs, "engines must agree");
    assert!(certified_configs > configurations, "certified instance must be the largest");

    let ratio = |x: f64| (x * 100.0).round() / 100.0;
    let certified_entry = Entry::new()
        .str("instance", "pusher_star7 (k=2, l=3, n=7, holding needs 0+2+1+2+1+1+1)")
        .int("configurations", certified_configs as i128)
        .int("transitions", certified.transitions as i128)
        .int("max_depth", certified.max_depth as i128)
        .val("exhaustive", Value::Bool(true))
        .num("delta_states_per_sec", certified_delta_rate.round())
        .num("parallel_states_per_sec", certified_parallel_rate.round())
        .int("parallel_requested_threads", cores as i128)
        .int("parallel_effective_threads", cores as i128)
        .build();
    let entry = Entry::new()
        .str("bench", "exhaustive_checker")
        .str("instance", "pusher_star5 (k=2, l=3, n=5, holding needs 0+2+1+2+1)")
        .int("configurations", configurations as i128)
        .int("host_cores", cores as i128)
        .num("baseline_states_per_sec", baseline_rate.round())
        .num("interned_states_per_sec", interned_rate.round())
        .num("delta_states_per_sec", delta_rate.round())
        .val("parallel", Value::Array(parallel_rows))
        .num("speedup_interned_vs_baseline", ratio(interned_rate / baseline_rate))
        .num("speedup_delta_vs_baseline", ratio(delta_rate / baseline_rate))
        .num("speedup_delta_vs_interned", ratio(delta_rate / interned_rate))
        .num("speedup_parallel_vs_delta", ratio(best_parallel_rate / delta_rate))
        .val("certified", certified_entry)
        .build();
    let path = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_explorer.json"));
    let mut history = History::load(path, "exhaustive_checker").expect("load BENCH_explorer.json");
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock after the epoch")
        .as_secs();
    history.append_dated(entry, now);
    history
        .save(path, EXPLORER_TREND_KEYS)
        .expect("write BENCH_explorer.json");
    eprintln!(
        "\nBENCH_explorer.json: appended entry {} of {} (delta {delta_rate:.0} states/s, \
         delta-vs-interned {:.2}x)",
        history.entries.len(),
        bench::history::MAX_ENTRIES,
        delta_rate / interned_rate,
    );
}

/// The metrics the history's `trend` block tracks (and `perf_smoke` gates against).
const EXPLORER_TREND_KEYS: &[&str] = &[
    "delta_states_per_sec",
    "speedup_delta_vs_interned",
    "speedup_parallel_vs_delta",
    "certified.delta_states_per_sec",
];

criterion_group!(
    benches,
    bench_exploration,
    bench_engine_comparison,
    bench_cycle_search,
    emit_engine_baseline,
);
criterion_main!(benches);
