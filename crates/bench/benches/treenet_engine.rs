//! Criterion bench for the simulation runtime: steps/second of the event-driven engine
//! against the scan-based baseline, per daemon, on a 1023-node tree under the
//! `UniformRandom` workload.
//!
//! Three execution paths are compared (all three produce bit-identical activation
//! sequences and metrics — the comparison group asserts it on every run):
//!
//! * `baseline` — the original scan engine retained in `treenet::scheduler::baseline`,
//!   driven through the generic `run_for` loop;
//! * `event` — the event-driven daemons reading the maintained enabled set through the
//!   dynamically dispatched `Scheduler` path (drop-in replacement);
//! * `fused` — the same daemons through the monomorphized `treenet::engine::run` loop.
//!
//! The comparison group also appends a dated entry to the `BENCH_treenet.json` history at
//! the workspace root recording steps/second for each engine×daemon and the resulting
//! speedups, so the gain over the scan engine is tracked across runs (last
//! [`bench::history::MAX_ENTRIES`] entries plus a `trend` block).  Override the measured
//! horizon with `TREENET_BENCH_STEPS` (used by the CI smoke run).
//!
//! A second comparison measures the **multi-trial reuse path**: many short seeded trials of
//! the same instance, once rebuilding the network per trial and once resetting one network
//! in place (`Network::reset_trial` — restart every process, install the trial's driver,
//! keep all allocations).  Both paths must produce identical per-trial metrics; the
//! recorded speedup is the allocation traffic saved per trial.

use analysis::harness::host_cores;
use analysis::SnapshotMonitor;
use bench::history::{Entry, History};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use klex_core::{ss, KlConfig, SsNode};
use serde_json::Value;
use std::path::Path;
use std::time::Instant;
use topology::OrientedTree;
use treenet::app::BoxedDriver;
use treenet::scheduler::baseline;
use treenet::{
    engine, run_for, run_with_snapshots, InitiatorPolicy, Network, RandomFair, Restartable,
    RoundRobin, SnapshotPlan, SnapshotRunner, Synchronous,
};
use workloads::UniformRandom;

const NODES: usize = 1023;

/// The engine-comparison instance: the self-stabilizing protocol on a 1023-node binary
/// tree, every process driven by the `UniformRandom` workload.  The root timeout is
/// shortened so the controller bootstraps within the warmup horizon and tokens circulate
/// during the measured window.
fn sim_net() -> Network<SsNode, OrientedTree> {
    let tree = topology::builders::binary(NODES);
    let cfg = KlConfig::new(3, 5, NODES).with_timeout(500);
    ss::network(tree, cfg, |id| {
        Box::new(UniformRandom::new(1_000 + id as u64, 0.05, 3, 20)) as BoxedDriver
    })
}

fn steps_budget() -> (u64, u64) {
    let measured: u64 = std::env::var("TREENET_BENCH_STEPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8_000_000);
    (measured / 2, measured)
}

/// Runs warmup + measured steps with `run`, returning steps/second over the measured
/// window and the network's final metrics as a comparable string.
fn steps_per_sec(
    warmup: u64,
    steps: u64,
    mut run: impl FnMut(&mut Network<SsNode, OrientedTree>, u64),
) -> (f64, String) {
    let mut net = sim_net();
    run(&mut net, warmup);
    let start = Instant::now();
    run(&mut net, steps);
    let rate = steps as f64 / start.elapsed().as_secs_f64();
    let metrics = serde_json::to_string(net.metrics()).expect("metrics serialize");
    (rate, metrics)
}

fn bench_step_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("treenet_engines");
    group.sample_size(10);
    // A smaller instance for the iterating benchmark so each sample stays short.
    let quick_steps = 200_000u64;

    group.bench_function(BenchmarkId::new("baseline_scan", "random_fair"), |b| {
        b.iter(|| {
            let mut net = sim_net();
            let mut sched = baseline::RandomFair::new(42);
            run_for(&mut net, &mut sched, quick_steps);
            net.metrics().activations
        })
    });

    group.bench_function(BenchmarkId::new("event_dropin", "random_fair"), |b| {
        b.iter(|| {
            let mut net = sim_net();
            let mut sched = RandomFair::new(42);
            run_for(&mut net, &mut sched, quick_steps);
            net.metrics().activations
        })
    });

    group.bench_function(BenchmarkId::new("event_fused", "random_fair"), |b| {
        b.iter(|| {
            let mut net = sim_net();
            let mut sched = RandomFair::new(42);
            engine::run(&mut net, &mut sched, quick_steps);
            net.metrics().activations
        })
    });

    group.finish();
}

/// The per-trial driver of the reuse comparison: the trial's stream seeds the workload the
/// same way for both paths, so their executions are identical step for step.
fn trial_driver(trial: u64, id: usize) -> BoxedDriver {
    Box::new(UniformRandom::new(1_000 + trial * 100_000 + id as u64, 0.05, 3, 20)) as BoxedDriver
}

fn trial_net(trial: u64) -> Network<SsNode, OrientedTree> {
    let tree = topology::builders::binary(NODES);
    let cfg = KlConfig::new(3, 5, NODES).with_timeout(500);
    ss::network(tree, cfg, |id| trial_driver(trial, id))
}

/// One trial's execution: run and return a comparable fingerprint of what happened.
fn run_trial(net: &mut Network<SsNode, OrientedTree>, trial: u64, steps: u64) -> (u64, u64, u64) {
    let mut daemon = RandomFair::new(42 + trial);
    engine::run(net, &mut daemon, steps);
    (net.metrics().activations, net.metrics().messages_sent, net.in_flight() as u64)
}

/// Measures the multi-trial comparison: rebuild-per-trial versus reset-in-place, returning
/// (trials/sec rebuild, trials/sec reuse).  Asserts both paths produce identical per-trial
/// fingerprints.
fn measure_trial_reuse(trials: u64, steps_per_trial: u64) -> (f64, f64) {
    let start = Instant::now();
    let rebuilt: Vec<_> = (0..trials)
        .map(|t| {
            let mut net = trial_net(t);
            run_trial(&mut net, t, steps_per_trial)
        })
        .collect();
    let rebuild_secs = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let mut net = trial_net(0);
    let reused: Vec<_> = (0..trials)
        .map(|t| {
            if t > 0 {
                net.reset_trial(|id, node| {
                    node.restart();
                    node.app.set_driver(trial_driver(t, id));
                });
            }
            run_trial(&mut net, t, steps_per_trial)
        })
        .collect();
    let reuse_secs = start.elapsed().as_secs_f64();

    assert_eq!(rebuilt, reused, "reuse must be observationally identical to rebuilding");
    (trials as f64 / rebuild_secs, trials as f64 / reuse_secs)
}

/// Records the engine comparison to `BENCH_treenet.json` at the workspace root.
fn emit_engine_baseline(_c: &mut Criterion) {
    let (warmup, steps) = steps_budget();

    // Per daemon, one persistent scheduler instance drives warmup + measurement so the
    // decision state (RNG stream, cursors) is continuous, exactly as in a real experiment.
    let run_pair = |label: &str,
                    baseline_run: &mut dyn FnMut(&mut Network<SsNode, OrientedTree>, u64),
                    event_run: &mut dyn FnMut(&mut Network<SsNode, OrientedTree>, u64),
                    fused_run: &mut dyn FnMut(&mut Network<SsNode, OrientedTree>, u64)|
     -> (f64, f64, f64) {
        let (scan_rate, scan_metrics) = steps_per_sec(warmup, steps, &mut *baseline_run);
        let (event_rate, event_metrics) = steps_per_sec(warmup, steps, &mut *event_run);
        let (fused_rate, fused_metrics) = steps_per_sec(warmup, steps, &mut *fused_run);
        assert_eq!(scan_metrics, event_metrics, "{label}: baseline vs drop-in metrics differ");
        assert_eq!(scan_metrics, fused_metrics, "{label}: baseline vs fused metrics differ");
        (scan_rate, event_rate, fused_rate)
    };

    let mut b_rf = baseline::RandomFair::new(42);
    let mut e_rf = RandomFair::new(42);
    let mut f_rf = RandomFair::new(42);
    let rf = run_pair(
        "random_fair",
        &mut |net, n| run_for(net, &mut b_rf, n),
        &mut |net, n| run_for(net, &mut e_rf, n),
        &mut |net, n| engine::run(net, &mut f_rf, n),
    );

    let mut b_rr = baseline::RoundRobin::new();
    let mut e_rr = RoundRobin::new();
    let mut f_rr = RoundRobin::new();
    let rr = run_pair(
        "round_robin",
        &mut |net, n| run_for(net, &mut b_rr, n),
        &mut |net, n| run_for(net, &mut e_rr, n),
        &mut |net, n| engine::run(net, &mut f_rr, n),
    );

    let mut b_sy = baseline::Synchronous::new();
    let mut e_sy = Synchronous::new();
    let mut f_sy = Synchronous::new();
    let sy = run_pair(
        "synchronous",
        &mut |net, n| run_for(net, &mut b_sy, n),
        &mut |net, n| run_for(net, &mut e_sy, n),
        &mut |net, n| engine::run(net, &mut f_sy, n),
    );

    // Multi-trial reuse comparison: many *short* seeded trials — the regime where per-trial
    // construction cost is a real fraction of the trial (long trials amortize the build away
    // and both paths converge; the harness's short convergence probes and smoke sweeps are
    // exactly this short-trial shape).
    let reuse_trials = (steps / 31_250).clamp(16, 256);
    let steps_per_trial = 4_096u64;
    let (rebuild_rate, reuse_rate) = measure_trial_reuse(reuse_trials, steps_per_trial);

    let cores = host_cores();
    let headline = rf.2 / rf.0;
    let ratio = |x: f64| (x * 100.0).round() / 100.0;
    let daemon = |rates: (f64, f64, f64), with_event_speedup: bool| {
        let mut entry = Entry::new()
            .num("baseline_steps_per_sec", rates.0.round())
            .num("event_steps_per_sec", rates.1.round())
            .num("fused_steps_per_sec", rates.2.round());
        if with_event_speedup {
            entry = entry.num("speedup_event_vs_baseline", ratio(rates.1 / rates.0));
        }
        entry.num("speedup_fused_vs_baseline", ratio(rates.2 / rates.0)).build()
    };
    let trial_reuse = Entry::new()
        .int("trials", reuse_trials as i128)
        .int("steps_per_trial", steps_per_trial as i128)
        .num("rebuild_trials_per_sec", ratio(rebuild_rate))
        .num("reuse_trials_per_sec", ratio(reuse_rate))
        .num("speedup_reuse_vs_rebuild", ratio(reuse_rate / rebuild_rate))
        .build();
    let entry = Entry::new()
        .str("bench", "treenet_engine")
        .str(
            "instance",
            &format!("ss k=3 l=5 on binary tree n={NODES}, UniformRandom(p=0.05, units<=3, hold<=20)"),
        )
        .int("measured_steps", steps as i128)
        .val("random_fair", daemon(rf, true))
        .val("round_robin", daemon(rr, false))
        .val("synchronous", daemon(sy, false))
        .val("trial_reuse", trial_reuse)
        .int("host_cores", cores as i128)
        .num("headline_speedup", ratio(headline))
        .build();
    let path = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_treenet.json"));
    let mut history = History::load(path, "treenet_engine").expect("load BENCH_treenet.json");
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock after the epoch")
        .as_secs();
    history.append_dated(entry, now);
    history.save(path, TREENET_TREND_KEYS).expect("write BENCH_treenet.json");
    eprintln!(
        "\nBENCH_treenet.json: appended entry {} of {} (headline fused-vs-scan {headline:.2}x)",
        history.entries.len(),
        bench::history::MAX_ENTRIES,
    );
}

/// The metrics the history's `trend` block tracks.  Entries of the two bench series in
/// the file carry disjoint key sets, so each key's trend draws only on its own series
/// (`History::recent` skips entries missing a key); `snapshot_overhead_pct` is tracked
/// across both scale points because the overhead bound is size-independent.
const TREENET_TREND_KEYS: &[&str] = &[
    "headline_speedup",
    "random_fair.fused_steps_per_sec",
    "round_robin.fused_steps_per_sec",
    "synchronous.fused_steps_per_sec",
    "trial_reuse.speedup_reuse_vs_rebuild",
    "snapshot_overhead_pct",
];

/// The snapshot-scale instance: the self-stabilizing protocol on an `n`-node binary tree
/// under the arena/SoA network layout.  The root timeout is short enough that the
/// controller bootstraps tokens within the warmup horizon (legitimacy lands near 68n
/// steps), so the measured window snapshots a *stabilized* network and every completed
/// cut is expected clean.
fn scale_net(n: usize) -> Network<SsNode, OrientedTree> {
    let tree = topology::builders::binary(n);
    let cfg = KlConfig::new(3, 5, n).with_timeout(50);
    ss::network(tree, cfg, |id| {
        Box::new(UniformRandom::new(1_000 + id as u64, 0.05, 3, 20)) as BoxedDriver
    })
}

/// Measures one scale point: steps/second of the fused engine plain versus with periodic
/// consistent snapshots at the default `klex --snapshots` interval (128n activations,
/// counted from each cut's completion).  A cut's assembly takes roughly 40–50n activations
/// under `RandomFair` — markers travel FIFO behind protocol traffic, so the last channel
/// closures wait on the daemon draining the queues ahead of them — and every delivery
/// during assembly pays the in-transit recording cost.  The 128n idle span between cuts
/// keeps that recording duty cycle near 25%, holding the whole-run overhead under the 15%
/// budget this entry tracks.  Appends a dated entry to `BENCH_treenet.json`.
fn snapshot_scale_entry(n: usize, steps: u64) -> serde_json::Value {
    let warmup = (80 * n) as u64;
    let interval = 128 * n as u64;

    let mut plain_net = scale_net(n);
    let mut plain_daemon = RandomFair::new(42);
    engine::run(&mut plain_net, &mut plain_daemon, warmup);
    let start = Instant::now();
    engine::run(&mut plain_net, &mut plain_daemon, steps);
    let plain_rate = steps as f64 / start.elapsed().as_secs_f64();

    let mut snap_net = scale_net(n);
    let mut snap_daemon = RandomFair::new(42);
    engine::run(&mut snap_net, &mut snap_daemon, warmup);
    let cfg = KlConfig::new(3, 5, n);
    let mut runner =
        SnapshotRunner::new(SnapshotPlan { interval, initiator: InitiatorPolicy::Rotate });
    let mut monitor = SnapshotMonitor::new(&cfg);
    let start = Instant::now();
    run_with_snapshots(&mut snap_net, &mut snap_daemon, steps, &mut runner, &mut monitor);
    let snap_rate = steps as f64 / start.elapsed().as_secs_f64();

    let overhead_pct = (1.0 - snap_rate / plain_rate) * 100.0;
    let clean = monitor.verdicts().iter().filter(|v| v.clean()).count();
    let ratio = |x: f64| (x * 100.0).round() / 100.0;
    Entry::new()
        .str("bench", "treenet_snapshot_scale")
        .str("instance", &format!("ss k=3 l=5 on binary tree n={n}, UniformRandom(p=0.05)"))
        .int("nodes", n as i128)
        .int("measured_steps", steps as i128)
        .int("snapshot_interval", interval as i128)
        .num("plain_steps_per_sec", plain_rate.round())
        .num("snapshot_steps_per_sec", snap_rate.round())
        .num("snapshot_overhead_pct", ratio(overhead_pct))
        .int("cuts_completed", runner.cuts_completed() as i128)
        .int("cuts_clean", clean as i128)
        .int("markers_sent", runner.markers_sent() as i128)
        .build()
}

/// Records the snapshot-overhead scale sweep (n = 10⁵ and 10⁶ by default) to
/// `BENCH_treenet.json`.  Override the sizes with `TREENET_SNAPSHOT_NODES`
/// (comma-separated) and the per-size measured horizon with `TREENET_SNAPSHOT_STEPS`
/// (default 400n — slightly over two full record+idle snapshot cycles, so every run
/// completes at least two cuts and the measured window reflects the steady-state duty
/// cycle rather than a window that is all recording or all idle).
fn emit_snapshot_scale(_c: &mut Criterion) {
    let sizes: Vec<usize> = std::env::var("TREENET_SNAPSHOT_NODES")
        .map(|s| s.split(',').filter_map(|v| v.trim().parse().ok()).collect())
        .unwrap_or_else(|_| vec![100_000, 1_000_000]);
    let steps_override: Option<u64> =
        std::env::var("TREENET_SNAPSHOT_STEPS").ok().and_then(|s| s.parse().ok());

    let path = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_treenet.json"));
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock after the epoch")
        .as_secs();
    for n in sizes {
        let steps = steps_override.unwrap_or(400 * n as u64);
        let entry = snapshot_scale_entry(n, steps);
        let overhead = entry.get("snapshot_overhead_pct").and_then(Value::as_f64);
        let cuts = entry.get("cuts_completed").and_then(Value::as_u64).unwrap_or(0);
        let mut history = History::load(path, "treenet_engine").expect("load BENCH_treenet.json");
        history.append_dated(entry, now);
        history.save(path, TREENET_TREND_KEYS).expect("write BENCH_treenet.json");
        eprintln!(
            "BENCH_treenet.json: snapshot scale n={n}: {cuts} cuts, overhead {:.2}%",
            overhead.unwrap_or(f64::NAN),
        );
    }
}

criterion_group!(benches, bench_step_throughput, emit_engine_baseline, emit_snapshot_scale);
criterion_main!(benches);
