//! Shared support code for the experiments: scales, stabilization helpers, measurement
//! kernels reused by both the binaries and the Criterion benches.

use analysis::convergence::{default_window, measure_convergence};
use klex_core::{is_legitimate, ss, KlConfig, KlInspect, Message};
use topology::{OrientedTree, Topology};
use treenet::app::BoxedDriver;
use treenet::{Network, NodeId, Process, RandomFair, Scheduler};

/// How big/long each experiment runs.
#[derive(Clone, Debug)]
pub struct Scale {
    /// Number of random seeds (trials) per parameter point.
    pub trials: u64,
    /// Step budget multiplier for long runs.
    pub max_steps: u64,
    /// Measurement phase length (activations) once stabilized.
    pub measure_steps: u64,
    /// Network sizes swept by the size-parameterised experiments.
    pub sizes: Vec<usize>,
}

impl Scale {
    /// Quick smoke-test scale (used by `cargo test` of this crate).
    pub fn quick() -> Self {
        Scale { trials: 2, max_steps: 1_500_000, measure_steps: 40_000, sizes: vec![5, 9] }
    }

    /// The scale used to produce the numbers recorded in `EXPERIMENTS.md`.
    pub fn full() -> Self {
        Scale { trials: 5, max_steps: 6_000_000, measure_steps: 150_000, sizes: vec![5, 9, 15, 25] }
    }
}

/// The tree shapes swept by the size-parameterised experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TreeShape {
    /// A path rooted at one end (worst-case depth).
    Chain,
    /// A root with `n - 1` leaves (best-case depth).
    Star,
    /// A balanced binary tree.
    Binary,
    /// A uniformly random recursive tree.
    Random,
}

impl TreeShape {
    /// All swept shapes.
    pub fn all() -> [TreeShape; 4] {
        [TreeShape::Chain, TreeShape::Star, TreeShape::Binary, TreeShape::Random]
    }

    /// Builds a tree of this shape with `n` nodes (random shapes use `seed`).
    pub fn build(self, n: usize, seed: u64) -> OrientedTree {
        match self {
            TreeShape::Chain => topology::builders::chain(n),
            TreeShape::Star => topology::builders::star(n),
            TreeShape::Binary => topology::builders::binary(n),
            TreeShape::Random => topology::builders::random_tree(n, seed),
        }
    }

    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            TreeShape::Chain => "chain",
            TreeShape::Star => "star",
            TreeShape::Binary => "binary",
            TreeShape::Random => "random",
        }
    }

    /// The declarative topology spec of this shape (`seed` only matters for
    /// [`TreeShape::Random`]; harness runs additionally offset it by the trial index).
    pub fn to_spec(self, n: usize, seed: u64) -> analysis::scenario::TopologySpec {
        use analysis::scenario::TopologySpec;
        match self {
            TreeShape::Chain => TopologySpec::Chain { n },
            TreeShape::Star => TopologySpec::Star { n },
            TreeShape::Binary => TopologySpec::Binary { n },
            TreeShape::Random => TopologySpec::Random { n, seed },
        }
    }
}

/// Builds a self-stabilizing network and runs it until it has been legitimate for a full
/// confirmation window, then clears the trace and metrics so that subsequent measurements see
/// only post-stabilization behaviour.  Returns `None` if it failed to stabilize within
/// `max_steps` (which would itself be a reportable failure).
pub fn stabilized_ss_network(
    tree: OrientedTree,
    cfg: KlConfig,
    driver_for: impl FnMut(NodeId) -> BoxedDriver,
    scheduler: &mut impl Scheduler,
    max_steps: u64,
) -> Option<Network<ss::SsNode, OrientedTree>> {
    let n = tree.len();
    let mut net = ss::network(tree, cfg, driver_for);
    let outcome = measure_convergence(&mut net, scheduler, &cfg, max_steps, default_window(n));
    if !outcome.converged() {
        return None;
    }
    net.trace_mut().clear();
    net.metrics_mut().reset();
    Some(net)
}

/// Runs `net` for `steps` activations and returns `(cs_entries, messages_sent)` during that
/// window.
pub fn measure_throughput<P, T>(
    net: &mut Network<P, T>,
    scheduler: &mut impl Scheduler,
    steps: u64,
) -> (u64, u64)
where
    P: Process,
    T: Topology,
{
    let entries_before = net.trace().cs_entries(None) as u64;
    let messages_before = net.metrics().messages_sent;
    treenet::run_for(net, scheduler, steps);
    let entries = net.trace().cs_entries(None) as u64 - entries_before;
    let messages = net.metrics().messages_sent - messages_before;
    (entries, messages)
}

/// Convenience: a seeded random scheduler.
pub fn scheduler(seed: u64) -> RandomFair {
    RandomFair::new(seed)
}

/// Sustained-legitimacy check used by a few experiments that manage their own run loop.
pub fn run_until_stable<P, T>(
    net: &mut Network<P, T>,
    sched: &mut impl Scheduler,
    cfg: &KlConfig,
    max_steps: u64,
    window: u64,
) -> Option<u64>
where
    P: Process<Msg = Message> + KlInspect,
    T: Topology,
{
    let mut streak: u64 = 0;
    for _ in 0..max_steps {
        net.step(sched);
        if is_legitimate(net, cfg) {
            streak += 1;
            if streak >= window {
                return Some(net.now() - window);
            }
        } else {
            streak = 0;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use treenet::app::Idle;

    #[test]
    fn shapes_build_requested_sizes() {
        for shape in TreeShape::all() {
            let t = shape.build(9, 3);
            assert_eq!(t.len(), 9, "{:?}", shape);
            assert!(!shape.label().is_empty());
        }
    }

    #[test]
    fn stabilized_network_starts_with_clean_counters() {
        let cfg = KlConfig::new(1, 2, 5);
        let mut sched = scheduler(1);
        let net = stabilized_ss_network(
            topology::builders::chain(5),
            cfg,
            |_| Box::new(Idle) as BoxedDriver,
            &mut sched,
            1_500_000,
        )
        .expect("must stabilize");
        assert_eq!(net.trace().len(), 0);
        assert_eq!(net.metrics().messages_sent, 0);
        assert!(is_legitimate(&net, &cfg));
    }

    #[test]
    fn throughput_measurement_counts_deltas() {
        let cfg = KlConfig::new(1, 2, 4);
        let mut sched = scheduler(2);
        let mut net = stabilized_ss_network(
            topology::builders::star(4),
            cfg,
            workloads::all_saturated(1, 5),
            &mut sched,
            1_500_000,
        )
        .expect("must stabilize");
        let (entries, messages) = measure_throughput(&mut net, &mut sched, 30_000);
        assert!(entries > 0, "saturated workload must produce critical sections");
        assert!(messages > 0);
    }

    #[test]
    fn scales_are_ordered() {
        let q = Scale::quick();
        let f = Scale::full();
        assert!(q.trials <= f.trials);
        assert!(q.measure_steps <= f.measure_steps);
    }
}
