//! Shared scenario execution: the one row-building path behind `klex run` **and** the serve
//! daemon's job workers.
//!
//! Both surfaces accept the same request shape — a compiled scenario plus a
//! [`RunRequest`] (backend selection, shard/thread overrides, optional throughput columns)
//! — and both render the resulting [`ExperimentRow`]s with the same
//! [`analysis::harness::render_jsonl`].  Because the rows are built here, once, a job
//! submitted to `klex serve` returns a result **byte-identical** to a direct
//! `klex run <spec> --format jsonl` of the same spec and seed (the serve integration test
//! pins this).  The optional [`ProgressSink`] threads through to every backend's observed
//! entry point; observation never changes the rows of an uncancelled run.

use analysis::harness::auto_shards;
use analysis::scenario::CompiledScenario;
use analysis::{ExperimentRow, ProgressSink};

/// Which backend(s) a run request executes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// One simulated execution under the spec's temporal monitors (trial 0 seeds).
    Sim,
    /// The spec's trial plan, sharded across worker threads.
    Harness,
    /// Bounded-exhaustive exploration of the spec's instance.
    Check,
    /// All three, one rendered row each.
    All,
}

impl Backend {
    /// Parses the CLI/wire spelling (`sim|harness|check|all`).
    pub fn parse(name: &str) -> Result<Backend, String> {
        match name {
            "sim" => Ok(Backend::Sim),
            "harness" => Ok(Backend::Harness),
            "check" => Ok(Backend::Check),
            "all" => Ok(Backend::All),
            other => Err(format!("unknown backend `{other}` (sim|harness|check|all)")),
        }
    }

    /// The canonical spelling (inverse of [`Backend::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Sim => "sim",
            Backend::Harness => "harness",
            Backend::Check => "check",
            Backend::All => "all",
        }
    }
}

/// One scenario-execution request: the knobs `klex run` exposes, in resolved form.
#[derive(Clone, Debug)]
pub struct RunRequest {
    /// Backend selection.
    pub backend: Backend,
    /// Harness worker threads (`0` = one per core).
    pub shards: usize,
    /// Checker worker-thread override (`None` = the spec's `check.threads` knob;
    /// `Some(0)` = one per core, `Some(1)` = sequential delta engine).
    pub threads: Option<usize>,
    /// Add checker throughput columns (`states_per_sec`, `arena_bytes`).
    pub bench: bool,
}

impl Default for RunRequest {
    fn default() -> Self {
        RunRequest { backend: Backend::Sim, shards: 0, threads: None, bench: false }
    }
}

/// The rows (and side notes) one run request produced.
#[derive(Clone, Debug, Default)]
pub struct RunProduct {
    /// One row per executed backend, in `sim`, `harness`, `check` order.
    pub rows: Vec<ExperimentRow>,
    /// Human-readable notes rendered below a markdown table (monitor violations, liveness
    /// lassos).
    pub notes: Vec<String>,
    /// Non-fatal warnings (an uncheckable spec skipped under `--backend all`).
    pub warnings: Vec<String>,
}

/// Executes `request` against `scenario` and returns the rendered rows.
///
/// The row layout is the CLI contract: metric columns per backend exactly as `klex run`
/// has always printed them.  `sink` observes phase progress and can cancel between phases
/// / trials / explored-state strides; a cancelled run's rows are partial and should be
/// discarded by the caller.
pub fn run_rows(
    scenario: &CompiledScenario,
    request: &RunRequest,
    sink: Option<&dyn ProgressSink>,
) -> Result<RunProduct, String> {
    let backend = request.backend;
    let shards = if request.shards == 0 { auto_shards() } else { request.shards };
    let mut product = RunProduct::default();

    if matches!(backend, Backend::Sim | Backend::All) {
        let (outcome, monitors) = match sink {
            Some(sink) => scenario.run_monitored_observed(sink),
            None => scenario.run_monitored(),
        };
        let mut row = ExperimentRow::new(format!("{} [sim]", scenario.spec().name));
        for (metric, value) in &outcome.metrics {
            row = row.with(metric, *value);
        }
        // One column per declared temporal monitor: 1 satisfied, 0 inconclusive,
        // -1 violated (details go to the notes below the table).
        for monitor in &monitors {
            row = row.with(&format!("mon:{}", monitor.name), monitor.verdict.score());
            if let analysis::Verdict::Violated(detail) = &monitor.verdict {
                product.notes.push(format!("monitor {} VIOLATED: {detail}", monitor.name));
            }
        }
        product.rows.push(row);
        // One note per fault epoch: what hit the network, its size afterwards, and the
        // certified re-convergence time (or the exhausted budget).
        for (index, epoch) in outcome.epochs.iter().enumerate() {
            product.notes.push(match epoch.convergence {
                Some(activations) => format!(
                    "epoch {index} [{}] n={}: reconverged in {activations} activations",
                    epoch.event, epoch.nodes
                ),
                None => format!(
                    "epoch {index} [{}] n={}: did NOT reconverge within budget",
                    epoch.event, epoch.nodes
                ),
            });
        }
    }

    if matches!(backend, Backend::Harness | Backend::All) {
        if sink.is_some_and(|s| s.cancelled()) {
            return Ok(product);
        }
        let report = scenario.run_harness_observed(shards, sink);
        let mut row = report.row();
        row.label = format!("{} [harness x{}]", scenario.spec().name, scenario.spec().trials);
        product.rows.push(row);
    }

    if matches!(backend, Backend::Check | Backend::All) {
        if sink.is_some_and(|s| s.cancelled()) {
            return Ok(product);
        }
        let started = std::time::Instant::now();
        // `threads` overrides the spec's `check.threads` knob: 0 resolves to one worker
        // per core, 1 forces the sequential delta engine, N>1 pins the work-stealing
        // engine to N workers.  The report is identical either way.
        match scenario.check_observed(request.threads, sink) {
            Ok(report) => {
                let elapsed = started.elapsed().as_secs_f64();
                let mut row = ExperimentRow::new(format!("{} [check]", scenario.spec().name))
                    .with("configurations", report.configurations as f64)
                    .with("transitions", report.transitions as f64)
                    .with("max_depth", report.max_depth as f64)
                    .with("exhaustive", f64::from(u8::from(report.exhaustive())))
                    .with("violations", report.violations.len() as f64)
                    .with("deadlocks", report.deadlocks.len() as f64);
                if scenario.spec().check.properties.iter().any(|p| p == "liveness") {
                    row = row.with("liveness_violations", report.liveness.len() as f64);
                    for witness in &report.liveness {
                        product.notes.push(format!("fair starvation lasso: {}", witness.render()));
                    }
                }
                if request.bench {
                    // Checker throughput: reachable states per wall-clock second of this
                    // run, and the arena's peak packed-state footprint.
                    row = row
                        .with("states_per_sec", (report.configurations as f64 / elapsed).round())
                        .with("arena_bytes", report.arena_bytes as f64);
                }
                product.rows.push(row);
            }
            // Under `all`, an uncheckable spec (stateful workload, ring baseline) must not
            // throw away the sim/harness rows already computed — warn and render what ran.
            // An explicit `check` backend still fails hard.
            Err(message) if backend == Backend::All => {
                product.warnings.push(format!("skipping checker backend: {message}"));
            }
            Err(message) => return Err(message.to_string()),
        }
    }

    Ok(product)
}

#[cfg(test)]
mod tests {
    use super::*;
    use analysis::harness::render_jsonl;
    use analysis::scenario::preset;

    #[test]
    fn backend_parse_round_trips() {
        for name in ["sim", "harness", "check", "all"] {
            assert_eq!(Backend::parse(name).unwrap().name(), name);
        }
        assert!(Backend::parse("checker").is_err());
    }

    #[test]
    fn observed_rows_match_unobserved_rows_byte_for_byte() {
        // The byte-identity contract the serve daemon rests on: an attached (non-cancelling)
        // sink must not change a single rendered byte, on any backend.
        let scenario = preset("checker-safety").unwrap().compile().unwrap();
        let request = RunRequest { backend: Backend::All, shards: 2, threads: None, bench: false };
        let plain = run_rows(&scenario, &request, None).unwrap();
        let observed = run_rows(&scenario, &request, Some(&analysis::NullSink)).unwrap();
        assert_eq!(render_jsonl(&plain.rows), render_jsonl(&observed.rows));
        assert_eq!(plain.notes, observed.notes);
    }
}
