//! Prometheus text-exposition rendering for the `/metrics` endpoint.
//!
//! The daemon's counters live in an [`analysis::MetricsRegistry`] (lock-striped, fed by
//! lock-free [`analysis::Counter`] handles from the job sinks); gauges are computed at
//! scrape time from the job table and the server clock.  This module only renders — the
//! format is the Prometheus text exposition format, version 0.0.4: one `# TYPE` line per
//! family followed by `name value` samples.

/// One metric sample with its declared type.
pub struct Sample {
    /// The metric name (already Prometheus-legal: `[a-zA-Z_][a-zA-Z0-9_]*`).
    pub name: String,
    /// `"counter"` or `"gauge"`.
    pub kind: &'static str,
    /// The sample value.
    pub value: f64,
}

impl Sample {
    /// A monotonic counter sample.
    pub fn counter(name: &str, value: u64) -> Sample {
        Sample { name: name.to_string(), kind: "counter", value: value as f64 }
    }

    /// A point-in-time gauge sample.
    pub fn gauge(name: &str, value: f64) -> Sample {
        Sample { name: name.to_string(), kind: "gauge", value }
    }
}

/// Renders the samples in the Prometheus text exposition format.
pub fn render(samples: &[Sample]) -> String {
    let mut out = String::new();
    for sample in samples {
        out.push_str(&format!("# TYPE {} {}\n", sample.name, sample.kind));
        if sample.value.fract() == 0.0 && sample.value.abs() < 1e15 {
            out.push_str(&format!("{} {}\n", sample.name, sample.value as i64));
        } else {
            out.push_str(&format!("{} {}\n", sample.name, sample.value));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_the_text_exposition_format() {
        let text = render(&[
            Sample::counter("klex_jobs_done_total", 3),
            Sample::gauge("klex_states_per_sec", 1234.5),
        ]);
        assert_eq!(
            text,
            "# TYPE klex_jobs_done_total counter\nklex_jobs_done_total 3\n\
             # TYPE klex_states_per_sec gauge\nklex_states_per_sec 1234.5\n"
        );
    }
}
