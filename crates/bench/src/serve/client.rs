//! Loopback client for the serve daemon — the implementation behind `klex submit`,
//! `klex status` and `klex watch` (and the integration tests).

use super::http;
use serde_json::Value;

/// `GET /healthz`, parsed.
pub fn healthz(addr: &str) -> Result<Value, String> {
    get_json(addr, "/healthz")
}

/// `POST /jobs` with `body`; returns the assigned job id.
pub fn submit(addr: &str, body: &str) -> Result<u64, String> {
    let response = http::request(addr, "POST", "/jobs", Some(body), None)?;
    let doc = serde_json::from_str(&response.body)
        .map_err(|e| format!("unparsable submit response: {e}"))?;
    if response.status != 201 {
        let detail = doc.get("error").and_then(Value::as_str).unwrap_or("unknown error");
        return Err(format!("submit rejected ({}): {detail}", response.status));
    }
    doc.get("id").and_then(Value::as_u64).ok_or_else(|| "submit response has no id".to_string())
}

/// `GET /jobs`, parsed.
pub fn jobs(addr: &str) -> Result<Value, String> {
    get_json(addr, "/jobs")
}

/// `GET /jobs/<id>`, parsed (includes the result payload once the job is done).
pub fn status(addr: &str, id: u64) -> Result<Value, String> {
    get_json(addr, &format!("/jobs/{id}"))
}

/// `DELETE /jobs/<id>`; returns the job's state after the cancel request.
pub fn cancel(addr: &str, id: u64) -> Result<String, String> {
    let response = http::request(addr, "DELETE", &format!("/jobs/{id}"), None, None)?;
    let doc = serde_json::from_str(&response.body)
        .map_err(|e| format!("unparsable cancel response: {e}"))?;
    if response.status != 200 {
        let detail = doc.get("error").and_then(Value::as_str).unwrap_or("unknown error");
        return Err(format!("cancel rejected ({}): {detail}", response.status));
    }
    doc.get("state")
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| "cancel response has no state".to_string())
}

/// Consecutive reconnection attempts before a dropped stream is given up on.
const WATCH_MAX_ATTEMPTS: u32 = 6;
/// First reconnection delay; doubles per consecutive failure up to the cap.
const WATCH_BACKOFF_START_MS: u64 = 200;
/// Reconnection-delay ceiling.
const WATCH_BACKOFF_CAP_MS: u64 = 5_000;

/// The `(boot, seq)` stamp the daemon appends to every event line, when present.
fn event_key(line: &str) -> Option<(u64, u64)> {
    let doc: Value = serde_json::from_str(line).ok()?;
    let boot = doc.get("boot").and_then(Value::as_u64)?;
    let seq = doc.get("seq").and_then(Value::as_u64)?;
    Some((boot, seq))
}

/// `GET /jobs/<id>/stream`: feeds every JSONL line to `on_line` as it arrives, then
/// returns the job's final status (via [`status`]).
///
/// A dropped connection does not end the watch: the stream is reconnected with capped
/// exponential backoff (200 ms doubling to 5 s, `WATCH_MAX_ATTEMPTS` consecutive
/// failures before giving up).  The daemon replays a job's whole event buffer on every
/// stream request; reconnect dedup is keyed on the `(boot, seq)` stamp each event line
/// carries, so `on_line` sees each event exactly once even when the reconnect lands on
/// a *different daemon incarnation* that reuses the job id (a bounced server's fresh
/// events share seq numbers with the old buffer but not its boot id — a delivered-count
/// cursor would silently swallow them).  Unstamped lines (the result rows appended after
/// a terminal state) are deduped by position among unstamped lines.  A drop after the
/// job reached a terminal state is not an error; the final status is fetched and
/// returned as if the stream had ended cleanly.
pub fn watch(
    addr: &str,
    id: u64,
    on_line: &mut dyn FnMut(&str),
) -> Result<Value, String> {
    // Newest stamped line delivered; replays are lines with the same boot and seq ≤ this.
    let mut last_seen: Option<(u64, u64)> = None;
    // Unstamped (result-row) lines delivered so far — replayed verbatim from the start
    // of the payload on every reconnect, so a plain position cursor is exact for them.
    let mut rows_delivered = 0usize;
    let mut attempts = 0u32;
    let mut backoff = WATCH_BACKOFF_START_MS;
    loop {
        let mut fresh = 0usize;
        let mut rows_replayed = 0usize;
        let mut relay = |line: &str| {
            match event_key(line) {
                Some((boot, seq)) => {
                    let replay =
                        matches!(last_seen, Some((b, s)) if boot == b && seq <= s);
                    if !replay {
                        last_seen = Some((boot, seq));
                        fresh += 1;
                        on_line(line);
                    }
                }
                None => {
                    if rows_replayed < rows_delivered {
                        rows_replayed += 1;
                    } else {
                        rows_delivered += 1;
                        fresh += 1;
                        on_line(line);
                    }
                }
            }
        };
        let result =
            http::request(addr, "GET", &format!("/jobs/{id}/stream"), None, Some(&mut relay));
        match result {
            Ok(response) if response.status == 200 => return status(addr, id),
            Ok(response) => return Err(format!("stream rejected ({})", response.status)),
            Err(err) => {
                // A connection dropped at (or after) job completion is not a failure —
                // the terminal status is the same answer a clean stream end produces.
                if let Ok(doc) = status(addr, id) {
                    let state = doc.get("state").and_then(Value::as_str).unwrap_or("");
                    if matches!(state, "done" | "failed" | "cancelled") {
                        return Ok(doc);
                    }
                }
                if fresh > 0 {
                    // The stream made progress before dropping: a fresh outage, not a
                    // continuation of the previous one.
                    attempts = 0;
                    backoff = WATCH_BACKOFF_START_MS;
                }
                attempts += 1;
                if attempts >= WATCH_MAX_ATTEMPTS {
                    return Err(format!(
                        "stream dropped after {attempts} reconnection attempts: {err}"
                    ));
                }
                std::thread::sleep(std::time::Duration::from_millis(backoff));
                backoff = (backoff * 2).min(WATCH_BACKOFF_CAP_MS);
            }
        }
    }
}

/// `GET /metrics` (raw Prometheus text).
pub fn metrics(addr: &str) -> Result<String, String> {
    let response = http::request(addr, "GET", "/metrics", None, None)?;
    if response.status != 200 {
        return Err(format!("metrics rejected ({})", response.status));
    }
    Ok(response.body)
}

/// `POST /shutdown`.
pub fn shutdown(addr: &str) -> Result<(), String> {
    let response = http::request(addr, "POST", "/shutdown", None, None)?;
    if response.status != 200 {
        return Err(format!("shutdown rejected ({})", response.status));
    }
    Ok(())
}

fn get_json(addr: &str, path: &str) -> Result<Value, String> {
    let response = http::request(addr, "GET", path, None, None)?;
    let doc = serde_json::from_str(&response.body)
        .map_err(|e| format!("unparsable {path} response: {e}"))?;
    if response.status != 200 {
        let detail = doc.get("error").and_then(Value::as_str).unwrap_or("unknown error");
        return Err(format!("{path} failed ({}): {detail}", response.status));
    }
    Ok(doc)
}
