//! Loopback client for the serve daemon — the implementation behind `klex submit`,
//! `klex status` and `klex watch` (and the integration tests).

use super::http;
use serde_json::Value;

/// `GET /healthz`, parsed.
pub fn healthz(addr: &str) -> Result<Value, String> {
    get_json(addr, "/healthz")
}

/// `POST /jobs` with `body`; returns the assigned job id.
pub fn submit(addr: &str, body: &str) -> Result<u64, String> {
    let response = http::request(addr, "POST", "/jobs", Some(body), None)?;
    let doc = serde_json::from_str(&response.body)
        .map_err(|e| format!("unparsable submit response: {e}"))?;
    if response.status != 201 {
        let detail = doc.get("error").and_then(Value::as_str).unwrap_or("unknown error");
        return Err(format!("submit rejected ({}): {detail}", response.status));
    }
    doc.get("id").and_then(Value::as_u64).ok_or_else(|| "submit response has no id".to_string())
}

/// `GET /jobs`, parsed.
pub fn jobs(addr: &str) -> Result<Value, String> {
    get_json(addr, "/jobs")
}

/// `GET /jobs/<id>`, parsed (includes the result payload once the job is done).
pub fn status(addr: &str, id: u64) -> Result<Value, String> {
    get_json(addr, &format!("/jobs/{id}"))
}

/// `DELETE /jobs/<id>`; returns the job's state after the cancel request.
pub fn cancel(addr: &str, id: u64) -> Result<String, String> {
    let response = http::request(addr, "DELETE", &format!("/jobs/{id}"), None, None)?;
    let doc = serde_json::from_str(&response.body)
        .map_err(|e| format!("unparsable cancel response: {e}"))?;
    if response.status != 200 {
        let detail = doc.get("error").and_then(Value::as_str).unwrap_or("unknown error");
        return Err(format!("cancel rejected ({}): {detail}", response.status));
    }
    doc.get("state")
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| "cancel response has no state".to_string())
}

/// `GET /jobs/<id>/stream`: feeds every JSONL line to `on_line` as it arrives, then
/// returns the job's final status (via [`status`]).
pub fn watch(
    addr: &str,
    id: u64,
    on_line: &mut dyn FnMut(&str),
) -> Result<Value, String> {
    let response =
        http::request(addr, "GET", &format!("/jobs/{id}/stream"), None, Some(on_line))?;
    if response.status != 200 {
        return Err(format!("stream rejected ({})", response.status));
    }
    status(addr, id)
}

/// `GET /metrics` (raw Prometheus text).
pub fn metrics(addr: &str) -> Result<String, String> {
    let response = http::request(addr, "GET", "/metrics", None, None)?;
    if response.status != 200 {
        return Err(format!("metrics rejected ({})", response.status));
    }
    Ok(response.body)
}

/// `POST /shutdown`.
pub fn shutdown(addr: &str) -> Result<(), String> {
    let response = http::request(addr, "POST", "/shutdown", None, None)?;
    if response.status != 200 {
        return Err(format!("shutdown rejected ({})", response.status));
    }
    Ok(())
}

fn get_json(addr: &str, path: &str) -> Result<Value, String> {
    let response = http::request(addr, "GET", path, None, None)?;
    let doc = serde_json::from_str(&response.body)
        .map_err(|e| format!("unparsable {path} response: {e}"))?;
    if response.status != 200 {
        let detail = doc.get("error").and_then(Value::as_str).unwrap_or("unknown error");
        return Err(format!("{path} failed ({}): {detail}", response.status));
    }
    Ok(doc)
}
