//! Request routing for the serve daemon: one connection, one request, one response.

use super::http::{self, ChunkedResponse, Request};
use super::jobs::JobSnapshot;
use super::metrics::{render, Sample};
use super::Shared;
use crate::history::{render as render_json, Entry};
use serde_json::Value;
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// Handles one connection: parse, route, respond.  Errors writing back mean the client
/// hung up; they are deliberately ignored.
pub fn handle(mut stream: TcpStream, shared: &Arc<Shared>) {
    let request = match http::read_request(&stream) {
        Ok(Some(request)) => request,
        Ok(None) => return,
        Err(message) => {
            let _ = http::respond(&mut stream, 400, "application/json", &error_body(&message));
            return;
        }
    };
    shared.registry.add("klex_http_requests_total", 1);
    let _ = route(&mut stream, &request, shared);
}

fn route(stream: &mut TcpStream, request: &Request, shared: &Arc<Shared>) -> std::io::Result<()> {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => healthz(stream, shared),
        ("GET", "/jobs") => list_jobs(stream, shared),
        ("POST", "/jobs") => submit(stream, request, shared),
        ("GET", "/metrics") => metrics(stream, shared),
        ("POST", "/shutdown") => {
            shared.request_shutdown();
            http::respond(stream, 200, "application/json", "{\"status\": \"shutting down\"}\n")
        }
        (method, path) if path.starts_with("/jobs/") => job_route(stream, method, path, shared),
        (_, path) => http::respond(
            stream,
            404,
            "application/json",
            &error_body(&format!("no such endpoint {path}")),
        ),
    }
}

/// Routes `/jobs/<id>` and `/jobs/<id>/stream`.
fn job_route(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    shared: &Arc<Shared>,
) -> std::io::Result<()> {
    let rest = &path["/jobs/".len()..];
    let (id_text, stream_suffix) = match rest.strip_suffix("/stream") {
        Some(id_text) => (id_text, true),
        None => (rest, false),
    };
    let Ok(id) = id_text.parse::<u64>() else {
        return http::respond(
            stream,
            400,
            "application/json",
            &error_body(&format!("bad job id {id_text:?}")),
        );
    };
    match (method, stream_suffix) {
        ("GET", true) => stream_job(stream, id, shared),
        ("GET", false) => match shared.jobs.snapshot(id) {
            Some(snapshot) => {
                http::respond(stream, 200, "application/json", &job_body(&snapshot, true))
            }
            None => job_not_found(stream, id),
        },
        ("DELETE", false) => match shared.jobs.cancel(id) {
            Some(state) => http::respond(
                stream,
                200,
                "application/json",
                &format!("{{\"id\": {id}, \"state\": \"{}\"}}\n", state.label()),
            ),
            None => job_not_found(stream, id),
        },
        _ => http::respond(stream, 405, "application/json", &error_body("method not allowed")),
    }
}

fn job_not_found(stream: &mut TcpStream, id: u64) -> std::io::Result<()> {
    http::respond(stream, 404, "application/json", &error_body(&format!("no job {id}")))
}

fn healthz(stream: &mut TcpStream, shared: &Arc<Shared>) -> std::io::Result<()> {
    let [queued, running, done, failed, cancelled] = shared.jobs.counts();
    let jobs = Entry::new()
        .int("queued", queued as i128)
        .int("running", running as i128)
        .int("done", done as i128)
        .int("failed", failed as i128)
        .int("cancelled", cancelled as i128)
        .build();
    let body = Entry::new()
        .str("status", "ok")
        .num("uptime_secs", shared.uptime_secs())
        .int("workers", shared.workers_total as i128)
        .val("jobs", jobs)
        .build();
    http::respond(stream, 200, "application/json", &(render_json(&body) + "\n"))
}

fn job_value(snapshot: &JobSnapshot, with_result: bool) -> Value {
    let mut entry = Entry::new()
        .int("id", snapshot.id as i128)
        .str("name", &snapshot.name)
        .str("kind", snapshot.kind)
        .str("state", snapshot.state.label())
        .int("events", snapshot.events as i128);
    if with_result {
        if let Some(result) = &snapshot.result {
            entry = entry.str("result", result);
        }
    }
    if let Some(error) = &snapshot.error {
        entry = entry.str("error", error);
    }
    entry.build()
}

fn job_body(snapshot: &JobSnapshot, with_result: bool) -> String {
    render_json(&job_value(snapshot, with_result)) + "\n"
}

fn list_jobs(stream: &mut TcpStream, shared: &Arc<Shared>) -> std::io::Result<()> {
    let jobs: Vec<Value> =
        shared.jobs.list().iter().map(|snapshot| job_value(snapshot, false)).collect();
    let body = Entry::new().val("jobs", Value::Array(jobs)).build();
    http::respond(stream, 200, "application/json", &(render_json(&body) + "\n"))
}

fn submit(stream: &mut TcpStream, request: &Request, shared: &Arc<Shared>) -> std::io::Result<()> {
    match super::submit_body(shared, &request.body_str()) {
        Ok(id) => http::respond(
            stream,
            201,
            "application/json",
            &format!("{{\"id\": {id}, \"state\": \"queued\"}}\n"),
        ),
        Err(message) if message == "queue full" || message == "shutting down" => {
            http::respond(stream, 503, "application/json", &error_body(&message))
        }
        Err(message) => http::respond(stream, 400, "application/json", &error_body(&message)),
    }
}

fn metrics(stream: &mut TcpStream, shared: &Arc<Shared>) -> std::io::Result<()> {
    let counters = shared.registry.snapshot();
    let counter = |name: &str| counters.get(name).copied().unwrap_or(0);
    let [queued, running, done, failed, cancelled] = shared.jobs.counts();
    let uptime = shared.uptime_secs().max(1e-9);
    let states = counter("klex_states_explored_total");
    let scenarios =
        counter("klex_trials_completed_total") + counter("klex_fuzz_scenarios_total");
    let samples = [
        Sample::counter("klex_http_requests_total", counter("klex_http_requests_total")),
        Sample::counter("klex_jobs_submitted_total", counter("klex_jobs_submitted_total")),
        Sample::counter("klex_jobs_done_total", done),
        Sample::counter("klex_jobs_failed_total", failed),
        Sample::counter("klex_jobs_cancelled_total", cancelled),
        Sample::counter("klex_states_explored_total", states),
        Sample::counter("klex_trials_completed_total", counter("klex_trials_completed_total")),
        Sample::counter("klex_fuzz_scenarios_total", counter("klex_fuzz_scenarios_total")),
        Sample::gauge("klex_jobs_queued", queued as f64),
        Sample::gauge("klex_jobs_running", running as f64),
        Sample::gauge("klex_queue_depth", queued as f64),
        Sample::gauge("klex_workers_total", shared.workers_total as f64),
        Sample::gauge("klex_workers_busy", shared.workers_busy.load(Ordering::Relaxed) as f64),
        Sample::gauge("klex_uptime_seconds", uptime),
        Sample::gauge("klex_states_per_sec", states as f64 / uptime),
        Sample::gauge("klex_scenarios_per_sec", scenarios as f64 / uptime),
    ];
    http::respond(stream, 200, "text/plain; version=0.0.4", &render(&samples))
}

/// Streams `GET /jobs/<id>/stream`: every recorded event line, then live events as they
/// arrive, then (for a done job) the result rows, as chunked JSONL.
fn stream_job(stream: &mut TcpStream, id: u64, shared: &Arc<Shared>) -> std::io::Result<()> {
    if shared.jobs.snapshot(id).is_none() {
        return job_not_found(stream, id);
    }
    let mut chunked = ChunkedResponse::start(stream, 200, "application/x-ndjson")?;
    let mut cursor = 0usize;
    while let Some((events, state)) =
        shared.jobs.wait_events(id, cursor, Duration::from_millis(250))
    {
        for line in &events {
            chunked.chunk(format!("{line}\n").as_bytes())?;
        }
        cursor += events.len();
        if state.terminal() {
            // Drain any events recorded between the wait and this check, then the payload.
            if let Some((rest, _)) = shared.jobs.wait_events(id, cursor, Duration::ZERO) {
                for line in &rest {
                    chunked.chunk(format!("{line}\n").as_bytes())?;
                }
            }
            if let Some(snapshot) = shared.jobs.snapshot(id) {
                if let Some(result) = snapshot.result {
                    for row in result.lines() {
                        chunked.chunk(format!("{row}\n").as_bytes())?;
                    }
                }
            }
            break;
        }
    }
    chunked.finish()
}

fn error_body(message: &str) -> String {
    render_json(&Entry::new().str("error", message).build()) + "\n"
}
