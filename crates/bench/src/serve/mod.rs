//! `klex serve` — the resident scenario-as-a-service daemon.
//!
//! A [`Server`] binds a loopback TCP address, spawns a worker pool (sized by the shared
//! [`analysis::harness::auto_workers`] derivation), and accepts HTTP/1.1 connections on a
//! dedicated accept thread.  Submitted jobs — scenario runs against any backend of
//! [`crate::runner`], or fuzz campaigns — flow through the bounded `jobs::JobTable`
//! queue; each worker executes its claimed job with a per-job `JobSink` that feeds
//! throttled JSONL progress events to stream watchers and monotonic counters to the
//! Prometheus registry.
//!
//! Endpoints (see `ARCHITECTURE.md` § serve for the full table):
//!
//! | endpoint                 | meaning                                              |
//! |--------------------------|------------------------------------------------------|
//! | `GET /healthz`           | liveness + uptime + job counts                       |
//! | `GET /jobs`              | all jobs, id order                                   |
//! | `POST /jobs`             | submit (`{"preset": …}` / `{"spec": …}` / `{"fuzz": …}`) |
//! | `GET /jobs/<id>`         | one job, result payload included                     |
//! | `GET /jobs/<id>/stream`  | chunked JSONL: progress events, then result rows     |
//! | `DELETE /jobs/<id>`      | cancel (queued: immediate; running: cooperative)     |
//! | `GET /metrics`           | Prometheus text exposition                           |
//! | `POST /shutdown`         | graceful shutdown                                    |
//!
//! Determinism: a run job executes the submitted spec verbatim — same spec, same seeds,
//! same rows as `klex run` — so its JSONL result is byte-identical to the CLI's at any
//! worker count (`tests/serve_api.rs` pins this).  Fuzz jobs without an explicit seed
//! draw one from the server's seed stream ([`analysis::harness::trial_seed`] of the
//! server seed and the submission index), so a daemon's job sequence is reproducible.

mod api;
pub mod client;
mod http;
mod jobs;
mod metrics;

pub use jobs::{JobKind, JobSnapshot, JobState, SubmitError};

use crate::fuzz::{self, FuzzOptions};
use crate::runner::{self, Backend, RunRequest};
use analysis::harness::{auto_workers, render_jsonl, trial_seed};
use analysis::scenario::{preset, ScenarioSpec};
use analysis::{Counter, MetricsRegistry, ProgressSink};
use jobs::{event_line, EventValue, JobTable};
use serde_json::Value;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of one daemon.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Bind address; port `0` picks an ephemeral port (used by the tests).
    pub addr: String,
    /// Worker threads (`0` = one per core, via [`auto_workers`]).
    pub workers: usize,
    /// Maximum queued (not yet running) jobs; submissions beyond it get HTTP 503.
    pub queue_cap: usize,
    /// Seed of the server's per-job seed stream (fuzz jobs without an explicit seed).
    pub seed: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions { addr: "127.0.0.1:7199".to_string(), workers: 0, queue_cap: 64, seed: 0 }
    }
}

/// State shared by the accept thread, the workers, and every connection handler.
struct Shared {
    jobs: JobTable,
    registry: MetricsRegistry,
    started: Instant,
    shutdown: AtomicBool,
    seed: u64,
    submissions: AtomicU64,
    workers_total: usize,
    workers_busy: AtomicUsize,
}

impl Shared {
    fn uptime_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.jobs.request_shutdown();
    }
}

/// A running daemon.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the address, spawns the worker pool and the accept thread, and returns.
    pub fn start(opts: &ServeOptions) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&opts.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let workers_total = auto_workers(opts.workers);
        let shared = Arc::new(Shared {
            jobs: JobTable::new(opts.queue_cap),
            registry: MetricsRegistry::new(),
            started: Instant::now(),
            shutdown: AtomicBool::new(false),
            seed: opts.seed,
            submissions: AtomicU64::new(0),
            workers_total,
            workers_busy: AtomicUsize::new(0),
        });
        let workers = (0..workers_total)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        Ok(Server { addr, shared, accept: Some(accept), workers })
    }

    /// The bound address (the actual port, when `0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks the daemon to shut down (same effect as `POST /shutdown`).
    pub fn stop(&self) {
        self.shared.request_shutdown();
    }

    /// Blocks until the daemon has shut down (accept thread and workers joined).
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// The accept loop: non-blocking accepts polled every 20ms so a shutdown request is
/// noticed promptly; each connection gets a detached handler thread (connections are
/// short-lived except streams, which end when their job does).
fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nonblocking(false);
                let shared = Arc::clone(shared);
                std::thread::spawn(move || api::handle(stream, &shared));
            }
            Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

/// One worker: claim, execute, record, repeat until shutdown.
fn worker_loop(shared: &Arc<Shared>) {
    while let Some((id, kind, cancel)) = shared.jobs.claim_next() {
        shared.workers_busy.fetch_add(1, Ordering::Relaxed);
        let sink = JobSink::new(shared, id, cancel);
        let outcome = match kind {
            JobKind::Run { spec, request } => execute_run(shared, id, &spec, &request, &sink),
            JobKind::Fuzz { opts } => execute_fuzz(&opts, &sink),
        };
        match &outcome {
            Ok(_) => shared.registry.add("klex_jobs_done_total", 1),
            Err(_) => shared.registry.add("klex_jobs_failed_total", 1),
        }
        if sink.cancelled() {
            shared.registry.add("klex_jobs_cancelled_total", 1);
        }
        shared.jobs.finish(id, outcome);
        shared.workers_busy.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Executes a run job: compile, run the shared row builder, render the rows exactly as
/// `klex run --format jsonl` does.
fn execute_run(
    shared: &Arc<Shared>,
    id: u64,
    spec: &ScenarioSpec,
    request: &RunRequest,
    sink: &JobSink<'_>,
) -> Result<String, String> {
    let scenario = spec.clone().compile().map_err(|e| e.to_string())?;
    let product = runner::run_rows(&scenario, request, Some(sink))?;
    for note in product.notes.iter().chain(&product.warnings) {
        shared.jobs.push_event(id, event_line("note", &[("text", EventValue::Str(note))]));
    }
    Ok(render_jsonl(&product.rows))
}

/// Executes a fuzz job against an in-memory corpus, returning a one-line JSON summary.
fn execute_fuzz(opts: &FuzzOptions, sink: &JobSink<'_>) -> Result<String, String> {
    let mut corpus = fuzz::Corpus::in_memory();
    let summary = fuzz::run_campaign_observed(opts, &mut corpus, sink);
    if !summary.clean() {
        let first = &summary.disagreements[0];
        return Err(format!(
            "{} cross-engine disagreement(s); first at scenario {}: {}",
            summary.disagreements.len(),
            first.scenario_index,
            first.detail
        ));
    }
    Ok(format!(
        "{{\"scenarios\":{},\"exhaustive\":{},\"liveness_violations\":{},\
         \"safety_violations\":{},\"differential_oracle_runs\":{},\
         \"distinct_signatures\":{},\"novel_signatures\":{},\"corpus_size\":{},\
         \"disagreements\":0,\"seed\":{}}}",
        summary.scenarios,
        summary.exhaustive,
        summary.liveness_violations,
        summary.safety_violations,
        summary.differential_oracle_runs,
        summary.distinct_signatures,
        summary.novel_signatures,
        summary.corpus_size,
        opts.seed,
    ))
}

/// Per-phase progress stride before another event line is pushed (the checker already
/// throttles to one callback per 256 states; this throttles the *event log*, which is
/// replayed to every stream watcher).
fn event_stride(phase: &str) -> u64 {
    match phase {
        "explore" => 4_096,
        "trials" => 16,
        // Fault-campaign epochs are few and each marks a measured re-convergence: every
        // one is worth a stream event.
        "epoch" => 1,
        // Each completed consistent cut carries a safety verdict: stream them all.
        "snapshot" => 1,
        _ => 1,
    }
}

/// The per-job [`ProgressSink`]: cancellation from the job's cancel flag (or daemon
/// shutdown), progress into the job's event log (throttled) and the Prometheus counters
/// (as deltas, so concurrent jobs accumulate correctly).
struct JobSink<'a> {
    shared: &'a Arc<Shared>,
    id: u64,
    cancel: Arc<AtomicBool>,
    states: Counter,
    trials: Counter,
    fuzz: Counter,
    /// Per phase: (last value counted into the registry, last value evented).
    marks: Mutex<std::collections::BTreeMap<String, (u64, u64)>>,
}

impl<'a> JobSink<'a> {
    fn new(shared: &'a Arc<Shared>, id: u64, cancel: Arc<AtomicBool>) -> JobSink<'a> {
        JobSink {
            shared,
            id,
            cancel,
            states: shared.registry.counter("klex_states_explored_total"),
            trials: shared.registry.counter("klex_trials_completed_total"),
            fuzz: shared.registry.counter("klex_fuzz_scenarios_total"),
            marks: Mutex::new(std::collections::BTreeMap::new()),
        }
    }
}

impl ProgressSink for JobSink<'_> {
    fn progress(&self, phase: &str, done: u64, total: u64) {
        let (counted, evented) = {
            let mut marks = self.marks.lock().expect("unpoisoned sink marks");
            let slot = marks.entry(phase.to_string()).or_insert((0, 0));
            let delta = done.saturating_sub(slot.0);
            slot.0 = slot.0.max(done);
            let should_event = done >= slot.1 + event_stride(phase) || (done == total && total > 0);
            if should_event {
                slot.1 = done;
            }
            (delta, should_event)
        };
        match phase {
            "explore" => self.states.add(counted),
            "trials" => self.trials.add(counted),
            "fuzz" => self.fuzz.add(counted),
            _ => {}
        }
        if evented {
            self.shared.jobs.push_event(
                self.id,
                event_line(
                    "progress",
                    &[
                        ("phase", EventValue::Str(phase)),
                        ("done", EventValue::Int(done)),
                        ("total", EventValue::Int(total)),
                    ],
                ),
            );
        }
    }

    fn cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed) || self.shared.shutdown.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------------------
// Submission parsing
// ---------------------------------------------------------------------------------------

/// Parses a `POST /jobs` body into a named [`JobKind`].
///
/// Accepted shapes (all fields beyond the kind selector optional):
///
/// ```json
/// {"preset": "checker-safety", "backend": "check", "shards": 2, "threads": 1, "bench": false}
/// {"spec": { …full ScenarioSpec… }, "backend": "all"}
/// {"fuzz": {"seed": 7, "scenarios": 64, "max_configurations": 6000, "sim_steps": 1500,
///           "guided": true, "shards": 2, "threads": 2}}
/// ```
fn parse_job(body: &str, default_seed: u64) -> Result<(String, JobKind), String> {
    let doc = serde_json::from_str(body).map_err(|e| format!("request body: {e}"))?;

    if let Some(fuzz_spec) = doc.get("fuzz") {
        let field = |name: &str| fuzz_spec.get(name).and_then(Value::as_u64);
        let seed = field("seed").unwrap_or(default_seed);
        let mut opts = FuzzOptions::new(seed);
        // Service fuzz jobs default to smoke-sized budgets; a submission can widen them.
        opts.scenarios = field("scenarios").unwrap_or(64);
        opts.max_configurations = field("max_configurations").unwrap_or(6_000) as usize;
        opts.sim_steps = field("sim_steps").unwrap_or(1_500);
        opts.shards = field("shards").unwrap_or(0) as usize;
        opts.threads = field("threads").unwrap_or(0) as usize;
        opts.guided = fuzz_spec.get("guided").and_then(Value::as_bool).unwrap_or(true);
        opts.out_dir = std::env::temp_dir();
        let name = format!("fuzz-campaign seed={seed} x{}", opts.scenarios);
        return Ok((name, JobKind::Fuzz { opts }));
    }

    let spec = if let Some(name) = doc.get("preset").and_then(Value::as_str) {
        preset(name).ok_or_else(|| format!("unknown preset `{name}` (try `klex list`)"))?
    } else if let Some(spec_value) = doc.get("spec") {
        // The shim parses to a dynamic `Value`; re-render the subtree and hand it to the
        // spec's own (validating) parser.
        ScenarioSpec::from_json(&crate::history::render(spec_value)).map_err(|e| e.to_string())?
    } else {
        return Err("job needs `preset`, `spec` or `fuzz`".to_string());
    };
    // Submission-time validation: reject specs that cannot compile instead of queueing a
    // job doomed to fail.
    spec.clone().compile().map_err(|e| e.to_string())?;

    let backend = match doc.get("backend").and_then(Value::as_str) {
        Some(name) => Backend::parse(name)?,
        None => Backend::Sim,
    };
    let request = RunRequest {
        backend,
        shards: doc.get("shards").and_then(Value::as_u64).unwrap_or(0) as usize,
        threads: doc.get("threads").and_then(Value::as_u64).map(|t| t as usize),
        bench: doc.get("bench").and_then(Value::as_bool).unwrap_or(false),
    };
    Ok((spec.name.clone(), JobKind::Run { spec: Box::new(spec), request }))
}

/// Submits a parsed job, deriving the fuzz default seed from the server's seed stream.
fn submit_body(shared: &Arc<Shared>, body: &str) -> Result<u64, String> {
    let index = shared.submissions.fetch_add(1, Ordering::Relaxed);
    let (name, kind) = parse_job(body, trial_seed(shared.seed, index))?;
    match shared.jobs.submit(name, kind) {
        Ok((id, _cancel)) => {
            shared.registry.add("klex_jobs_submitted_total", 1);
            Ok(id)
        }
        Err(SubmitError::QueueFull) => Err("queue full".to_string()),
        Err(SubmitError::ShuttingDown) => Err("shutting down".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_job_accepts_presets_specs_and_fuzz() {
        let (name, kind) =
            parse_job(r#"{"preset": "checker-safety", "backend": "check", "threads": 1}"#, 0)
                .unwrap();
        // Job names come from the spec, which carries the preset's descriptive title.
        assert_eq!(name, preset("checker-safety").unwrap().name);
        let JobKind::Run { request, .. } = kind else { panic!("expected a run job") };
        assert_eq!(request.backend, Backend::Check);
        assert_eq!(request.threads, Some(1));

        let spec_json = preset("checker-safety").unwrap().to_json();
        let (_, kind) =
            parse_job(&format!(r#"{{"spec": {spec_json}, "backend": "all"}}"#), 0).unwrap();
        assert!(matches!(kind, JobKind::Run { .. }));

        let (name, kind) = parse_job(r#"{"fuzz": {"scenarios": 8}}"#, 42).unwrap();
        assert!(name.contains("fuzz-campaign"));
        let JobKind::Fuzz { opts } = kind else { panic!("expected a fuzz job") };
        assert_eq!(opts.scenarios, 8);
        assert_eq!(opts.seed, 42, "seed defaults from the server stream");

        assert!(parse_job(r#"{"preset": "no-such"}"#, 0).is_err());
        assert!(parse_job(r#"{"backend": "sim"}"#, 0).is_err());
        assert!(parse_job("not json", 0).is_err());
    }
}
