//! A deliberately minimal HTTP/1.1 implementation over `std::net`.
//!
//! The workspace is offline — no tokio, no hyper — and the serve daemon's needs are
//! narrow: parse one request per connection, answer with a `Content-Length` body or a
//! `Transfer-Encoding: chunked` stream (the JSONL progress feed), and give the `klex`
//! client subcommands a matching blocking requester.  This module implements exactly
//! that subset: no keep-alive, no pipelining, no compression, ASCII headers only.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Maximum accepted request-body size (a scenario spec is a few KB; a megabyte is roomy).
const MAX_BODY: usize = 1 << 20;

/// How long a connection may sit idle while we read its request head.
pub const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// One parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Uppercased method (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// The request path, query string stripped.
    pub path: String,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// The body as UTF-8 (lossy — job payloads are JSON, which is UTF-8 by definition).
    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Reads one request from `stream`.  Returns `Ok(None)` on a cleanly closed or empty
/// connection, `Err` with a human-readable message on a malformed one.
pub fn read_request(stream: &TcpStream) -> Result<Option<Request>, String> {
    stream.set_read_timeout(Some(READ_TIMEOUT)).map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut start_line = String::new();
    match reader.read_line(&mut start_line) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) => return Err(format!("request line: {e}")),
    }
    let mut parts = start_line.split_whitespace();
    let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
        return Err(format!("malformed request line {start_line:?}"));
    };
    let method = method.to_ascii_uppercase();
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).map_err(|e| format!("header line: {e}"))?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad Content-Length {value:?}"))?;
            }
        }
    }
    if content_length > MAX_BODY {
        // Drain (a bounded amount of) the oversized body before erroring: the client is
        // still writing it, and closing the socket mid-upload resets the connection before
        // the 400 response can be read.  Reading the declared body lets the client finish
        // its write and see the error; the cap keeps a lying Content-Length from pinning
        // the worker.
        let mut remaining = content_length.min(4 * MAX_BODY);
        let mut scratch = [0u8; 8192];
        while remaining > 0 {
            let take = remaining.min(scratch.len());
            match reader.read(&mut scratch[..take]) {
                Ok(0) | Err(_) => break,
                Ok(n) => remaining -= n,
            }
        }
        return Err(format!("body of {content_length} bytes exceeds the {MAX_BODY} limit"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| format!("body: {e}"))?;
    Ok(Some(Request { method, path, body }))
}

/// The reason phrase of the status codes the daemon emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Writes a complete (`Content-Length`-framed) response and flushes it.
pub fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len()
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// A `Transfer-Encoding: chunked` response in progress — the JSONL stream writer.
///
/// Every [`ChunkedResponse::chunk`] is flushed immediately so a watching client sees
/// progress lines as they happen, not when the job ends.
pub struct ChunkedResponse<'a> {
    stream: &'a mut TcpStream,
}

impl<'a> ChunkedResponse<'a> {
    /// Writes the response head and returns the chunk writer.
    pub fn start(
        stream: &'a mut TcpStream,
        status: u16,
        content_type: &str,
    ) -> std::io::Result<ChunkedResponse<'a>> {
        write!(
            stream,
            "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
            reason(status)
        )?;
        stream.flush()?;
        Ok(ChunkedResponse { stream })
    }

    /// Sends one chunk (a no-op for empty data: an empty chunk would terminate the
    /// stream).
    pub fn chunk(&mut self, data: &[u8]) -> std::io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.stream, "{:x}\r\n", data.len())?;
        self.stream.write_all(data)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Terminates the stream with the zero-length chunk.
    pub fn finish(self) -> std::io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

/// A parsed client-side response: status code plus the (de-chunked) body.
#[derive(Clone, Debug)]
pub struct Response {
    /// The HTTP status code.
    pub status: u16,
    /// The response body.
    pub body: String,
}

/// Performs one blocking request against `addr` (e.g. `127.0.0.1:7199`).
///
/// `on_line`, when given, is invoked for every complete line of a chunked (streaming)
/// response *as it arrives*; the returned body then holds any trailing partial line.
/// Non-chunked responses are returned whole without invoking the callback.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    mut on_line: Option<&mut dyn FnMut(&str)>,
) -> Result<Response, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream.set_read_timeout(Some(CLIENT_READ_TIMEOUT)).map_err(|e| e.to_string())?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let payload = body.unwrap_or("");
    write!(
        writer,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
        payload.len()
    )
    .map_err(|e| format!("send {method} {path}: {e}"))?;
    writer.flush().map_err(|e| e.to_string())?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).map_err(|e| format!("status line: {e}"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line {status_line:?}"))?;

    let mut content_length: Option<usize> = None;
    let mut chunked = false;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).map_err(|e| format!("header: {e}"))?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.parse().ok();
            } else if name.eq_ignore_ascii_case("transfer-encoding")
                && value.eq_ignore_ascii_case("chunked")
            {
                chunked = true;
            }
        }
    }

    let raw = if chunked {
        read_chunked(&mut reader, &mut on_line)?
    } else {
        let mut buf = match content_length {
            Some(n) => vec![0u8; n],
            None => Vec::new(),
        };
        match content_length {
            Some(_) => reader.read_exact(&mut buf).map_err(|e| format!("body: {e}"))?,
            None => {
                reader.read_to_end(&mut buf).map_err(|e| format!("body: {e}"))?;
            }
        }
        buf
    };
    Ok(Response { status, body: String::from_utf8_lossy(&raw).into_owned() })
}

/// Streaming responses are progress feeds: allow a long pause between chunks while a big
/// exploration runs, but still bail out if the server truly hangs.
const CLIENT_READ_TIMEOUT: Duration = Duration::from_secs(600);

/// Reads a chunked body to its terminating zero chunk, feeding complete lines to
/// `on_line` as they arrive; returns any bytes after the final newline.
fn read_chunked(
    reader: &mut BufReader<TcpStream>,
    on_line: &mut Option<&mut dyn FnMut(&str)>,
) -> Result<Vec<u8>, String> {
    let mut pending: Vec<u8> = Vec::new();
    loop {
        let mut size_line = String::new();
        reader.read_line(&mut size_line).map_err(|e| format!("chunk size: {e}"))?;
        let size = usize::from_str_radix(size_line.trim(), 16)
            .map_err(|_| format!("bad chunk size {size_line:?}"))?;
        if size == 0 {
            // Consume the trailing CRLF (and any trailers, which we don't emit).
            let mut tail = String::new();
            let _ = reader.read_line(&mut tail);
            return Ok(pending);
        }
        let mut chunk = vec![0u8; size + 2];
        reader.read_exact(&mut chunk).map_err(|e| format!("chunk body: {e}"))?;
        chunk.truncate(size); // drop the CRLF
        pending.extend_from_slice(&chunk);
        if let Some(callback) = on_line.as_mut() {
            while let Some(newline) = pending.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = pending.drain(..=newline).collect();
                let text = String::from_utf8_lossy(&line[..line.len() - 1]);
                callback(text.trim_end_matches('\r'));
            }
        }
    }
}
