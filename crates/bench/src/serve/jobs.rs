//! The job table: a bounded queue of submitted scenario jobs plus their full lifecycle
//! (`queued → running → done | failed | cancelled`) behind one mutex and two condvars.
//!
//! Workers block on [`JobTable::claim_next`]; stream watchers block on
//! [`JobTable::wait_events`].  Every mutation that could unblock either side notifies the
//! corresponding condvar.  Jobs are kept in the table after they finish (the daemon is a
//! diagnostic tool, not a long-lived production queue), so `GET /jobs/<id>` works for the
//! daemon's whole lifetime.

use crate::fuzz::FuzzOptions;
use crate::runner::RunRequest;
use analysis::scenario::ScenarioSpec;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Distinguishes daemon incarnations within and across processes.  Every event line
/// carries it, so a watcher that reconnects to a *different* daemon (same address, same
/// job id) can tell the new daemon's events apart from a replay of lines it already saw.
static BOOTS: AtomicU64 = AtomicU64::new(0);

fn next_boot_id() -> u64 {
    // The process id separates daemons across restarts; the counter separates daemons
    // started within one process (the tests bounce servers without forking).
    ((std::process::id() as u64) << 20) | (BOOTS.fetch_add(1, Ordering::Relaxed) + 1)
}

/// What one job executes.
#[derive(Clone, Debug)]
pub enum JobKind {
    /// A scenario run through [`crate::runner::run_rows`].
    Run {
        /// The spec (compiled by the worker; submission only validates the JSON).
        /// Boxed to keep the enum small next to the slim `Fuzz` variant.
        spec: Box<ScenarioSpec>,
        /// Backend/shard/thread selection.
        request: RunRequest,
    },
    /// A fuzz campaign through [`crate::fuzz::run_campaign_observed`].
    Fuzz {
        /// The campaign options (seed defaulted from the server's stream at submit).
        opts: FuzzOptions,
    },
}

impl JobKind {
    /// The wire name of the kind.
    pub fn label(&self) -> &'static str {
        match self {
            JobKind::Run { .. } => "run",
            JobKind::Fuzz { .. } => "fuzz",
        }
    }
}

/// The lifecycle states of a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished successfully; `result` holds the JSONL rows / campaign summary.
    Done,
    /// Finished with an error; `error` says why.
    Failed,
    /// Cancelled while queued, or a worker observed the cancel flag mid-run.
    Cancelled,
}

impl JobState {
    /// The wire name of the state.
    pub fn label(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// True when the job will never change again.
    pub fn terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Failed | JobState::Cancelled)
    }
}

/// One job.
#[derive(Clone, Debug)]
struct Job {
    name: String,
    kind: JobKind,
    state: JobState,
    events: Vec<String>,
    result: Option<String>,
    error: Option<String>,
    cancel: Arc<AtomicBool>,
}

/// A displayable copy of a job's current state.
#[derive(Clone, Debug)]
pub struct JobSnapshot {
    /// Job id (assigned at submit, starting from 1).
    pub id: u64,
    /// The job's name (the scenario name, or `fuzz-<seed>`).
    pub name: String,
    /// The kind label (`run` / `fuzz`).
    pub kind: &'static str,
    /// Current lifecycle state.
    pub state: JobState,
    /// Number of progress events recorded so far.
    pub events: usize,
    /// The result payload, when done.
    pub result: Option<String>,
    /// The error, when failed.
    pub error: Option<String>,
}

/// Why a submission was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity — retry later (HTTP 503).
    QueueFull,
    /// The daemon is shutting down (HTTP 503).
    ShuttingDown,
}

#[derive(Default)]
struct TableState {
    jobs: BTreeMap<u64, Job>,
    queue: VecDeque<u64>,
    next_id: u64,
    shutdown: bool,
}

/// The shared job table.
pub struct JobTable {
    state: Mutex<TableState>,
    /// Wakes workers blocked in [`JobTable::claim_next`].
    worker_wake: Condvar,
    /// Wakes watchers blocked in [`JobTable::wait_events`].
    watchers: Condvar,
    queue_cap: usize,
    /// This daemon incarnation's id, stamped into every event line.
    boot: u64,
}

impl JobTable {
    /// An empty table whose queue holds at most `queue_cap` waiting jobs.
    pub fn new(queue_cap: usize) -> JobTable {
        JobTable {
            state: Mutex::new(TableState::default()),
            worker_wake: Condvar::new(),
            watchers: Condvar::new(),
            queue_cap: queue_cap.max(1),
            boot: next_boot_id(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TableState> {
        self.state.lock().expect("unpoisoned job table")
    }

    /// Appends `line` to a job's event log, stamped with this daemon's boot id and the
    /// line's position as a per-job sequence number.  Watchers dedup replayed lines on
    /// the `(boot, seq)` key, so a reconnect — even one that lands on a different daemon
    /// incarnation reusing the same job id — delivers each event exactly once.
    fn append_event(&self, job: &mut Job, mut line: String) {
        debug_assert!(line.ends_with('}'), "event lines are single JSON objects");
        line.pop();
        line.push_str(&format!(",\"boot\":{},\"seq\":{}}}", self.boot, job.events.len()));
        job.events.push(line);
    }

    /// Enqueues a job, returning its id and cancel flag.
    pub fn submit(&self, name: String, kind: JobKind) -> Result<(u64, Arc<AtomicBool>), SubmitError> {
        let mut state = self.lock();
        if state.shutdown {
            return Err(SubmitError::ShuttingDown);
        }
        if state.queue.len() >= self.queue_cap {
            return Err(SubmitError::QueueFull);
        }
        state.next_id += 1;
        let id = state.next_id;
        let cancel = Arc::new(AtomicBool::new(false));
        state.jobs.insert(
            id,
            Job {
                name,
                kind,
                state: JobState::Queued,
                events: Vec::new(),
                result: None,
                error: None,
                cancel: Arc::clone(&cancel),
            },
        );
        state.queue.push_back(id);
        drop(state);
        self.worker_wake.notify_one();
        Ok((id, cancel))
    }

    /// Blocks until a job is available (or shutdown), marks it running, and returns its
    /// id, kind and cancel flag.  `None` means the daemon is shutting down.
    pub fn claim_next(&self) -> Option<(u64, JobKind, Arc<AtomicBool>)> {
        let mut state = self.lock();
        loop {
            if state.shutdown {
                return None;
            }
            if let Some(id) = state.queue.pop_front() {
                let job = state.jobs.get_mut(&id).expect("queued job exists");
                // A queued job cancelled before any worker reached it was already marked
                // terminal by `cancel` — skip it.
                if job.state != JobState::Queued {
                    continue;
                }
                job.state = JobState::Running;
                let line = event_line("state", &[("state", EventValue::Str("running"))]);
                self.append_event(job, line);
                let claimed = (id, job.kind.clone(), Arc::clone(&job.cancel));
                drop(state);
                self.watchers.notify_all();
                return Some(claimed);
            }
            state = self.worker_wake.wait(state).expect("unpoisoned job table");
        }
    }

    /// Appends one JSONL progress event to a job and wakes its watchers.
    pub fn push_event(&self, id: u64, line: String) {
        let mut state = self.lock();
        if let Some(job) = state.jobs.get_mut(&id) {
            // Bound the per-job replay buffer; the stride-based throttling in the sink
            // keeps normal jobs far below this.
            if job.events.len() < 100_000 {
                self.append_event(job, line);
            }
        }
        drop(state);
        self.watchers.notify_all();
    }

    /// Records a finished job: `Ok(result)` → done, `Err(error)` → failed — unless its
    /// cancel flag was raised, in which case the job is cancelled and the result is
    /// discarded (a cancelled run's output is partial by construction).
    pub fn finish(&self, id: u64, outcome: Result<String, String>) {
        let mut state = self.lock();
        if let Some(job) = state.jobs.get_mut(&id) {
            let cancelled = job.cancel.load(Ordering::Relaxed);
            match (cancelled, outcome) {
                (true, _) => job.state = JobState::Cancelled,
                (false, Ok(result)) => {
                    job.result = Some(result);
                    job.state = JobState::Done;
                }
                (false, Err(error)) => {
                    job.error = Some(error);
                    job.state = JobState::Failed;
                }
            }
            let label = job.state.label();
            let line = event_line("state", &[("state", EventValue::Str(label))]);
            self.append_event(job, line);
        }
        drop(state);
        self.watchers.notify_all();
    }

    /// Cancels a job.  Queued jobs become terminal immediately; running jobs get their
    /// cancel flag raised and wind down at the next sink poll.  Returns the state after
    /// the cancel request, or `None` for an unknown id.
    pub fn cancel(&self, id: u64) -> Option<JobState> {
        let mut state = self.lock();
        let job = state.jobs.get_mut(&id)?;
        job.cancel.store(true, Ordering::Relaxed);
        if job.state == JobState::Queued {
            job.state = JobState::Cancelled;
            let line = event_line("state", &[("state", EventValue::Str("cancelled"))]);
            self.append_event(job, line);
        }
        let after = job.state;
        // A cancelled queued job must stop occupying queue capacity.
        state.queue.retain(|&queued| queued != id);
        drop(state);
        self.watchers.notify_all();
        Some(after)
    }

    /// A displayable copy of one job.
    pub fn snapshot(&self, id: u64) -> Option<JobSnapshot> {
        let state = self.lock();
        state.jobs.get(&id).map(|job| JobSnapshot {
            id,
            name: job.name.clone(),
            kind: job.kind.label(),
            state: job.state,
            events: job.events.len(),
            result: job.result.clone(),
            error: job.error.clone(),
        })
    }

    /// Displayable copies of every job, in id order.
    pub fn list(&self) -> Vec<JobSnapshot> {
        let state = self.lock();
        state
            .jobs
            .iter()
            .map(|(&id, job)| JobSnapshot {
                id,
                name: job.name.clone(),
                kind: job.kind.label(),
                state: job.state,
                events: job.events.len(),
                result: None, // list view stays light; fetch one job for the payload
                error: job.error.clone(),
            })
            .collect()
    }

    /// `(queued, running, done, failed, cancelled)` counts for the metrics endpoint.
    pub fn counts(&self) -> [u64; 5] {
        let state = self.lock();
        let mut counts = [0u64; 5];
        for job in state.jobs.values() {
            counts[match job.state {
                JobState::Queued => 0,
                JobState::Running => 1,
                JobState::Done => 2,
                JobState::Failed => 3,
                JobState::Cancelled => 4,
            }] += 1;
        }
        counts
    }

    /// Returns the events of job `id` from index `from` on, plus the job's current state.
    /// Blocks up to `timeout` when nothing new is available yet; an unknown id yields
    /// `None`.
    pub fn wait_events(
        &self,
        id: u64,
        from: usize,
        timeout: Duration,
    ) -> Option<(Vec<String>, JobState)> {
        let mut state = self.lock();
        loop {
            let job = state.jobs.get(&id)?;
            if job.events.len() > from || job.state.terminal() || state.shutdown {
                return Some((job.events[from.min(job.events.len())..].to_vec(), job.state));
            }
            let (next, wait) =
                self.watchers.wait_timeout(state, timeout).expect("unpoisoned job table");
            state = next;
            if wait.timed_out() {
                let job = state.jobs.get(&id)?;
                return Some((Vec::new(), job.state));
            }
        }
    }

    /// Initiates shutdown: rejects new submissions, cancels every queued job, raises the
    /// cancel flag of every running job, and wakes all workers and watchers.
    pub fn request_shutdown(&self) {
        let mut state = self.lock();
        state.shutdown = true;
        state.queue.clear();
        for job in state.jobs.values_mut() {
            job.cancel.store(true, Ordering::Relaxed);
            if job.state == JobState::Queued {
                job.state = JobState::Cancelled;
                let line = event_line("state", &[("state", EventValue::Str("cancelled"))]);
                self.append_event(job, line);
            }
        }
        drop(state);
        self.worker_wake.notify_all();
        self.watchers.notify_all();
    }

}

/// A value in a progress event line.
pub enum EventValue<'a> {
    /// A JSON string (escaped minimally; event strings are ASCII identifiers).
    Str(&'a str),
    /// A JSON integer.
    Int(u64),
}

/// Renders one single-line JSONL event: `{"event": "<kind>", <fields>...}`.
pub fn event_line(kind: &str, fields: &[(&str, EventValue<'_>)]) -> String {
    let mut out = format!("{{\"event\":\"{kind}\"");
    for (key, value) in fields {
        match value {
            EventValue::Str(s) => {
                let escaped = s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n");
                out.push_str(&format!(",\"{key}\":\"{escaped}\""));
            }
            EventValue::Int(i) => out.push_str(&format!(",\"{key}\":{i}")),
        }
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use analysis::scenario::preset;

    fn run_kind() -> JobKind {
        JobKind::Run {
            spec: Box::new(preset("checker-safety").expect("known preset")),
            request: RunRequest::default(),
        }
    }

    #[test]
    fn lifecycle_queued_running_done() {
        let table = JobTable::new(4);
        let (id, _cancel) = table.submit("j".into(), run_kind()).unwrap();
        assert_eq!(table.snapshot(id).unwrap().state, JobState::Queued);
        let (claimed, _, _) = table.claim_next().unwrap();
        assert_eq!(claimed, id);
        assert_eq!(table.snapshot(id).unwrap().state, JobState::Running);
        table.finish(id, Ok("rows".into()));
        let snap = table.snapshot(id).unwrap();
        assert_eq!(snap.state, JobState::Done);
        assert_eq!(snap.result.as_deref(), Some("rows"));
    }

    #[test]
    fn queue_capacity_rejects_and_cancel_prevents_claim() {
        let table = JobTable::new(1);
        let (first, _) = table.submit("a".into(), run_kind()).unwrap();
        assert_eq!(table.submit("b".into(), run_kind()).unwrap_err(), SubmitError::QueueFull);
        assert_eq!(table.cancel(first), Some(JobState::Cancelled));
        // The cancelled job never reaches a worker; with the queue drained and a second
        // job submitted, the worker claims the new one.
        let (second, _) = table.submit("c".into(), run_kind()).unwrap();
        let (claimed, _, _) = table.claim_next().unwrap();
        assert_eq!(claimed, second);
    }

    #[test]
    fn cancelling_a_running_job_discards_its_result() {
        let table = JobTable::new(4);
        let (id, _) = table.submit("a".into(), run_kind()).unwrap();
        let (_, _, cancel) = table.claim_next().unwrap();
        assert_eq!(table.cancel(id), Some(JobState::Running));
        assert!(cancel.load(Ordering::Relaxed), "worker sees the cancel flag");
        table.finish(id, Ok("partial rows".into()));
        let snap = table.snapshot(id).unwrap();
        assert_eq!(snap.state, JobState::Cancelled);
        assert_eq!(snap.result, None);
    }

    #[test]
    fn shutdown_unblocks_workers_and_cancels_the_queue() {
        let table = Arc::new(JobTable::new(4));
        let (id, _) = table.submit("a".into(), run_kind()).unwrap();
        let waiter = {
            let table = Arc::clone(&table);
            std::thread::spawn(move || {
                let first = table.claim_next();
                assert!(first.is_some());
                table.finish(first.unwrap().0, Ok("done".into()));
                table.claim_next() // blocks until shutdown
            })
        };
        // Wait for the worker to drain the queue, then shut down.
        while !table.snapshot(id).unwrap().state.terminal() {
            std::thread::yield_now();
        }
        table.request_shutdown();
        assert_eq!(waiter.join().unwrap().map(|(id, _, _)| id), None);
        assert_eq!(table.submit("late".into(), run_kind()).unwrap_err(), SubmitError::ShuttingDown);
    }

    #[test]
    fn wait_events_sees_progress_and_terminal_states() {
        let table = JobTable::new(4);
        let (id, _) = table.submit("a".into(), run_kind()).unwrap();
        table.claim_next().unwrap();
        table.push_event(id, "{\"event\":\"progress\"}".into());
        let (events, state) = table.wait_events(id, 0, Duration::from_millis(10)).unwrap();
        assert_eq!(events.len(), 2, "state(running) + progress");
        assert_eq!(state, JobState::Running);
        table.finish(id, Err("boom".into()));
        let (more, state) = table.wait_events(id, 2, Duration::from_millis(10)).unwrap();
        assert_eq!(more.len(), 1);
        assert!(more[0].starts_with("{\"event\":\"state\",\"state\":\"failed\""));
        assert_eq!(state, JobState::Failed);
        assert!(table.wait_events(99, 0, Duration::from_millis(1)).is_none());

        // Every line carries the daemon's boot id and its index as a sequence number —
        // the key `serve::client::watch` dedups replayed lines on.
        let (all, _) = table.wait_events(id, 0, Duration::ZERO).unwrap();
        let boot = format!(",\"boot\":{},", table.boot);
        for (seq, line) in all.iter().enumerate() {
            assert!(line.contains(&boot), "missing boot id: {line}");
            assert!(line.ends_with(&format!(",\"seq\":{seq}}}")), "bad seq: {line}");
        }
    }
}
