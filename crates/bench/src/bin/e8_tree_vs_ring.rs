//! E8 — tree vs ring vs permission-based baselines.
fn main() {
    bench::run_binary(bench::experiments::comparison::e8_tree_vs_ring);
}
