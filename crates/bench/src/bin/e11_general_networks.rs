//! E11 — general rooted networks: spanning-tree composition cost and service.
fn main() {
    bench::run_binary(bench::experiments::general::e11_general_networks);
}
