//! E14 — bounded vs unbounded counter-flushing domain under garbage ≫ CMAX.
fn main() {
    bench::run_binary(bench::experiments::unbounded::e14_unbounded_counter);
}
