//! `klex` — the scenario CLI: run any declarative scenario (a JSON [`ScenarioSpec`] file or
//! a named preset) through any backend, and render the result as markdown, JSON lines or
//! CSV.
//!
//! ```text
//! klex list                               # named presets and experiments
//! klex run figure2                        # preset through the simulator
//! klex run figure2 --backend all          # simulator + sharded harness + checker
//! klex run spec.json --format jsonl       # JSON spec file, machine-readable output
//! klex show figure2                       # print a preset's JSON (a template for specs)
//! klex experiment e5                      # a full experiment table (KLEX_SCALE=quick|full)
//! ```
//!
//! Backends (`--backend`, default `sim`):
//!
//! * `sim` — one simulated execution (trial 0: the spec's seeds verbatim);
//! * `harness` — the spec's trial plan, sharded across cores (`--shards N` to override);
//! * `check` — bounded-exhaustive exploration of the spec's instance;
//! * `all` — all three, one rendered row each.

use analysis::harness::{auto_shards, render_csv, render_jsonl, render_markdown_table};
use analysis::scenario::{preset, CompiledScenario, ScenarioSpec, PRESET_NAMES};
use analysis::ExperimentRow;
use bench::experiments;
use bench::{ExperimentReport, Scale};
use std::process::ExitCode;

const EXPERIMENTS: [&str; 15] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14",
    "e15",
];

fn usage() -> &'static str {
    "klex — one declarative scenario spec, three backends\n\
     \n\
     USAGE:\n\
       klex list                                     list presets and experiments\n\
       klex show <preset>                            print a preset's JSON spec\n\
       klex run <spec.json | preset> [options]       run a scenario\n\
       klex experiment <e1..e15 | all>               run a full experiment table\n\
       klex fuzz [options]                           cross-engine differential campaign\n\
     \n\
     OPTIONS (run):\n\
       --backend sim|harness|check|all               backend selection (default: sim)\n\
       --format markdown|jsonl|csv                   output rendering (default: markdown)\n\
       --shards N                                    harness worker threads (default: cores)\n\
       --threads N                                   checker worker threads (default: the\n\
                                                     spec's `check.threads`; 0 = one per\n\
                                                     core, 1 = sequential delta engine)\n\
       --bench                                       add checker throughput columns\n\
                                                     (states_per_sec, arena_bytes)\n\
     \n\
     OPTIONS (fuzz):\n\
       --smoke                                       the fixed-seed CI campaign\n\
                                                     (200 scenarios, tight budgets)\n\
       --seed N                                      campaign seed (default: 1)\n\
       --scenarios N                                 scenarios to generate (default: 200)\n\
       --max-configs N                               checker states per scenario\n\
       --steps N                                     simulator activations per scenario\n\
       --out DIR                                     where shrunk failure specs are written\n\
       --corpus DIR                                  persistent coverage corpus\n\
                                                     (MANIFEST.json + sig-*.json specs)\n\
       --campaign                                    coverage-guided mode: mutate corpus\n\
                                                     entries instead of drawing blind\n\
       --shards N                                    concurrently evaluated scenarios\n\
                                                     (default: cores; results identical)\n\
       --threads N                                   parallel-checker-arm workers\n\
                                                     (default: cores/shards, min 2)\n\
       --verbose                                     one line per scenario\n\
     \n\
     ENVIRONMENT:\n\
       KLEX_SCALE=quick|full                         experiment scale (default: full)"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            println!("presets:");
            for name in PRESET_NAMES {
                println!("  {name}");
            }
            println!("experiments:");
            for name in EXPERIMENTS {
                println!("  {name}");
            }
            ExitCode::SUCCESS
        }
        Some("show") => match args.get(1) {
            Some(name) => match preset(name) {
                Some(spec) => {
                    println!("{}", spec.to_json());
                    ExitCode::SUCCESS
                }
                None => {
                    eprintln!("unknown preset `{name}` (try `klex list`)");
                    ExitCode::FAILURE
                }
            },
            None => {
                eprintln!("{}", usage());
                ExitCode::FAILURE
            }
        },
        Some("run") => run_command(&args[1..]),
        Some("experiment") => experiment_command(&args[1..]),
        Some("fuzz") => fuzz_command(&args[1..]),
        _ => {
            eprintln!("{}", usage());
            ExitCode::FAILURE
        }
    }
}

/// Resolves a scenario source: a named preset, or a path to a JSON spec file.
fn load_scenario(source: &str) -> Result<CompiledScenario, String> {
    let spec = if let Some(spec) = preset(source) {
        spec
    } else {
        let text = std::fs::read_to_string(source)
            .map_err(|e| format!("`{source}` is neither a preset (try `klex list`) nor a readable file: {e}"))?;
        ScenarioSpec::from_json(&text).map_err(|e| e.to_string())?
    };
    spec.compile().map_err(|e| e.to_string())
}

fn run_command(args: &[String]) -> ExitCode {
    let Some(source) = args.first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let mut backend = "sim".to_string();
    let mut format = "markdown".to_string();
    let mut shards = auto_shards();
    let mut threads: Option<usize> = None;
    let mut bench = false;
    let mut iter = args[1..].iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| {
            iter.next().cloned().ok_or_else(|| format!("{flag} needs a value"))
        };
        let result = match arg.as_str() {
            "--backend" => value("--backend").map(|v| backend = v),
            "--format" => value("--format").map(|v| format = v),
            "--shards" => value("--shards").and_then(|v| {
                v.parse::<usize>().map(|v| shards = v.max(1)).map_err(|e| e.to_string())
            }),
            "--threads" => value("--threads").and_then(|v| {
                v.parse::<usize>().map(|v| threads = Some(v)).map_err(|e| e.to_string())
            }),
            "--bench" => {
                bench = true;
                Ok(())
            }
            other => Err(format!("unknown option `{other}`")),
        };
        if let Err(message) = result {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    }
    if !["sim", "harness", "check", "all"].contains(&backend.as_str()) {
        eprintln!("unknown backend `{backend}` (sim|harness|check|all)");
        return ExitCode::FAILURE;
    }
    if !["markdown", "jsonl", "csv"].contains(&format.as_str()) {
        // Validated before any backend runs: a typo'd format must not cost a full run.
        eprintln!("unknown format `{format}` (markdown|jsonl|csv)");
        return ExitCode::FAILURE;
    }

    let scenario = match load_scenario(source) {
        Ok(scenario) => scenario,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let mut rows: Vec<ExperimentRow> = Vec::new();
    let mut notes: Vec<String> = Vec::new();
    if backend == "sim" || backend == "all" {
        let (outcome, monitors) = scenario.run_monitored();
        let mut row =
            ExperimentRow::new(format!("{} [sim]", scenario.spec().name));
        for (metric, value) in &outcome.metrics {
            row = row.with(metric, *value);
        }
        // One column per declared temporal monitor: 1 satisfied, 0 inconclusive,
        // -1 violated (details go to the notes below the table).
        for monitor in &monitors {
            row = row.with(&format!("mon:{}", monitor.name), monitor.verdict.score());
            if let analysis::Verdict::Violated(detail) = &monitor.verdict {
                notes.push(format!("monitor {} VIOLATED: {detail}", monitor.name));
            }
        }
        rows.push(row);
    }
    if backend == "harness" || backend == "all" {
        let report = scenario.run_harness(shards);
        let mut row = report.row();
        row.label = format!("{} [harness x{}]", scenario.spec().name, scenario.spec().trials);
        rows.push(row);
    }
    if backend == "check" || backend == "all" {
        let started = std::time::Instant::now();
        // `--threads N` overrides the spec's `check.threads` knob: 0 resolves to one
        // worker per core, 1 forces the sequential delta engine, N>1 pins the
        // work-stealing engine to N workers.  The report is identical either way.
        let checked = match threads {
            Some(n) if n != 1 => scenario.check_parallel(n),
            Some(_) => scenario.check_with(checker::ExploreEngine::Delta),
            None => scenario.check(),
        };
        match checked {
            Ok(report) => {
                let elapsed = started.elapsed().as_secs_f64();
                let mut row = ExperimentRow::new(format!("{} [check]", scenario.spec().name))
                    .with("configurations", report.configurations as f64)
                    .with("transitions", report.transitions as f64)
                    .with("max_depth", report.max_depth as f64)
                    .with("exhaustive", f64::from(u8::from(report.exhaustive())))
                    .with("violations", report.violations.len() as f64)
                    .with("deadlocks", report.deadlocks.len() as f64);
                if scenario.spec().check.properties.iter().any(|p| p == "liveness") {
                    row = row.with("liveness_violations", report.liveness.len() as f64);
                    for witness in &report.liveness {
                        notes.push(format!("fair starvation lasso: {}", witness.render()));
                    }
                }
                if bench {
                    // Checker throughput: reachable states per wall-clock second of this
                    // run, and the arena's peak packed-state footprint.
                    row = row
                        .with("states_per_sec", (report.configurations as f64 / elapsed).round())
                        .with("arena_bytes", report.arena_bytes as f64);
                }
                rows.push(row);
            }
            // Under --backend all, an uncheckable spec (stateful workload, ring baseline)
            // must not throw away the sim/harness results already computed — warn and render
            // what ran.  An explicit --backend check still fails hard.
            Err(message) if backend == "all" => eprintln!("skipping checker backend: {message}"),
            Err(message) => {
                eprintln!("{message}");
                return ExitCode::FAILURE;
            }
        }
    }

    match format.as_str() {
        "markdown" => {
            print!("{}", render_markdown_table(&scenario.spec().name, &rows));
            for note in &notes {
                println!("\n{note}");
            }
        }
        "jsonl" => println!("{}", render_jsonl(&rows)),
        "csv" => print!("{}", render_csv(&rows)),
        _ => unreachable!("the format was validated before the backends ran"),
    }
    ExitCode::SUCCESS
}

/// `klex fuzz`: run a cross-engine differential campaign (see [`bench::fuzz`]).
fn fuzz_command(args: &[String]) -> ExitCode {
    // `--smoke` selects the base option set and the remaining flags override it, in either
    // order — `--seed 99 --smoke` and `--smoke --seed 99` mean the same campaign.
    let mut opts = if args.iter().any(|a| a == "--smoke") {
        bench::fuzz::FuzzOptions::smoke()
    } else {
        bench::fuzz::FuzzOptions::new(1)
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| {
            iter.next().cloned().ok_or_else(|| format!("{flag} needs a value"))
        };
        let result = match arg.as_str() {
            "--smoke" => Ok(()),
            "--seed" => value("--seed")
                .and_then(|v| v.parse::<u64>().map_err(|e| e.to_string()))
                .map(|v| opts.seed = v),
            "--scenarios" => value("--scenarios")
                .and_then(|v| v.parse::<u64>().map_err(|e| e.to_string()))
                .map(|v| opts.scenarios = v.max(1)),
            "--max-configs" => value("--max-configs")
                .and_then(|v| v.parse::<usize>().map_err(|e| e.to_string()))
                .map(|v| opts.max_configurations = v.max(16)),
            "--steps" => value("--steps")
                .and_then(|v| v.parse::<u64>().map_err(|e| e.to_string()))
                .map(|v| opts.sim_steps = v.max(1)),
            "--out" => value("--out").map(|v| opts.out_dir = v.into()),
            "--corpus" => value("--corpus").map(|v| opts.corpus_dir = Some(v.into())),
            "--campaign" => {
                opts.guided = true;
                Ok(())
            }
            "--shards" => value("--shards")
                .and_then(|v| v.parse::<usize>().map_err(|e| e.to_string()))
                .map(|v| opts.shards = v),
            "--threads" => value("--threads")
                .and_then(|v| v.parse::<usize>().map_err(|e| e.to_string()))
                .map(|v| opts.threads = v),
            "--verbose" => {
                opts.verbose = true;
                Ok(())
            }
            other => Err(format!("unknown option `{other}`")),
        };
        if let Err(message) = result {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    }

    println!(
        "fuzz campaign: seed {:#x}, {} scenarios{}, <= {} checker states and {} simulator \
         activations each",
        opts.seed,
        opts.scenarios,
        if opts.guided { " (coverage-guided)" } else { "" },
        opts.max_configurations,
        opts.sim_steps
    );
    let started = std::time::Instant::now();
    let summary = match bench::fuzz::run_campaign(&opts) {
        Ok(summary) => summary,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "ran {} scenarios in {:.1}s: {} explored exhaustively, {} with a fair-cycle \
         liveness violation, {} with a checker safety violation, {} sim-vs-checker oracle \
         applications",
        summary.scenarios,
        started.elapsed().as_secs_f64(),
        summary.exhaustive,
        summary.liveness_violations,
        summary.safety_violations,
        summary.differential_oracle_runs,
    );
    println!(
        "coverage: {} distinct signatures, {} novel (corpus {} -> {} entries)",
        summary.distinct_signatures,
        summary.novel_signatures,
        summary.initial_corpus_size,
        summary.corpus_size,
    );
    // A guided campaign starting from an empty corpus always finds novelty (the first
    // scenario's signature is new by definition) — zero means the coverage plumbing broke.
    if opts.guided && summary.initial_corpus_size == 0 && summary.novel_signatures == 0 {
        eprintln!("coverage-guided campaign found no novel signature from an empty corpus");
        return ExitCode::FAILURE;
    }
    if summary.clean() {
        println!("zero cross-engine disagreements");
        ExitCode::SUCCESS
    } else {
        for disagreement in &summary.disagreements {
            eprintln!(
                "DISAGREEMENT at scenario {}: {}",
                disagreement.scenario_index, disagreement.detail
            );
            if let Some(path) = &disagreement.written_to {
                eprintln!("  shrunk reproduction written to {}", path.display());
            }
            eprintln!("  spec: {}", disagreement.spec.to_json());
        }
        ExitCode::FAILURE
    }
}

fn experiment_command(args: &[String]) -> ExitCode {
    let Some(name) = args.first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let scale = match std::env::var("KLEX_SCALE").as_deref() {
        Ok("quick") => Scale::quick(),
        _ => Scale::full(),
    };
    let json = args.iter().any(|a| a == "--json");
    let run = |name: &str, scale: Scale| -> Option<ExperimentReport> {
        Some(match name {
            "e1" => experiments::figures::e1_dfs_circulation(scale),
            "e2" => experiments::figures::e2_deadlock(scale),
            "e3" => experiments::figures::e3_livelock(scale),
            "e4" => experiments::figures::e4_virtual_ring(scale),
            "e5" => experiments::theorem1::e5_convergence(scale),
            "e6" => experiments::theorem2::e6_waiting_time(scale),
            "e7" => experiments::liveness::e7_kl_liveness(scale),
            "e8" => experiments::comparison::e8_tree_vs_ring(scale),
            "e9" => experiments::comparison::e9_throughput(scale),
            "e10" => experiments::ablation::e10_ablation(scale),
            "e11" => experiments::general::e11_general_networks(scale),
            "e12" => experiments::exhaustive::e12_exhaustive(scale),
            "e13" => experiments::timeout::e13_timeout_sweep(scale),
            "e14" => experiments::unbounded::e14_unbounded_counter(scale),
            "e15" => experiments::crash::e15_crash_recovery(scale),
            _ => return None,
        })
    };
    let names: Vec<&str> = if name == "all" {
        EXPERIMENTS.to_vec()
    } else {
        vec![name.as_str()]
    };
    for name in names {
        match run(name, scale.clone()) {
            Some(report) => {
                println!("{}", report.to_markdown());
                if json {
                    println!("{}", report.to_jsonl());
                }
            }
            None => {
                eprintln!("unknown experiment `{name}` (e1..e15 or `all`)");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
