//! `klex` — the scenario CLI: run any declarative scenario (a JSON [`ScenarioSpec`] file or
//! a named preset) through any backend, and render the result as markdown, JSON lines or
//! CSV.
//!
//! ```text
//! klex list                               # named presets and experiments
//! klex run figure2                        # preset through the simulator
//! klex run figure2 --backend all          # simulator + sharded harness + checker
//! klex run spec.json --format jsonl       # JSON spec file, machine-readable output
//! klex show figure2                       # print a preset's JSON (a template for specs)
//! klex experiment e5                      # a full experiment table (KLEX_SCALE=quick|full)
//! klex serve --addr 127.0.0.1:7199        # resident scenario-as-a-service daemon
//! klex submit figure2 --backend check     # enqueue a job on a running daemon
//! klex watch 1                            # follow a job's JSONL progress stream
//! ```
//!
//! Backends (`--backend`, default `sim`):
//!
//! * `sim` — one simulated execution (trial 0: the spec's seeds verbatim);
//! * `harness` — the spec's trial plan, sharded across cores (`--shards N` to override);
//! * `check` — bounded-exhaustive exploration of the spec's instance;
//! * `all` — all three, one rendered row each.
//!
//! `run` and serve-daemon jobs share one row-building path ([`bench::runner`]), so a job's
//! JSONL result is byte-identical to `klex run <spec> --format jsonl` of the same spec.

use analysis::harness::{render_csv, render_jsonl, render_markdown_table};
use analysis::scenario::{
    preset, schedule_from_value, CompiledScenario, InitiatorSpec, ScenarioSpec, SnapshotSpec,
    PRESET_NAMES,
};
use bench::runner::{run_rows, Backend, RunRequest};
use bench::serve::{self, ServeOptions};
use bench::{experiments, history, ExperimentReport, Scale};
use std::process::ExitCode;

const EXPERIMENTS: [&str; 15] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14",
    "e15",
];

fn usage() -> &'static str {
    "klex — one declarative scenario spec, three backends\n\
     \n\
     USAGE:\n\
       klex list                                     list presets and experiments\n\
       klex show <preset>                            print a preset's JSON spec\n\
       klex run <spec.json | preset> [options]       run a scenario\n\
       klex experiment <e1..e15 | all>               run a full experiment table\n\
       klex fuzz [options]                           cross-engine differential campaign\n\
       klex serve [options]                          scenario-as-a-service daemon\n\
       klex submit <spec.json | preset> [options]    enqueue a run job on a daemon\n\
       klex submit --fuzz [options]                  enqueue a fuzz campaign on a daemon\n\
       klex status [<id>]                            one job (or all jobs) on a daemon\n\
       klex watch <id>                               follow a job's JSONL progress stream\n\
       klex cancel <id>                              cancel a queued or running job\n\
     \n\
     OPTIONS (run):\n\
       --backend sim|harness|check|all               backend selection (default: sim)\n\
       --format markdown|jsonl|csv                   output rendering (default: markdown)\n\
       --shards N                                    harness worker threads (default: cores)\n\
       --threads N                                   checker worker threads (default: the\n\
                                                     spec's `check.threads`; 0 = one per\n\
                                                     core, 1 = sequential delta engine)\n\
       --bench                                       add checker throughput columns\n\
                                                     (states_per_sec, arena_bytes)\n\
       --fault-schedule FILE.json                    override the spec's fault campaign\n\
                                                     ({seed, epochs, max_steps[, window]})\n\
       --snapshots                                   periodic consistent snapshots with\n\
                                                     cut-level safety verdicts (default\n\
                                                     interval: 128n activations, min 1024)\n\
       --snapshot-interval N                         like --snapshots with an explicit\n\
                                                     interval of N activations\n\
     \n\
     OPTIONS (fuzz):\n\
       --smoke                                       the fixed-seed CI campaign\n\
                                                     (200 scenarios, tight budgets)\n\
       --seed N                                      campaign seed (default: 1)\n\
       --scenarios N                                 scenarios to generate (default: 200)\n\
       --max-configs N                               checker states per scenario\n\
       --steps N                                     simulator activations per scenario\n\
       --out DIR                                     where shrunk failure specs are written\n\
       --corpus DIR                                  persistent coverage corpus\n\
                                                     (MANIFEST.json + sig-*.json specs)\n\
       --campaign                                    coverage-guided mode: mutate corpus\n\
                                                     entries instead of drawing blind\n\
       --shards N                                    concurrently evaluated scenarios\n\
                                                     (default: cores; results identical)\n\
       --threads N                                   parallel-checker-arm workers\n\
                                                     (default: cores/shards, min 2)\n\
       --verbose                                     one line per scenario\n\
     \n\
     OPTIONS (serve):\n\
       --addr HOST:PORT                              bind address (default: 127.0.0.1:7199;\n\
                                                     port 0 picks an ephemeral port)\n\
       --workers N                                   job workers (default: one per core)\n\
       --queue N                                     queued-job capacity (default: 64)\n\
       --seed N                                      per-job seed stream (default: 0)\n\
     \n\
     OPTIONS (submit/status/watch/cancel):\n\
       --addr HOST:PORT                              daemon address (default: 127.0.0.1:7199)\n\
       submit also accepts the run options above, or --fuzz with --seed/--scenarios\n\
     \n\
     ENVIRONMENT:\n\
       KLEX_SCALE=quick|full                         experiment scale (default: full)"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            println!("presets:");
            for name in PRESET_NAMES {
                println!("  {name}");
            }
            println!("experiments:");
            for name in EXPERIMENTS {
                println!("  {name}");
            }
            ExitCode::SUCCESS
        }
        Some("show") => match args.get(1) {
            Some(name) => match preset(name) {
                Some(spec) => {
                    println!("{}", spec.to_json());
                    ExitCode::SUCCESS
                }
                None => {
                    eprintln!("unknown preset `{name}` (try `klex list`)");
                    ExitCode::FAILURE
                }
            },
            None => {
                eprintln!("{}", usage());
                ExitCode::FAILURE
            }
        },
        Some("run") => run_command(&args[1..]),
        Some("experiment") => experiment_command(&args[1..]),
        Some("fuzz") => fuzz_command(&args[1..]),
        Some("serve") => serve_command(&args[1..]),
        Some("submit") => submit_command(&args[1..]),
        Some("status") => status_command(&args[1..]),
        Some("watch") => watch_command(&args[1..]),
        Some("cancel") => cancel_command(&args[1..]),
        _ => {
            eprintln!("{}", usage());
            ExitCode::FAILURE
        }
    }
}

/// Default snapshot cadence for `--snapshots`: one cut every 128 activations per node,
/// floored so tiny topologies still leave room for each cut to complete before the next.
///
/// The interval counts from each cut's *completion*, and a cut's assembly takes roughly
/// 40–50 activations per node under fair random scheduling (the last markers wait for the
/// daemon to drain the queues ahead of them), during which every delivery pays the
/// in-transit recording cost.  128n keeps that recording duty cycle near 25%, which holds
/// the whole-run overhead comfortably under the 15% budget the scale benchmark tracks.
fn default_snapshot_interval(nodes: usize) -> u64 {
    (128 * nodes as u64).max(1024)
}

/// Resolves a scenario source: a named preset, or a path to a JSON spec file.  A
/// `--fault-schedule` file overrides the spec's campaign before validation, and
/// `--snapshots` / `--snapshot-interval` (`Some(None)` / `Some(Some(n))`) attach a
/// [`SnapshotSpec`] the same way.
fn load_scenario(
    source: &str,
    schedule_path: Option<&str>,
    snapshots: Option<Option<u64>>,
) -> Result<CompiledScenario, String> {
    let mut spec = if let Some(spec) = preset(source) {
        spec
    } else {
        let text = std::fs::read_to_string(source)
            .map_err(|e| format!("`{source}` is neither a preset (try `klex list`) nor a readable file: {e}"))?;
        ScenarioSpec::from_json(&text).map_err(|e| e.to_string())?
    };
    if let Some(path) = schedule_path {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("unreadable fault schedule `{path}`: {e}"))?;
        let value = serde_json::from_str(&text)
            .map_err(|e| format!("unparsable fault schedule `{path}`: {e}"))?;
        let schedule = schedule_from_value(&value).map_err(|e| e.to_string())?;
        spec.fault_schedule = Some(schedule);
    }
    if let Some(interval) = snapshots {
        let interval = interval.unwrap_or_else(|| default_snapshot_interval(spec.topology.len()));
        spec.snapshots = Some(SnapshotSpec { interval, initiator: InitiatorSpec::Root });
    }
    spec.compile().map_err(|e| e.to_string())
}

fn run_command(args: &[String]) -> ExitCode {
    let Some(source) = args.first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let mut request = RunRequest::default();
    let mut format = "markdown".to_string();
    let mut schedule_path: Option<String> = None;
    let mut snapshots: Option<Option<u64>> = None;
    let mut iter = args[1..].iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| {
            iter.next().cloned().ok_or_else(|| format!("{flag} needs a value"))
        };
        let result = match arg.as_str() {
            "--backend" => {
                value("--backend").and_then(|v| Backend::parse(&v)).map(|v| request.backend = v)
            }
            "--format" => value("--format").map(|v| format = v),
            "--shards" => value("--shards").and_then(|v| {
                v.parse::<usize>().map(|v| request.shards = v.max(1)).map_err(|e| e.to_string())
            }),
            "--threads" => value("--threads").and_then(|v| {
                v.parse::<usize>().map(|v| request.threads = Some(v)).map_err(|e| e.to_string())
            }),
            "--bench" => {
                request.bench = true;
                Ok(())
            }
            "--fault-schedule" => {
                value("--fault-schedule").map(|v| schedule_path = Some(v))
            }
            "--snapshots" => {
                // An explicit `--snapshot-interval` wins regardless of flag order.
                if snapshots.is_none() {
                    snapshots = Some(None);
                }
                Ok(())
            }
            "--snapshot-interval" => value("--snapshot-interval").and_then(|v| {
                v.parse::<u64>()
                    .map_err(|e| e.to_string())
                    .and_then(|v| {
                        if v == 0 {
                            Err("--snapshot-interval must be positive".to_string())
                        } else {
                            snapshots = Some(Some(v));
                            Ok(())
                        }
                    })
            }),
            other => Err(format!("unknown option `{other}`")),
        };
        if let Err(message) = result {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    }
    if !["markdown", "jsonl", "csv"].contains(&format.as_str()) {
        // Validated before any backend runs: a typo'd format must not cost a full run.
        eprintln!("unknown format `{format}` (markdown|jsonl|csv)");
        return ExitCode::FAILURE;
    }

    let scenario = match load_scenario(source, schedule_path.as_deref(), snapshots) {
        Ok(scenario) => scenario,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    // The serve daemon executes submitted jobs through the same function — the rendered
    // rows are byte-identical either way.
    let product = match run_rows(&scenario, &request, None) {
        Ok(product) => product,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    for warning in &product.warnings {
        eprintln!("{warning}");
    }
    match format.as_str() {
        "markdown" => {
            print!("{}", render_markdown_table(&scenario.spec().name, &product.rows));
            for note in &product.notes {
                println!("\n{note}");
            }
        }
        "jsonl" => println!("{}", render_jsonl(&product.rows)),
        "csv" => print!("{}", render_csv(&product.rows)),
        _ => unreachable!("the format was validated before the backends ran"),
    }
    ExitCode::SUCCESS
}

/// `klex fuzz`: run a cross-engine differential campaign (see [`bench::fuzz`]).
fn fuzz_command(args: &[String]) -> ExitCode {
    // `--smoke` selects the base option set and the remaining flags override it, in either
    // order — `--seed 99 --smoke` and `--smoke --seed 99` mean the same campaign.
    let mut opts = if args.iter().any(|a| a == "--smoke") {
        bench::fuzz::FuzzOptions::smoke()
    } else {
        bench::fuzz::FuzzOptions::new(1)
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| {
            iter.next().cloned().ok_or_else(|| format!("{flag} needs a value"))
        };
        let result = match arg.as_str() {
            "--smoke" => Ok(()),
            "--seed" => value("--seed")
                .and_then(|v| v.parse::<u64>().map_err(|e| e.to_string()))
                .map(|v| opts.seed = v),
            "--scenarios" => value("--scenarios")
                .and_then(|v| v.parse::<u64>().map_err(|e| e.to_string()))
                .map(|v| opts.scenarios = v.max(1)),
            "--max-configs" => value("--max-configs")
                .and_then(|v| v.parse::<usize>().map_err(|e| e.to_string()))
                .map(|v| opts.max_configurations = v.max(16)),
            "--steps" => value("--steps")
                .and_then(|v| v.parse::<u64>().map_err(|e| e.to_string()))
                .map(|v| opts.sim_steps = v.max(1)),
            "--out" => value("--out").map(|v| opts.out_dir = v.into()),
            "--corpus" => value("--corpus").map(|v| opts.corpus_dir = Some(v.into())),
            "--campaign" => {
                opts.guided = true;
                Ok(())
            }
            "--shards" => value("--shards")
                .and_then(|v| v.parse::<usize>().map_err(|e| e.to_string()))
                .map(|v| opts.shards = v),
            "--threads" => value("--threads")
                .and_then(|v| v.parse::<usize>().map_err(|e| e.to_string()))
                .map(|v| opts.threads = v),
            "--verbose" => {
                opts.verbose = true;
                Ok(())
            }
            other => Err(format!("unknown option `{other}`")),
        };
        if let Err(message) = result {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    }

    println!(
        "fuzz campaign: seed {:#x}, {} scenarios{}, <= {} checker states and {} simulator \
         activations each",
        opts.seed,
        opts.scenarios,
        if opts.guided { " (coverage-guided)" } else { "" },
        opts.max_configurations,
        opts.sim_steps
    );
    let started = std::time::Instant::now();
    let summary = match bench::fuzz::run_campaign(&opts) {
        Ok(summary) => summary,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "ran {} scenarios in {:.1}s: {} explored exhaustively, {} with a fair-cycle \
         liveness violation, {} with a checker safety violation, {} sim-vs-checker oracle \
         applications",
        summary.scenarios,
        started.elapsed().as_secs_f64(),
        summary.exhaustive,
        summary.liveness_violations,
        summary.safety_violations,
        summary.differential_oracle_runs,
    );
    println!(
        "coverage: {} distinct signatures, {} novel (corpus {} -> {} entries)",
        summary.distinct_signatures,
        summary.novel_signatures,
        summary.initial_corpus_size,
        summary.corpus_size,
    );
    // A guided campaign starting from an empty corpus always finds novelty (the first
    // scenario's signature is new by definition) — zero means the coverage plumbing broke.
    if opts.guided && summary.initial_corpus_size == 0 && summary.novel_signatures == 0 {
        eprintln!("coverage-guided campaign found no novel signature from an empty corpus");
        return ExitCode::FAILURE;
    }
    if summary.clean() {
        println!("zero cross-engine disagreements");
        ExitCode::SUCCESS
    } else {
        for disagreement in &summary.disagreements {
            eprintln!(
                "DISAGREEMENT at scenario {}: {}",
                disagreement.scenario_index, disagreement.detail
            );
            if let Some(path) = &disagreement.written_to {
                eprintln!("  shrunk reproduction written to {}", path.display());
            }
            eprintln!("  spec: {}", disagreement.spec.to_json());
        }
        ExitCode::FAILURE
    }
}

fn experiment_command(args: &[String]) -> ExitCode {
    let Some(name) = args.first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let scale = match std::env::var("KLEX_SCALE").as_deref() {
        Ok("quick") => Scale::quick(),
        _ => Scale::full(),
    };
    let json = args.iter().any(|a| a == "--json");
    let run = |name: &str, scale: Scale| -> Option<ExperimentReport> {
        Some(match name {
            "e1" => experiments::figures::e1_dfs_circulation(scale),
            "e2" => experiments::figures::e2_deadlock(scale),
            "e3" => experiments::figures::e3_livelock(scale),
            "e4" => experiments::figures::e4_virtual_ring(scale),
            "e5" => experiments::theorem1::e5_convergence(scale),
            "e6" => experiments::theorem2::e6_waiting_time(scale),
            "e7" => experiments::liveness::e7_kl_liveness(scale),
            "e8" => experiments::comparison::e8_tree_vs_ring(scale),
            "e9" => experiments::comparison::e9_throughput(scale),
            "e10" => experiments::ablation::e10_ablation(scale),
            "e11" => experiments::general::e11_general_networks(scale),
            "e12" => experiments::exhaustive::e12_exhaustive(scale),
            "e13" => experiments::timeout::e13_timeout_sweep(scale),
            "e14" => experiments::unbounded::e14_unbounded_counter(scale),
            "e15" => experiments::crash::e15_crash_recovery(scale),
            _ => return None,
        })
    };
    let names: Vec<&str> = if name == "all" {
        EXPERIMENTS.to_vec()
    } else {
        vec![name.as_str()]
    };
    for name in names {
        match run(name, scale.clone()) {
            Some(report) => {
                println!("{}", report.to_markdown());
                if json {
                    println!("{}", report.to_jsonl());
                }
            }
            None => {
                eprintln!("unknown experiment `{name}` (e1..e15 or `all`)");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

const DEFAULT_ADDR: &str = "127.0.0.1:7199";

/// `klex serve`: run the resident scenario-as-a-service daemon until `POST /shutdown`.
fn serve_command(args: &[String]) -> ExitCode {
    let mut opts = ServeOptions::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| {
            iter.next().cloned().ok_or_else(|| format!("{flag} needs a value"))
        };
        let result = match arg.as_str() {
            "--addr" => value("--addr").map(|v| opts.addr = v),
            "--workers" => value("--workers")
                .and_then(|v| v.parse::<usize>().map_err(|e| e.to_string()))
                .map(|v| opts.workers = v),
            "--queue" => value("--queue")
                .and_then(|v| v.parse::<usize>().map_err(|e| e.to_string()))
                .map(|v| opts.queue_cap = v.max(1)),
            "--seed" => value("--seed")
                .and_then(|v| v.parse::<u64>().map_err(|e| e.to_string()))
                .map(|v| opts.seed = v),
            other => Err(format!("unknown option `{other}`")),
        };
        if let Err(message) = result {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    }
    let server = match serve::Server::start(&opts) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cannot bind {}: {e}", opts.addr);
            return ExitCode::FAILURE;
        }
    };
    // Printed on stdout so scripts can scrape the resolved port when `--addr` used port 0.
    println!("klex serve listening on {}", server.addr());
    server.wait();
    println!("klex serve stopped");
    ExitCode::SUCCESS
}

/// Parses `--addr HOST:PORT` out of `args`, returning the address and the remaining args.
fn split_addr(args: &[String]) -> Result<(String, Vec<String>), String> {
    let mut addr = DEFAULT_ADDR.to_string();
    let mut rest = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--addr" {
            addr = iter.next().cloned().ok_or("--addr needs a value")?;
        } else {
            rest.push(arg.clone());
        }
    }
    Ok((addr, rest))
}

/// `klex submit`: enqueue a run job (or, with `--fuzz`, a fuzz campaign) on a daemon.
fn submit_command(args: &[String]) -> ExitCode {
    let (addr, rest) = match split_addr(args) {
        Ok(parts) => parts,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let mut source: Option<String> = None;
    let mut fuzz = false;
    // Run-job fields sit at the body's top level; fuzz knobs nest under `"fuzz": {...}`.
    let mut run_fields: Vec<String> = Vec::new();
    let mut fuzz_fields: Vec<String> = Vec::new();
    let mut iter = rest.iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| {
            iter.next().cloned().ok_or_else(|| format!("{flag} needs a value"))
        };
        let result = match arg.as_str() {
            "--fuzz" => {
                fuzz = true;
                Ok(())
            }
            "--backend" => {
                value("--backend").map(|v| run_fields.push(format!("\"backend\": {v:?}")))
            }
            "--shards" => value("--shards").and_then(|v| {
                v.parse::<usize>()
                    .map(|v| run_fields.push(format!("\"shards\": {v}")))
                    .map_err(|e| e.to_string())
            }),
            "--threads" => value("--threads").and_then(|v| {
                v.parse::<usize>()
                    .map(|v| run_fields.push(format!("\"threads\": {v}")))
                    .map_err(|e| e.to_string())
            }),
            "--bench" => {
                run_fields.push("\"bench\": true".to_string());
                Ok(())
            }
            "--seed" => value("--seed").and_then(|v| {
                v.parse::<u64>()
                    .map(|v| fuzz_fields.push(format!("\"seed\": {v}")))
                    .map_err(|e| e.to_string())
            }),
            "--scenarios" => value("--scenarios").and_then(|v| {
                v.parse::<u64>()
                    .map(|v| fuzz_fields.push(format!("\"scenarios\": {v}")))
                    .map_err(|e| e.to_string())
            }),
            other if !other.starts_with('-') && source.is_none() => {
                source = Some(other.to_string());
                Ok(())
            }
            other => Err(format!("unknown option `{other}`")),
        };
        if let Err(message) = result {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    }
    // Build the POST /jobs body.  Presets travel by name; spec files travel inline as the
    // parsed JSON object, so the daemon runs exactly what the file says.
    let body = if fuzz {
        if source.is_some() || !run_fields.is_empty() {
            eprintln!("--fuzz takes only --seed/--scenarios (and --addr)");
            return ExitCode::FAILURE;
        }
        format!("{{\"fuzz\": {{{}}}}}", fuzz_fields.join(", "))
    } else {
        if !fuzz_fields.is_empty() {
            eprintln!("--seed/--scenarios need --fuzz");
            return ExitCode::FAILURE;
        }
        let Some(source) = source else {
            eprintln!("{}", usage());
            return ExitCode::FAILURE;
        };
        let first = if preset(&source).is_some() {
            format!("\"preset\": {source:?}")
        } else {
            match std::fs::read_to_string(&source) {
                Ok(text) => format!("\"spec\": {}", text.trim_end()),
                Err(e) => {
                    eprintln!(
                        "`{source}` is neither a preset (try `klex list`) nor a readable file: {e}"
                    );
                    return ExitCode::FAILURE;
                }
            }
        };
        let mut body = format!("{{{first}");
        for field in &run_fields {
            body.push_str(", ");
            body.push_str(field);
        }
        body.push('}');
        body
    };
    match serve::client::submit(&addr, &body) {
        Ok(id) => {
            println!("{id}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}

/// `klex status`: print one job (by id) or the whole job table of a daemon.
fn status_command(args: &[String]) -> ExitCode {
    let (addr, rest) = match split_addr(args) {
        Ok(parts) => parts,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let fetched = match rest.first() {
        Some(id_text) => match id_text.parse::<u64>() {
            Ok(id) => serve::client::status(&addr, id),
            Err(_) => {
                eprintln!("`{id_text}` is not a job id");
                return ExitCode::FAILURE;
            }
        },
        None => serve::client::jobs(&addr),
    };
    match fetched {
        Ok(doc) => {
            println!("{}", history::render(&doc));
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}

/// `klex watch`: follow a job's JSONL progress stream to completion.  Exits zero only if
/// the job finished in state `done`.
fn watch_command(args: &[String]) -> ExitCode {
    let (addr, rest) = match split_addr(args) {
        Ok(parts) => parts,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let Some(Ok(id)) = rest.first().map(|t| t.parse::<u64>()) else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let mut print_line = |line: &str| println!("{line}");
    match serve::client::watch(&addr, id, &mut print_line) {
        Ok(doc) => {
            let state = doc.get("state").and_then(|v| v.as_str()).unwrap_or("unknown");
            if state == "done" {
                ExitCode::SUCCESS
            } else {
                if let Some(error) = doc.get("error").and_then(|v| v.as_str()) {
                    eprintln!("job {id} {state}: {error}");
                } else {
                    eprintln!("job {id} finished in state {state}");
                }
                ExitCode::FAILURE
            }
        }
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}

/// `klex cancel`: cancel a queued or running job on a daemon.
fn cancel_command(args: &[String]) -> ExitCode {
    let (addr, rest) = match split_addr(args) {
        Ok(parts) => parts,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let Some(Ok(id)) = rest.first().map(|t| t.parse::<u64>()) else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    match serve::client::cancel(&addr, id) {
        Ok(state) => {
            println!("job {id}: {state}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
