//! E6 — Theorem 2: waiting time vs the l(2n-3)^2 bound.
fn main() {
    bench::run_binary(bench::experiments::theorem2::e6_waiting_time);
}
