//! E7 — (k,l)-liveness / efficiency property.
fn main() {
    bench::run_binary(bench::experiments::liveness::e7_kl_liveness);
}
