//! E10 — ablation of the token ladder and the paper-literal guards.
fn main() {
    bench::run_binary(bench::experiments::ablation::e10_ablation);
}
