//! E15 — crash-restart failures: recovery of the self-stabilizing protocol.
fn main() {
    bench::run_binary(bench::experiments::crash::e15_crash_recovery);
}
