//! `perf_smoke` — the CI regression gate for the exploration hot path.
//!
//! Runs the delta and interned sequential engines head-to-head on a tiny instance (the
//! Figure-3 pusher scenario: ~4k reachable configurations, well under a second per run) and
//! **fails** (exit code 1) when the delta engine's states/second drops below the gate
//! threshold.  This is a regression *gate*, not a benchmark: the committed speedups on a
//! real instance live in the `BENCH_explorer.json` history (delta ≈ 2.5× interned on
//! `pusher_star5`).  The threshold is trend-tracked: half the *median historical*
//! `speedup_delta_vs_interned` from that history, never below 1.0× — so a slow erosion
//! across bench runs tightens the gate, while a missing or legacy history falls back to the
//! old noise-proof 1.0× floor.
//!
//! The gate also re-asserts report parity on every run — an engine that got fast by being
//! wrong must fail the gate, not pass it.  The work-stealing parallel engine is held to the
//! same standard: its report must match the delta engine's field-for-field on every run
//! (this runs unconditionally, even on one core, where the discovery/replay machinery still
//! executes), and on runners with at least two cores its throughput must not fall below the
//! sequential delta engine's.

use analysis::harness::host_cores;
use bench::history::History;
use checker::{drivers, ExploreEngine, Explorer, Limits};
use klex_core::KlConfig;
use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

fn instance() -> treenet::Network<klex_core::pusher::PusherNode, topology::OrientedTree> {
    let tree = topology::builders::figure3_tree();
    let cfg = KlConfig::new(2, 3, 3);
    klex_core::pusher::network(tree, cfg, drivers::from_needs_holding(&[1usize, 2, 1]))
}

fn limits() -> Limits {
    Limits { max_configurations: 2_000_000, max_depth: usize::MAX }
}

/// Best-of-`rounds` states/second for one engine, plus the last report for parity checks.
fn measure(engine: ExploreEngine, rounds: usize) -> (f64, checker::ExplorationReport) {
    let mut best = 0.0f64;
    let mut last = None;
    for _ in 0..rounds {
        let mut net = instance();
        let start = Instant::now();
        let report = Explorer::new(&mut net).with_limits(limits()).run_with(engine);
        let rate = report.configurations as f64 / start.elapsed().as_secs_f64();
        best = best.max(rate);
        last = Some(report);
    }
    (best, last.expect("at least one round"))
}

/// Best-of-`rounds` states/second for the work-stealing parallel engine at `threads`
/// workers, plus the last report for parity checks.
fn measure_parallel(threads: usize, rounds: usize) -> (f64, checker::ExplorationReport) {
    let mut best = 0.0f64;
    let mut last = None;
    for _ in 0..rounds {
        let mut net = instance();
        let start = Instant::now();
        let report =
            Explorer::new(&mut net).with_limits(limits()).run_parallel(instance, threads);
        let rate = report.configurations as f64 / start.elapsed().as_secs_f64();
        best = best.max(rate);
        last = Some(report);
    }
    (best, last.expect("at least one round"))
}

/// The delta-vs-interned gate threshold: half the median historical
/// `speedup_delta_vs_interned` from the `BENCH_explorer.json` history, floored at 1.0×.
/// A missing, unreadable or legacy history falls back to the plain 1.0× floor — the gate
/// never *loosens* below the old behavior, it only tightens as history accumulates.
fn delta_threshold() -> f64 {
    let path = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_explorer.json"));
    let median = History::load(path, "exhaustive_checker")
        .ok()
        .and_then(|history| history.recent_median("speedup_delta_vs_interned"));
    match median {
        Some(median) => (median / 2.0).max(1.0),
        None => 1.0,
    }
}

fn reports_match(a: &checker::ExplorationReport, b: &checker::ExplorationReport) -> bool {
    a.configurations == b.configurations
        && a.transitions == b.transitions
        && a.max_depth == b.max_depth
        && a.frontier_sizes == b.frontier_sizes
}

fn main() -> ExitCode {
    let rounds = 5;
    let (interned_rate, interned) = measure(ExploreEngine::Interned, rounds);
    let (delta_rate, delta) = measure(ExploreEngine::Delta, rounds);
    let (parallel_rate, parallel) = measure_parallel(2, rounds);

    if !reports_match(&delta, &interned) {
        eprintln!(
            "perf_smoke: PARITY FAILURE — delta {}cfg/{}tr vs interned {}cfg/{}tr",
            delta.configurations, delta.transitions, interned.configurations, interned.transitions
        );
        return ExitCode::FAILURE;
    }
    // The parallel parity half of the gate runs unconditionally: even on a single core the
    // sharded-arena discovery and canonical replay both execute in full, so a determinism
    // bug cannot hide behind the runner's core count.
    if !reports_match(&delta, &parallel) {
        eprintln!(
            "perf_smoke: PARITY FAILURE — parallel(2) {}cfg/{}tr vs delta {}cfg/{}tr",
            parallel.configurations, parallel.transitions, delta.configurations, delta.transitions
        );
        return ExitCode::FAILURE;
    }

    let cores = host_cores();
    let ratio = delta_rate / interned_rate;
    let parallel_ratio = parallel_rate / delta_rate;
    let threshold = delta_threshold();
    println!(
        "perf_smoke: figure3-pusher ({} configurations) — delta {:.0} states/s, interned {:.0} states/s, ratio {:.2}x (threshold {threshold:.2}x)",
        delta.configurations, delta_rate, interned_rate, ratio
    );
    println!(
        "perf_smoke: parallel(2 threads, {cores} core(s)) {:.0} states/s, {:.2}x delta",
        parallel_rate, parallel_ratio
    );
    if ratio < threshold {
        eprintln!(
            "perf_smoke: REGRESSION — delta engine at {ratio:.2}x interned (threshold \
             {threshold:.2}x = max(1.0, half the median historical speedup from \
             BENCH_explorer.json)); the delta successor path has lost its advantage"
        );
        return ExitCode::FAILURE;
    }
    // The throughput half only gates runners that can actually run two workers at once; on
    // a single core the two threads time-slice one core and the comparison is meaningless.
    if cores >= 2 && parallel_ratio < 1.0 {
        eprintln!(
            "perf_smoke: REGRESSION — parallel engine at {parallel_ratio:.2}x delta on a \
             {cores}-core runner (threshold 1.0x); work-stealing overhead has swallowed the \
             parallel advantage"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
