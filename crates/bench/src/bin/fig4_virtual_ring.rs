//! E4 — Figure 4: the virtual ring of an oriented tree.
fn main() {
    bench::run_binary(bench::experiments::figures::e4_virtual_ring);
}
