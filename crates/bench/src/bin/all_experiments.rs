//! Runs every experiment (E1-E15) and prints the full markdown report used to refresh
//! EXPERIMENTS.md.  Honours KLEX_SCALE=quick|full.
use bench::experiments as ex;
use bench::Scale;

fn main() {
    let scale = match std::env::var("KLEX_SCALE").as_deref() {
        Ok("quick") => Scale::quick(),
        _ => Scale::full(),
    };
    let reports = vec![
        ex::figures::e1_dfs_circulation(scale.clone()),
        ex::figures::e2_deadlock(scale.clone()),
        ex::figures::e3_livelock(scale.clone()),
        ex::figures::e4_virtual_ring(scale.clone()),
        ex::theorem1::e5_convergence(scale.clone()),
        ex::theorem2::e6_waiting_time(scale.clone()),
        ex::liveness::e7_kl_liveness(scale.clone()),
        ex::comparison::e8_tree_vs_ring(scale.clone()),
        ex::comparison::e9_throughput(scale.clone()),
        ex::ablation::e10_ablation(scale.clone()),
        ex::general::e11_general_networks(scale.clone()),
        ex::exhaustive::e12_exhaustive(scale.clone()),
        ex::timeout::e13_timeout_sweep(scale.clone()),
        ex::unbounded::e14_unbounded_counter(scale.clone()),
        ex::crash::e15_crash_recovery(scale),
    ];
    for report in reports {
        println!("{}\n", report.to_markdown());
    }
}
