//! E1 — Figure 1: depth-first token circulation on oriented trees.
fn main() {
    bench::run_binary(bench::experiments::figures::e1_dfs_circulation);
}
