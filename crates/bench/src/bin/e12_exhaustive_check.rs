//! E12 — bounded-exhaustive verification of the figure-level claims.
fn main() {
    bench::run_binary(bench::experiments::exhaustive::e12_exhaustive);
}
