//! E2 — Figure 2: deadlock of the naive protocol and its resolution.
fn main() {
    bench::run_binary(bench::experiments::figures::e2_deadlock);
}
