//! E9 — throughput, message overhead and fairness sweeps.
fn main() {
    bench::run_binary(bench::experiments::comparison::e9_throughput);
}
