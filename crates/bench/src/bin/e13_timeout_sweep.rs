//! E13 — controller-timeout ablation.
fn main() {
    bench::run_binary(bench::experiments::timeout::e13_timeout_sweep);
}
