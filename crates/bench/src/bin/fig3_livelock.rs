//! E3 — Figure 3: starvation under the pusher-only protocol.
fn main() {
    bench::run_binary(bench::experiments::figures::e3_livelock);
}
