//! E5 — Theorem 1: convergence time after transient faults.
fn main() {
    bench::run_binary(bench::experiments::theorem1::e5_convergence);
}
