//! Append-only benchmark history with trend summaries.
//!
//! The two checked-in baselines at the workspace root — `BENCH_explorer.json` and
//! `BENCH_treenet.json` — used to be single snapshot objects that each bench run
//! overwrote, so a regression was only visible if someone diffed the overwrite.  This
//! module turns them into *histories*: version-2 documents holding an array of dated
//! entries (capped at [`MAX_ENTRIES`], oldest dropped first) plus a `trend` block
//! summarizing the last [`TREND_WINDOW`] entries per tracked metric (`n`, `last`,
//! `median`, `last_vs_median`).  A legacy single-object file loads as a one-entry
//! history, so conversion is automatic on the first append.
//!
//! The `perf_smoke` CI gate reads the same history: instead of a fixed 1.0× floor it
//! gates the live delta-vs-interned ratio against half the *median historical* speedup
//! (never below 1.0), so a slow erosion across runs trips the gate even when each
//! individual step stays above 1.0.
//!
//! The workspace's `serde_json` shim has no [`Value`] serializer, so [`render`] is the
//! writer: stable 2-space-indented JSON with objects in key order.

use serde_json::Value;
use std::collections::BTreeMap;
use std::path::Path;

/// Maximum entries a history retains; appending beyond it drops the oldest.
pub const MAX_ENTRIES: usize = 24;

/// Entries the `trend` block (and the `perf_smoke` gate) summarize.
pub const TREND_WINDOW: usize = 8;

/// An append-only, capped history of dated benchmark entries.
#[derive(Clone, Debug)]
pub struct History {
    /// The bench this history tracks (`"exhaustive_checker"`, `"treenet_engine"`).
    pub bench: String,
    /// The entries, oldest first.  Each is a JSON object; dated entries carry
    /// `recorded_unix` / `recorded` (added by [`History::append_dated`]).
    pub entries: Vec<Value>,
}

impl History {
    /// An empty history for `bench`.
    pub fn new(bench: &str) -> History {
        History { bench: bench.to_string(), entries: Vec::new() }
    }

    /// Loads the history stored at `path`.  A missing file yields an empty history; a
    /// legacy single-object snapshot (no `version`) becomes its sole entry; a version-2
    /// document loads its `entries` array.
    ///
    /// A file that exists but does not parse — truncated by a killed bench run, corrupted
    /// by a bad merge — degrades to a **fresh history with a warning** instead of an
    /// error: losing the trend window must never block the bench that would rebuild it
    /// (the next [`History::save`] overwrites the corrupt file).  Only I/O failures other
    /// than not-found are surfaced as `Err`.
    pub fn load(path: &Path, bench: &str) -> Result<History, String> {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => {
                return Ok(History::new(bench))
            }
            Err(err) => return Err(format!("unreadable {}: {err}", path.display())),
        };
        let fresh = |detail: String| {
            eprintln!("warning: discarding bench history {}: {detail}", path.display());
            Ok(History::new(bench))
        };
        let doc = match serde_json::from_str(&text) {
            Ok(doc) => doc,
            Err(err) => return fresh(format!("unparsable ({err})")),
        };
        let mut history = History::new(bench);
        match doc.get("version").and_then(Value::as_u64) {
            Some(2) => {
                let Some(Value::Array(entries)) = doc.get("entries") else {
                    return fresh("version 2 without an `entries` array".to_string());
                };
                history.entries = entries.clone();
            }
            // A pre-history snapshot: the whole object is the first entry.
            None => history.entries.push(doc),
            Some(v) => return fresh(format!("unknown history version {v}")),
        }
        Ok(history)
    }

    /// Appends `entry`, dropping the oldest entries beyond [`MAX_ENTRIES`].
    pub fn append(&mut self, entry: Value) {
        self.entries.push(entry);
        if self.entries.len() > MAX_ENTRIES {
            let excess = self.entries.len() - MAX_ENTRIES;
            self.entries.drain(..excess);
        }
    }

    /// [`History::append`] after stamping the entry with `recorded_unix` (seconds) and a
    /// `recorded` `YYYY-MM-DD` date derived from it.
    pub fn append_dated(&mut self, entry: Value, recorded_unix: u64) {
        let mut entry = entry;
        if let Value::Object(map) = &mut entry {
            map.insert("recorded_unix".to_string(), Value::Integer(recorded_unix as i128));
            map.insert("recorded".to_string(), Value::String(utc_date(recorded_unix)));
        }
        self.append(entry);
    }

    /// The values of (dotted-path) `key` over the last [`TREND_WINDOW`] entries, oldest
    /// first; entries missing the key — or carrying a non-finite value (a NaN/Infinity that
    /// an earlier writer rendered as `null`, or that a corrupt entry smuggled in) — are
    /// skipped, so medians and ratios are always computed over real data.
    pub fn recent(&self, key: &str) -> Vec<f64> {
        let start = self.entries.len().saturating_sub(TREND_WINDOW);
        self.entries[start..]
            .iter()
            .filter_map(|entry| lookup(entry, key))
            .filter(|v| v.is_finite())
            .collect()
    }

    /// Median of `key` over the last [`TREND_WINDOW`] entries; `None` when no entry has it.
    pub fn recent_median(&self, key: &str) -> Option<f64> {
        median(self.recent(key))
    }

    /// The `trend` block: per tracked key, how many recent entries carried it, the latest
    /// value, the window median, and their ratio.
    pub fn trend(&self, keys: &[&str]) -> Value {
        let mut out = BTreeMap::new();
        for &key in keys {
            let values = self.recent(key);
            let Some(med) = median(values.clone()) else { continue };
            let last = *values.last().expect("median implies non-empty");
            let mut row = BTreeMap::new();
            row.insert("n".to_string(), Value::Integer(values.len() as i128));
            row.insert("last".to_string(), Value::Number(last));
            row.insert("median".to_string(), Value::Number(med));
            // Guarded ratio: a zero median (an all-zero metric window) or any non-finite
            // intermediate degrades to 0.0 — "no trend" — instead of writing NaN/Infinity
            // into the document.  (`med != 0.0` alone is not enough: NaN passes it.)
            let ratio = last / med;
            let ratio = if med != 0.0 && ratio.is_finite() { ratio } else { 0.0 };
            row.insert("last_vs_median".to_string(), Value::Number(ratio));
            out.insert(key.to_string(), Value::Object(row));
        }
        Value::Object(out)
    }

    /// Writes the version-2 document — `{version, bench, entries, trend}` with the trend
    /// computed over `trend_keys` — to `path`.
    pub fn save(&self, path: &Path, trend_keys: &[&str]) -> Result<(), String> {
        let mut doc = BTreeMap::new();
        doc.insert("version".to_string(), Value::Integer(2));
        doc.insert("bench".to_string(), Value::String(self.bench.clone()));
        doc.insert("entries".to_string(), Value::Array(self.entries.clone()));
        doc.insert("trend".to_string(), self.trend(trend_keys));
        let mut text = render(&Value::Object(doc));
        text.push('\n');
        std::fs::write(path, text).map_err(|e| format!("cannot write {}: {e}", path.display()))
    }
}

/// Resolves a dotted path (`"random_fair.speedup_fused_vs_baseline"`) to a number.
fn lookup(entry: &Value, key: &str) -> Option<f64> {
    let mut value = entry;
    for part in key.split('.') {
        value = value.get(part)?;
    }
    value.as_f64()
}

/// Median of `values` (mean of the middle pair for even counts); `None` when empty.
fn median(mut values: Vec<f64>) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    values.sort_by(f64::total_cmp);
    let mid = values.len() / 2;
    Some(if values.len() % 2 == 1 {
        values[mid]
    } else {
        (values[mid - 1] + values[mid]) / 2.0
    })
}

/// `YYYY-MM-DD` (UTC) of a unix timestamp — Howard Hinnant's civil-from-days algorithm.
fn utc_date(unix_secs: u64) -> String {
    let days = (unix_secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let year = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = if month <= 2 { year + 1 } else { year };
    format!("{year:04}-{month:02}-{day:02}")
}

/// Renders a [`Value`] as stable, 2-space-indented JSON (objects in key order).  The
/// inverse of the shim's `serde_json::from_str` up to insignificant whitespace and
/// integer-vs-float representation of whole numbers.
pub fn render(value: &Value) -> String {
    let mut out = String::new();
    render_into(value, 0, &mut out);
    out
}

fn render_into(value: &Value, indent: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Integer(i) => out.push_str(&i.to_string()),
        Value::Number(n) => {
            if n.is_finite() {
                out.push_str(&format!("{n}"));
            } else {
                // JSON has no NaN/Infinity literal; histories treat them as absent data.
                out.push_str("null");
            }
        }
        Value::String(s) => render_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                out.push('\n');
                push_indent(indent + 1, out);
                render_into(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
            }
            out.push('\n');
            push_indent(indent, out);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                out.push('\n');
                push_indent(indent + 1, out);
                render_string(key, out);
                out.push_str(": ");
                render_into(item, indent + 1, out);
                if i + 1 < map.len() {
                    out.push(',');
                }
            }
            out.push('\n');
            push_indent(indent, out);
            out.push('}');
        }
    }
}

fn push_indent(indent: usize, out: &mut String) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A small builder for entry objects (the shim has no `json!` macro).
#[derive(Clone, Debug, Default)]
pub struct Entry(BTreeMap<String, Value>);

impl Entry {
    /// An empty entry.
    pub fn new() -> Entry {
        Entry::default()
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> Entry {
        self.0.insert(key.to_string(), Value::String(value.to_string()));
        self
    }

    /// Adds an integer field.
    pub fn int(mut self, key: &str, value: i128) -> Entry {
        self.0.insert(key.to_string(), Value::Integer(value));
        self
    }

    /// Adds a float field.
    pub fn num(mut self, key: &str, value: f64) -> Entry {
        self.0.insert(key.to_string(), Value::Number(value));
        self
    }

    /// Adds an arbitrary [`Value`] field.
    pub fn val(mut self, key: &str, value: Value) -> Entry {
        self.0.insert(key.to_string(), value);
        self
    }

    /// The finished object.
    pub fn build(self) -> Value {
        Value::Object(self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(rate: f64) -> Value {
        Entry::new().num("delta_states_per_sec", rate).num("speedup", rate / 100.0).build()
    }

    #[test]
    fn legacy_single_object_loads_as_one_entry() {
        let dir = std::env::temp_dir().join(format!("klex-history-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("legacy.json");
        std::fs::write(&path, "{\"bench\": \"exhaustive_checker\", \"delta_states_per_sec\": 250}\n")
            .unwrap();
        let history = History::load(&path, "exhaustive_checker").unwrap();
        assert_eq!(history.entries.len(), 1);
        assert_eq!(history.recent("delta_states_per_sec"), vec![250.0]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_save_load_round_trips_and_caps() {
        let dir = std::env::temp_dir().join(format!("klex-history-rt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("history.json");
        let mut history = History::new("exhaustive_checker");
        for i in 0..(MAX_ENTRIES + 5) {
            history.append_dated(entry(100.0 + i as f64), 1_700_000_000 + i as u64 * 86_400);
        }
        assert_eq!(history.entries.len(), MAX_ENTRIES, "cap drops the oldest entries");
        history.save(&path, &["delta_states_per_sec", "speedup", "absent"]).unwrap();

        let reloaded = History::load(&path, "exhaustive_checker").unwrap();
        assert_eq!(reloaded.entries.len(), MAX_ENTRIES);
        // The trend block summarizes the last TREND_WINDOW entries and skips absent keys.
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = serde_json::from_str(&text).unwrap();
        assert_eq!(doc["version"], 2u64);
        assert_eq!(doc["trend"]["delta_states_per_sec"]["n"], TREND_WINDOW as u64);
        assert_eq!(doc["trend"].get("absent"), None);
        let last = 100.0 + (MAX_ENTRIES + 4) as f64;
        assert_eq!(doc["trend"]["delta_states_per_sec"]["last"], last);
        assert!(doc["entries"][0].get("recorded").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_or_truncated_files_degrade_to_a_fresh_history() {
        let dir = std::env::temp_dir().join(format!("klex-history-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for (name, content) in [
            ("truncated.json", "{\"version\": 2, \"entries\": [{\"a\""),
            ("not-json.json", "== bench crashed mid-write =="),
            ("bad-shape.json", "{\"version\": 2, \"entries\": 7}"),
            ("future.json", "{\"version\": 99, \"entries\": []}"),
        ] {
            let path = dir.join(name);
            std::fs::write(&path, content).unwrap();
            let history = History::load(&path, "exhaustive_checker").unwrap();
            assert!(history.entries.is_empty(), "{name} must load as a fresh history");
            // The fresh history can immediately be saved over the corrupt file…
            history.save(&path, &[]).unwrap();
            // …after which it loads cleanly.
            assert!(History::load(&path, "exhaustive_checker").unwrap().entries.is_empty());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn medians_and_dates_are_exact()  {
        let mut history = History::new("b");
        for rate in [300.0, 100.0, 200.0] {
            history.append(entry(rate));
        }
        assert_eq!(history.recent_median("delta_states_per_sec"), Some(200.0));
        history.append(entry(400.0));
        assert_eq!(history.recent_median("delta_states_per_sec"), Some(250.0));
        assert_eq!(history.recent_median("missing"), None);
        assert_eq!(utc_date(0), "1970-01-01");
        assert_eq!(utc_date(1_754_524_800), "2025-08-07");
    }

    #[test]
    fn zero_valued_window_yields_a_finite_trend_and_a_loadable_document() {
        // Regression: a metric whose whole window is zero used to produce last/median =
        // 0/0 = NaN in the trend block; with NaN values in entries the `med != 0.0` guard
        // passed and the non-finite ratio reached the renderer.
        let dir = std::env::temp_dir().join(format!("klex-history-zero-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("zero.json");
        let mut history = History::new("treenet_engine");
        for _ in 0..4 {
            history.append(Entry::new().num("steps_per_sec", 0.0).build());
        }
        let trend = history.trend(&["steps_per_sec"]);
        assert_eq!(trend["steps_per_sec"]["median"], 0.0);
        assert_eq!(trend["steps_per_sec"]["last_vs_median"], 0.0, "0/0 must not reach NaN");
        history.save(&path, &["steps_per_sec"]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(!text.contains("NaN") && !text.contains("inf"), "document stays valid JSON");
        // Every later load sees a clean document, not a corrupted one.
        let reloaded = History::load(&path, "treenet_engine").unwrap();
        assert_eq!(reloaded.entries.len(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_finite_values_are_excluded_from_windows_and_ratios() {
        let mut history = History::new("b");
        history.append(Entry::new().num("rate", 100.0).build());
        history.append(Entry::new().num("rate", f64::NAN).build());
        history.append(Entry::new().num("rate", f64::INFINITY).build());
        history.append(Entry::new().num("rate", 300.0).build());
        assert_eq!(history.recent("rate"), vec![100.0, 300.0], "non-finite values skipped");
        assert_eq!(history.recent_median("rate"), Some(200.0));
        let trend = history.trend(&["rate"]);
        assert_eq!(trend["rate"]["n"], 2u64);
        assert_eq!(trend["rate"]["last_vs_median"], 1.5);
        // A window that is *only* NaN has no usable data: the key is omitted entirely.
        let mut nan_only = History::new("b");
        nan_only.append(Entry::new().num("rate", f64::NAN).build());
        assert_eq!(nan_only.trend(&["rate"]).get("rate"), None);
    }

    #[test]
    fn renderer_output_reparses() {
        let value = Entry::new()
            .str("name", "a \"quoted\"\nlabel")
            .int("big", (1i128 << 63) + 1)
            .num("rate", 2.5)
            .val("list", Value::Array(vec![Value::Null, Value::Bool(true)]))
            .val("empty", Value::Object(BTreeMap::new()))
            .build();
        let reparsed = serde_json::from_str(&render(&value)).unwrap();
        assert_eq!(reparsed, value);
    }
}
