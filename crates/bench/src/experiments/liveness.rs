//! Experiment E7 — the (k,ℓ)-liveness (efficiency) property.

use crate::support::{scheduler, Scale};
use crate::ExperimentReport;
use analysis::ExperimentRow;
use klex_core::{ss, KlConfig};
use treenet::app::BoxedDriver;
use workloads::{Heterogeneous, PinnedInCs};

/// E7 — (k,ℓ)-liveness: even when a set `I` of processes holds α units *forever*, requesters
/// asking for at most ℓ − α units are still served.
///
/// On the Figure-1 tree (ℓ = 5, k = 3) two processes are pinned inside their critical
/// sections holding α = 3 units in total; the remaining requesters ask for at most
/// ℓ − α = 2 units each and must all keep being served.  A control row pins α = ℓ units to
/// show that the property's precondition matters: with nothing left, nobody else can enter.
pub fn e7_kl_liveness(scale: Scale) -> ExperimentReport {
    let mut rows = Vec::new();
    for (label, pinned_units, free_request) in [
        ("I holds 3 of 5 units, others request 2", vec![(2usize, 2usize), (5, 1)], 2usize),
        ("I holds 4 of 5 units, others request 1", vec![(2, 2), (5, 2)], 1),
        ("control: I holds all 5 units", vec![(2, 3), (5, 2)], 1),
    ] {
        let mut served_runs = 0.0;
        let mut entries_others = 0.0;
        for seed in 0..scale.trials {
            let cfg = KlConfig::new(3, 5, 8);
            let tree = topology::builders::figure1_tree();
            let pinned = pinned_units.clone();
            let mut net = ss::network(tree, cfg, move |id| {
                if let Some(&(_, units)) = pinned.iter().find(|(node, _)| *node == id) {
                    Box::new(PinnedInCs::new(units)) as BoxedDriver
                } else if id == 0 || id == 3 || id == 6 || id == 7 {
                    Box::new(Heterogeneous { units: free_request, hold: 5 }) as BoxedDriver
                } else {
                    Box::new(Heterogeneous { units: 0, hold: 1 }) as BoxedDriver
                }
            });
            let mut sched = scheduler(40 + seed);
            let horizon = scale.max_steps.min(1_500_000);
            treenet::run_for(&mut net, &mut sched, horizon);
            // Judge the steady state: only critical-section entries in the second half of the
            // run count, after the pinned processes have had ample time to acquire their
            // units and the protocol to stabilize.
            let requesters = [0usize, 3, 6, 7];
            let late_entries_of = |v: usize| {
                net.trace()
                    .in_window(horizon / 2, horizon + 1)
                    .filter(|e| e.node == v && matches!(e.event, treenet::Event::EnterCs { .. }))
                    .count()
            };
            let entries: usize = requesters.iter().map(|&v| late_entries_of(v)).sum();
            let total_pinned: usize = pinned_units.iter().map(|(_, u)| *u).sum();
            entries_others += entries as f64;
            let satisfied = if total_pinned >= 5 {
                // Control: with no unit left, (k,ℓ)-liveness does not apply; the expected
                // steady state is that nobody else enters any more.
                entries == 0
            } else {
                requesters.iter().all(|&v| late_entries_of(v) >= 1)
            };
            if satisfied {
                served_runs += 1.0;
            }
        }
        rows.push(
            ExperimentRow::new(label)
                .with("expected_outcome_fraction", served_runs / scale.trials as f64)
                .with("cs_entries_by_non_pinned", entries_others / scale.trials as f64),
        );
    }
    ExperimentReport {
        title: "E7 — (k,ℓ)-liveness: service while a set I holds α units forever".to_string(),
        rows,
    }
}
