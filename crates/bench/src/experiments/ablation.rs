//! Experiment E10 — ablation of the protocol's mechanisms.

use crate::support::{scheduler, Scale};
use crate::ExperimentReport;
use analysis::convergence::{default_window, measure_convergence};
use analysis::{detect_deadlock, ExperimentRow, FairnessReport};
use klex_core::{nonstab, ss, KlConfig};
use treenet::{FaultInjector, FaultPlan, RoundRobin};
use workloads::all_uniform;

/// E10 — removing one mechanism at a time, and restoring the paper-literal guards.
///
/// | variant | missing / altered | expected failure |
/// |---|---|---|
/// | naive | pusher + priority + controller | deadlock (Figure 2) |
/// | + pusher | priority + controller | starvation of large requesters (Figure 3) |
/// | + priority (non-stabilizing) | controller | no recovery from token loss/duplication |
/// | self-stabilizing, literal pusher guard | `Prio ≠ ⊥` as printed | priority holder evicted: starvation returns |
/// | self-stabilizing, literal completion order | line 69 after the completion block | recurring spurious resets when the root requests |
/// | self-stabilizing (as corrected) | — | none |
pub fn e10_ablation(scale: Scale) -> ExperimentReport {
    let mut rows = Vec::new();
    let steps = scale.measure_steps.max(80_000);

    // --- Deadlock column: the Figure-2 configuration. -------------------------------------
    let deadlock_of_naive = {
        let mut net = analysis::scenarios::figure2_deadlock_config();
        let mut sched = RoundRobin::new();
        detect_deadlock(&mut net, &mut sched, steps).is_deadlock()
    };
    let deadlock_of_pusher = {
        let mut net = analysis::scenarios::figure2_deadlock_config_with_pusher();
        let mut sched = RoundRobin::new();
        detect_deadlock(&mut net, &mut sched, steps).is_deadlock()
    };

    // --- Starvation column: the Figure-3 scenario. ----------------------------------------
    let starvation_of = |variant: &str| -> (f64, f64) {
        let mut starved_runs = 0.0;
        let mut entries_a = 0.0;
        for seed in 0..scale.trials {
            let mut sched = scheduler(3_000 + seed);
            let trace_entries = match variant {
                "pusher" => {
                    let mut net = analysis::scenarios::figure3_pusher_network(6);
                    treenet::run_for(&mut net, &mut sched, steps);
                    FairnessReport::from_trace(net.trace(), 3).entries_per_node[1]
                }
                "nonstab" => {
                    let mut net = analysis::scenarios::figure3_nonstab_network(6);
                    treenet::run_for(&mut net, &mut sched, steps);
                    FairnessReport::from_trace(net.trace(), 3).entries_per_node[1]
                }
                "ss" => {
                    let mut net = analysis::scenarios::figure3_ss_network(6);
                    treenet::run_for(&mut net, &mut sched, steps);
                    FairnessReport::from_trace(net.trace(), 3).entries_per_node[1]
                }
                "ss-literal-pusher" => {
                    let cfg = analysis::scenarios::figure3_config().with_literal_pusher_guard(true);
                    let mut net = ss::network(
                        topology::builders::figure3_tree(),
                        cfg,
                        analysis::scenarios::figure3_drivers(6),
                    );
                    treenet::run_for(&mut net, &mut sched, steps);
                    FairnessReport::from_trace(net.trace(), 3).entries_per_node[1]
                }
                _ => unreachable!(),
            };
            entries_a += trace_entries as f64;
            if trace_entries == 0 {
                starved_runs += 1.0;
            }
        }
        (starved_runs / scale.trials as f64, entries_a / scale.trials as f64)
    };

    // --- Recovery column: catastrophic fault, does the census return to (l,1,1)? ----------
    let recovery_of_nonstab = {
        let mut recovered = 0.0;
        for seed in 0..scale.trials {
            let cfg = KlConfig::new(2, 3, 6);
            let tree = topology::builders::binary(6);
            let mut net = nonstab::network(tree, cfg, all_uniform(seed, 0.02, 2, 10));
            let mut sched = scheduler(4_000 + seed);
            treenet::run_for(&mut net, &mut sched, 20_000);
            let mut injector = FaultInjector::new(seed);
            injector.inject(&mut net, &FaultPlan::catastrophic(cfg.cmax));
            // No controller: the census never recovers on its own.
            treenet::run_for(&mut net, &mut sched, steps);
            if klex_core::is_legitimate(&net, &cfg) {
                recovered += 1.0;
            }
        }
        recovered / scale.trials as f64
    };
    let recovery_of_ss = |literal_completion: bool| {
        let mut recovered = 0.0;
        for seed in 0..scale.trials {
            let cfg = KlConfig::new(2, 3, 6).with_literal_completion_order(literal_completion);
            let tree = topology::builders::binary(6);
            let mut net = ss::network(tree, cfg, all_uniform(seed, 0.02, 2, 10));
            let mut sched = scheduler(4_000 + seed);
            treenet::run_for(&mut net, &mut sched, 50_000);
            let mut injector = FaultInjector::new(seed);
            injector.inject(&mut net, &FaultPlan::catastrophic(cfg.cmax));
            let out =
                measure_convergence(&mut net, &mut sched, &cfg, scale.max_steps, default_window(6));
            if out.converged() {
                recovered += 1.0;
            }
        }
        recovered / scale.trials as f64
    };

    // --- Reset-rate column: how often does the root reset under a root-requester load? ----
    let resets_of_ss = |literal_completion: bool| {
        let mut resets = 0.0;
        for seed in 0..scale.trials {
            let cfg = KlConfig::new(2, 3, 6).with_literal_completion_order(literal_completion);
            let tree = topology::builders::binary(6);
            // Every node — including the root — keeps requesting.
            let mut net = ss::network(tree, cfg, workloads::all_saturated(2, 4));
            let mut sched = scheduler(5_000 + seed);
            treenet::run_for(&mut net, &mut sched, steps);
            resets += net
                .trace()
                .events()
                .iter()
                .filter(|e| matches!(e.event, treenet::Event::Note("reset-start")))
                .count() as f64;
        }
        resets / scale.trials as f64
    };

    let (pusher_starved, pusher_entries) = starvation_of("pusher");
    let (nonstab_starved, nonstab_entries) = starvation_of("nonstab");
    let (ss_starved, ss_entries) = starvation_of("ss");
    let (literal_starved, literal_entries) = starvation_of("ss-literal-pusher");

    rows.push(
        ExperimentRow::new("naive (no pusher, no priority, no controller)")
            .with("fig2_deadlocks", f64::from(u8::from(deadlock_of_naive)))
            .with("fault_recovery_fraction", 0.0),
    );
    rows.push(
        ExperimentRow::new("+ pusher (no priority, no controller)")
            .with("fig2_deadlocks", f64::from(u8::from(deadlock_of_pusher)))
            .with("fig3_starved_fraction", pusher_starved)
            .with("fig3_entries_of_a", pusher_entries)
            .with("fault_recovery_fraction", 0.0),
    );
    rows.push(
        ExperimentRow::new("+ priority (no controller)")
            .with("fig2_deadlocks", 0.0)
            .with("fig3_starved_fraction", nonstab_starved)
            .with("fig3_entries_of_a", nonstab_entries)
            .with("fault_recovery_fraction", recovery_of_nonstab),
    );
    rows.push(
        ExperimentRow::new("self-stabilizing, paper-literal pusher guard (Prio ≠ ⊥)")
            .with("fig3_starved_fraction", literal_starved)
            .with("fig3_entries_of_a", literal_entries)
            .with("fault_recovery_fraction", recovery_of_ss(false)),
    );
    rows.push(
        ExperimentRow::new("self-stabilizing, paper-literal completion order")
            .with("fault_recovery_fraction", recovery_of_ss(true))
            .with("resets_under_root_load", resets_of_ss(true)),
    );
    rows.push(
        ExperimentRow::new("self-stabilizing (corrected guards; this repo's default)")
            .with("fig2_deadlocks", 0.0)
            .with("fig3_starved_fraction", ss_starved)
            .with("fig3_entries_of_a", ss_entries)
            .with("fault_recovery_fraction", recovery_of_ss(false))
            .with("resets_under_root_load", resets_of_ss(false)),
    );

    ExperimentReport {
        title: "E10 — ablation: what each mechanism buys, and the paper-literal guards".to_string(),
        rows,
    }
}
