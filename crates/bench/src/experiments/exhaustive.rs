//! Experiment E12 — bounded-exhaustive verification of the figure-level claims.
//!
//! While E2/E3/E5 *simulate* the behaviours of Figures 2 and 3 and Theorem 1, this experiment
//! *enumerates* every reachable configuration of small instances under every scheduling and
//! reports, per instance: the size of the reachable configuration space, whether a deadlock
//! exists (naive protocol), whether a starvation cycle exists (pusher-only versus with the
//! priority token), and whether closure holds for the full protocol.

use crate::ExperimentReport;
use analysis::ExperimentRow;
use checker::{cycles, drivers, properties, scenarios, Explorer, Limits};
use klex_core::KlConfig;

use crate::support::Scale;

fn limits(max_configurations: usize) -> Limits {
    Limits { max_configurations, max_depth: usize::MAX }
}

/// Worker threads for the parallel explorations: one per core the host can actually run
/// concurrently — no forced minimum, so a single-core host gets the sequential engine
/// instead of two time-slicing workers.  (The canonical replay guarantees results identical
/// to a sequential run at any count.)
fn explore_threads() -> usize {
    analysis::harness::host_cores()
}

/// E12 — exhaustive checking of small instances.
///
/// The instance sizes are fixed by what is exhaustively enumerable, so `scale` only controls
/// the configuration budget (quick scale keeps the same instances but a smaller safety
/// margin on the limits).
pub fn e12_exhaustive(scale: Scale) -> ExperimentReport {
    let budget = if scale.trials <= 2 { 600_000 } else { 2_000_000 };
    let mut rows = Vec::new();

    // --- Naive protocol: a minimal Figure-2 instance (two requesters needing both tokens).
    {
        let tree = topology::builders::chain(3);
        let cfg = KlConfig::new(2, 2, 3);
        let needs = [0usize, 2, 2];
        let mut net = klex_core::naive::network(tree, cfg, drivers::from_needs(&needs));
        let report = Explorer::new(&mut net).with_limits(limits(budget)).run();
        rows.push(
            ExperimentRow::new("naive, chain n=3, l=2, needs 2+2")
                .with("configurations", report.configurations as f64)
                .with("transitions", report.transitions as f64)
                .with("exhaustive", f64::from(u8::from(report.exhaustive())))
                .with("deadlocks_found", report.deadlocks.len() as f64)
                .with(
                    "shortest_deadlock_depth",
                    report.deadlocks.iter().map(|d| d.depth).min().unwrap_or(0) as f64,
                ),
        );
    }

    // --- Pusher-only versus priority-augmented on the exact Figure-3 instance.
    let fig3_needs = [1usize, 2, 1];
    for (label, with_priority) in [("pusher-only, figure-3", false), ("with priority, figure-3", true)]
    {
        let tree = topology::builders::figure3_tree();
        let cfg = KlConfig::new(2, 3, 3);
        // The two graph-recording explorations are the heaviest of the suite; run them with
        // parallel frontier expansion (reports and graphs are identical to sequential runs).
        let (report, cycle_len) = if with_priority {
            let factory =
                || klex_core::nonstab::network(tree.clone(), cfg, drivers::from_needs_holding(&fig3_needs));
            let mut net = factory();
            let mut explorer =
                Explorer::new(&mut net).with_limits(limits(budget * 3)).record_graph(true);
            let report = explorer.run_parallel(factory, explore_threads());
            let cycle = cycles::find_progress_cycle(explorer.graph(), 1);
            (report, cycle.map(|c| c.len()).unwrap_or(0))
        } else {
            let factory =
                || klex_core::pusher::network(tree.clone(), cfg, drivers::from_needs_holding(&fig3_needs));
            let mut net = factory();
            let mut explorer =
                Explorer::new(&mut net).with_limits(limits(budget)).record_graph(true);
            let report = explorer.run_parallel(factory, explore_threads());
            let cycle = cycles::find_progress_cycle(explorer.graph(), 1);
            (report, cycle.map(|c| c.len()).unwrap_or(0))
        };
        rows.push(
            ExperimentRow::new(label)
                .with("configurations", report.configurations as f64)
                .with("transitions", report.transitions as f64)
                .with("exhaustive", f64::from(u8::from(report.exhaustive())))
                .with("starvation_cycle_found", f64::from(u8::from(cycle_len > 0)))
                .with("cycle_length", cycle_len as f64),
        );
    }

    // --- Closure of the full protocol from a legitimate configuration.
    for (label, tree, l) in [
        ("ss closure, figure-3 tree, l=2", topology::builders::figure3_tree(), 2usize),
        ("ss closure, chain n=3, l=2", topology::builders::chain(3), 2usize),
    ] {
        let cfg = KlConfig::new(2, l, 3).with_cmax(0);
        let mut net = scenarios::stabilized_ss(
            tree,
            cfg,
            |_| drivers::AlwaysRequest::boxed(1),
            500_000,
        );
        let report = Explorer::new(&mut net)
            .with_limits(limits(budget))
            .with_property(properties::legitimate(cfg))
            .with_property(properties::safety(cfg))
            .run();
        rows.push(
            ExperimentRow::new(label)
                .with("configurations", report.configurations as f64)
                .with("transitions", report.transitions as f64)
                .with("exhaustive", f64::from(u8::from(report.exhaustive())))
                .with("violations", report.violations.len() as f64)
                .with("deadlocks_found", report.deadlocks.len() as f64),
        );
    }

    ExperimentReport {
        title: "E12 — bounded-exhaustive verification (all schedulings of small instances)"
            .to_string(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e12_verifies_the_figure_level_claims_exhaustively() {
        let report = e12_exhaustive(Scale::quick());
        assert_eq!(report.rows.len(), 5);
        let by_label = |needle: &str| {
            report
                .rows
                .iter()
                .find(|r| r.label.contains(needle))
                .unwrap_or_else(|| panic!("row {needle} missing"))
        };
        let naive = by_label("naive");
        assert_eq!(naive.metrics["exhaustive"], 1.0);
        assert!(naive.metrics["deadlocks_found"] >= 1.0);
        let pusher = by_label("pusher-only");
        assert_eq!(pusher.metrics["starvation_cycle_found"], 1.0);
        let prio = by_label("with priority");
        assert_eq!(prio.metrics["starvation_cycle_found"], 0.0);
        assert_eq!(prio.metrics["exhaustive"], 1.0);
        for closure in report.rows.iter().filter(|r| r.label.contains("closure")) {
            assert_eq!(closure.metrics["violations"], 0.0, "{}", closure.label);
            assert_eq!(closure.metrics["deadlocks_found"], 0.0);
        }
    }
}
