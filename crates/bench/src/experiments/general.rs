//! Experiment E11 — the extension to arbitrary rooted networks: distributed spanning-tree
//! construction composed with the k-out-of-ℓ exclusion protocol.
//!
//! The paper's conclusion claims the extension is "trivial" — run the protocol on a spanning
//! tree built by a self-stabilizing construction.  This experiment quantifies what the
//! composition costs: for meshes of increasing size and density it reports the spanning-tree
//! stabilization time and message count, the exclusion protocol's stabilization time on the
//! constructed tree, the height of that tree, and the steady-state service the composed stack
//! then delivers.

use crate::support::{scheduler, Scale};
use crate::ExperimentReport;
use analysis::{ExperimentRow, Summary};
use klex_core::KlConfig;
use stree::composed::compose_with_defaults;
use topology::RootedGraph;
use workloads::all_saturated;

/// E11 — composition cost and service on general rooted networks.
pub fn e11_general_networks(scale: Scale) -> ExperimentReport {
    let mut rows = Vec::new();
    for &n in &scale.sizes {
        // Densities: a bare tree (0 extra edges), a sparse mesh (n/2 chords), a dense mesh
        // (2n chords).
        for (density_label, extra) in [("tree", 0usize), ("sparse-mesh", n / 2), ("dense-mesh", 2 * n)]
        {
            let l = (n / 2).clamp(2, 6);
            let k = (l / 2).max(1);
            let mut st_acts = Vec::new();
            let mut st_msgs = Vec::new();
            let mut kl_acts = Vec::new();
            let mut heights = Vec::new();
            let mut entries_per_1k = Vec::new();
            let mut stabilized = 0u64;
            for seed in 0..scale.trials {
                let graph = RootedGraph::random_connected(n, extra, 1_000 + seed);
                let kl_cfg = KlConfig::new(k, l, n);
                let mut sched = scheduler(40_000 + seed);
                let composition = match compose_with_defaults(
                    graph,
                    kl_cfg,
                    all_saturated(k, 10),
                    &mut sched,
                ) {
                    Ok(c) => c,
                    Err(_) => continue,
                };
                stabilized += 1;
                st_acts.push(composition.st_activations);
                st_msgs.push(composition.st_messages);
                kl_acts.push(composition.kl_activations);
                heights.push(composition.extracted.tree.height() as u64);
                let mut net = composition.network;
                net.trace_mut().clear();
                for _ in 0..scale.measure_steps {
                    net.step(&mut sched);
                }
                entries_per_1k.push(
                    net.trace().cs_entries(None) as f64 * 1_000.0 / scale.measure_steps as f64,
                );
            }
            let edges = (n - 1 + extra) as f64;
            rows.push(
                ExperimentRow::new(format!("{density_label}, n={n}"))
                    .with("n", n as f64)
                    .with("edges", edges)
                    .with("stabilized_fraction", stabilized as f64 / scale.trials as f64)
                    .with_summary("st_convergence_activations", &Summary::of_u64(&st_acts))
                    .with("st_messages_mean", Summary::of_u64(&st_msgs).mean)
                    .with_summary("kl_convergence_activations", &Summary::of_u64(&kl_acts))
                    .with("tree_height_mean", Summary::of_u64(&heights).mean)
                    .with("cs_entries_per_1k_activations", Summary::of(&entries_per_1k).mean),
            );
        }
    }
    ExperimentReport {
        title: "E11 — general rooted networks: spanning-tree composition cost and service"
            .to_string(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e11_runs_at_quick_scale_and_everything_stabilizes() {
        let report = e11_general_networks(Scale::quick());
        assert!(!report.rows.is_empty());
        assert_eq!(report.rows.len(), 2 * 3, "two sizes x three densities at quick scale");
        for row in &report.rows {
            assert_eq!(
                row.metrics["stabilized_fraction"], 1.0,
                "composition failed to stabilize for {}",
                row.label
            );
            assert!(row.metrics["cs_entries_per_1k_activations"] > 0.0);
            assert!(row.metrics["st_convergence_activations_mean"] > 0.0);
        }
        // Denser meshes must not yield taller trees than the bare tree at the same size.
        let tree_row = &report.rows[0];
        let dense_row = &report.rows[2];
        assert!(dense_row.metrics["tree_height_mean"] <= tree_row.metrics["tree_height_mean"]);
    }
}
