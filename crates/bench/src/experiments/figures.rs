//! Experiments E1–E4: the paper's figures, reproduced as executable scenarios.

use crate::support::{scheduler, Scale, TreeShape};
use crate::ExperimentReport;
use analysis::scenarios;
use analysis::{detect_deadlock, DeadlockVerdict, ExperimentRow, FairnessReport};
use klex_core::{naive, KlConfig};
use topology::{Topology, VirtualRing};
use treenet::app::{BoxedDriver, Idle};
use treenet::RoundRobin;

/// E1 — Figure 1: depth-first token circulation on oriented trees.
///
/// For each tree shape the virtual ring is computed from the DFS retransmission rule and
/// checked against the structural expectations (length `2(n−1)`, first-visit order = DFS
/// preorder, every node visited `degree` times); a single circulating token is then simulated
/// and its measured per-node forwarding counts compared against the ring.
pub fn e1_dfs_circulation(scale: Scale) -> ExperimentReport {
    let mut rows = Vec::new();
    let mut trees: Vec<(String, topology::OrientedTree)> =
        vec![("figure-1 tree (n=8)".to_string(), topology::builders::figure1_tree())];
    for &n in &scale.sizes {
        for shape in TreeShape::all() {
            trees.push((format!("{} n={n}", shape.label()), shape.build(n, 7)));
        }
    }
    for (label, tree) in trees {
        let n = tree.len();
        let ring = VirtualRing::of(&tree);
        let dfs_match = ring.first_visit_order() == tree.dfs_preorder();
        let visits_match = (0..n).all(|v| ring.visits(v) == tree.degree(v));

        // Simulate one resource token for a while and compare forwarding counts to degrees.
        let cfg = KlConfig::new(1, 1, n);
        let mut net = naive::network(tree, cfg, |_| Box::new(Idle) as BoxedDriver);
        let mut sched = RoundRobin::new();
        treenet::run_for(&mut net, &mut sched, 20_000);
        let hops = net.metrics().sent_of_kind("ResT");
        let circulations = hops as f64 / ring.len().max(1) as f64;
        let activations_per_hop = if hops > 0 { 20_000.0 / hops as f64 } else { f64::NAN };

        rows.push(
            ExperimentRow::new(label)
                .with("n", n as f64)
                .with("ring_len", ring.len() as f64)
                .with("dfs_preorder_match", f64::from(u8::from(dfs_match)))
                .with("visits_eq_degree", f64::from(u8::from(visits_match)))
                .with("circulations_in_20k_steps", circulations)
                .with("activations_per_hop", activations_per_hop),
        );
    }
    ExperimentReport {
        title: "E1 — Figure 1: depth-first token circulation on oriented trees".to_string(),
        rows,
    }
}

/// E2 — Figure 2: the deadlock of the naive protocol and its resolution by the later rungs.
///
/// All protocols start from the figure's right-hand configuration (five tokens reserved by
/// four requesters that each still need more).  The naive protocol stays deadlocked forever;
/// the pusher rung keeps making progress; the self-stabilizing protocol additionally repairs
/// the configuration and serves every requester.
pub fn e2_deadlock(scale: Scale) -> ExperimentReport {
    let budget = scale.measure_steps.max(100_000);
    let mut rows = Vec::new();

    // Naive protocol: deadlocked forever.
    {
        let mut net = scenarios::figure2_deadlock_config();
        let mut sched = RoundRobin::new();
        let verdict = detect_deadlock(&mut net, &mut sched, budget);
        let (deadlocked, blocked) = match &verdict {
            DeadlockVerdict::Deadlocked { blocked, .. } => (1.0, blocked.len() as f64),
            _ => (0.0, 0.0),
        };
        rows.push(
            ExperimentRow::new("naive (Fig.2 configuration)")
                .with("deadlocked", deadlocked)
                .with("blocked_requesters", blocked)
                .with("cs_entries", net.trace().cs_entries(None) as f64),
        );
    }

    // Pusher rung: no deadlock, but no fairness guarantee either.
    {
        let mut net = scenarios::figure2_deadlock_config_with_pusher();
        let mut sched = RoundRobin::new();
        let verdict = detect_deadlock(&mut net, &mut sched, budget);
        rows.push(
            ExperimentRow::new("+ pusher (Fig.2 configuration)")
                .with("deadlocked", f64::from(u8::from(verdict.is_deadlock())))
                .with("blocked_requesters", 0.0)
                .with("cs_entries", net.trace().cs_entries(None) as f64),
        );
    }

    // Self-stabilizing protocol: treats the configuration as an arbitrary fault and recovers;
    // every requester is eventually served.
    {
        let mut net = scenarios::figure2_deadlock_config_ss();
        let mut sched = RoundRobin::new();
        let served_all = treenet::run_until(&mut net, &mut sched, scale.max_steps, |n| {
            (1..=4).all(|v| n.trace().cs_entries(Some(v)) >= 1)
        });
        rows.push(
            ExperimentRow::new("self-stabilizing (Fig.2 configuration)")
                .with("deadlocked", 0.0)
                .with("all_requesters_served", f64::from(u8::from(served_all.is_satisfied())))
                .with("cs_entries", net.trace().cs_entries(None) as f64),
        );
    }

    ExperimentReport {
        title: "E2 — Figure 2: deadlock of the naive protocol and its resolution".to_string(),
        rows,
    }
}

/// E3 — Figure 3: starvation of the large requester under the pusher-only protocol, and its
/// disappearance once the priority token is added.
///
/// The figure's 2-out-of-3 scenario (needs r=1, a=2, b=1) runs under the same fair random
/// schedulers for each protocol rung; the table reports how often each process entered its
/// critical section and Jain's fairness index over the three requesters.
pub fn e3_livelock(scale: Scale) -> ExperimentReport {
    let mut rows = Vec::new();
    let steps = scale.measure_steps.max(60_000);
    for (label, kind) in
        [("+ pusher only", 0u8), ("+ pusher + priority", 1u8), ("self-stabilizing", 2u8)]
    {
        let mut a_entries = 0.0;
        let mut r_entries = 0.0;
        let mut b_entries = 0.0;
        let mut jain = 0.0;
        let mut a_starved_runs = 0.0;
        for seed in 0..scale.trials {
            let mut sched = scheduler(1_000 + seed);
            let report: FairnessReport = match kind {
                0 => {
                    let mut net = scenarios::figure3_pusher_network(6);
                    treenet::run_for(&mut net, &mut sched, steps);
                    FairnessReport::from_trace(net.trace(), 3)
                }
                1 => {
                    let mut net = scenarios::figure3_nonstab_network(6);
                    treenet::run_for(&mut net, &mut sched, steps);
                    FairnessReport::from_trace(net.trace(), 3)
                }
                _ => {
                    let mut net = scenarios::figure3_ss_network(6);
                    treenet::run_for(&mut net, &mut sched, steps);
                    FairnessReport::from_trace(net.trace(), 3)
                }
            };
            r_entries += report.entries_per_node[0] as f64;
            a_entries += report.entries_per_node[1] as f64;
            b_entries += report.entries_per_node[2] as f64;
            jain += report.jain_index;
            if report.entries_per_node[1] == 0 {
                a_starved_runs += 1.0;
            }
        }
        let t = scale.trials as f64;
        rows.push(
            ExperimentRow::new(label)
                .with("entries_a(needs 2)", a_entries / t)
                .with("entries_r(needs 1)", r_entries / t)
                .with("entries_b(needs 1)", b_entries / t)
                .with("jain_index", jain / t)
                .with("runs_where_a_starved", a_starved_runs),
        );
    }

    // The paper's livelock is an adversarial *possible* execution: under a fair random
    // scheduler the 2-out-of-3 instance still serves `a` reasonably often.  The tight
    // variant below (ℓ = 2, so `a` needs the *whole* pool while r and b keep taking one unit
    // each) makes the phenomenon visible under fair scheduling too: without the priority
    // token `a` is repeatedly evicted by the pusher and serves far less; with it, the
    // imbalance largely disappears.
    for (label, with_priority) in
        [("tight variant (l=2), pusher only", false), ("tight variant (l=2), pusher + priority", true)]
    {
        let cfg = KlConfig::new(2, 2, 3);
        let tree = topology::builders::figure3_tree();
        let needs = [1usize, 2, 1];
        let mut a_entries = 0.0;
        let mut others = 0.0;
        for seed in 0..scale.trials {
            let mut sched = scheduler(2_000 + seed);
            let drivers = |id: usize| {
                Box::new(workloads::Heterogeneous { units: needs[id], hold: 6 }) as BoxedDriver
            };
            let (a, rb) = if with_priority {
                let mut net = klex_core::nonstab::network(tree.clone(), cfg, drivers);
                treenet::run_for(&mut net, &mut sched, steps);
                let rep = FairnessReport::from_trace(net.trace(), 3);
                (rep.entries_per_node[1] as f64, (rep.entries_per_node[0] + rep.entries_per_node[2]) as f64)
            } else {
                let mut net = klex_core::pusher::network(tree.clone(), cfg, drivers);
                treenet::run_for(&mut net, &mut sched, steps);
                let rep = FairnessReport::from_trace(net.trace(), 3);
                (rep.entries_per_node[1] as f64, (rep.entries_per_node[0] + rep.entries_per_node[2]) as f64)
            };
            a_entries += a;
            others += rb;
        }
        let t = scale.trials as f64;
        rows.push(
            ExperimentRow::new(label)
                .with("entries_a(needs 2)", a_entries / t)
                .with("entries_r+b(need 1)", others / t)
                .with(
                    "service_ratio_a_vs_others",
                    if others > 0.0 { a_entries / others } else { f64::NAN },
                ),
        );
    }

    ExperimentReport {
        title: "E3 — Figure 3: starvation of the 2-unit requester without the priority token"
            .to_string(),
        rows,
    }
}

/// E4 — Figure 4: the virtual ring emulated by the oriented tree.
///
/// Checks the exact node sequence of the paper's figure for the Figure-1 tree, and reports
/// ring length and eccentricity (largest ring distance from the root) for swept shapes: the
/// quantities that drive the waiting-time bound of Theorem 2.
pub fn e4_virtual_ring(scale: Scale) -> ExperimentReport {
    let mut rows = Vec::new();
    // The exact Figure-4 sequence.
    {
        let tree = topology::builders::figure1_tree();
        let ring = VirtualRing::of(&tree);
        let expected: Vec<usize> = ["r", "a", "b", "a", "c", "a", "r", "d", "e", "d", "f", "d", "g", "d"]
            .iter()
            .map(|s| topology::builders::figure1_node(s))
            .collect();
        rows.push(
            ExperimentRow::new("figure-1 tree: sequence r a b a c a r d e d f d g d")
                .with("ring_len", ring.len() as f64)
                .with("sequence_matches_paper", f64::from(u8::from(ring.node_sequence() == expected))),
        );
    }
    for &n in &scale.sizes {
        for shape in TreeShape::all() {
            let tree = shape.build(n, 11);
            let ring = VirtualRing::of(&tree);
            let ecc = (0..n)
                .filter_map(|v| ring.ring_distance(tree.root(), v))
                .max()
                .unwrap_or(0);
            rows.push(
                ExperimentRow::new(format!("{} n={n}", shape.label()))
                    .with("ring_len", ring.len() as f64)
                    .with("expected_2(n-1)", (2 * (n - 1)) as f64)
                    .with("max_ring_distance_from_root", ecc as f64),
            );
        }
    }
    ExperimentReport { title: "E4 — Figure 4: the virtual ring of an oriented tree".to_string(), rows }
}
