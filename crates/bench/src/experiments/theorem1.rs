//! Experiment E5 — Theorem 1: convergence from arbitrary configurations.

use crate::support::{Scale, TreeShape};
use crate::ExperimentReport;
use analysis::convergence::default_window;
use analysis::harness::auto_shards;
use analysis::scenario::{
    DaemonSpec, FaultPlanSpec, ProtocolSpec, ScenarioSpec, StopSpec, TopologySpec, WorkloadSpec,
};
use analysis::{ExperimentRow, Summary};

/// The E5 regime for one parameter point, as a declarative scenario: stabilize under a fair
/// daemon, inject the transient fault, and measure the activations until legitimacy is
/// sustained again.
fn e5_spec(
    label: String,
    topology: TopologySpec,
    k: usize,
    l: usize,
    plan: FaultPlanSpec,
    scale: &Scale,
) -> ScenarioSpec {
    let n = topology.len();
    ScenarioSpec::builder(label)
        .topology(topology)
        .protocol(ProtocolSpec::Ss)
        .kl(k, l)
        .workload(WorkloadSpec::Uniform { seed: 0, p_request: 0.01, max_units: k, max_hold: 20 })
        .daemon(DaemonSpec::RandomFair { seed: 50 })
        .warmup(scale.max_steps)
        .fault(900, plan)
        .stop(StopSpec::Predicate {
            name: "legitimate".into(),
            max_steps: scale.max_steps,
            sustained_for: default_window(n),
        })
        .metrics(&["converged", "convergence_activations", "warmup_activations"])
        .trials(scale.trials)
        .spec()
}

/// E5 — convergence time of the self-stabilizing protocol.
///
/// For every tree shape and size, the network is first stabilized, then hit with a transient
/// fault of the given severity (catastrophic = every local state corrupted and channels
/// refilled with ≤ CMAX garbage; moderate = half the nodes corrupted plus message
/// loss/duplication; message-only = forged/duplicated/lost messages), and the time until
/// legitimacy is sustained again is measured, in activations.  Theorem 1 claims convergence
/// always happens; the table reports the measured distribution and the fraction of trials
/// that converged within the step budget.
///
/// Each parameter point is one [`ScenarioSpec`] run through the sharded harness backend
/// (per-trial seeds are a function of the trial index alone, so the table is identical at any
/// shard count).
pub fn e5_convergence(scale: Scale) -> ExperimentReport {
    let mut rows = Vec::new();
    let severities: [(&str, FaultPlanSpec); 3] = [
        ("catastrophic", FaultPlanSpec::Catastrophic),
        ("moderate", FaultPlanSpec::Moderate),
        ("message-only", FaultPlanSpec::MessageOnly),
    ];
    for shape in [TreeShape::Chain, TreeShape::Star, TreeShape::Random] {
        for &n in &scale.sizes {
            let l = (n / 2).clamp(2, 6);
            let k = (l / 2).max(1);
            for (sev_label, plan) in severities {
                let topology = shape.to_spec(n, 0);
                let label = format!("{} n={n} l={l} {sev_label}", shape.label());
                let scenario = e5_spec(label, topology, k, l, plan, &scale)
                    .compile()
                    .expect("the E5 scenario validates");
                let report = scenario.run_harness(auto_shards());
                let times: Vec<f64> = report
                    .per_trial
                    .iter()
                    .filter_map(|trial| trial.get("convergence_activations").copied())
                    .collect();
                // Exhausted trials (no convergence measurement) are counted in the
                // distribution's dedicated bucket, never folded into the max bucket.
                let distribution = report.distribution("convergence_activations", 16);
                rows.push(
                    ExperimentRow::new(report.label.clone())
                        .with("converged_fraction", report.fraction("converged"))
                        .with("exhausted_trials", distribution.exhausted as f64)
                        .with_summary("convergence_activations", &Summary::of(&times)),
                );
            }
        }
    }
    ExperimentReport {
        title: "E5 — Theorem 1: convergence time after transient faults (activations)"
            .to_string(),
        rows,
    }
}
