//! Experiment E5 — Theorem 1: convergence from arbitrary configurations.

use crate::support::{scheduler, Scale, TreeShape};
use crate::ExperimentReport;
use analysis::convergence::{default_window, measure_convergence};
use analysis::harness::{auto_shards, run_sharded};
use analysis::{ExperimentRow, Summary};
use klex_core::{ss, KlConfig};
use treenet::{FaultInjector, FaultPlan};
use workloads::all_uniform;

/// E5 — convergence time of the self-stabilizing protocol.
///
/// For every tree shape and size, the network is first stabilized, then hit with a transient
/// fault of the given severity (catastrophic = every local state corrupted and channels
/// refilled with ≤ CMAX garbage; moderate = half the nodes corrupted plus message
/// loss/duplication; token-surplus = extra forged tokens only), and the time until legitimacy
/// is sustained again is measured, in activations.  Theorem 1 claims convergence always
/// happens; the table reports the measured distribution and the fraction of trials that
/// converged within the step budget.
pub fn e5_convergence(scale: Scale) -> ExperimentReport {
    let mut rows = Vec::new();
    type Severity = (&'static str, fn(usize) -> FaultPlan);
    let severities: [Severity; 3] = [
        ("catastrophic", |cmax| FaultPlan::catastrophic(cmax)),
        ("moderate", |cmax| FaultPlan::moderate(cmax)),
        ("message-only", |_| FaultPlan::message_only()),
    ];
    for shape in [TreeShape::Chain, TreeShape::Star, TreeShape::Random] {
        for &n in &scale.sizes {
            let l = (n / 2).clamp(2, 6);
            let k = (l / 2).max(1);
            for (sev_label, plan_of) in severities {
                // One trial per seed, sharded across cores; seeds are a function of the
                // trial index alone, so the table is identical at any shard count.
                let outcomes: Vec<Option<f64>> =
                    run_sharded(scale.trials, 0, auto_shards(), |seed, _stream| {
                        let cfg = KlConfig::new(k, l, n);
                        let tree = shape.build(n, seed);
                        let mut sched = scheduler(50 + seed);
                        let mut net = ss::network(tree, cfg, all_uniform(seed, 0.01, k, 20));
                        // Phase 1: bootstrap to legitimacy.
                        let boot = measure_convergence(
                            &mut net,
                            &mut sched,
                            &cfg,
                            scale.max_steps,
                            default_window(n),
                        );
                        if !boot.converged() {
                            return None;
                        }
                        // Phase 2: inject the fault and measure re-convergence.
                        let fault_at = net.now();
                        let mut injector = FaultInjector::new(900 + seed);
                        injector.inject(&mut net, &plan_of(cfg.cmax));
                        let out = measure_convergence(
                            &mut net,
                            &mut sched,
                            &cfg,
                            scale.max_steps,
                            default_window(n),
                        );
                        out.stabilization_time().map(|t| (t - fault_at) as f64)
                    });
                let times: Vec<f64> = outcomes.iter().flatten().copied().collect();
                let converged = times.len() as u64;
                let summary = Summary::of(&times);
                rows.push(
                    ExperimentRow::new(format!("{} n={n} l={l} {}", shape.label(), sev_label))
                        .with("converged_fraction", converged as f64 / scale.trials as f64)
                        .with_summary("convergence_activations", &summary),
                );
            }
        }
    }
    ExperimentReport {
        title: "E5 — Theorem 1: convergence time after transient faults (activations)"
            .to_string(),
        rows,
    }
}
