//! One module per experiment group of `DESIGN.md` §4.
//!
//! | Function | Paper artifact |
//! |---|---|
//! | [`figures::e1_dfs_circulation`] | Figure 1 — depth-first token circulation |
//! | [`figures::e2_deadlock`] | Figure 2 — deadlock of the naive protocol |
//! | [`figures::e3_livelock`] | Figure 3 — starvation under the pusher-only protocol |
//! | [`figures::e4_virtual_ring`] | Figure 4 — the virtual ring |
//! | [`theorem1::e5_convergence`] | Theorem 1 — self-stabilization (convergence time) |
//! | [`theorem2::e6_waiting_time`] | Theorem 2 — waiting time vs the ℓ(2n−3)² bound |
//! | [`liveness::e7_kl_liveness`] | (k,ℓ)-liveness / efficiency property |
//! | [`comparison::e8_tree_vs_ring`] | Related-work comparison: tree vs ring vs arbiters |
//! | [`comparison::e9_throughput`] | Throughput and message overhead sweeps |
//! | [`ablation::e10_ablation`] | Ablation of the token ladder and the paper-literal guards |
//! | [`general::e11_general_networks`] | Conclusion's extension: spanning-tree composition on general rooted networks |
//! | [`exhaustive::e12_exhaustive`] | Bounded-exhaustive verification of the figure-level claims |
//! | [`timeout::e13_timeout_sweep`] | Ablation of the controller-timeout interval (footnote 4) |
//! | [`unbounded::e14_unbounded_counter`] | Conclusion's unbounded-memory adaptation: bounded vs unbounded counter domains under garbage ≫ CMAX |
//! | [`crash::e15_crash_recovery`] | Conclusion's "other failure patterns": crash-restart recovery |

pub mod ablation;
pub mod comparison;
pub mod crash;
pub mod exhaustive;
pub mod figures;
pub mod general;
pub mod liveness;
pub mod theorem1;
pub mod theorem2;
pub mod timeout;
pub mod unbounded;
