//! Experiment E6 — Theorem 2: waiting time versus the ℓ(2n−3)² bound.

use crate::support::{scheduler, stabilized_ss_network, Scale, TreeShape};
use crate::ExperimentReport;
use analysis::harness::{auto_shards, run_sharded};
use analysis::waiting::{max_waiting, waiting_times};
use analysis::{ExperimentRow, Summary};
use klex_core::KlConfig;
use topology::euler::theorem2_waiting_bound;
use treenet::Adversarial;
use workloads::all_saturated;

/// E6 — measured waiting time under saturation versus the analytical worst-case bound.
///
/// Every process permanently requests one unit (the situation the proof of Theorem 2
/// considers: every other process may be served while the observed one waits).  After the
/// protocol stabilizes, the waiting time of each satisfied request is measured as the number
/// of critical sections entered by other processes in between (the paper's definition).  The
/// table compares the worst observed value with the bound ℓ(2n−3)², under both a fair random
/// scheduler and an adversarial scheduler that starves the deepest node.
pub fn e6_waiting_time(scale: Scale) -> ExperimentReport {
    let mut rows = Vec::new();
    for shape in TreeShape::all() {
        for &n in &scale.sizes {
            let l = (n / 3).clamp(2, 5);
            let k = 1usize;
            let cfg = KlConfig::new(k, l, n);
            let bound = theorem2_waiting_bound(l, n) as f64;

            for (sched_label, adversarial) in [("fair", false), ("adversarial", true)] {
                // One saturation trial per seed, sharded across cores (seed = trial index,
                // so the table is identical at any shard count).
                let outcomes: Vec<Option<(f64, f64)>> =
                    run_sharded(scale.trials, 0, auto_shards(), |seed, _stream| {
                        let tree = shape.build(n, seed);
                        // The victim of the adversarial scheduler: the deepest node.
                        let victim = (0..n).max_by_key(|&v| tree.depth(v)).unwrap_or(n - 1);
                        let mut boot_sched = scheduler(300 + seed);
                        let mut net = stabilized_ss_network(
                            tree,
                            cfg,
                            all_saturated(1, 3),
                            &mut boot_sched,
                            scale.max_steps,
                        )?;
                        if adversarial {
                            let mut sched = Adversarial::new(vec![victim], 8);
                            treenet::run_for(&mut net, &mut sched, scale.measure_steps);
                        } else {
                            let mut sched = scheduler(700 + seed);
                            treenet::run_for(&mut net, &mut sched, scale.measure_steps);
                        }
                        let records = waiting_times(net.trace());
                        if records.is_empty() {
                            return None;
                        }
                        let mean = records.iter().map(|r| r.cs_entries_waited as f64).sum::<f64>()
                            / records.len() as f64;
                        Some((max_waiting(&records) as f64, mean))
                    });
                let worst: Vec<f64> = outcomes.iter().flatten().map(|(w, _)| *w).collect();
                let means: Vec<f64> = outcomes.iter().flatten().map(|(_, m)| *m).collect();
                let worst_summary = Summary::of(&worst);
                let mean_summary = Summary::of(&means);
                rows.push(
                    ExperimentRow::new(format!(
                        "{} n={n} l={l} ({sched_label} scheduler)",
                        shape.label()
                    ))
                    .with("bound_l(2n-3)^2", bound)
                    .with("waiting_worst_observed", worst_summary.max)
                    .with("waiting_mean", mean_summary.mean)
                    .with("bound_ratio", if bound > 0.0 { worst_summary.max / bound } else { 0.0 }),
                );
            }
        }
    }
    ExperimentReport {
        title:
            "E6 — Theorem 2: waiting time (CS entries by others per satisfied request) vs bound"
                .to_string(),
        rows,
    }
}
