//! Experiment E6 — Theorem 2: waiting time versus the ℓ(2n−3)² bound.

use crate::support::{Scale, TreeShape};
use crate::ExperimentReport;
use analysis::harness::auto_shards;
use analysis::scenario::{
    DaemonSpec, ProtocolSpec, ScenarioSpec, StopSpec, TopologySpec, WarmupSpec, WorkloadSpec,
};
use analysis::ExperimentRow;
use topology::euler::theorem2_waiting_bound;

/// The E6 regime for one parameter point: saturate every process, stabilize under a fair
/// daemon, then measure waiting times under either the fair daemon or the bounded-unfairness
/// adversary targeting the deepest node (an empty adversarial victim list).
fn e6_spec(
    label: String,
    topology: TopologySpec,
    l: usize,
    adversarial: bool,
    trials: u64,
    scale: &Scale,
) -> ScenarioSpec {
    let daemon = if adversarial {
        DaemonSpec::Adversarial { victims: vec![], patience: 8 }
    } else {
        DaemonSpec::RandomFair { seed: 700 }
    };
    ScenarioSpec::builder(label)
        .topology(topology)
        .protocol(ProtocolSpec::Ss)
        .kl(1, l)
        .workload(WorkloadSpec::Saturated { units: 1, hold: 3 })
        .daemon(daemon)
        .warmup_spec(WarmupSpec {
            max_steps: scale.max_steps,
            window: None,
            daemon: Some(DaemonSpec::RandomFair { seed: 300 }),
        })
        .stop(StopSpec::Steps { steps: scale.measure_steps })
        .metrics(&["waiting_max", "waiting_mean", "converged"])
        .trials(trials)
        .spec()
}

/// E6 — measured waiting time under saturation versus the analytical worst-case bound.
///
/// Every process permanently requests one unit (the situation the proof of Theorem 2
/// considers: every other process may be served while the observed one waits).  After the
/// protocol stabilizes, the waiting time of each satisfied request is measured as the number
/// of critical sections entered by other processes in between (the paper's definition).  The
/// table compares the worst observed value with the bound ℓ(2n−3)², under both a fair random
/// scheduler and an adversarial scheduler that starves the deepest node.
///
/// Each parameter point is one [`ScenarioSpec`] run through the sharded harness backend.
pub fn e6_waiting_time(scale: Scale) -> ExperimentReport {
    let mut rows = Vec::new();
    for shape in TreeShape::all() {
        for &n in &scale.sizes {
            let l = (n / 3).clamp(2, 5);
            let bound = theorem2_waiting_bound(l, n) as f64;
            for (sched_label, adversarial) in [("fair", false), ("adversarial", true)] {
                let topology = shape.to_spec(n, 0);
                let label = format!("{} n={n} l={l} ({sched_label} scheduler)", shape.label());
                let scenario = e6_spec(label, topology, l, adversarial, scale.trials, &scale)
                    .compile()
                    .expect("the E6 scenario validates");
                let report = scenario.run_harness(auto_shards());
                let worst = report
                    .summaries
                    .get("waiting_max")
                    .map(|summary| summary.max)
                    .unwrap_or(0.0);
                let mean = report
                    .summaries
                    .get("waiting_mean")
                    .map(|summary| summary.mean)
                    .unwrap_or(0.0);
                rows.push(
                    ExperimentRow::new(report.label)
                        .with("bound_l(2n-3)^2", bound)
                        .with("waiting_worst_observed", worst)
                        .with("waiting_mean", mean)
                        .with("bound_ratio", if bound > 0.0 { worst / bound } else { 0.0 }),
                );
            }
        }
    }
    ExperimentReport {
        title:
            "E6 — Theorem 2: waiting time (CS entries by others per satisfied request) vs bound"
                .to_string(),
        rows,
    }
}
