//! Experiment E13 — ablation of the root's timeout interval.
//!
//! The paper only requires the timeout used to retransmit the controller to be "sufficiently
//! large to prevent congestion" (footnote 4).  This experiment quantifies the trade-off the
//! implementation has to make:
//!
//! * an interval that is too **small** floods the network with duplicate controllers — they
//!   are all flushed by the counter-flushing machinery (no correctness impact) but cost
//!   messages and spurious timeouts;
//! * an interval that is too **large** delays recovery from the one fault class that *needs*
//!   the timeout: loss of the controller itself (without a controller the token census is
//!   never re-checked, so a lost controller would otherwise never be replaced).
//!
//! For each interval the table reports steady-state controller traffic and timeout events,
//! and the re-convergence time after every in-flight controller message is deleted.

use crate::support::Scale;
use crate::ExperimentReport;
use analysis::convergence::{default_window, measure_convergence};
use analysis::scenario::{
    ConfigSpec, DaemonSpec, ProtocolSpec, ScenarioSpec, TopologySpec, WorkloadSpec,
};
use analysis::{ExperimentRow, Summary};
use klex_core::{ss, KlConfig, Message};
use topology::Topology;
use treenet::Event;

/// Deletes every in-flight controller message — the fault class the timeout exists for.
fn drop_all_controllers(
    net: &mut treenet::Network<ss::SsNode, topology::OrientedTree>,
) {
    for v in 0..net.len() {
        for l in 0..net.topology().degree(v) {
            let kept: Vec<Message> = net
                .channel(v, l)
                .iter()
                .copied()
                .filter(|m| !m.is_ctrl())
                .collect();
            let mut ch = net.channel_mut(v, l);
            ch.clear();
            for m in kept {
                ch.push(m);
            }
        }
    }
}

/// E13 — controller-timeout sweep.
pub fn e13_timeout_sweep(scale: Scale) -> ExperimentReport {
    let n = 9usize;
    let l = 3usize;
    let k = 2usize;
    // The timeout counts *root* activations; under a fair scheduler the root is activated
    // roughly once every n global activations, and a controller circulation takes about
    // 2(n−1) message hops, i.e. a couple of dozen root activations.  "Tiny" is therefore
    // chosen below one circulation (so the timer fires spuriously), "small" around one
    // circulation, and the default far above it.
    let default = KlConfig::default_timeout(n);
    let intervals: [(&str, u64); 4] = [
        ("tiny (4 root ticks)", 4),
        ("small (16 root ticks)", 16),
        ("default", default),
        ("huge (8x default)", 8 * default),
    ];
    let mut rows = Vec::new();
    for (label, interval) in intervals {
        let mut ctrl_per_1k = Vec::new();
        let mut timeouts_per_1k = Vec::new();
        let mut recovery = Vec::new();
        let mut recovered = 0u64;
        let mut converged = 0u64;
        for seed in 0..scale.trials {
            // The regime of this trial as a declarative scenario; the custom two-phase
            // measurement below (steady-state traffic, then controller loss) drives the
            // compiled network by hand.
            let scenario = ScenarioSpec::builder(format!("e13 timeout={label} seed={seed}"))
                .topology(TopologySpec::Random { n, seed: 7_000 + seed })
                .protocol(ProtocolSpec::Ss)
                .config(ConfigSpec::new(k, l).with_timeout(interval))
                .workload(WorkloadSpec::Saturated { units: 1, hold: 8 })
                .daemon(DaemonSpec::RandomFair { seed: 2_300 + seed })
                .build()
                .expect("the E13 scenario validates");
            let cfg = scenario.spec().config.to_kl(n);
            let mut sched = scenario.make_daemon();
            let mut net = scenario.build_ss().expect("E13 runs the full protocol");
            let boot =
                measure_convergence(&mut net, &mut sched, &cfg, scale.max_steps, default_window(n));
            if !boot.converged() {
                continue;
            }
            converged += 1;
            // Steady-state controller traffic.
            net.trace_mut().clear();
            net.metrics_mut().reset();
            for _ in 0..scale.measure_steps {
                net.step(&mut sched);
            }
            let ctrl_msgs = net.metrics().sent_of_kind("ctrl") as f64;
            let timeout_events = net
                .trace()
                .events()
                .iter()
                .filter(|e| matches!(e.event, Event::Note("timeout")))
                .count() as f64;
            ctrl_per_1k.push(ctrl_msgs * 1_000.0 / scale.measure_steps as f64);
            timeouts_per_1k.push(timeout_events * 1_000.0 / scale.measure_steps as f64);

            // Drop the controller and measure how long until a *new* controller circulation
            // completes — the repair the timeout exists for.  (The token census itself is not
            // disturbed by losing the controller, so legitimacy is not the right yardstick
            // here: without a controller the system merely loses its ability to repair
            // *future* faults.)
            drop_all_controllers(&mut net);
            let drop_at = net.now();
            let mut new_circulation_at = None;
            for _ in 0..scale.max_steps {
                net.step(&mut sched);
                if let Some(ev) = net
                    .trace()
                    .events()
                    .iter()
                    .rev()
                    .find(|e| matches!(e.event, Event::Note("circulation")) && e.at > drop_at)
                {
                    new_circulation_at = Some(ev.at);
                    break;
                }
            }
            if let Some(at) = new_circulation_at {
                recovered += 1;
                recovery.push(at - drop_at);
            }
        }
        rows.push(
            ExperimentRow::new(format!("timeout = {label}"))
                .with("interval_activations", interval as f64)
                .with("converged_fraction", converged as f64 / scale.trials as f64)
                .with("ctrl_messages_per_1k_activations", Summary::of(&ctrl_per_1k).mean)
                .with("timeouts_per_1k_activations", Summary::of(&timeouts_per_1k).mean)
                .with("new_circulation_fraction", recovered as f64 / scale.trials as f64)
                .with_summary("activations_until_new_circulation", &Summary::of_u64(&recovery)),
        );
    }
    ExperimentReport {
        title: "E13 — controller-timeout ablation (duplicate traffic vs recovery from controller loss)"
            .to_string(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e13_shows_the_expected_tradeoff() {
        let report = e13_timeout_sweep(Scale::quick());
        assert_eq!(report.rows.len(), 4);
        let tiny = &report.rows[0].metrics;
        let default = &report.rows[2].metrics;
        let huge = &report.rows[3].metrics;
        // The recommended (default) and larger intervals always bootstrap and always replace a
        // lost controller.
        for row in &report.rows[2..] {
            assert_eq!(row.metrics["converged_fraction"], 1.0, "{}", row.label);
            assert_eq!(row.metrics["new_circulation_fraction"], 1.0, "{}", row.label);
        }
        // A too-small interval either pays in duplicate controller traffic / spurious
        // timeouts, or it outright disturbs stabilization — both illustrate the paper's
        // "sufficiently large" requirement.
        let tiny_pays_in_traffic = tiny["ctrl_messages_per_1k_activations"]
            >= default["ctrl_messages_per_1k_activations"]
            && tiny["timeouts_per_1k_activations"] > default["timeouts_per_1k_activations"];
        let tiny_disturbs =
            tiny["converged_fraction"] < 1.0 || tiny["new_circulation_fraction"] < 1.0;
        assert!(tiny_pays_in_traffic || tiny_disturbs);
        // Replacing a lost controller cannot be faster with a huge interval than with the
        // default one (the timeout is the only mechanism that replaces it).
        assert!(
            huge["activations_until_new_circulation_mean"]
                >= default["activations_until_new_circulation_mean"]
        );
    }
}
