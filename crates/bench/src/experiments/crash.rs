//! Experiment E15 — crash-restart failures (the conclusion's "other failure patterns").

use crate::support::{scheduler, Scale, TreeShape};
use crate::ExperimentReport;
use analysis::convergence::{default_window, measure_convergence};
use analysis::{ExperimentRow, Summary};
use klex_core::legitimacy::{count_tokens, safety_holds};
use klex_core::{nonstab, ss, KlConfig};
use treenet::{FaultInjector, NodeId};
use workloads::all_saturated;

/// Which processes are crash-restarted in one E15 scenario.
#[derive(Clone, Copy, Debug)]
enum Victims {
    /// One leaf process (the last node of the builders used here is always a leaf).
    OneLeaf,
    /// The root.
    Root,
    /// Half of the processes, chosen at random per trial.
    HalfRandom,
    /// Every process.
    All,
}

impl Victims {
    fn label(self) -> &'static str {
        match self {
            Victims::OneLeaf => "one leaf",
            Victims::Root => "the root",
            Victims::HalfRandom => "half the processes",
            Victims::All => "every process",
        }
    }

    fn pick(
        self,
        n: usize,
        injector: &mut FaultInjector,
        net: &mut treenet::Network<ss::SsNode, topology::OrientedTree>,
        lose_incoming: bool,
    ) -> usize {
        match self {
            Victims::OneLeaf => injector.crash(net, &[n - 1], lose_incoming).nodes_crashed,
            Victims::Root => injector.crash(net, &[0], lose_incoming).nodes_crashed,
            Victims::HalfRandom => {
                injector.crash_random(net, n / 2, lose_incoming).1.nodes_crashed
            }
            Victims::All => {
                let all: Vec<NodeId> = (0..n).collect();
                injector.crash(net, &all, lose_incoming).nodes_crashed
            }
        }
    }
}

/// E15 — crash-restart recovery of the self-stabilizing protocol, and what the same failure
/// does to the non-stabilizing rung.
///
/// A crash-restart wipes a process's local state back to its boot-time value and loses the
/// messages addressed to it.  For the self-stabilizing protocol this is just another
/// transient fault: tokens held by (or in flight towards) the crashed processes disappear,
/// the controller detects the deficit and re-creates them, so the table reports the measured
/// re-convergence time per victim set.  The non-stabilizing protocol has no repair mechanism:
/// a crash-restarted *root* re-creates its ℓ initial tokens, the population permanently
/// doubles, and under a saturated workload the safety property (`at most ℓ units in use`) is
/// violated — the last rows quantify that.
pub fn e15_crash_recovery(scale: Scale) -> ExperimentReport {
    let mut rows = Vec::new();

    // --- Self-stabilizing protocol: recovery time per victim set. --------------------------
    for shape in [TreeShape::Binary, TreeShape::Chain] {
        for &n in &scale.sizes {
            let l = (n / 2).clamp(2, 6);
            let k = (l / 2).max(1);
            for victims in [Victims::OneLeaf, Victims::Root, Victims::HalfRandom, Victims::All] {
                let mut times = Vec::new();
                let mut converged = 0u64;
                for seed in 0..scale.trials {
                    let cfg = KlConfig::new(k, l, n);
                    let tree = shape.build(n, seed);
                    let mut sched = scheduler(2_300 + seed);
                    let mut net = ss::network(tree, cfg, all_saturated(k, 8));
                    let boot = measure_convergence(
                        &mut net,
                        &mut sched,
                        &cfg,
                        scale.max_steps,
                        default_window(n),
                    );
                    if !boot.converged() {
                        continue;
                    }
                    let fault_at = net.now();
                    let mut injector = FaultInjector::new(7_000 + seed);
                    let crashed = victims.pick(n, &mut injector, &mut net, true);
                    debug_assert!(crashed >= 1);
                    let out = measure_convergence(
                        &mut net,
                        &mut sched,
                        &cfg,
                        scale.max_steps,
                        default_window(n),
                    );
                    if let Some(t) = out.stabilization_time() {
                        converged += 1;
                        times.push((t - fault_at) as f64);
                    }
                }
                rows.push(
                    ExperimentRow::new(format!(
                        "self-stabilizing, {} n={n} — crash {}",
                        shape.label(),
                        victims.label()
                    ))
                    .with("converged_fraction", converged as f64 / scale.trials as f64)
                    .with_summary("reconvergence_activations", &Summary::of(&times)),
                );
            }
        }
    }

    // --- Non-stabilizing rung: a crashed root permanently corrupts the token population. ---
    let mut surplus_runs = 0.0;
    let mut safety_violation_runs = 0.0;
    let mut surplus_tokens = Vec::new();
    for seed in 0..scale.trials {
        let n = 7;
        let cfg = KlConfig::new(2, 3, n);
        let tree = topology::builders::binary(n);
        let mut sched = scheduler(9_100 + seed);
        let mut net = nonstab::network(tree, cfg, all_saturated(2, 40));
        treenet::run_for(&mut net, &mut sched, 40_000);
        let mut injector = FaultInjector::new(9_200 + seed);
        injector.crash(&mut net, &[0], false);
        // Give the restarted root time to re-create its tokens and the requesters time to
        // absorb the surplus.
        let mut violated = false;
        for _ in 0..scale.measure_steps {
            net.step(&mut sched);
            if !safety_holds(&net, &cfg) {
                violated = true;
                break;
            }
        }
        let census = count_tokens(&net);
        if census.resource > cfg.l {
            surplus_runs += 1.0;
        }
        surplus_tokens.push(census.resource.saturating_sub(cfg.l) as f64);
        if violated {
            safety_violation_runs += 1.0;
        }
    }
    rows.push(
        ExperimentRow::new("non-stabilizing (no controller), binary n=7 — crash the root")
            .with("token_surplus_fraction", surplus_runs / scale.trials as f64)
            .with("surplus_resource_tokens_mean", Summary::of(&surplus_tokens).mean)
            .with("safety_violated_fraction", safety_violation_runs / scale.trials as f64),
    );

    ExperimentReport {
        title: "E15 — crash-restart failures: recovery of the self-stabilizing protocol vs the \
                non-stabilizing rung"
            .to_string(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e15_ss_recovers_from_crashes_and_nonstab_does_not() {
        let scale = Scale::quick();
        let report = e15_crash_recovery(scale.clone());
        // 2 shapes × |sizes| × 4 victim sets for the self-stabilizing protocol, plus the
        // non-stabilizing row.
        assert_eq!(report.rows.len(), 2 * scale.sizes.len() * 4 + 1);
        for row in report.rows.iter().filter(|r| r.label.starts_with("self-stabilizing")) {
            assert_eq!(row.metrics["converged_fraction"], 1.0, "{}", row.label);
        }
        // Crashing a single process may leave the configuration legitimate (it held nothing),
        // but crashing every process with message loss wipes every token, so those rows must
        // measure a strictly positive recovery time.
        for row in report.rows.iter().filter(|r| r.label.contains("crash every process")) {
            assert!(row.metrics["reconvergence_activations_mean"] > 0.0, "{}", row.label);
        }
        let nonstab = report
            .rows
            .iter()
            .find(|r| r.label.starts_with("non-stabilizing"))
            .expect("non-stabilizing row present");
        // The crashed root re-creates its ℓ tokens; without a controller the surplus is never
        // repaired and safety is eventually violated under a saturated workload.
        assert_eq!(nonstab.metrics["token_surplus_fraction"], 1.0);
        assert!(nonstab.metrics["surplus_resource_tokens_mean"] >= 1.0);
        assert!(nonstab.metrics["safety_violated_fraction"] > 0.0);
    }
}
