//! Experiments E8 and E9 — comparisons against the baseline protocols.

use crate::support::{measure_throughput, scheduler, stabilized_ss_network, Scale, TreeShape};
use crate::ExperimentReport;
use analysis::waiting::{max_waiting, waiting_times};
use analysis::{ExperimentRow, FairnessReport};
use baselines::{centralized, permission, ring};
use klex_core::KlConfig;
use treenet::app::BoxedDriver;
use workloads::{all_saturated, all_uniform, Hotspot};

fn per_entry(messages: u64, entries: u64) -> f64 {
    if entries == 0 {
        f64::NAN
    } else {
        messages as f64 / entries as f64
    }
}

/// E8 — tree protocol versus the ring-based prior work (and the non-stabilizing arbiter
/// baselines), same process count and workload.
///
/// The quantities compared are the ones the paper's related-work discussion cares about:
/// waiting time, throughput, and messages per critical section.  The tree and ring protocols
/// are both self-stabilizing token circulations; the centralized and per-unit-arbiter
/// allocators are the non-fault-tolerant permission-based reference points.
pub fn e8_tree_vs_ring(scale: Scale) -> ExperimentReport {
    let mut rows = Vec::new();
    for &n in &scale.sizes {
        let l = (n / 3).clamp(2, 5);
        let k = 1usize;
        let cfg = KlConfig::new(k, l, n);
        let steps = scale.measure_steps;

        // Tree (this paper), on a random tree.
        {
            let mut entries_total = 0u64;
            let mut messages_total = 0u64;
            let mut worst_wait = 0u64;
            for seed in 0..scale.trials {
                let tree = TreeShape::Random.build(n, seed);
                let mut boot = scheduler(10 + seed);
                let Some(mut net) =
                    stabilized_ss_network(tree, cfg, all_saturated(1, 3), &mut boot, scale.max_steps)
                else {
                    continue;
                };
                let mut sched = scheduler(100 + seed);
                let (entries, messages) = measure_throughput(&mut net, &mut sched, steps);
                entries_total += entries;
                messages_total += messages;
                worst_wait = worst_wait.max(max_waiting(&waiting_times(net.trace())));
            }
            rows.push(
                ExperimentRow::new(format!("tree (this paper) n={n} l={l}"))
                    .with("cs_entries_per_1k_steps", entries_total as f64 / (steps * scale.trials) as f64 * 1_000.0)
                    .with("messages_per_cs_entry", per_entry(messages_total, entries_total))
                    .with("worst_waiting", worst_wait as f64),
            );
        }

        // Ring baseline (prior self-stabilizing work).
        {
            let mut entries_total = 0u64;
            let mut messages_total = 0u64;
            let mut worst_wait = 0u64;
            for seed in 0..scale.trials {
                let mut net = ring::network(n, cfg, all_saturated(1, 3));
                let mut boot = scheduler(10 + seed);
                // Stabilize the ring, then measure.
                let stable = crate::support::run_until_stable(
                    &mut net,
                    &mut boot,
                    &cfg,
                    scale.max_steps,
                    analysis::convergence::default_window(n),
                );
                if stable.is_none() {
                    continue;
                }
                net.trace_mut().clear();
                net.metrics_mut().reset();
                let mut sched = scheduler(100 + seed);
                let (entries, messages) = measure_throughput(&mut net, &mut sched, steps);
                entries_total += entries;
                messages_total += messages;
                worst_wait = worst_wait.max(max_waiting(&waiting_times(net.trace())));
            }
            rows.push(
                ExperimentRow::new(format!("ring (Datta–Hadid–Villain style) n={n} l={l}"))
                    .with("cs_entries_per_1k_steps", entries_total as f64 / (steps * scale.trials) as f64 * 1_000.0)
                    .with("messages_per_cs_entry", per_entry(messages_total, entries_total))
                    .with("worst_waiting", worst_wait as f64),
            );
        }

        // Centralized coordinator (non-fault-tolerant reference).
        {
            let mut entries_total = 0u64;
            let mut messages_total = 0u64;
            let mut worst_wait = 0u64;
            for seed in 0..scale.trials {
                let mut net = centralized::network(n, cfg, |id| {
                    if id == 0 {
                        Box::new(workloads::Heterogeneous { units: 0, hold: 1 }) as BoxedDriver
                    } else {
                        Box::new(workloads::Saturated { units: 1, hold: 3 }) as BoxedDriver
                    }
                });
                let mut sched = scheduler(100 + seed);
                let (entries, messages) = measure_throughput(&mut net, &mut sched, steps);
                entries_total += entries;
                messages_total += messages;
                worst_wait = worst_wait.max(max_waiting(&waiting_times(net.trace())));
            }
            rows.push(
                ExperimentRow::new(format!("centralized coordinator n={n} l={l}"))
                    .with("cs_entries_per_1k_steps", entries_total as f64 / (steps * scale.trials) as f64 * 1_000.0)
                    .with("messages_per_cs_entry", per_entry(messages_total, entries_total))
                    .with("worst_waiting", worst_wait as f64),
            );
        }

        // Per-unit arbiters (permission-based family).
        {
            let mut entries_total = 0u64;
            let mut messages_total = 0u64;
            let mut worst_wait = 0u64;
            for seed in 0..scale.trials {
                let mut net = permission::network(n, cfg, all_saturated(1, 3));
                let mut sched = scheduler(100 + seed);
                let (entries, messages) = measure_throughput(&mut net, &mut sched, steps);
                entries_total += entries;
                messages_total += messages;
                worst_wait = worst_wait.max(max_waiting(&waiting_times(net.trace())));
            }
            rows.push(
                ExperimentRow::new(format!("per-unit arbiters n={n} l={l}"))
                    .with("cs_entries_per_1k_steps", entries_total as f64 / (steps * scale.trials) as f64 * 1_000.0)
                    .with("messages_per_cs_entry", per_entry(messages_total, entries_total))
                    .with("worst_waiting", worst_wait as f64),
            );
        }
    }
    ExperimentReport {
        title: "E8 — tree vs ring vs permission-based baselines (saturated, 1-unit requests)"
            .to_string(),
        rows,
    }
}

/// E9 — throughput and message overhead of the self-stabilizing tree protocol across
/// workloads and tree shapes.
pub fn e9_throughput(scale: Scale) -> ExperimentReport {
    let mut rows = Vec::new();
    let workload_kinds = ["saturated k-unit", "uniform random", "hotspot"];
    for &n in &scale.sizes {
        let l = (n / 2).clamp(2, 6);
        let k = (l / 2).max(1);
        let cfg = KlConfig::new(k, l, n);
        for shape in [TreeShape::Chain, TreeShape::Binary, TreeShape::Random] {
            for workload in workload_kinds {
                let mut entries_total = 0u64;
                let mut messages_total = 0u64;
                let mut jain = 0.0;
                let mut runs = 0u64;
                for seed in 0..scale.trials {
                    let tree = shape.build(n, seed);
                    let driver_factory: Box<dyn FnMut(usize) -> BoxedDriver> = match workload {
                        "saturated k-unit" => Box::new(all_saturated(k, 4)),
                        "uniform random" => Box::new(all_uniform(seed, 0.05, k, 10)),
                        _ => Box::new(move |id: usize| {
                            Box::new(Hotspot::new(seed * 31 + id as u64, id % 4 == 1, k, 5))
                                as BoxedDriver
                        }),
                    };
                    let mut boot = scheduler(20 + seed);
                    let Some(mut net) = stabilized_ss_network(
                        tree,
                        cfg,
                        driver_factory,
                        &mut boot,
                        scale.max_steps,
                    ) else {
                        continue;
                    };
                    let mut sched = scheduler(200 + seed);
                    let (entries, messages) =
                        measure_throughput(&mut net, &mut sched, scale.measure_steps);
                    entries_total += entries;
                    messages_total += messages;
                    jain += FairnessReport::from_trace(net.trace(), n).jain_index;
                    runs += 1;
                }
                if runs == 0 {
                    continue;
                }
                rows.push(
                    ExperimentRow::new(format!("{} n={n} l={l} k={k} [{workload}]", shape.label()))
                        .with(
                            "cs_entries_per_1k_steps",
                            entries_total as f64 / (scale.measure_steps * runs) as f64 * 1_000.0,
                        )
                        .with("messages_per_cs_entry", per_entry(messages_total, entries_total))
                        .with("jain_fairness", jain / runs as f64),
                );
            }
        }
    }
    ExperimentReport {
        title: "E9 — throughput, message overhead and fairness of the tree protocol".to_string(),
        rows,
    }
}
