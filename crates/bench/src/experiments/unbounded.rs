//! Experiment E14 — the conclusion's unbounded-memory adaptation: bounded vs unbounded
//! counter-flushing domains when the CMAX assumption is violated.

use crate::support::{Scale, TreeShape};
use crate::ExperimentReport;
use analysis::convergence::{default_window, measure_convergence};
use analysis::scenario::{
    ConfigSpec, DaemonSpec, ProtocolSpec, ScenarioSpec, WorkloadSpec,
};
use analysis::{ExperimentRow, Summary};
use klex_core::{ss, KlConfig, Message};
use topology::Topology;
use treenet::Event;

/// How the counter-flushing domain is sized in one E14 variant.
#[derive(Clone, Copy, Debug)]
enum Domain {
    /// The paper's bounded domain `[0 .. 2(n−1)(CMAX+1)]`, with CMAX sized for the injected
    /// garbage — the assumption of the paper holds.
    BoundedHonest,
    /// The bounded domain sized for `CMAX = 0`, while the injected garbage is far larger —
    /// the assumption of the paper is violated.
    BoundedViolated,
    /// The unbounded domain of the conclusion's adaptation (`KlConfig::unbounded_counter`);
    /// CMAX is irrelevant.
    Unbounded,
}

impl Domain {
    fn label(self) -> &'static str {
        match self {
            Domain::BoundedHonest => "bounded, CMAX honoured",
            Domain::BoundedViolated => "bounded, CMAX violated",
            Domain::Unbounded => "unbounded (conclusion's adaptation)",
        }
    }

    fn config(self, k: usize, l: usize, garbage_per_channel: usize) -> ConfigSpec {
        match self {
            Domain::BoundedHonest => ConfigSpec::new(k, l).with_cmax(garbage_per_channel),
            Domain::BoundedViolated => ConfigSpec::new(k, l).with_cmax(0),
            Domain::Unbounded => ConfigSpec::new(k, l).with_cmax(0).with_unbounded_counter(true),
        }
    }
}

/// Floods every channel with `garbage_per_channel` forged controller messages whose stamps
/// cycle over the *bounded* counter domain (the worst case for counter flushing: every value
/// the bounded root could ever pick is already present somewhere), plus one forged resource
/// token per channel.  Returns the number of messages injected.
fn inject_adversarial_garbage(
    net: &mut treenet::Network<ss::SsNode, topology::OrientedTree>,
    bounded_modulus: u64,
    garbage_per_channel: usize,
) -> usize {
    let mut injected = 0;
    let n = net.len();
    for v in 0..n {
        let degree = net.topology().degree(v);
        for l in 0..degree {
            for i in 0..garbage_per_channel {
                let stamp = (v as u64 + l as u64 + i as u64) % bounded_modulus.max(1);
                net.inject_into(v, l, Message::Ctrl { c: stamp, r: false, pt: 0, ppr: 0 });
                injected += 1;
            }
            net.inject_into(v, l, Message::ResT);
            injected += 1;
        }
    }
    injected
}

/// E14 — what the bounded counter domain buys, and what it costs when its sizing assumption
/// fails.
///
/// The paper needs the `CMAX` bound on initial channel garbage to size the counter-flushing
/// domain (`myC ∈ [0 .. 2(n−1)(CMAX+1)]`); its conclusion notes that with unbounded process
/// memory the assumption can be dropped (the paper's reference \[9\], Katz–Perry).  This
/// experiment stabilizes the network, then floods the channels with far more forged controllers (whose
/// stamps cover the whole bounded domain) and forged tokens than `CMAX` allows, and measures
/// re-convergence for three domain policies: bounded with an honest CMAX, bounded with a
/// violated CMAX, and the unbounded adaptation.
pub fn e14_unbounded_counter(scale: Scale) -> ExperimentReport {
    let mut rows = Vec::new();
    let garbage_per_channel = 12usize;
    for shape in [TreeShape::Chain, TreeShape::Random] {
        for &n in &scale.sizes {
            let l = (n / 2).clamp(2, 6);
            let k = (l / 2).max(1);
            for domain in [Domain::BoundedHonest, Domain::BoundedViolated, Domain::Unbounded] {
                let mut times = Vec::new();
                let mut resets = Vec::new();
                let mut converged = 0u64;
                for seed in 0..scale.trials {
                    // The regime of this trial as a declarative scenario; the adversarial
                    // garbage flood below is experiment-specific and stays hand-driven.
                    let topology = shape.to_spec(n, seed);
                    let scenario = ScenarioSpec::builder(format!(
                        "e14 {} n={n} {} seed={seed}",
                        shape.label(),
                        domain.label()
                    ))
                    .topology(topology)
                    .protocol(ProtocolSpec::Ss)
                    .config(domain.config(k, l, garbage_per_channel))
                    .workload(WorkloadSpec::Uniform {
                        seed,
                        p_request: 0.01,
                        max_units: k,
                        max_hold: 20,
                    })
                    .daemon(DaemonSpec::RandomFair { seed: 1_400 + seed })
                    .build()
                    .expect("the E14 scenario validates");
                    let cfg = scenario.spec().config.to_kl(n);
                    // The stamps of the forged controllers are drawn from the domain a
                    // *violated* bounded configuration would use, which is the aliasing
                    // worst case for that configuration.
                    let bounded_modulus = KlConfig::new(k, l, n).with_cmax(0).counter_modulus(n);
                    let mut sched = scenario.make_daemon();
                    let mut net = scenario.build_ss().expect("E14 runs the full protocol");
                    let boot = measure_convergence(
                        &mut net,
                        &mut sched,
                        &cfg,
                        scale.max_steps,
                        default_window(n),
                    );
                    if !boot.converged() {
                        continue;
                    }
                    net.trace_mut().clear();
                    let fault_at = net.now();
                    inject_adversarial_garbage(&mut net, bounded_modulus, garbage_per_channel);
                    let out = measure_convergence(
                        &mut net,
                        &mut sched,
                        &cfg,
                        scale.max_steps,
                        default_window(n),
                    );
                    if let Some(t) = out.stabilization_time() {
                        converged += 1;
                        times.push((t - fault_at) as f64);
                    }
                    resets.push(
                        net.trace()
                            .events()
                            .iter()
                            .filter(|e| matches!(e.event, Event::Note("reset-start")))
                            .count() as f64,
                    );
                }
                rows.push(
                    ExperimentRow::new(format!("{} n={n} — {}", shape.label(), domain.label()))
                        .with("converged_fraction", converged as f64 / scale.trials as f64)
                        .with("resets_during_recovery_mean", Summary::of(&resets).mean)
                        .with_summary("reconvergence_activations", &Summary::of(&times)),
                );
            }
        }
    }
    ExperimentReport {
        title: "E14 — bounded vs unbounded counter-flushing domain under garbage ≫ CMAX"
            .to_string(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e14_every_domain_policy_recovers_from_finite_garbage() {
        let scale = Scale::quick();
        let report = e14_unbounded_counter(scale.clone());
        // 2 shapes × |sizes| × 3 domain policies.
        assert_eq!(report.rows.len(), 2 * scale.sizes.len() * 3);
        for row in &report.rows {
            // The injected garbage is finite, so every policy eventually flushes it; the
            // difference the full-scale table shows up in recovery time and reset counts.
            assert_eq!(row.metrics["converged_fraction"], 1.0, "{}", row.label);
            assert!(row.metrics["reconvergence_activations_mean"] > 0.0, "{}", row.label);
            assert!(row.metrics["resets_during_recovery_mean"] >= 0.0);
        }
        // The unbounded adaptation never needs to guess CMAX; its rows must be present.
        assert!(report.rows.iter().any(|r| r.label.contains("unbounded")));
    }
}
