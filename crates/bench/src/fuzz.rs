//! `klex fuzz` — the randomized cross-engine differential campaign.
//!
//! Every scenario the generator produces is run through **four** executions of the same
//! spec and their answers are compared:
//!
//! 1. the **delta** checker engine ([`checker::ExploreEngine::Delta`]);
//! 2. the **interned** checker engine ([`checker::ExploreEngine::Interned`]) — the two
//!    reports must be identical field for field (states, transitions, per-level frontier
//!    sizes, violations, deadlocks, fair-cycle lassos);
//! 3. the **work-stealing parallel** engine
//!    ([`analysis::scenario::CompiledScenario::check_parallel`] at three workers) — held to
//!    the same field-for-field identity against the delta report, so every fuzzed scenario
//!    also exercises the sharded-arena discovery and canonical-replay machinery;
//! 4. the **simulator under monitors** ([`analysis::scenario::CompiledScenario::run_monitored`])
//!    — a monitor-observed safety violation on a concrete execution of a fault-free,
//!    override-free scenario must be reproduced by the exhaustive exploration (the
//!    simulated execution is one of the schedules the checker covers), and a checker lasso
//!    must be re-confirmed by replaying it through the streaming monitors
//!    ([`analysis::monitor::feed_lasso`]).
//!
//! Any disagreement is **shrunk**: the failing spec is greedily reduced (drop the fault,
//! simplify the daemon and workload, shrink the topology, lower ℓ) while the disagreement
//! reproduces, and the minimal spec is written to disk as a JSON [`ScenarioSpec`] that
//! `klex run <file> --backend check` replays.
//!
//! The campaign is fully deterministic in its seed: CI runs a fixed-seed smoke campaign
//! (see `klex fuzz --smoke`) whose zero-disagreement result is a regression gate.

use analysis::monitor;
use analysis::scenario::{
    CheckSpec, DaemonSpec, FaultPlanSpec, ProtocolSpec, ScenarioSpec, StopSpec, TopologySpec,
    WorkloadSpec,
};
use checker::{ExplorationReport, ExploreEngine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;

/// Options of one campaign.
#[derive(Clone, Debug)]
pub struct FuzzOptions {
    /// Campaign seed; everything (generation and execution) is a function of it.
    pub seed: u64,
    /// Number of scenarios to generate and cross-check.
    pub scenarios: u64,
    /// Checker state budget per scenario (exceeding it truncates, which is fine: both
    /// engines must truncate identically).
    pub max_configurations: usize,
    /// Simulator activations per scenario.
    pub sim_steps: u64,
    /// Where to write the shrunk reproduction spec of a disagreement.
    pub out_dir: PathBuf,
    /// Print one line per scenario instead of a progress summary.
    pub verbose: bool,
}

impl FuzzOptions {
    /// The default campaign: 200 scenarios with roomy per-scenario budgets.
    pub fn new(seed: u64) -> Self {
        FuzzOptions {
            seed,
            scenarios: 200,
            max_configurations: 20_000,
            sim_steps: 3_000,
            out_dir: PathBuf::from("."),
            verbose: false,
        }
    }

    /// The CI smoke campaign: the fixed seed and tightened budgets that keep 200 scenarios
    /// within roughly half a minute.
    pub fn smoke() -> Self {
        FuzzOptions {
            seed: CI_SEED,
            scenarios: 200,
            max_configurations: 6_000,
            sim_steps: 1_500,
            out_dir: PathBuf::from("."),
            verbose: false,
        }
    }
}

/// The fixed seed of the CI smoke campaign.
pub const CI_SEED: u64 = 0x5EED_C0DE;

/// One cross-engine disagreement, with the spec that (still) reproduces it.
#[derive(Clone, Debug)]
pub struct Disagreement {
    /// Index of the generated scenario within the campaign.
    pub scenario_index: u64,
    /// What disagreed.
    pub detail: String,
    /// The shrunk reproducing spec.
    pub spec: ScenarioSpec,
    /// Where the reproducing spec was written (when writing succeeded).
    pub written_to: Option<PathBuf>,
}

/// Aggregate result of one campaign.
#[derive(Clone, Debug, Default)]
pub struct FuzzSummary {
    /// Scenarios generated and executed.
    pub scenarios: u64,
    /// Scenarios whose exploration covered the whole reachable space within budget.
    pub exhaustive: u64,
    /// Scenarios in which the checker found a fair starvation lasso.
    pub liveness_violations: u64,
    /// Scenarios in which the checker found a safety violation (expected for none of the
    /// generated regimes, but counted rather than assumed).
    pub safety_violations: u64,
    /// Scenarios on which the sim-vs-checker oracle applied (fault-free, override-free,
    /// exhaustively explored).
    pub differential_oracle_runs: u64,
    /// The disagreements found (empty is the healthy outcome).
    pub disagreements: Vec<Disagreement>,
}

impl FuzzSummary {
    /// True when the campaign finished without any cross-engine disagreement.
    pub fn clean(&self) -> bool {
        self.disagreements.is_empty()
    }
}

/// Runs a campaign; see the [module docs](self).
pub fn run_campaign(opts: &FuzzOptions) -> FuzzSummary {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut summary = FuzzSummary::default();
    for index in 0..opts.scenarios {
        let spec = generate_spec(&mut rng, opts, index);
        summary.scenarios += 1;
        match cross_check(&spec) {
            Ok(stats) => {
                summary.exhaustive += u64::from(stats.exhaustive);
                summary.liveness_violations += u64::from(stats.liveness_violation);
                summary.safety_violations += u64::from(stats.safety_violation);
                summary.differential_oracle_runs += u64::from(stats.differential_oracle);
                if opts.verbose {
                    println!(
                        "  [{index:>4}] {} — {} states{}{}",
                        spec.name,
                        stats.configurations,
                        if stats.exhaustive { "" } else { " (truncated)" },
                        if stats.liveness_violation { ", liveness violation" } else { "" },
                    );
                }
            }
            Err(detail) => {
                let shrunk = shrink(spec.clone(), &detail);
                let written_to = write_reproduction(opts, index, &shrunk);
                summary.disagreements.push(Disagreement {
                    scenario_index: index,
                    detail,
                    spec: shrunk,
                    written_to,
                });
            }
        }
    }
    summary
}

/// Per-scenario statistics of a clean cross-check.
struct CheckStats {
    configurations: usize,
    exhaustive: bool,
    liveness_violation: bool,
    safety_violation: bool,
    differential_oracle: bool,
}

/// Generates one random small scenario.  All four tree rungs are drawn; workloads are
/// restricted to the checker-lowerable (stateless) shapes; holds are 0 (instantaneous
/// critical sections) or 1 (the shortest configuration-visible hold, which lowers to the
/// same driver the simulator runs).
fn generate_spec(rng: &mut StdRng, opts: &FuzzOptions, index: u64) -> ScenarioSpec {
    let n = rng.gen_range(2usize..=9);
    let topology = match rng.gen_range(0u32..6) {
        0 => TopologySpec::Chain { n },
        1 => TopologySpec::Star { n },
        2 => TopologySpec::Binary { n },
        3 => TopologySpec::Random { n, seed: rng.gen::<u64>() },
        4 => TopologySpec::BoundedDegree { n, max_children: rng.gen_range(2usize..=3), seed: rng.gen::<u64>() },
        _ => TopologySpec::Figure3,
    };
    let n = topology.len();
    let protocol = match rng.gen_range(0u32..4) {
        0 => ProtocolSpec::Naive,
        1 => ProtocolSpec::Pusher,
        2 => ProtocolSpec::NonStab,
        _ => ProtocolSpec::Ss,
    };
    let l = rng.gen_range(1usize..=3);
    let k = rng.gen_range(1usize..=l);
    let hold = rng.gen_range(0u64..=1);
    let workload = if rng.gen_bool(0.5) {
        WorkloadSpec::Saturated { units: rng.gen_range(1usize..=k), hold }
    } else {
        let needs: Vec<usize> = (0..n).map(|_| rng.gen_range(0usize..=k)).collect();
        WorkloadSpec::Needs { needs, hold }
    };
    let daemon = match rng.gen_range(0u32..3) {
        0 => DaemonSpec::RoundRobin,
        1 => DaemonSpec::RandomFair { seed: rng.gen::<u64>() },
        _ => DaemonSpec::Synchronous,
    };
    // A quarter of the scenarios inject a transient fault before the simulated run (the
    // checker explores the fault-free instance either way; faulty scenarios exercise the
    // simulator path and are excluded from the sim-vs-checker safety oracle).
    let fault = rng
        .gen_bool(0.25)
        .then(|| match rng.gen_range(0u32..3) {
            0 => FaultPlanSpec::Catastrophic,
            1 => FaultPlanSpec::Moderate,
            _ => FaultPlanSpec::MessageOnly,
        })
        .map(|plan| (rng.gen::<u64>(), plan));

    let mut builder = ScenarioSpec::builder(format!("fuzz-{index} {} n={n} k={k} l={l}", protocol.label()))
        .topology(topology)
        .protocol(protocol)
        .kl(k, l)
        .workload(workload)
        .daemon(daemon)
        .stop(StopSpec::Steps { steps: opts.sim_steps })
        .properties(&["request-eventually-cs", "at-most-k-in-cs", "l-availability"])
        .check(CheckSpec {
            max_configurations: opts.max_configurations,
            max_depth: 0,
            properties: vec!["safety".into(), "liveness".into()],
            ..CheckSpec::default()
        })
        .base_seed(rng.gen::<u64>());
    if let Some((seed, plan)) = fault {
        builder = builder.fault(seed, plan);
    }
    builder.spec()
}

/// Runs the four executions of one spec and applies the oracles.  `Err` carries a
/// human-readable description of the first disagreement.
fn cross_check(spec: &ScenarioSpec) -> Result<CheckStats, String> {
    let scenario = spec
        .clone()
        .compile()
        .map_err(|e| format!("generated spec failed to validate: {e}"))?;

    let delta = scenario
        .check_with(ExploreEngine::Delta)
        .map_err(|e| format!("delta lowering failed: {e}"))?;
    let interned = scenario
        .check_with(ExploreEngine::Interned)
        .map_err(|e| format!("interned lowering failed: {e}"))?;
    compare_reports("delta", &delta, "interned", &interned)?;
    // The work-stealing engine at a thread count that forces real stealing (three workers
    // over budgets this small guarantees contended deques and cross-worker discovery).
    let parallel = scenario
        .check_parallel(3)
        .map_err(|e| format!("parallel lowering failed: {e}"))?;
    compare_reports("delta", &delta, "parallel", &parallel)?;

    // The simulator run, monitored.  Monitors are advisory on faulty scenarios (a fault can
    // legitimately break the safety bounds); on fault-free, override-free scenarios whose
    // exploration was exhaustive they are an oracle: a monitor-observed safety violation is
    // one concrete schedule, and the checker covered all of them.
    let (_, monitors) = scenario.run_monitored();
    let oracle_applies =
        spec.fault.is_none() && spec.init.is_none() && delta.exhaustive();
    let checker_safety_violated = delta.violations.iter().any(|v| v.property == "safety");
    if oracle_applies {
        for report in &monitors {
            let safety_monitor =
                report.name == "at-most-k-in-cs" || report.name == "l-availability";
            if safety_monitor && report.verdict.is_violated() && !checker_safety_violated {
                return Err(format!(
                    "monitor/checker mismatch: simulator monitor {} reports {:?} but the \
                     exhaustive exploration found no safety violation",
                    report.name, report.verdict
                ));
            }
        }
    }

    // A checker lasso must be re-confirmed by the streaming monitors replaying it.
    if let Some(witness) = delta.liveness.first() {
        let mut replay: Vec<Box<dyn monitor::TemporalMonitor>> = ["request-eventually-cs"]
            .iter()
            .map(|name| monitor::monitor_for(name, spec.config.k, spec.config.l).expect("known"))
            .collect();
        let verdicts = monitor::feed_lasso(&mut replay, witness);
        if !verdicts[0].verdict.is_violated() {
            return Err(format!(
                "monitor/checker mismatch: the checker reports a fair starvation lasso for \
                 process {} but the request-eventually-cs monitor replaying it returns {:?}",
                witness.victim, verdicts[0].verdict
            ));
        }
    }

    Ok(CheckStats {
        configurations: delta.configurations,
        exhaustive: delta.exhaustive(),
        liveness_violation: !delta.live(),
        safety_violation: checker_safety_violated,
        differential_oracle: oracle_applies,
    })
}

/// Field-for-field comparison of two engines' reports, labeled for the error message.
fn compare_reports(
    ln: &str,
    left: &ExplorationReport,
    rn: &str,
    right: &ExplorationReport,
) -> Result<(), String> {
    let mismatch = |what: &str, l: String, r: String| {
        Err(format!("{ln}/{rn} mismatch in {what}: {ln} {l} vs {rn} {r}"))
    };
    if left.configurations != right.configurations {
        return mismatch(
            "configurations",
            left.configurations.to_string(),
            right.configurations.to_string(),
        );
    }
    if left.transitions != right.transitions {
        return mismatch(
            "transitions",
            left.transitions.to_string(),
            right.transitions.to_string(),
        );
    }
    if left.max_depth != right.max_depth {
        return mismatch("max_depth", left.max_depth.to_string(), right.max_depth.to_string());
    }
    if left.truncated != right.truncated {
        return mismatch("truncated", left.truncated.to_string(), right.truncated.to_string());
    }
    if left.frontier_sizes != right.frontier_sizes {
        return mismatch(
            "frontier_sizes",
            format!("{:?}", left.frontier_sizes),
            format!("{:?}", right.frontier_sizes),
        );
    }
    let violations = |r: &ExplorationReport| -> Vec<(String, usize)> {
        r.violations.iter().map(|v| (v.property.clone(), v.depth)).collect()
    };
    if violations(left) != violations(right) {
        return mismatch(
            "violations",
            format!("{:?}", violations(left)),
            format!("{:?}", violations(right)),
        );
    }
    let deadlocks = |r: &ExplorationReport| -> Vec<(usize, Vec<usize>)> {
        r.deadlocks.iter().map(|d| (d.depth, d.blocked.clone())).collect()
    };
    if deadlocks(left) != deadlocks(right) {
        return mismatch(
            "deadlocks",
            format!("{:?}", deadlocks(left)),
            format!("{:?}", deadlocks(right)),
        );
    }
    let lassos = |r: &ExplorationReport| -> Vec<(usize, usize, usize)> {
        r.liveness.iter().map(|w| (w.victim, w.stem_len(), w.cycle_len())).collect()
    };
    if lassos(left) != lassos(right) {
        return mismatch(
            "liveness lassos",
            format!("{:?}", lassos(left)),
            format!("{:?}", lassos(right)),
        );
    }
    Ok(())
}

/// True when `spec` still reproduces *some* disagreement (the shrink predicate: any
/// disagreement counts, so the reduction cannot wander off to a different-but-real bug).
fn reproduces(spec: &ScenarioSpec) -> bool {
    cross_check(spec).is_err()
}

/// Greedy shrinking: repeatedly tries a fixed menu of simplifications, keeping any that
/// still reproduces a disagreement, until none applies.
fn shrink(mut spec: ScenarioSpec, _detail: &str) -> ScenarioSpec {
    loop {
        let mut reduced = false;
        for candidate in shrink_candidates(&spec) {
            if candidate.clone().compile().is_err() {
                continue;
            }
            if reproduces(&candidate) {
                spec = candidate;
                reduced = true;
                break;
            }
        }
        if !reduced {
            return spec;
        }
    }
}

/// The simplification menu, most drastic first.
fn shrink_candidates(spec: &ScenarioSpec) -> Vec<ScenarioSpec> {
    let mut out = Vec::new();
    let mut push = |f: &dyn Fn(&mut ScenarioSpec)| {
        let mut candidate = spec.clone();
        f(&mut candidate);
        if candidate != *spec {
            out.push(candidate);
        }
    };
    // Shrink the topology.
    let n = spec.topology.len();
    if n > 2 {
        push(&|s| s.topology = TopologySpec::Chain { n: n - 1 });
    }
    push(&|s| s.topology = TopologySpec::Chain { n });
    // Drop the fault and simplify the daemon.
    push(&|s| s.fault = None);
    push(&|s| s.daemon = DaemonSpec::RoundRobin);
    // Simplify the workload.
    push(&|s| {
        if let WorkloadSpec::Needs { needs, hold } = &s.workload {
            let mut needs = needs.clone();
            if let Some(first_busy) = needs.iter().position(|&u| u > 0) {
                needs[first_busy] = 0;
                s.workload = WorkloadSpec::Needs { needs, hold: *hold };
            }
        }
    });
    push(&|s| {
        let hold = match &s.workload {
            WorkloadSpec::Saturated { hold, .. } | WorkloadSpec::Needs { hold, .. } => *hold,
            _ => 0,
        };
        if hold > 0 {
            match &mut s.workload {
                WorkloadSpec::Saturated { hold, .. } | WorkloadSpec::Needs { hold, .. } => {
                    *hold = 0
                }
                _ => {}
            }
        }
    });
    push(&|s| s.workload = WorkloadSpec::Saturated { units: 1, hold: 0 });
    // Shrink the parameters.
    if spec.config.l > 1 {
        push(&|s| {
            s.config.l -= 1;
            s.config.k = s.config.k.min(s.config.l);
        });
    }
    // Shorten the simulated run.
    if let StopSpec::Steps { steps } = spec.stop {
        if steps > 200 {
            push(&|s| s.stop = StopSpec::Steps { steps: steps / 2 });
        }
    }
    out
}

/// Writes the shrunk reproduction spec to `out_dir`, returning the path on success.
fn write_reproduction(opts: &FuzzOptions, index: u64, spec: &ScenarioSpec) -> Option<PathBuf> {
    let path = opts.out_dir.join(format!("klex-fuzz-failure-{:#x}-{index}.json", opts.seed));
    match std::fs::write(&path, spec.to_json()) {
        Ok(()) => Some(path),
        Err(err) => {
            eprintln!("could not write the reproduction spec to {}: {err}", path.display());
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> FuzzOptions {
        FuzzOptions {
            seed: 7,
            scenarios: 6,
            max_configurations: 1_500,
            sim_steps: 300,
            out_dir: std::env::temp_dir(),
            verbose: false,
        }
    }

    #[test]
    fn a_tiny_campaign_is_deterministic_and_clean() {
        let first = run_campaign(&tiny_opts());
        assert!(first.clean(), "disagreements: {:?}", first.disagreements);
        assert_eq!(first.scenarios, 6);
        let second = run_campaign(&tiny_opts());
        assert_eq!(first.exhaustive, second.exhaustive);
        assert_eq!(first.liveness_violations, second.liveness_violations);
        assert_eq!(first.safety_violations, second.safety_violations);
    }

    #[test]
    fn generated_specs_compile_and_roundtrip() {
        let opts = tiny_opts();
        let mut rng = StdRng::seed_from_u64(42);
        for index in 0..20 {
            let spec = generate_spec(&mut rng, &opts, index);
            assert!(spec.clone().compile().is_ok(), "{spec:?}");
            let json = spec.to_json();
            assert_eq!(ScenarioSpec::from_json(&json).unwrap(), spec, "round-trip {index}");
        }
    }

    #[test]
    fn shrinking_prefers_smaller_reproductions_of_a_synthetic_disagreement() {
        // There is no real engine disagreement to shrink, so exercise the machinery on the
        // candidate generator: every candidate must still validate or be skipped, and the
        // menu always proposes something for a rich spec.
        let opts = tiny_opts();
        let mut rng = StdRng::seed_from_u64(3);
        let spec = generate_spec(&mut rng, &opts, 0);
        let candidates = shrink_candidates(&spec);
        assert!(!candidates.is_empty());
        for candidate in candidates {
            let n = candidate.topology.len();
            assert!(n >= 2 || candidate.clone().compile().is_err());
        }
    }
}
