//! `klex fuzz` — the coverage-guided cross-engine differential campaign.
//!
//! # The differential oracle
//!
//! Every scenario the campaign evaluates is run through **four** executions of the same
//! spec and their answers are compared:
//!
//! 1. the **delta** checker engine ([`checker::ExploreEngine::Delta`]);
//! 2. the **interned** checker engine ([`checker::ExploreEngine::Interned`]) — the two
//!    reports must be identical field for field (states, transitions, per-level frontier
//!    sizes, violations, deadlocks, fair-cycle lassos, and the recorded
//!    [`checker::GraphSummary`]);
//! 3. the **work-stealing parallel** engine
//!    ([`analysis::scenario::CompiledScenario::check_parallel`]) — held to the same
//!    field-for-field identity against the delta report, so every fuzzed scenario also
//!    exercises the sharded-arena discovery and canonical-replay machinery.  The worker
//!    count derives from the host's cores (never fewer than two, so real stealing happens)
//!    and can be pinned with `klex fuzz --threads N`;
//! 4. the **simulator under monitors** ([`analysis::scenario::CompiledScenario::run_monitored`])
//!    — a monitor-observed safety violation on a concrete execution of a fault-free,
//!    override-free scenario must be reproduced by the exhaustive exploration (the
//!    simulated execution is one of the schedules the checker covers), and a checker lasso
//!    must be re-confirmed by replaying it through the streaming monitors
//!    ([`analysis::monitor::feed_lasso`]).
//!
//! Any disagreement is **shrunk**: the failing spec is greedily reduced (drop the fault,
//! simplify the daemon and workload, shrink the topology, lower ℓ) while the disagreement
//! reproduces, and the minimal spec is written to disk as a JSON [`ScenarioSpec`] that
//! `klex run <file> --backend check` replays.
//!
//! # Coverage guidance and the corpus
//!
//! Each clean evaluation is fingerprinted by an [`analysis::coverage::CoverageSignature`] —
//! a bucketed summary of the *structure* the scenario exercised (frontier shape, SCC
//! decomposition, channel occupancy extremes, verdict combination).  A [`Corpus`] maps each
//! signature key ever observed to one spec that reaches it; in **guided** mode
//! ([`FuzzOptions::guided`], `klex fuzz --campaign`) most new scenarios are produced by
//! mutating corpus entries ([`analysis::scenario::mutate_spec`]) rather than drawn blind,
//! which biases the search toward the frontier of already-reached structure.  Mutation also
//! explores dimensions the blind generator never samples (initial-configuration overrides,
//! bootstrapped roots, injected garbage), so a guided campaign discovers strictly more
//! distinct signatures per scenario than a blind one of the same seed — asserted by
//! `tests/fuzz_regression.rs`.
//!
//! A corpus can persist on disk (`klex fuzz --corpus DIR`): `MANIFEST.json` lists
//! `key → file` pairs and every `sig-*.json` is a plain replayable [`ScenarioSpec`].  Specs
//! added to a *persistent* corpus are first shrunk to a minimal spec with the same
//! signature ([`shrink_to_signature`]); greedy shrinking runs to a fixpoint, so re-shrinking
//! a committed entry is a no-op.  The committed corpus under `tests/corpus/` is replayed
//! through all engines by `tests/fuzz_regression.rs` on every CI run.
//!
//! # Determinism and sharding
//!
//! The campaign proceeds in fixed-size batches.  The spec of scenario `i` depends only on
//! the campaign seed, `i` (via [`analysis::harness::trial_seed`]) and the corpus snapshot
//! at the start of `i`'s batch; batches are evaluated across worker shards with
//! [`analysis::harness::run_sharded`] and merged back **in index order**.  The whole
//! campaign — signatures, corpus, disagreements — is therefore a function of
//! `(seed, options, starting corpus)` alone, identical at every `--shards` value.  CI runs
//! a fixed-seed smoke campaign (`klex fuzz --smoke --campaign`) whose zero-disagreement,
//! novelty-finding result is a regression gate.

use analysis::coverage::CoverageSignature;
use analysis::harness::{auto_shards, host_cores, run_sharded, trial_seed};
use analysis::monitor;
use analysis::{NullSink, ProgressSink};
use analysis::scenario::{mutate_spec, random_spec, GenLimits, ScenarioSpec, StopSpec};
use checker::{ExplorationReport, ExploreEngine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// Options of one campaign.
#[derive(Clone, Debug)]
pub struct FuzzOptions {
    /// Campaign seed; everything (generation and execution) is a function of it.
    pub seed: u64,
    /// Number of scenarios to generate and cross-check.
    pub scenarios: u64,
    /// Checker state budget per scenario (exceeding it truncates, which is fine: both
    /// engines must truncate identically).
    pub max_configurations: usize,
    /// Simulator activations per scenario.
    pub sim_steps: u64,
    /// Where to write the shrunk reproduction spec of a disagreement.
    pub out_dir: PathBuf,
    /// Print one line per scenario instead of a progress summary.
    pub verbose: bool,
    /// Worker count of the parallel checker arm; `0` derives it from the available cores
    /// (never below 2, so the work-stealing engine actually runs) and divides it by the
    /// shard count so sharded campaigns do not oversubscribe the host.
    pub threads: usize,
    /// Campaign shards: how many scenarios are cross-checked concurrently
    /// ([`analysis::harness::run_sharded`]); `0` = one per core.  Results are identical at
    /// every value.
    pub shards: usize,
    /// Directory of the persistent corpus (`MANIFEST.json` + `sig-*.json`); `None` keeps
    /// the corpus in memory for the duration of the campaign.
    pub corpus_dir: Option<PathBuf>,
    /// Coverage-guided mode: prefer mutating corpus entries over blind generation.
    pub guided: bool,
}

impl FuzzOptions {
    /// The default campaign: 200 scenarios with roomy per-scenario budgets.
    pub fn new(seed: u64) -> Self {
        FuzzOptions {
            seed,
            scenarios: 200,
            max_configurations: 20_000,
            sim_steps: 3_000,
            out_dir: PathBuf::from("."),
            verbose: false,
            threads: 0,
            shards: 0,
            corpus_dir: None,
            guided: false,
        }
    }

    /// The CI smoke campaign: the fixed seed and tightened budgets that keep 200 scenarios
    /// within roughly half a minute.
    pub fn smoke() -> Self {
        FuzzOptions {
            seed: CI_SEED,
            scenarios: 200,
            max_configurations: 6_000,
            sim_steps: 1_500,
            ..FuzzOptions::new(CI_SEED)
        }
    }
}

/// The fixed seed of the CI smoke campaign.
pub const CI_SEED: u64 = 0x5EED_C0DE;

/// Probability that a guided campaign mutates a corpus entry instead of drawing blind
/// (once the corpus is non-empty).  Kept below a half: the blind draws preserve the
/// generator's broad diversity while the mutation share adds the corpus-adjacent and
/// blind-unreachable (init-override) structure.
const GUIDED_MUTATION_P: f64 = 0.4;

/// Guided candidate redraws: how many times [`generate_one`] may reject a candidate from a
/// depleted stratum and draw again.
const GUIDED_REDRAWS: u32 = 6;

/// Evaluations a stratum needs before its novelty yield is trusted for rejection.
const STRATUM_MIN_TRIES: u64 = 3;

/// Acceptance-probability floor for depleted strata: even a stratum that stopped yielding
/// keeps a residual share of draws (its tail may still hide rare buckets).
const STRATUM_FLOOR: f64 = 0.1;

/// A candidate's generation stratum and the per-stratum novelty bookkeeping of one
/// campaign.
///
/// Strata are deliberately coarse — process count × protocol rung — so each accumulates
/// meaningful statistics within a few batches.  The campaign records, per stratum, how many
/// scenarios were evaluated and how many produced a *novel* signature; guided generation
/// then rejects (and redraws) candidates from strata whose observed yield has collapsed.
/// This is the second coverage-feedback channel next to corpus mutation: blind generation
/// keeps spending draws on regions it has already exhausted (small instances saturate their
/// handful of buckets within the first batches), while the guided campaign reallocates
/// those draws to strata that still produce new structure.
type Stratum = (usize, &'static str);

/// Per-stratum (evaluations, novel signatures) counts.
type StratumStats = BTreeMap<Stratum, (u64, u64)>;

fn stratum_of(spec: &ScenarioSpec) -> Stratum {
    (spec.topology.len(), spec.protocol.label())
}

/// Scenarios per deterministic generation/evaluation batch.  A constant (never a function
/// of the shard count): generation for a batch sees the corpus snapshot at the batch start,
/// so the batch size is part of the campaign's deterministic definition.
const BATCH: u64 = 32;

/// One cross-engine disagreement, with the spec that (still) reproduces it.
#[derive(Clone, Debug)]
pub struct Disagreement {
    /// Index of the generated scenario within the campaign.
    pub scenario_index: u64,
    /// What disagreed.
    pub detail: String,
    /// The shrunk reproducing spec.
    pub spec: ScenarioSpec,
    /// Where the reproducing spec was written (when writing succeeded).
    pub written_to: Option<PathBuf>,
}

/// Aggregate result of one campaign.
#[derive(Clone, Debug, Default)]
pub struct FuzzSummary {
    /// Scenarios generated and executed.
    pub scenarios: u64,
    /// Scenarios whose exploration covered the whole reachable space within budget.
    pub exhaustive: u64,
    /// Scenarios in which the checker found a fair starvation lasso.
    pub liveness_violations: u64,
    /// Scenarios in which the checker found a safety violation (expected for none of the
    /// generated regimes, but counted rather than assumed).
    pub safety_violations: u64,
    /// Scenarios on which the sim-vs-checker oracle applied (fault-free, override-free,
    /// exhaustively explored).
    pub differential_oracle_runs: u64,
    /// Distinct coverage-signature keys observed during this campaign.
    pub distinct_signatures: usize,
    /// Signature keys this campaign added to the corpus (not reached by any entry the
    /// corpus held when the campaign started).
    pub novel_signatures: u64,
    /// Corpus entries when the campaign started.
    pub initial_corpus_size: usize,
    /// Corpus entries when the campaign finished.
    pub corpus_size: usize,
    /// The disagreements found (empty is the healthy outcome).
    pub disagreements: Vec<Disagreement>,
}

impl FuzzSummary {
    /// True when the campaign finished without any cross-engine disagreement.
    pub fn clean(&self) -> bool {
        self.disagreements.is_empty()
    }
}

/// The result of one clean four-way evaluation of a spec.
#[derive(Clone, Debug)]
pub struct Evaluation {
    /// Distinct configurations the exploration visited.
    pub configurations: usize,
    /// The exploration covered the whole reachable space within budget.
    pub exhaustive: bool,
    /// The checker found a fair starvation lasso.
    pub liveness_violation: bool,
    /// The checker found a safety violation.
    pub safety_violation: bool,
    /// The sim-vs-checker safety oracle applied to this scenario.
    pub differential_oracle: bool,
    /// The structural coverage fingerprint (delta report + simulator monitor verdicts).
    pub signature: CoverageSignature,
}

// ---------------------------------------------------------------------------------------
// Corpus
// ---------------------------------------------------------------------------------------

/// One corpus entry: a (shrunken) spec reaching one coverage signature.
#[derive(Clone, Debug)]
pub struct CorpusEntry {
    /// The signature key ([`CoverageSignature::key`]) this spec reaches.
    pub key: String,
    /// File name of the spec inside the corpus directory (`sig-<hash>.json`).
    pub file: String,
    /// The spec itself.
    pub spec: ScenarioSpec,
}

/// A persistent (or in-memory) set of specs, one per distinct coverage signature.
///
/// On disk a corpus is a directory holding `MANIFEST.json` — `{"version": 1, "entries":
/// [{"key": …, "file": …}, …]}` — plus one plain [`ScenarioSpec`] JSON file per entry,
/// replayable with `klex run <file> --backend check`.
#[derive(Clone, Debug, Default)]
pub struct Corpus {
    dir: Option<PathBuf>,
    entries: BTreeMap<String, CorpusEntry>,
}

impl Corpus {
    /// An empty corpus that lives only for this process.
    pub fn in_memory() -> Corpus {
        Corpus::default()
    }

    /// Loads the corpus stored in `dir`; a missing directory or manifest yields an empty
    /// corpus *bound to* `dir` (the first [`Corpus::save`] creates it).
    pub fn load(dir: &Path) -> Result<Corpus, String> {
        let mut corpus = Corpus { dir: Some(dir.to_path_buf()), entries: BTreeMap::new() };
        let manifest_path = dir.join("MANIFEST.json");
        let text = match std::fs::read_to_string(&manifest_path) {
            Ok(text) => text,
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => return Ok(corpus),
            Err(err) => return Err(format!("unreadable {}: {err}", manifest_path.display())),
        };
        let manifest = serde_json::from_str(&text)
            .map_err(|e| format!("unparsable {}: {e}", manifest_path.display()))?;
        let Some(serde_json::Value::Array(listed)) = manifest.get("entries") else {
            return Err(format!("{} has no `entries` array", manifest_path.display()));
        };
        for entry in listed {
            let (Some(key), Some(file)) = (
                entry.get("key").and_then(|v| v.as_str()),
                entry.get("file").and_then(|v| v.as_str()),
            ) else {
                return Err(format!("{}: entry without key/file", manifest_path.display()));
            };
            let spec_path = dir.join(file);
            let spec_text = std::fs::read_to_string(&spec_path)
                .map_err(|e| format!("unreadable corpus spec {}: {e}", spec_path.display()))?;
            let spec = ScenarioSpec::from_json(&spec_text)
                .map_err(|e| format!("bad corpus spec {}: {e}", spec_path.display()))?;
            corpus.entries.insert(
                key.to_string(),
                CorpusEntry { key: key.to_string(), file: file.to_string(), spec },
            );
        }
        Ok(corpus)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the corpus holds no entry.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when some entry already reaches `key`.
    pub fn contains(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    /// True when the corpus persists to a directory (vs. in-memory only).
    pub fn is_persistent(&self) -> bool {
        self.dir.is_some()
    }

    /// The entries in key order (the iteration order every deterministic consumer uses).
    pub fn entries(&self) -> impl Iterator<Item = &CorpusEntry> {
        self.entries.values()
    }

    /// The specs in key order.
    pub fn specs(&self) -> Vec<&ScenarioSpec> {
        self.entries.values().map(|e| &e.spec).collect()
    }

    /// Adds (or replaces) the spec reaching `key`.
    pub fn insert(&mut self, key: String, spec: ScenarioSpec) {
        let file = format!("sig-{:016x}.json", fnv64(&key));
        self.entries.insert(key.clone(), CorpusEntry { key, file, spec });
    }

    /// Writes the manifest and every spec file; a no-op for in-memory corpora.
    pub fn save(&self) -> Result<(), String> {
        let Some(dir) = &self.dir else { return Ok(()) };
        std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        let mut manifest = String::from("{\n  \"version\": 1,\n  \"entries\": [\n");
        for (i, entry) in self.entries.values().enumerate() {
            // Keys and file names come from CoverageSignature::key()/fnv64: no characters
            // that need JSON escaping.
            manifest.push_str(&format!(
                "    {{\"key\": \"{}\", \"file\": \"{}\"}}{}\n",
                entry.key,
                entry.file,
                if i + 1 < self.entries.len() { "," } else { "" }
            ));
            let path = dir.join(&entry.file);
            std::fs::write(&path, entry.spec.to_json())
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        }
        manifest.push_str("  ]\n}\n");
        let path = dir.join("MANIFEST.json");
        std::fs::write(&path, manifest).map_err(|e| format!("cannot write {}: {e}", path.display()))
    }
}

/// FNV-1a over the key string — stable file names for corpus entries.
fn fnv64(s: &str) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for byte in s.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

// ---------------------------------------------------------------------------------------
// Campaign
// ---------------------------------------------------------------------------------------

/// Loads (or creates) the corpus named by the options, runs a campaign, and saves the
/// corpus back; see the [module docs](self).
pub fn run_campaign(opts: &FuzzOptions) -> Result<FuzzSummary, String> {
    let mut corpus = match &opts.corpus_dir {
        Some(dir) => Corpus::load(dir)?,
        None => Corpus::in_memory(),
    };
    let summary = run_campaign_with(opts, &mut corpus);
    corpus.save()?;
    Ok(summary)
}

/// Runs a campaign against a caller-managed corpus (which is mutated, not saved).
pub fn run_campaign_with(opts: &FuzzOptions, corpus: &mut Corpus) -> FuzzSummary {
    run_campaign_observed(opts, corpus, &NullSink)
}

/// [`run_campaign_with`] under observation: `sink` hears `"fuzz"` progress after every
/// evaluated batch and is polled for cancellation between batches (a batch is the
/// campaign's determinism unit, so stopping on its boundary leaves the corpus coherent —
/// the summary simply covers fewer scenarios).
pub fn run_campaign_observed(
    opts: &FuzzOptions,
    corpus: &mut Corpus,
    sink: &dyn ProgressSink,
) -> FuzzSummary {
    let limits = GenLimits {
        sim_steps: opts.sim_steps,
        max_configurations: opts.max_configurations,
        ..GenLimits::default()
    };
    let shards = if opts.shards == 0 { auto_shards() } else { opts.shards };
    let threads = resolved_threads(opts.threads, shards);
    // Persistent corpora are the regression suite: keep their entries minimal.  In-memory
    // campaigns skip the (evaluation-heavy) signature-preserving shrink.
    let shrink_novel = corpus.is_persistent();

    let mut summary = FuzzSummary { initial_corpus_size: corpus.len(), ..FuzzSummary::default() };
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut strata: StratumStats = BTreeMap::new();
    let mut index = 0u64;
    while index < opts.scenarios {
        if sink.cancelled() {
            break;
        }
        let batch = BATCH.min(opts.scenarios - index);
        // Generation sees the corpus and stratum-stats snapshots at the batch start; the
        // evaluation fans out over the shards; the merge below walks results in index
        // order.  Every step is a function of (seed, index, snapshot), so the campaign is
        // shard-count-independent.
        let bases: Vec<ScenarioSpec> = corpus.specs().into_iter().cloned().collect();
        let specs: Vec<ScenarioSpec> =
            (0..batch).map(|b| generate_one(opts, &limits, &bases, &strata, index + b)).collect();
        let outcomes =
            run_sharded(batch, opts.seed, shards, |b, _seed| evaluate(&specs[b as usize], threads));
        for (offset, outcome) in outcomes.into_iter().enumerate() {
            let scenario_index = index + offset as u64;
            let spec = &specs[offset];
            summary.scenarios += 1;
            match outcome {
                Ok(eval) => {
                    summary.exhaustive += u64::from(eval.exhaustive);
                    summary.liveness_violations += u64::from(eval.liveness_violation);
                    summary.safety_violations += u64::from(eval.safety_violation);
                    summary.differential_oracle_runs += u64::from(eval.differential_oracle);
                    let key = eval.signature.key();
                    if opts.verbose {
                        println!(
                            "  [{scenario_index:>4}] {} — {} states{} sig {key}",
                            spec.name,
                            eval.configurations,
                            if eval.exhaustive { "" } else { " (truncated)" },
                        );
                    }
                    seen.insert(key.clone());
                    let slot = strata.entry(stratum_of(spec)).or_insert((0, 0));
                    slot.0 += 1;
                    slot.1 += u64::from(!corpus.contains(&key));
                    if !corpus.contains(&key) {
                        summary.novel_signatures += 1;
                        let entry = if shrink_novel {
                            shrink_to_signature(spec.clone(), &key, threads)
                        } else {
                            spec.clone()
                        };
                        corpus.insert(key, entry);
                    }
                }
                Err(detail) => {
                    let shrunk = shrink(spec.clone(), threads);
                    let written_to = write_reproduction(opts, scenario_index, &shrunk);
                    summary.disagreements.push(Disagreement {
                        scenario_index,
                        detail,
                        spec: shrunk,
                        written_to,
                    });
                }
            }
        }
        index += batch;
        sink.progress("fuzz", index, opts.scenarios);
    }
    summary.distinct_signatures = seen.len();
    summary.corpus_size = corpus.len();
    summary
}

/// Resolves the parallel-arm worker count: an explicit `--threads` wins; otherwise derive
/// from the available cores, split across the campaign shards, and keep at least two
/// workers so the work-stealing engine runs for real (one worker silently degrades to the
/// sequential engine).
fn resolved_threads(threads: usize, shards: usize) -> usize {
    if threads != 0 {
        threads
    } else {
        (host_cores() / shards.max(1)).max(2)
    }
}

/// Produces the spec of scenario `index`: a mutation chain off a corpus entry in guided
/// mode (with probability [`GUIDED_MUTATION_P`] once the corpus is non-empty), a blind
/// draw otherwise — and, in guided mode, rejection-resampled away from strata whose
/// novelty yield has collapsed.  Deterministic in `(opts.seed, index, bases, strata)`.
fn generate_one(
    opts: &FuzzOptions,
    limits: &GenLimits,
    bases: &[ScenarioSpec],
    strata: &StratumStats,
    index: u64,
) -> ScenarioSpec {
    let mut rng = StdRng::seed_from_u64(trial_seed(opts.seed, index));
    let draw = |rng: &mut StdRng| {
        if opts.guided && !bases.is_empty() && rng.gen_bool(GUIDED_MUTATION_P) {
            let mut spec = bases[rng.gen_range(0usize..bases.len())].clone();
            for _ in 0..rng.gen_range(2u32..=5) {
                spec = mutate_spec(&spec, rng, limits);
            }
            // Fresh seed stream: the mutant inherits the base's *structure* (topology
            // shape, rung, parameters, overrides) but not its randomness, so mutants of
            // one corpus entry decorrelate instead of replaying near-identical executions.
            spec.base_seed = rng.gen::<u64>();
            spec
        } else {
            random_spec(rng, limits, "blind")
        }
    };
    let mut spec = draw(&mut rng);
    if opts.guided {
        for _ in 0..GUIDED_REDRAWS {
            let (tries, novel) =
                strata.get(&stratum_of(&spec)).copied().unwrap_or((0, 0));
            if tries < STRATUM_MIN_TRIES {
                break; // Not enough evidence to call the stratum depleted.
            }
            let observed_yield = novel as f64 / tries as f64;
            if rng.gen_bool(observed_yield.max(STRATUM_FLOOR)) {
                break; // Accept proportionally to how often this stratum still pays off.
            }
            spec = draw(&mut rng);
        }
    }
    // Uniform budgets and a campaign-unique label regardless of provenance (corpus entries
    // may carry shrunken budgets; comparisons across scenarios need equal ones).
    spec.check.max_configurations = opts.max_configurations;
    if matches!(spec.stop, StopSpec::Steps { .. }) {
        spec.stop = StopSpec::Steps { steps: opts.sim_steps };
    }
    spec.name = format!(
        "fuzz-{index} {} n={} k={} l={}",
        spec.protocol.label(),
        spec.topology.len(),
        spec.config.k,
        spec.config.l
    );
    spec
}

/// Runs the four executions of one spec, applies the oracles, and fingerprints the
/// behaviour.  `Err` carries a human-readable description of the first disagreement.
pub fn evaluate(spec: &ScenarioSpec, threads: usize) -> Result<Evaluation, String> {
    let scenario = spec
        .clone()
        .compile()
        .map_err(|e| format!("generated spec failed to validate: {e}"))?;

    let delta = scenario
        .check_with(ExploreEngine::Delta)
        .map_err(|e| format!("delta lowering failed: {e}"))?;
    let interned = scenario
        .check_with(ExploreEngine::Interned)
        .map_err(|e| format!("interned lowering failed: {e}"))?;
    compare_reports("delta", &delta, "interned", &interned)?;
    let parallel = scenario
        .check_parallel(threads.max(2))
        .map_err(|e| format!("parallel lowering failed: {e}"))?;
    compare_reports("delta", &delta, "parallel", &parallel)?;

    // The simulator run, monitored.  Monitors are advisory on faulty scenarios (a fault can
    // legitimately break the safety bounds); on fault-free, override-free scenarios whose
    // exploration was exhaustive they are an oracle: a monitor-observed safety violation is
    // one concrete schedule, and the checker covered all of them.  Fault-schedule campaigns
    // are excluded for the same reason as one-shot faults: the simulator's measured phase
    // starts from a post-campaign configuration the checker's exploration root does not
    // share step for step.
    let (_, monitors) = scenario.run_monitored();
    let oracle_applies = spec.fault.is_none()
        && spec.fault_schedule.is_none()
        && spec.init.is_none()
        && delta.exhaustive();
    let checker_safety_violated = delta.violations.iter().any(|v| v.property == "safety");
    if oracle_applies {
        for report in &monitors {
            let safety_monitor =
                report.name == "at-most-k-in-cs" || report.name == "l-availability";
            if safety_monitor && report.verdict.is_violated() && !checker_safety_violated {
                return Err(format!(
                    "monitor/checker mismatch: simulator monitor {} reports {:?} but the \
                     exhaustive exploration found no safety violation",
                    report.name, report.verdict
                ));
            }
        }
    }

    // A checker lasso must be re-confirmed by the streaming monitors replaying it.
    if let Some(witness) = delta.liveness.first() {
        let mut replay: Vec<Box<dyn monitor::TemporalMonitor>> = ["request-eventually-cs"]
            .iter()
            .map(|name| monitor::monitor_for(name, spec.config.k, spec.config.l).expect("known"))
            .collect();
        let verdicts = monitor::feed_lasso(&mut replay, witness);
        if !verdicts[0].verdict.is_violated() {
            return Err(format!(
                "monitor/checker mismatch: the checker reports a fair starvation lasso for \
                 process {} but the request-eventually-cs monitor replaying it returns {:?}",
                witness.victim, verdicts[0].verdict
            ));
        }
    }

    Ok(Evaluation {
        configurations: delta.configurations,
        exhaustive: delta.exhaustive(),
        liveness_violation: !delta.live(),
        safety_violation: checker_safety_violated,
        differential_oracle: oracle_applies,
        signature: CoverageSignature::of(&delta, &monitors),
    })
}

/// Field-for-field comparison of two engines' reports, labeled for the error message.
fn compare_reports(
    ln: &str,
    left: &ExplorationReport,
    rn: &str,
    right: &ExplorationReport,
) -> Result<(), String> {
    let mismatch = |what: &str, l: String, r: String| {
        Err(format!("{ln}/{rn} mismatch in {what}: {ln} {l} vs {rn} {r}"))
    };
    if left.configurations != right.configurations {
        return mismatch(
            "configurations",
            left.configurations.to_string(),
            right.configurations.to_string(),
        );
    }
    if left.transitions != right.transitions {
        return mismatch(
            "transitions",
            left.transitions.to_string(),
            right.transitions.to_string(),
        );
    }
    if left.max_depth != right.max_depth {
        return mismatch("max_depth", left.max_depth.to_string(), right.max_depth.to_string());
    }
    if left.truncated != right.truncated {
        return mismatch("truncated", left.truncated.to_string(), right.truncated.to_string());
    }
    if left.frontier_sizes != right.frontier_sizes {
        return mismatch(
            "frontier_sizes",
            format!("{:?}", left.frontier_sizes),
            format!("{:?}", right.frontier_sizes),
        );
    }
    if left.graph_summary != right.graph_summary {
        return mismatch(
            "graph_summary",
            format!("{:?}", left.graph_summary),
            format!("{:?}", right.graph_summary),
        );
    }
    let violations = |r: &ExplorationReport| -> Vec<(String, usize)> {
        r.violations.iter().map(|v| (v.property.clone(), v.depth)).collect()
    };
    if violations(left) != violations(right) {
        return mismatch(
            "violations",
            format!("{:?}", violations(left)),
            format!("{:?}", violations(right)),
        );
    }
    let deadlocks = |r: &ExplorationReport| -> Vec<(usize, Vec<usize>)> {
        r.deadlocks.iter().map(|d| (d.depth, d.blocked.clone())).collect()
    };
    if deadlocks(left) != deadlocks(right) {
        return mismatch(
            "deadlocks",
            format!("{:?}", deadlocks(left)),
            format!("{:?}", deadlocks(right)),
        );
    }
    let lassos = |r: &ExplorationReport| -> Vec<(usize, usize, usize)> {
        r.liveness.iter().map(|w| (w.victim, w.stem_len(), w.cycle_len())).collect()
    };
    if lassos(left) != lassos(right) {
        return mismatch(
            "liveness lassos",
            format!("{:?}", lassos(left)),
            format!("{:?}", lassos(right)),
        );
    }
    Ok(())
}

// ---------------------------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------------------------

/// Greedy predicate-preserving shrinking: repeatedly tries a fixed menu of simplifications,
/// keeping any candidate that still validates and satisfies `keep`, until none applies.
/// Running to the fixpoint makes shrinking idempotent: re-shrinking the result changes
/// nothing, because every menu candidate was already tried and rejected in the final round.
pub fn shrink_with(mut spec: ScenarioSpec, keep: &dyn Fn(&ScenarioSpec) -> bool) -> ScenarioSpec {
    loop {
        let mut reduced = false;
        for candidate in shrink_candidates(&spec) {
            if candidate.clone().compile().is_err() {
                continue;
            }
            if keep(&candidate) {
                spec = candidate;
                reduced = true;
                break;
            }
        }
        if !reduced {
            return spec;
        }
    }
}

/// Shrinks a disagreeing spec while *some* disagreement reproduces (any disagreement
/// counts, so the reduction cannot wander off to a different-but-real bug).
fn shrink(spec: ScenarioSpec, threads: usize) -> ScenarioSpec {
    shrink_with(spec, &|candidate| evaluate(candidate, threads).is_err())
}

/// Shrinks a spec while it keeps evaluating cleanly **to the same signature key** — the
/// corpus-minimization shrink.  Because the signature encodes the verdict flags (safety,
/// deadlock, lasso, monitor verdicts), the shrunken spec still reproduces its verdict.
pub fn shrink_to_signature(spec: ScenarioSpec, key: &str, threads: usize) -> ScenarioSpec {
    shrink_with(spec, &|candidate| {
        evaluate(candidate, threads).map(|e| e.signature.key() == key).unwrap_or(false)
    })
}

/// The simplification menu, most drastic first.
fn shrink_candidates(spec: &ScenarioSpec) -> Vec<ScenarioSpec> {
    use analysis::scenario::{DaemonSpec, TopologySpec, WorkloadSpec};
    let mut out = Vec::new();
    let mut push = |f: &dyn Fn(&mut ScenarioSpec)| {
        let mut candidate = spec.clone();
        f(&mut candidate);
        if candidate != *spec {
            out.push(candidate);
        }
    };
    // Shrink the topology.
    let n = spec.topology.len();
    if n > 2 {
        push(&|s| s.topology = TopologySpec::Chain { n: n - 1 });
    }
    push(&|s| s.topology = TopologySpec::Chain { n });
    // Drop overrides, the faults (whole schedule first, then epoch by epoch), and simplify
    // the daemon.
    push(&|s| s.init = None);
    push(&|s| s.fault = None);
    push(&|s| s.fault_schedule = None);
    if spec.fault_schedule.as_ref().is_some_and(|sched| sched.epochs.len() > 1) {
        push(&|s| {
            if let Some(sched) = &mut s.fault_schedule {
                sched.epochs.pop();
            }
        });
    }
    push(&|s| s.daemon = DaemonSpec::RoundRobin);
    // Simplify the workload.
    push(&|s| {
        if let WorkloadSpec::Needs { needs, hold } = &s.workload {
            let mut needs = needs.clone();
            if let Some(first_busy) = needs.iter().position(|&u| u > 0) {
                needs[first_busy] = 0;
                s.workload = WorkloadSpec::Needs { needs, hold: *hold };
            }
        }
    });
    push(&|s| {
        let hold = match &s.workload {
            WorkloadSpec::Saturated { hold, .. } | WorkloadSpec::Needs { hold, .. } => *hold,
            _ => 0,
        };
        if hold > 0 {
            match &mut s.workload {
                WorkloadSpec::Saturated { hold, .. } | WorkloadSpec::Needs { hold, .. } => {
                    *hold = 0
                }
                _ => {}
            }
        }
    });
    push(&|s| s.workload = WorkloadSpec::Saturated { units: 1, hold: 0 });
    // Shrink the parameters.
    if spec.config.l > 1 {
        push(&|s| {
            s.config.l -= 1;
            s.config.k = s.config.k.min(s.config.l);
        });
    }
    // Shorten the simulated run.
    if let StopSpec::Steps { steps } = spec.stop {
        if steps > 200 {
            push(&|s| s.stop = StopSpec::Steps { steps: steps / 2 });
        }
    }
    out
}

/// Writes the shrunk reproduction spec to `out_dir`, returning the path on success.
fn write_reproduction(opts: &FuzzOptions, index: u64, spec: &ScenarioSpec) -> Option<PathBuf> {
    let path = opts.out_dir.join(format!("klex-fuzz-failure-{:#x}-{index}.json", opts.seed));
    match std::fs::write(&path, spec.to_json()) {
        Ok(()) => Some(path),
        Err(err) => {
            eprintln!("could not write the reproduction spec to {}: {err}", path.display());
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> FuzzOptions {
        FuzzOptions {
            scenarios: 6,
            max_configurations: 1_500,
            sim_steps: 300,
            out_dir: std::env::temp_dir(),
            ..FuzzOptions::new(7)
        }
    }

    #[test]
    fn a_tiny_campaign_is_deterministic_and_clean() {
        let first = run_campaign(&tiny_opts()).unwrap();
        assert!(first.clean(), "disagreements: {:?}", first.disagreements);
        assert_eq!(first.scenarios, 6);
        assert!(first.distinct_signatures >= 1);
        let second = run_campaign(&tiny_opts()).unwrap();
        assert_eq!(first.exhaustive, second.exhaustive);
        assert_eq!(first.liveness_violations, second.liveness_violations);
        assert_eq!(first.safety_violations, second.safety_violations);
        assert_eq!(first.distinct_signatures, second.distinct_signatures);
        assert_eq!(first.novel_signatures, second.novel_signatures);
    }

    #[test]
    fn campaigns_are_shard_count_independent() {
        let run_at = |shards: usize| {
            let opts = FuzzOptions { shards, ..tiny_opts() };
            let mut corpus = Corpus::in_memory();
            let summary = run_campaign_with(&opts, &mut corpus);
            let keys: Vec<String> = corpus.entries().map(|e| e.key.clone()).collect();
            (summary.distinct_signatures, summary.novel_signatures, keys)
        };
        let one = run_at(1);
        let four = run_at(4);
        assert_eq!(one, four);
    }

    #[test]
    fn guided_campaigns_reuse_and_extend_the_corpus() {
        let opts = FuzzOptions { guided: true, ..tiny_opts() };
        let mut corpus = Corpus::in_memory();
        let first = run_campaign_with(&opts, &mut corpus);
        assert!(first.clean(), "disagreements: {:?}", first.disagreements);
        assert_eq!(first.initial_corpus_size, 0);
        assert_eq!(first.corpus_size, corpus.len());
        assert!(first.novel_signatures >= 1);
        // A second campaign over the same corpus counts only *new* keys as novel: the
        // corpus grows by exactly the novel count, never by re-found keys.
        let second = run_campaign_with(&opts, &mut corpus);
        assert!(second.clean());
        assert_eq!(second.initial_corpus_size, first.corpus_size);
        assert_eq!(
            second.corpus_size,
            second.initial_corpus_size + second.novel_signatures as usize
        );
    }

    #[test]
    fn corpora_roundtrip_through_disk() {
        let dir = std::env::temp_dir().join(format!("klex-corpus-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut corpus = Corpus::load(&dir).unwrap();
        assert!(corpus.is_empty() && corpus.is_persistent());
        let mut rng = StdRng::seed_from_u64(5);
        let spec = random_spec(&mut rng, &GenLimits::default(), "roundtrip");
        corpus.insert("s1d1p1f0-key".to_string(), spec.clone());
        corpus.save().unwrap();
        let reloaded = Corpus::load(&dir).unwrap();
        assert_eq!(reloaded.len(), 1);
        assert!(reloaded.contains("s1d1p1f0-key"));
        assert_eq!(reloaded.specs()[0], &spec);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shrinking_candidates_always_validate_or_are_skipped() {
        let mut rng = StdRng::seed_from_u64(3);
        let spec = random_spec(&mut rng, &GenLimits::default(), "shrink-menu");
        let candidates = shrink_candidates(&spec);
        assert!(!candidates.is_empty());
        for candidate in candidates {
            let n = candidate.topology.len();
            assert!(n >= 2 || candidate.clone().compile().is_err());
        }
    }
}
