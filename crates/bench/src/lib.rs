//! `bench` — the experiment library behind every figure/theorem reproduction.
//!
//! Each experiment of `DESIGN.md` §4 is a function in [`experiments`] returning a titled list
//! of [`analysis::ExperimentRow`]s; the binaries in `src/bin/` are thin wrappers that run one
//! experiment and print its markdown table (plus JSON lines when `--json` is passed), and the
//! Criterion benches in `benches/` time the underlying simulation kernels.
//!
//! Scale knobs: every experiment accepts a [`Scale`] so the same code serves quick smoke runs
//! (`Scale::quick()`, used in tests and CI) and the fuller runs recorded in `EXPERIMENTS.md`
//! (`Scale::full()`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod fuzz;
pub mod history;
pub mod runner;
pub mod serve;
pub mod support;

pub use support::Scale;

use analysis::ExperimentRow;

/// A titled experiment result, ready to render.
pub struct ExperimentReport {
    /// Experiment identifier and description (e.g. `"E2 — Figure 2: deadlock of the naive protocol"`).
    pub title: String,
    /// One row per scenario/parameter point.
    pub rows: Vec<ExperimentRow>,
}

impl ExperimentReport {
    /// Renders the report as a markdown table.
    pub fn to_markdown(&self) -> String {
        analysis::render_markdown_table(&self.title, &self.rows)
    }

    /// Renders the report as JSON lines.
    pub fn to_jsonl(&self) -> String {
        analysis::harness::render_jsonl(&self.rows)
    }
}

/// Standard `main` body for the experiment binaries: runs the report produced by `f` at the
/// scale selected by the `KLEX_SCALE` environment variable (`quick` or `full`, default full)
/// and prints markdown (and JSON lines when `--json` is among the arguments).
pub fn run_binary(f: impl FnOnce(Scale) -> ExperimentReport) {
    let scale = match std::env::var("KLEX_SCALE").as_deref() {
        Ok("quick") => Scale::quick(),
        _ => Scale::full(),
    };
    let report = f(scale);
    println!("{}", report.to_markdown());
    if std::env::args().any(|a| a == "--json") {
        println!("{}", report.to_jsonl());
    }
}
