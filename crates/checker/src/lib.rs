//! `checker` — bounded-exhaustive state-space exploration of the k-out-of-ℓ exclusion
//! protocols.
//!
//! The simulation experiments (`bench` crate) sample *some* executions of each protocol; this
//! crate complements them by enumerating **every** reachable configuration of a small instance
//! under **every** possible scheduling, and checking properties on all of them.  It explores
//! the actual protocol implementations from `klex-core` (not a re-model): configurations are
//! snapshots of the real process states and channel contents, and transitions are the real
//! [`treenet::Network::execute`] steps.
//!
//! What can be verified this way (on instances small enough to enumerate):
//!
//! * **Safety invariance** — the per-process and global reservation bounds (the paper's safety
//!   property) hold in *every* reachable configuration, not just the sampled ones.
//! * **Closure** (half of self-stabilization, Definition 1) — starting from a legitimate
//!   configuration, every reachable configuration is again legitimate.
//! * **Reachability of the Figure 2 deadlock** — the naive ℓ-token circulation really can
//!   reach a configuration where requesters block forever, and the pusher-augmented protocol
//!   cannot (exhaustively, for the same instance).
//! * **Existence of the Figure 3 livelock** — under the pusher-only protocol there is a
//!   reachable *cycle* of configurations along which one requester stays unsatisfied while
//!   other processes keep entering their critical sections; with the priority token the cycle
//!   disappears.
//!
//! # Scope and honesty
//!
//! Exploration is exhaustive **up to the configured limits** ([`Limits`]) and **up to the state
//! abstraction** described in [`snapshot`]: the root's timeout counter is not part of the
//! abstraction, so checked networks must be built with an effectively infinite timeout
//! ([`scenarios::ss_for_checking`] does this), and application drivers must be *stateless*
//! (their decisions may depend only on the observable `State`/`Need`, see [`drivers`]).
//! Within those bounds the exploration covers every interleaving of message deliveries and
//! process activations — a far stronger guarantee than any number of random schedules.
//!
//! # Engine design
//!
//! The exploration core works on **interned packed configurations**: every visited
//! configuration is serialized once into a canonical flat byte string (see
//! [`snapshot::pack_configuration`]) and hash-consed by a [`StateArena`] into a dense
//! [`StateId`].  The invariants the engine relies on:
//!
//! * the packed encoding is *injective* — equal configurations ⇔ equal bytes — so byte
//!   equality in the arena is configuration equality;
//! * ids are assigned in BFS discovery order, so `depths` is monotone, parent links always
//!   point to smaller ids, and states are expanded in id order (which is what lets the
//!   recorded [`StateGraph`] store edges in one flat CSR vector);
//! * restoring a frontier state borrows its bytes from the arena
//!   ([`snapshot::restore_packed`]); the hot loop performs no configuration clones and no
//!   SipHash hashing.
//!
//! [`Explorer::run_parallel`] discovers the reachable set with N work-stealing delta
//! workers interning into a lock-striped sharded arena, then replays the workers'
//! schedule-independent expansion logs through the sequential engine in canonical BFS
//! order, so sequential and parallel runs produce **identical** ids, counts, and reports;
//! see [`explore`] for details.
//!
//! # Quickstart
//!
//! ```
//! use checker::{drivers, properties, scenarios, Explorer, Limits};
//!
//! // Exhaustively check the safety bounds of the full protocol on a 3-node tree.
//! let mut net = scenarios::ss_for_checking(
//!     topology::builders::figure3_tree(),
//!     klex_core::KlConfig::new(2, 3, 3),
//!     |_| Box::new(drivers::AlwaysRequest::new(1)),
//! );
//! let cfg = *net.node(0).config();
//! let report = Explorer::new(&mut net)
//!     .with_limits(Limits { max_configurations: 20_000, max_depth: usize::MAX })
//!     .with_property(properties::safety(cfg))
//!     .run();
//! assert!(report.violations.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cycles;
pub mod drivers;
pub mod explore;
pub mod liveness;
pub mod properties;
pub mod scenarios;
pub mod snapshot;

pub use cycles::{find_progress_cycle, CycleWitness};
pub use liveness::{find_fair_cycles, LassoWitness};
pub use explore::{
    DeadlockWitness, Edge, ExplorationReport, ExploreEngine, ExploreProgress, Explorer,
    GraphSummary, Limits, StateGraph, Violation,
};
pub use properties::Property;
pub use snapshot::{
    capture, capture_packed, pack_configuration, restore, restore_packed,
    restore_packed_mapped, segment_term, segmented_hash, unpack_configuration, CheckableNode,
    Configuration, CtrlState, InternOutcome, NodeState, SegmentMap, StateArena, StateId,
};
