//! Stateless application drivers for state-space exploration.
//!
//! The explorer identifies two configurations whenever their protocol states and channel
//! contents agree; anything *outside* that abstraction must not influence behaviour, or the
//! exploration would silently merge behaviourally different states.  Driver decisions are
//! therefore restricted to pure functions of the observable request state: the drivers in
//! this module carry no mutable state and ignore the logical clock.
//!
//! Statelessness matters twice over for the delta engine ([`crate::ExploreEngine::Delta`]):
//! it derives every sibling successor by executing in place and *reverting* — the revert
//! restores the captured node state and channel contents, but a driver's hidden mutable
//! state (if it had any) would not be rewound, and the logical clock deliberately keeps
//! advancing across apply/revert pairs.  A driver whose answers depend on call count or on
//! `now` would therefore make the two engines (and successive siblings within one engine)
//! diverge.  The [`HoldOneActivation`] comparison `now > entered_at` is the one sanctioned
//! use of the clock: with `entered_at` normalized to 0 by every restore path, its value is a
//! pure function of the captured configuration and the activation being executed.
//!
//! | Driver | `next_request` | `release_cs` | models |
//! |---|---|---|---|
//! | [`AlwaysRequest`] | always `Some(units)` | immediately | a saturated requester whose critical section is instantaneous |
//! | [`HoldOneActivation`] | always `Some(units)` | at the process's *next* activation | a saturated requester whose critical section spans at least one activation — the shortest critical section that is visible in captured configurations (required to express the Figure-3 livelock, whose cycle needs processes to *hold* tokens while the pusher passes) |
//! | [`RequestAndHold`] | always `Some(units)` | never | a process pinned in its critical section (the set *I* of the (k,ℓ)-liveness property) |
//! | [`NeverRequest`] | never | immediately | a passive process |

use treenet::app::{AppDriver, BoxedDriver};
use treenet::NodeId;

/// Requests the same number of units every time it is idle and releases the critical section
/// on the first tick after entering it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AlwaysRequest {
    units: usize,
}

impl AlwaysRequest {
    /// A driver that perpetually requests `units` resource units.
    pub fn new(units: usize) -> Self {
        AlwaysRequest { units }
    }

    /// The boxed form expected by the protocol constructors.
    pub fn boxed(units: usize) -> BoxedDriver {
        Box::new(AlwaysRequest::new(units))
    }
}

impl AppDriver for AlwaysRequest {
    fn next_request(&mut self, _node: NodeId, _now: u64) -> Option<usize> {
        Some(self.units)
    }

    fn release_cs(&mut self, _node: NodeId, _now: u64, _entered_at: u64) -> bool {
        true
    }
}

/// Requests the same number of units every time it is idle, and releases the critical section
/// at the process's **next** activation after entering it (never within the entering
/// activation itself).
///
/// The decision uses only the comparison `now > entered_at`, which at the start of any
/// activation is true for every process already in its critical section (the logical clock is
/// strictly increasing) and false exactly during the activation that performed the entry — so
/// the behaviour is a deterministic function of the captured configuration and the chosen
/// activation, as the explorer's state abstraction requires.  This is the shortest critical
/// section that leaves a visible `In` configuration, which is what the Figure-3 livelock
/// needs: the pusher must be able to pass a process *while* it holds its tokens.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HoldOneActivation {
    units: usize,
}

impl HoldOneActivation {
    /// A driver that perpetually requests `units` units and holds each critical section until
    /// its next activation.
    pub fn new(units: usize) -> Self {
        HoldOneActivation { units }
    }

    /// The boxed form expected by the protocol constructors.
    pub fn boxed(units: usize) -> BoxedDriver {
        Box::new(HoldOneActivation::new(units))
    }
}

impl AppDriver for HoldOneActivation {
    fn next_request(&mut self, _node: NodeId, _now: u64) -> Option<usize> {
        Some(self.units)
    }

    fn release_cs(&mut self, _node: NodeId, now: u64, entered_at: u64) -> bool {
        now > entered_at
    }
}

/// Requests once and then stays in the critical section forever.
///
/// Used to realise the set *I* of the (k,ℓ)-liveness property (processes that hold resource
/// units forever) and to build worst-case blocking scenarios.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RequestAndHold {
    units: usize,
}

impl RequestAndHold {
    /// A driver that requests `units` units and never releases them.
    pub fn new(units: usize) -> Self {
        RequestAndHold { units }
    }

    /// The boxed form expected by the protocol constructors.
    pub fn boxed(units: usize) -> BoxedDriver {
        Box::new(RequestAndHold::new(units))
    }
}

impl AppDriver for RequestAndHold {
    fn next_request(&mut self, _node: NodeId, _now: u64) -> Option<usize> {
        Some(self.units)
    }

    fn release_cs(&mut self, _node: NodeId, _now: u64, _entered_at: u64) -> bool {
        false
    }
}

/// Never requests anything (identical in behaviour to [`treenet::app::Idle`], provided here so
/// checking scenarios can be described entirely with this module).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NeverRequest;

impl NeverRequest {
    /// The boxed form expected by the protocol constructors.
    pub fn boxed() -> BoxedDriver {
        Box::new(NeverRequest)
    }
}

impl AppDriver for NeverRequest {
    fn next_request(&mut self, _node: NodeId, _now: u64) -> Option<usize> {
        None
    }

    fn release_cs(&mut self, _node: NodeId, _now: u64, _entered_at: u64) -> bool {
        true
    }
}

/// Builds a per-node driver map from a slice of requested unit counts: `needs[v] == 0` yields
/// [`NeverRequest`], anything else an [`AlwaysRequest`] for that many units.
pub fn from_needs(needs: &[usize]) -> impl FnMut(NodeId) -> BoxedDriver + '_ {
    move |node| {
        let units = needs.get(node).copied().unwrap_or(0);
        if units == 0 {
            NeverRequest::boxed()
        } else {
            AlwaysRequest::boxed(units)
        }
    }
}

/// Like [`from_needs`], but requesters hold their critical sections across one activation
/// ([`HoldOneActivation`]) instead of releasing instantaneously.
pub fn from_needs_holding(needs: &[usize]) -> impl FnMut(NodeId) -> BoxedDriver + '_ {
    move |node| {
        let units = needs.get(node).copied().unwrap_or(0);
        if units == 0 {
            NeverRequest::boxed()
        } else {
            HoldOneActivation::boxed(units)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_request_is_stateless_and_saturated() {
        let mut d = AlwaysRequest::new(2);
        for now in 0..5 {
            assert_eq!(d.next_request(1, now), Some(2));
            assert!(d.release_cs(1, now, 0));
        }
    }

    #[test]
    fn hold_one_activation_releases_only_on_a_later_activation() {
        let mut d = HoldOneActivation::new(2);
        assert_eq!(d.next_request(0, 5), Some(2));
        // Same activation as the entry: do not release.
        assert!(!d.release_cs(0, 5, 5));
        // Any later activation releases.
        assert!(d.release_cs(0, 6, 5));
        // After a restore entered_at is reset to 0 and the clock is ahead: releases.
        assert!(d.release_cs(0, 100, 0));
    }

    #[test]
    fn from_needs_holding_builds_holding_requesters() {
        let needs = [1usize, 0];
        let mut make = from_needs_holding(&needs);
        let mut holder = make(0);
        assert_eq!(holder.next_request(0, 3), Some(1));
        assert!(!holder.release_cs(0, 3, 3));
        let mut passive = make(1);
        assert_eq!(passive.next_request(1, 0), None);
    }

    #[test]
    fn request_and_hold_never_releases() {
        let mut d = RequestAndHold::new(1);
        assert_eq!(d.next_request(0, 0), Some(1));
        assert!(!d.release_cs(0, 1_000_000, 0));
    }

    #[test]
    fn never_request_is_passive() {
        let mut d = NeverRequest;
        assert_eq!(d.next_request(0, 0), None);
        assert!(d.release_cs(0, 0, 0));
    }

    #[test]
    fn from_needs_maps_zero_to_passive() {
        let needs = [0usize, 2, 1];
        let mut make = from_needs(&needs);
        let mut passive = make(0);
        let mut busy = make(1);
        assert_eq!(passive.next_request(0, 0), None);
        assert_eq!(busy.next_request(1, 0), Some(2));
        // Out-of-range nodes default to passive.
        let mut extra = make(7);
        assert_eq!(extra.next_request(7, 0), None);
    }
}
