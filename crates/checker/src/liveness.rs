//! Fair-cycle (liveness-violation) detection on the explored state graph.
//!
//! The paper's correctness claim has a liveness half — (k, ℓ)-liveness: every requesting
//! process eventually enters its critical section — that a safety-only exhaustive check
//! never touches.  A liveness violation of a finite-state system is a **lasso**: a finite
//! stem from the initial configuration into a cycle along which some process requests
//! forever without ever entering its critical section.  Not every such cycle is a genuine
//! violation, though: the asynchronous model assumes a *weakly fair* daemon (every process
//! is activated infinitely often, and a message that stays deliverable is eventually
//! delivered), so a cycle in which the victim starves only because the schedule never runs
//! it — or never delivers the token sitting in its channel — contradicts the fairness
//! assumption and must be pruned.
//!
//! [`find_fair_cycles`] searches the [`StateGraph`] recorded by an exploration (enable
//! [`crate::Explorer::check_liveness`], which implies graph recording) for fair starvation
//! lassos.  For each candidate victim `v` it
//!
//! 1. restricts the graph to configurations in which `v` is an unsatisfied requester
//!    (`State = Req`, `|RSet| < Need`) and decomposes the restriction into strongly
//!    connected components (Tarjan, shared with [`crate::cycles`]);
//! 2. prunes every SCC that cannot host a *weakly fair* infinite execution:
//!    * **progress** — some internal edge must enter a critical section of a process other
//!      than `v` (a cycle without progress is a stuttering schedule, not a protocol
//!      livelock);
//!    * **tick coverage** — for every process `u` the SCC must contain an internal `Tick u`
//!      edge; ticks are always enabled, so a fair execution activates every process
//!      infinitely often, and if every `Tick u` edge leaves the SCC no fair run can stay;
//!    * **delivery coverage** — for every channel that is non-empty in *every* SCC
//!      configuration, the SCC must contain an internal delivery of that channel; a message
//!      that stays deliverable forever but is never delivered starves the channel, which a
//!      fair daemon does not do;
//! 3. builds a concrete witness cycle through the surviving SCC that is weakly fair **by
//!    construction**: it traverses one progress edge, one `Tick u` edge per process, and —
//!    for every channel — either an edge delivering it or a configuration in which it is
//!    empty; plus the shortest stem from the initial configuration to the cycle entry.
//!
//! On the Figure-3 instance the search finds a lasso starving the 2-unit requester under
//! the pusher-only protocol and finds none under the priority-augmented or self-stabilizing
//! protocols — the distinction the paper introduces the priority token for, now verified as
//! a *fair-cycle* result rather than a hand-picked victim query
//! (cf. [`crate::cycles::find_progress_cycle`], which this module generalizes).
//!
//! Soundness: a returned witness is always a real fair execution of the explored fragment
//! (states and edges are real configurations and transitions).  *Absence* of witnesses
//! proves liveness only when the exploration was exhaustive
//! ([`crate::ExplorationReport::exhaustive`]) — on a truncated graph a cycle may lie beyond
//! the bound.

use crate::explore::StateGraph;
use crate::snapshot::Configuration;
use std::collections::VecDeque;
use treenet::{Activation, CsState, NodeId};

/// Maximum network size the liveness analysis supports (per-state facts are stored as
/// 64-bit masks; checker instances are far smaller).
pub const MAX_LIVENESS_NODES: usize = 64;

/// A lasso witnessing a fair starvation: `stem` leads from the initial configuration to the
/// cycle entry, and repeating `cycle` forever is a weakly fair execution along which
/// `victim` remains an unsatisfied requester while `progress_nodes` keep entering their
/// critical sections.
#[derive(Clone, Debug)]
pub struct LassoWitness {
    /// The starved process.
    pub victim: NodeId,
    /// Activations from the initial configuration to the cycle entry.
    pub stem: Vec<Activation>,
    /// State-graph indices along the stem; `stem_states[0]` is the initial configuration
    /// and `stem_states.last()` is the cycle entry (`cycle_states[0]`), so the length is
    /// `stem.len() + 1`.
    pub stem_states: Vec<usize>,
    /// Activations of the cycle; `cycle[i]` leads from `cycle_states[i]` to
    /// `cycle_states[(i + 1) % len]`.
    pub cycle: Vec<Activation>,
    /// State-graph indices around the cycle (same length as `cycle`).
    pub cycle_states: Vec<usize>,
    /// Processes other than the victim that enter their critical section along the cycle.
    pub progress_nodes: Vec<NodeId>,
    /// Decoded configurations along the stem (aligned with `stem_states`).
    pub stem_configs: Vec<Configuration>,
    /// Decoded configurations around the cycle (aligned with `cycle_states`).
    pub cycle_configs: Vec<Configuration>,
    /// Critical-section entries on each stem transition (aligned with `stem`).
    pub stem_cs: Vec<Vec<NodeId>>,
    /// Critical-section entries on each cycle transition (aligned with `cycle`).
    pub cycle_cs: Vec<Vec<NodeId>>,
}

impl LassoWitness {
    /// Length of the cycle in transitions.
    pub fn cycle_len(&self) -> usize {
        self.cycle.len()
    }

    /// Length of the stem in transitions.
    pub fn stem_len(&self) -> usize {
        self.stem.len()
    }

    /// A compact human-readable rendering of the lasso (victim, stem, cycle actions).
    pub fn render(&self) -> String {
        let fmt_act = |a: &Activation| match a {
            Activation::Tick { node } => format!("tick {node}"),
            Activation::Deliver { node, channel } => format!("deliver ({node},{channel})"),
        };
        let cycle: Vec<String> = self.cycle.iter().map(fmt_act).collect();
        format!(
            "process {} requests forever without entering its critical section\n  stem: {} \
             activations to state {}\n  cycle ({} activations, progress by {:?}): {}",
            self.victim,
            self.stem.len(),
            self.cycle_states.first().copied().unwrap_or(0),
            self.cycle.len(),
            self.progress_nodes,
            cycle.join(" → "),
        )
    }
}

/// Per-state facts the analysis needs, decoded from the packed arena exactly once.
struct StateFacts {
    /// Number of processes.
    n: usize,
    /// `u64` words per state in `chan_nonempty`.
    chan_words: usize,
    /// Bit `v` of `starving[id]`: process `v` is an unsatisfied requester in state `id`.
    starving: Vec<u64>,
    /// Bit `c` (flat channel index) set when the channel holds at least one message.
    chan_nonempty: Vec<u64>,
    /// Flat index of channel `(node, label)`: `chan_base[node] + label`.
    chan_base: Vec<usize>,
}

impl StateFacts {
    fn decode(graph: &StateGraph) -> Option<StateFacts> {
        if graph.is_empty() {
            return None;
        }
        let first = graph.config(0);
        let n = first.nodes.len();
        assert!(
            n <= MAX_LIVENESS_NODES,
            "liveness analysis supports at most {MAX_LIVENESS_NODES} processes, got {n}"
        );
        let mut chan_base = Vec::with_capacity(n + 1);
        let mut total = 0usize;
        chan_base.push(0);
        for per_node in &first.channels {
            total += per_node.len();
            chan_base.push(total);
        }
        let chan_words = total.div_ceil(64).max(1);
        let mut facts = StateFacts {
            n,
            chan_words,
            starving: Vec::with_capacity(graph.len()),
            chan_nonempty: vec![0; graph.len() * chan_words],
            chan_base,
        };
        facts.record(0, &first);
        for id in 1..graph.len() {
            let config = graph.config(id);
            facts.record(id, &config);
        }
        Some(facts)
    }

    fn record(&mut self, id: usize, config: &Configuration) {
        let mut mask = 0u64;
        for (v, s) in config.nodes.iter().enumerate() {
            if s.cs == CsState::Req && s.rset.len() < s.need {
                mask |= 1 << v;
            }
        }
        self.starving.push(mask);
        let words = &mut self.chan_nonempty[id * self.chan_words..(id + 1) * self.chan_words];
        for (v, per_node) in config.channels.iter().enumerate() {
            for (l, channel) in per_node.iter().enumerate() {
                if !channel.is_empty() {
                    let flat = self.chan_base[v] + l;
                    words[flat / 64] |= 1 << (flat % 64);
                }
            }
        }
    }

    fn starves(&self, id: usize, victim: NodeId) -> bool {
        self.starving[id] & (1 << victim) != 0
    }

    fn channel_nonempty(&self, id: usize, flat: usize) -> bool {
        self.chan_nonempty[id * self.chan_words + flat / 64] & (1 << (flat % 64)) != 0
    }

    fn total_channels(&self) -> usize {
        *self.chan_base.last().expect("chan_base has n + 1 entries")
    }

    fn flat_channel(&self, node: NodeId, label: usize) -> usize {
        self.chan_base[node] + label
    }
}

/// Searches the recorded graph for fair starvation lassos, one witness per starved victim
/// (in ascending victim order).  Empty when no weakly fair cycle starves any process — a
/// liveness *proof* when the exploration was exhaustive (see the module docs).
///
/// # Panics
///
/// Panics if the graph describes more than [`MAX_LIVENESS_NODES`] processes.
pub fn find_fair_cycles(graph: &StateGraph) -> Vec<LassoWitness> {
    let Some(facts) = StateFacts::decode(graph) else {
        return Vec::new();
    };
    (0..facts.n).filter_map(|victim| find_fair_cycle_for(graph, &facts, victim)).collect()
}

/// One anchor the witness cycle must pass through to be weakly fair by construction.
enum Requirement {
    /// Traverse this exact edge (source state, edge index at the source).
    Edge(usize, usize),
    /// Visit this state (a configuration in which some otherwise-uncovered channel is
    /// empty).
    State(usize),
}

fn find_fair_cycle_for(
    graph: &StateGraph,
    facts: &StateFacts,
    victim: NodeId,
) -> Option<LassoWitness> {
    let n = graph.len();
    let in_scope: Vec<bool> = (0..n).map(|id| facts.starves(id, victim)).collect();
    if !in_scope.iter().any(|&s| s) {
        return None;
    }
    let scc = crate::cycles::tarjan_scc(graph, &in_scope);

    // Group the scoped states per component, keeping Tarjan's discovery order.
    let mut members: Vec<Vec<usize>> = Vec::new();
    let mut comp_slot = vec![usize::MAX; n];
    let mut comp_order: Vec<usize> = Vec::new();
    for id in 0..n {
        if !in_scope[id] {
            continue;
        }
        let comp = scc[id];
        if comp_slot[comp] == usize::MAX {
            comp_slot[comp] = members.len();
            comp_order.push(comp);
            members.push(Vec::new());
        }
        members[comp_slot[comp]].push(id);
    }

    for (slot, comp) in comp_order.iter().enumerate() {
        let states = &members[slot];
        if let Some(witness) = examine_scc(graph, facts, victim, &in_scope, &scc, *comp, states)
        {
            return Some(witness);
        }
    }
    None
}

/// Applies the weak-fairness pruning to one SCC and, when it survives, constructs the
/// fair-by-construction witness cycle plus its stem.
fn examine_scc(
    graph: &StateGraph,
    facts: &StateFacts,
    victim: NodeId,
    in_scope: &[bool],
    scc: &[usize],
    comp: usize,
    states: &[usize],
) -> Option<LassoWitness> {
    let internal = |edge_target: usize| in_scope[edge_target] && scc[edge_target] == comp;

    // Pruning pass over the internal edges: find one progress edge, one internal tick edge
    // per process, and one internal delivery edge per channel.
    let mut progress_edge: Option<(usize, usize)> = None;
    let mut tick_edge: Vec<Option<(usize, usize)>> = vec![None; facts.n];
    let mut deliver_edge: Vec<Option<(usize, usize)>> = vec![None; facts.total_channels()];
    let mut has_internal_edge = false;
    for &id in states {
        for (edge_idx, edge) in graph.edges(id).iter().enumerate() {
            if !internal(edge.target as usize) {
                continue;
            }
            has_internal_edge = true;
            match edge.action {
                Activation::Tick { node } => {
                    tick_edge[node].get_or_insert((id, edge_idx));
                }
                Activation::Deliver { node, channel } => {
                    deliver_edge[facts.flat_channel(node, channel)].get_or_insert((id, edge_idx));
                }
            }
            if progress_edge.is_none()
                && edge.cs_entries.iter().any(|&u| u != victim)
            {
                progress_edge = Some((id, edge_idx));
            }
        }
    }
    if !has_internal_edge {
        return None; // a trivial SCC (single state, no self-loop) has no cycle at all
    }
    // Progress pruning: without a non-victim critical-section entry the cycle describes a
    // stuttering schedule, not a protocol livelock.
    let progress_edge = progress_edge?;
    // Tick coverage: every process must be activatable inside the SCC.
    if tick_edge.iter().any(Option::is_none) {
        return None;
    }

    // Delivery coverage, and the fairness anchors of the witness: for every channel either
    // an internal delivery edge (required when the channel is never empty in the SCC) or a
    // member state in which the channel is empty.
    let mut requirements: Vec<Requirement> = Vec::new();
    for flat in 0..facts.total_channels() {
        let empty_somewhere = states.iter().find(|&&id| !facts.channel_nonempty(id, flat));
        let nonempty_somewhere = states.iter().any(|&id| facts.channel_nonempty(id, flat));
        match (empty_somewhere, deliver_edge[flat]) {
            // Channel deliverable in every SCC state but never delivered inside it: no
            // weakly fair run can stay in this SCC.
            (None, None) => return None,
            (None, Some(edge)) => requirements.push(Requirement::Edge(edge.0, edge.1)),
            (Some(&empty_state), _) => {
                // Anchor the walk at a state where the channel is empty, so the witness is
                // fair with respect to this channel even without delivering it — unless the
                // channel is empty throughout, in which case nothing is required.
                if nonempty_somewhere {
                    requirements.push(Requirement::State(empty_state));
                }
            }
        }
    }
    for tick in tick_edge.into_iter().flatten() {
        requirements.push(Requirement::Edge(tick.0, tick.1));
    }

    // Build the closed walk: traverse the progress edge first, then visit every anchor,
    // then close back to the start.  All routing stays inside the SCC (strongly connected,
    // so every leg exists).
    let start = progress_edge.0;
    let mut cycle_states: Vec<usize> = vec![start];
    let mut cycle: Vec<Activation> = Vec::new();
    let mut cycle_cs: Vec<Vec<NodeId>> = Vec::new();
    let take_edge = |from: usize,
                         edge_idx: usize,
                         cycle_states: &mut Vec<usize>,
                         cycle: &mut Vec<Activation>,
                         cycle_cs: &mut Vec<Vec<NodeId>>|
     -> usize {
        let edge = &graph.edges(from)[edge_idx];
        cycle.push(edge.action);
        cycle_cs.push(edge.cs_entries.clone());
        let target = edge.target as usize;
        cycle_states.push(target);
        target
    };

    let mut cursor = take_edge(start, progress_edge.1, &mut cycle_states, &mut cycle, &mut cycle_cs);
    for requirement in &requirements {
        let goal = match requirement {
            Requirement::Edge(src, _) => *src,
            Requirement::State(s) => *s,
        };
        cursor = walk_to(graph, in_scope, scc, comp, cursor, goal, &mut cycle_states, &mut cycle, &mut cycle_cs);
        if let Requirement::Edge(src, edge_idx) = requirement {
            debug_assert_eq!(cursor, *src);
            cursor = take_edge(*src, *edge_idx, &mut cycle_states, &mut cycle, &mut cycle_cs);
        }
    }
    walk_to(graph, in_scope, scc, comp, cursor, start, &mut cycle_states, &mut cycle, &mut cycle_cs);
    // The walk ends where it started; drop the duplicated closing state.
    debug_assert_eq!(cycle_states.last(), Some(&start));
    cycle_states.pop();
    debug_assert_eq!(cycle_states.len(), cycle.len());

    let progress_nodes = {
        let mut nodes: Vec<NodeId> =
            cycle_cs.iter().flatten().copied().filter(|&u| u != victim).collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    };

    // Shortest stem from the initial configuration to the cycle entry, over the full graph.
    let (stem_states, stem, stem_cs) = stem_to(graph, start);

    Some(LassoWitness {
        victim,
        stem_configs: stem_states.iter().map(|&id| graph.config(id)).collect(),
        cycle_configs: cycle_states.iter().map(|&id| graph.config(id)).collect(),
        stem,
        stem_states,
        cycle,
        cycle_states,
        progress_nodes,
        stem_cs,
        cycle_cs,
    })
}

/// Appends the shortest in-SCC path from `from` to `to` (actions, intermediate states and
/// their cs-entries) and returns `to`.  A no-op when already there.
#[allow(clippy::too_many_arguments)]
fn walk_to(
    graph: &StateGraph,
    in_scope: &[bool],
    scc: &[usize],
    comp: usize,
    from: usize,
    to: usize,
    cycle_states: &mut Vec<usize>,
    cycle: &mut Vec<Activation>,
    cycle_cs: &mut Vec<Vec<NodeId>>,
) -> usize {
    if from == to {
        return to;
    }
    let mut prev: Vec<Option<(usize, usize)>> = vec![None; graph.len()];
    let mut seen = vec![false; graph.len()];
    let mut queue = VecDeque::new();
    seen[from] = true;
    queue.push_back(from);
    'bfs: while let Some(u) = queue.pop_front() {
        for (edge_idx, edge) in graph.edges(u).iter().enumerate() {
            let v = edge.target as usize;
            if seen[v] || !in_scope[v] || scc[v] != comp {
                continue;
            }
            seen[v] = true;
            prev[v] = Some((u, edge_idx));
            if v == to {
                break 'bfs;
            }
            queue.push_back(v);
        }
    }
    debug_assert!(seen[to], "SCC members are mutually reachable");
    let mut path: Vec<(usize, usize)> = Vec::new();
    let mut cursor = to;
    while cursor != from {
        let (parent, edge_idx) = prev[cursor].expect("path reconstruction");
        path.push((parent, edge_idx));
        cursor = parent;
    }
    path.reverse();
    for (src, edge_idx) in path {
        let edge = &graph.edges(src)[edge_idx];
        cycle.push(edge.action);
        cycle_cs.push(edge.cs_entries.clone());
        cycle_states.push(edge.target as usize);
    }
    to
}

/// Shortest path from the initial configuration (state 0) to `target` over the full graph:
/// `(states, actions, cs_entries)` with `states.len() == actions.len() + 1`.
fn stem_to(graph: &StateGraph, target: usize) -> (Vec<usize>, Vec<Activation>, Vec<Vec<NodeId>>) {
    if target == 0 {
        return (vec![0], Vec::new(), Vec::new());
    }
    let mut prev: Vec<Option<(usize, usize)>> = vec![None; graph.len()];
    let mut seen = vec![false; graph.len()];
    let mut queue = VecDeque::new();
    seen[0] = true;
    queue.push_back(0usize);
    'bfs: while let Some(u) = queue.pop_front() {
        for (edge_idx, edge) in graph.edges(u).iter().enumerate() {
            let v = edge.target as usize;
            if seen[v] {
                continue;
            }
            seen[v] = true;
            prev[v] = Some((u, edge_idx));
            if v == target {
                break 'bfs;
            }
            queue.push_back(v);
        }
    }
    debug_assert!(seen[target], "every recorded state is reachable from the root");
    let mut rev: Vec<(usize, usize)> = Vec::new();
    let mut cursor = target;
    while cursor != 0 {
        let (parent, edge_idx) = prev[cursor].expect("stem reconstruction");
        rev.push((parent, edge_idx));
        cursor = parent;
    }
    rev.reverse();
    let mut states = vec![0usize];
    let mut actions = Vec::with_capacity(rev.len());
    let mut cs = Vec::with_capacity(rev.len());
    for (src, edge_idx) in rev {
        let edge = &graph.edges(src)[edge_idx];
        actions.push(edge.action);
        cs.push(edge.cs_entries.clone());
        states.push(edge.target as usize);
    }
    (states, actions, cs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drivers;
    use crate::explore::{Explorer, Limits};
    use klex_core::KlConfig;

    fn figure3_needs() -> [usize; 3] {
        [1, 2, 1]
    }

    fn explore_with_liveness<P>(
        mut net: treenet::Network<P, topology::OrientedTree>,
        max_configs: usize,
    ) -> crate::ExplorationReport
    where
        P: crate::CheckableNode,
    {
        Explorer::new(&mut net)
            .with_limits(Limits { max_configurations: max_configs, max_depth: usize::MAX })
            .check_liveness(true)
            .run()
    }

    #[test]
    fn pusher_only_protocol_has_a_fair_starvation_lasso_on_figure3() {
        let tree = topology::builders::figure3_tree();
        let cfg = KlConfig::new(2, 3, 3);
        let net = klex_core::pusher::network(
            tree,
            cfg,
            drivers::from_needs_holding(&figure3_needs()),
        );
        let report = explore_with_liveness(net, 600_000);
        assert!(report.exhaustive(), "Figure-3 state space must fit the limits");
        assert!(!report.live(), "the pusher-only protocol livelocks on Figure 3");
        let witness = report
            .liveness
            .iter()
            .find(|w| w.victim == 1)
            .expect("the 2-unit requester (process a) is starved");
        assert!(!witness.cycle.is_empty());
        assert_eq!(witness.cycle_states.len(), witness.cycle.len());
        assert_eq!(witness.stem_states.len(), witness.stem.len() + 1);
        assert_eq!(witness.stem_states[0], 0, "the stem starts at the initial configuration");
        assert!(
            witness.progress_nodes.iter().any(|&v| v != 1),
            "other processes make progress along the cycle"
        );
        // The victim is an unsatisfied requester in every cycle configuration.
        for config in &witness.cycle_configs {
            let s = &config.nodes[1];
            assert_eq!(s.cs, treenet::CsState::Req);
            assert!(s.rset.len() < s.need);
        }
        // Weak fairness by construction: every process ticks along the cycle...
        for u in 0..3 {
            assert!(
                witness.cycle.contains(&Activation::Tick { node: u }),
                "process {u} must be activated along the fair cycle"
            );
        }
        // ...and every channel is either delivered or observed empty along the cycle.
        let channels: Vec<(usize, usize)> = (0..witness.cycle_configs[0].channels.len())
            .flat_map(|v| {
                (0..witness.cycle_configs[0].channels[v].len()).map(move |l| (v, l))
            })
            .collect();
        for (v, l) in channels {
            let delivered = witness.cycle.contains(&Activation::Deliver { node: v, channel: l });
            let empty_somewhere =
                witness.cycle_configs.iter().any(|c| c.channels[v][l].is_empty());
            assert!(
                delivered || empty_somewhere,
                "channel ({v},{l}) must be delivered or observed empty along the cycle"
            );
        }
    }

    #[test]
    fn lasso_witness_replays_on_a_fresh_network() {
        let make = || {
            klex_core::pusher::network(
                topology::builders::figure3_tree(),
                KlConfig::new(2, 3, 3),
                drivers::from_needs_holding(&figure3_needs()),
            )
        };
        let report = explore_with_liveness(make(), 600_000);
        let witness = &report.liveness[0];

        // Replaying stem + one full cycle on a fresh network must land back on the cycle
        // entry configuration — the lasso is a real execution, not a graph artifact.
        let mut net = make();
        for act in &witness.stem {
            net.execute(*act);
        }
        assert_eq!(crate::snapshot::capture(&net), witness.cycle_configs[0]);
        for act in &witness.cycle {
            net.execute(*act);
        }
        assert_eq!(
            crate::snapshot::capture(&net),
            witness.cycle_configs[0],
            "one full cycle traversal returns to the cycle entry"
        );
    }

    #[test]
    fn priority_token_removes_the_fair_lasso_on_figure3() {
        let tree = topology::builders::figure3_tree();
        let cfg = KlConfig::new(2, 3, 3);
        let net = klex_core::nonstab::network(
            tree,
            cfg,
            drivers::from_needs_holding(&figure3_needs()),
        );
        let report = explore_with_liveness(net, 1_500_000);
        assert!(report.exhaustive());
        assert!(report.live(), "with the priority token no fair cycle starves anyone");
    }

    #[test]
    fn fair_cycles_agree_between_delta_and_interned_graphs() {
        let make = || {
            klex_core::pusher::network(
                topology::builders::figure3_tree(),
                KlConfig::new(2, 3, 3),
                drivers::from_needs_holding(&figure3_needs()),
            )
        };
        let limits = Limits { max_configurations: 600_000, max_depth: usize::MAX };
        let mut net = make();
        let delta = Explorer::new(&mut net)
            .with_limits(limits)
            .check_liveness(true)
            .run_with(crate::ExploreEngine::Delta);
        let mut net = make();
        let interned = Explorer::new(&mut net)
            .with_limits(limits)
            .check_liveness(true)
            .run_with(crate::ExploreEngine::Interned);
        assert_eq!(delta.liveness.len(), interned.liveness.len());
        for (d, i) in delta.liveness.iter().zip(&interned.liveness) {
            assert_eq!(d.victim, i.victim);
            assert_eq!(d.stem, i.stem);
            assert_eq!(d.cycle, i.cycle);
            assert_eq!(d.cycle_states, i.cycle_states);
            assert_eq!(d.progress_nodes, i.progress_nodes);
        }
    }

    #[test]
    fn empty_graph_yields_no_witness() {
        let graph = StateGraph::default();
        assert!(find_fair_cycles(&graph).is_empty());
    }
}
