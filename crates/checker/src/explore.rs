//! Breadth-first exploration of the reachable configuration space.
//!
//! [`Explorer`] starts from the current configuration of a live [`Network`], and repeatedly:
//! restores a frontier configuration into the network, executes **one** activation (every
//! possible message delivery and every process tick is tried in turn), captures the successor
//! configuration, and checks the registered [`Property`]s on every configuration seen for the
//! first time.  Exploration is breadth-first, so any counterexample trace it reports is a
//! shortest one (in number of activations).
//!
//! The exploration is exhaustive with respect to scheduling: every interleaving the paper's
//! asynchronous model allows is covered, because at each configuration *every* enabled
//! activation is expanded.  It is bounded by [`Limits`]; if a limit is hit the report's
//! `truncated` flag is set and absence of violations is only meaningful up to that bound.

use crate::properties::Property;
use crate::snapshot::{capture, restore, CheckableNode, Configuration};
use std::collections::{HashMap, VecDeque};
use topology::Topology;
use treenet::{Activation, Network, NodeId};

/// Exploration bounds.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Maximum number of distinct configurations to visit.
    pub max_configurations: usize,
    /// Maximum exploration depth (number of activations from the initial configuration).
    pub max_depth: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits { max_configurations: 100_000, max_depth: usize::MAX }
    }
}

/// A property violation, with the shortest activation sequence that reaches it.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Name of the violated property.
    pub property: String,
    /// Human-readable description of what went wrong.
    pub detail: String,
    /// Depth (number of activations) of the violating configuration.
    pub depth: usize,
    /// The activation sequence leading from the initial configuration to the violation.
    pub trace: Vec<Activation>,
    /// The violating configuration itself.
    pub config: Configuration,
}

/// A reachable configuration in which requesters are blocked forever: no message is in flight
/// and no process activation changes the configuration.
#[derive(Clone, Debug)]
pub struct DeadlockWitness {
    /// Processes whose requests can never be satisfied from this configuration.
    pub blocked: Vec<NodeId>,
    /// Depth of the deadlocked configuration.
    pub depth: usize,
    /// The activation sequence leading to it.
    pub trace: Vec<Activation>,
    /// The deadlocked configuration.
    pub config: Configuration,
}

/// One outgoing transition of the explored state graph.
#[derive(Clone, Debug)]
pub struct Edge {
    /// The activation labelling the transition.
    pub action: Activation,
    /// Index of the successor configuration.
    pub target: usize,
    /// Processes that entered their critical section during this transition.
    pub cs_entries: Vec<NodeId>,
}

/// The explored fragment of the configuration graph (kept only when
/// [`Explorer::record_graph`] is enabled); used by the starvation-cycle analysis.
#[derive(Clone, Debug, Default)]
pub struct StateGraph {
    pub(crate) configs: Vec<Configuration>,
    pub(crate) edges: Vec<Vec<Edge>>,
}

impl StateGraph {
    /// Number of configurations in the graph.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// True when the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// The configuration with index `id`.
    pub fn config(&self, id: usize) -> &Configuration {
        &self.configs[id]
    }

    /// Outgoing transitions of configuration `id`.
    pub fn edges(&self, id: usize) -> &[Edge] {
        &self.edges[id]
    }

    /// Index of the initial configuration (always 0).
    pub fn initial(&self) -> usize {
        0
    }

    /// Total number of recorded transitions.
    pub fn transition_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }
}

/// The result of one exploration run.
#[derive(Clone, Debug, Default)]
pub struct ExplorationReport {
    /// Number of distinct configurations visited.
    pub configurations: usize,
    /// Number of transitions executed.
    pub transitions: usize,
    /// Largest depth reached.
    pub max_depth: usize,
    /// True when a limit was hit before the reachable space was exhausted.
    pub truncated: bool,
    /// Property violations (at most one per property, with shortest traces).
    pub violations: Vec<Violation>,
    /// Deadlocked configurations discovered.
    pub deadlocks: Vec<DeadlockWitness>,
}

impl ExplorationReport {
    /// True when no registered property was violated.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// True when no deadlocked configuration was found.
    pub fn deadlock_free(&self) -> bool {
        self.deadlocks.is_empty()
    }

    /// True when the whole reachable space (within the abstraction) was covered.
    pub fn exhaustive(&self) -> bool {
        !self.truncated
    }
}

/// Bounded-exhaustive explorer over the reachable configurations of a protocol network.
pub struct Explorer<'a, P: CheckableNode, T: Topology> {
    net: &'a mut Network<P, T>,
    limits: Limits,
    properties: Vec<Box<dyn Property>>,
    record_graph: bool,
    stop_on_violation: bool,
    graph: StateGraph,
}

impl<'a, P: CheckableNode, T: Topology> Explorer<'a, P, T> {
    /// Creates an explorer rooted at the network's current configuration.
    pub fn new(net: &'a mut Network<P, T>) -> Self {
        Explorer {
            net,
            limits: Limits::default(),
            properties: Vec::new(),
            record_graph: false,
            stop_on_violation: true,
            graph: StateGraph::default(),
        }
    }

    /// Overrides the exploration bounds.
    pub fn with_limits(mut self, limits: Limits) -> Self {
        self.limits = limits;
        self
    }

    /// Registers a property to check on every visited configuration.
    pub fn with_property(mut self, property: Box<dyn Property>) -> Self {
        self.properties.push(property);
        self
    }

    /// Keeps the explored state graph in memory for later cycle analysis
    /// (see [`crate::cycles::find_progress_cycle`]).
    pub fn record_graph(mut self, record: bool) -> Self {
        self.record_graph = record;
        self
    }

    /// Continue exploring after the first property violation (default: stop).
    pub fn continue_on_violation(mut self) -> Self {
        self.stop_on_violation = false;
        self
    }

    /// The state graph recorded by the last [`Explorer::run`], if recording was enabled.
    pub fn graph(&self) -> &StateGraph {
        &self.graph
    }

    /// Consumes the explorer and returns the recorded state graph.
    pub fn into_graph(self) -> StateGraph {
        self.graph
    }

    /// Runs the exploration and returns its report.
    pub fn run(&mut self) -> ExplorationReport {
        let n = self.net.len();
        let degrees: Vec<usize> = (0..n).map(|v| self.net.topology().degree(v)).collect();

        let initial = capture(self.net);
        let mut ids: HashMap<Configuration, usize> = HashMap::new();
        let mut configs: Vec<Configuration> = Vec::new();
        let mut parents: Vec<Option<(usize, Activation)>> = Vec::new();
        let mut depths: Vec<usize> = Vec::new();
        let mut report = ExplorationReport::default();
        let mut violated: Vec<String> = Vec::new();

        ids.insert(initial.clone(), 0);
        configs.push(initial.clone());
        parents.push(None);
        depths.push(0);
        if self.record_graph {
            self.graph = StateGraph { configs: vec![initial.clone()], edges: vec![Vec::new()] };
        }
        self.check_properties(&initial, 0, &parents, &mut report, &mut violated);

        let mut queue: VecDeque<usize> = VecDeque::new();
        queue.push_back(0);

        'outer: while let Some(id) = queue.pop_front() {
            let depth = depths[id];
            report.max_depth = report.max_depth.max(depth);
            if depth >= self.limits.max_depth {
                report.truncated = true;
                continue;
            }
            let config = configs[id].clone();

            // Enumerate every enabled activation: one delivery per non-empty channel plus one
            // tick per process.
            let mut activations: Vec<Activation> = Vec::new();
            for v in 0..n {
                for l in 0..degrees[v] {
                    if !config.channels[v][l].is_empty() {
                        activations.push(Activation::Deliver { node: v, channel: l });
                    }
                }
            }
            let first_tick = activations.len();
            for v in 0..n {
                activations.push(Activation::Tick { node: v });
            }

            let mut every_tick_is_self_loop = true;
            for (idx, act) in activations.iter().enumerate() {
                restore(self.net, &config);
                self.net.trace_mut().clear();
                self.net.execute(*act);
                let succ = capture(self.net);
                report.transitions += 1;

                let cs_entries: Vec<NodeId> = self
                    .net
                    .trace()
                    .events()
                    .iter()
                    .filter(|e| matches!(e.event, treenet::Event::EnterCs { .. }))
                    .map(|e| e.node)
                    .collect();

                if idx >= first_tick && succ != config {
                    every_tick_is_self_loop = false;
                }

                let succ_id = match ids.get(&succ) {
                    Some(&existing) => Some(existing),
                    None => {
                        if configs.len() >= self.limits.max_configurations {
                            report.truncated = true;
                            None
                        } else {
                            let new_id = configs.len();
                            ids.insert(succ.clone(), new_id);
                            configs.push(succ.clone());
                            parents.push(Some((id, *act)));
                            depths.push(depth + 1);
                            if self.record_graph {
                                self.graph.configs.push(succ.clone());
                                self.graph.edges.push(Vec::new());
                            }
                            queue.push_back(new_id);
                            self.check_properties(
                                &succ,
                                new_id,
                                &parents,
                                &mut report,
                                &mut violated,
                            );
                            if self.stop_on_violation && !report.violations.is_empty() {
                                report.configurations = configs.len();
                                break 'outer;
                            }
                            Some(new_id)
                        }
                    }
                };

                if self.record_graph {
                    if let Some(target) = succ_id {
                        self.graph.edges[id].push(Edge { action: *act, target, cs_entries });
                    }
                }
            }

            // Quiescent deadlock: nothing in flight, every tick is a self-loop, and some
            // request can therefore never be satisfied.
            if first_tick == 0 && every_tick_is_self_loop {
                let blocked = config.unsatisfied_requesters();
                if !blocked.is_empty() {
                    report.deadlocks.push(DeadlockWitness {
                        blocked,
                        depth,
                        trace: trace_to(id, &parents),
                        config: config.clone(),
                    });
                }
            }
        }

        report.configurations = configs.len();
        report
    }

    fn check_properties(
        &self,
        config: &Configuration,
        id: usize,
        parents: &[Option<(usize, Activation)>],
        report: &mut ExplorationReport,
        violated: &mut Vec<String>,
    ) {
        for property in &self.properties {
            if violated.iter().any(|name| name == property.name()) {
                continue;
            }
            if let Err(detail) = property.check(config) {
                violated.push(property.name().to_string());
                report.violations.push(Violation {
                    property: property.name().to_string(),
                    detail,
                    depth: trace_to(id, parents).len(),
                    trace: trace_to(id, parents),
                    config: config.clone(),
                });
            }
        }
    }
}

/// Reconstructs the activation sequence from the initial configuration to configuration `id`.
fn trace_to(mut id: usize, parents: &[Option<(usize, Activation)>]) -> Vec<Activation> {
    let mut trace = Vec::new();
    while let Some((parent, act)) = parents[id] {
        trace.push(act);
        id = parent;
    }
    trace.reverse();
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drivers;
    use crate::properties;
    use klex_core::KlConfig;
    use klex_core::Message;
    use treenet::CsState;

    /// A 2-node chain running the naive protocol with a single resource token, both processes
    /// perpetually requesting one unit: a minimal live instance whose state space is tiny.
    fn tiny_naive() -> Network<klex_core::naive::NaiveNode, topology::OrientedTree> {
        let tree = topology::builders::chain(2);
        let cfg = KlConfig::new(1, 1, 2);
        klex_core::naive::network(tree, cfg, |_| drivers::AlwaysRequest::boxed(1))
    }

    #[test]
    fn exploration_of_a_tiny_instance_terminates_and_is_exhaustive() {
        let mut net = tiny_naive();
        let cfg = KlConfig::new(1, 1, 2);
        let mut explorer = Explorer::new(&mut net)
            .with_limits(Limits { max_configurations: 50_000, max_depth: usize::MAX })
            .with_property(properties::safety(cfg));
        let report = explorer.run();
        assert!(report.exhaustive(), "2-node 1-token space must fit the limits");
        assert!(report.ok(), "safety must hold everywhere: {:?}", report.violations);
        assert!(report.configurations > 1);
        assert!(report.transitions >= report.configurations - 1);
    }

    #[test]
    fn single_requester_never_deadlocks_with_one_token() {
        let mut net = tiny_naive();
        let report = Explorer::new(&mut net)
            .with_limits(Limits { max_configurations: 50_000, max_depth: usize::MAX })
            .run();
        assert!(report.exhaustive());
        assert!(report.deadlock_free(), "deadlocks: {:?}", report.deadlocks);
    }

    #[test]
    fn violations_carry_shortest_traces() {
        // A property that is violated as soon as any process enters its critical section.
        // Instantaneous critical sections (AlwaysRequest) are invisible in captured
        // configurations (entry and exit happen within one activation), so use drivers that
        // hold the critical section across an activation.
        let make = || {
            let tree = topology::builders::chain(2);
            let cfg = KlConfig::new(1, 1, 2);
            klex_core::naive::network(tree, cfg, |_| drivers::HoldOneActivation::boxed(1))
        };
        let mut net = make();
        let report = Explorer::new(&mut net)
            .with_limits(Limits { max_configurations: 50_000, max_depth: usize::MAX })
            .with_property(properties::property("never-enter", |c| {
                if c.nodes.iter().any(|s| s.cs == CsState::In) {
                    Err("a process entered its critical section".into())
                } else {
                    Ok(())
                }
            }))
            .run();
        assert_eq!(report.violations.len(), 1);
        let violation = &report.violations[0];
        assert!(!violation.trace.is_empty());
        assert_eq!(violation.trace.len(), violation.depth);
        assert!(violation.config.nodes.iter().any(|s| s.cs == CsState::In));

        // Replay the trace on a fresh network and confirm it reaches the reported config.
        let mut fresh = make();
        for act in &violation.trace {
            fresh.execute(*act);
        }
        assert_eq!(capture(&fresh), violation.config);
    }

    #[test]
    fn limits_truncate_and_are_reported() {
        let mut net = tiny_naive();
        let report = Explorer::new(&mut net)
            .with_limits(Limits { max_configurations: 3, max_depth: usize::MAX })
            .run();
        assert!(report.truncated);
        assert!(report.configurations <= 3);
    }

    #[test]
    fn recorded_graph_matches_report_counts() {
        let mut net = tiny_naive();
        let mut explorer = Explorer::new(&mut net)
            .with_limits(Limits { max_configurations: 50_000, max_depth: usize::MAX })
            .record_graph(true);
        let report = explorer.run();
        let graph = explorer.graph();
        assert_eq!(graph.len(), report.configurations);
        assert!(graph.transition_count() > 0);
        // Every edge target is a valid configuration index.
        for id in 0..graph.len() {
            for edge in graph.edges(id) {
                assert!(edge.target < graph.len());
            }
        }
    }

    #[test]
    fn depth_limit_bounds_the_frontier() {
        let mut net = tiny_naive();
        let report = Explorer::new(&mut net)
            .with_limits(Limits { max_configurations: 50_000, max_depth: 2 })
            .run();
        assert!(report.max_depth <= 2);
        assert!(report.truncated, "a live protocol has configurations beyond depth 2");
    }

    #[test]
    fn naive_deadlock_is_reachable_on_a_minimal_figure2_instance() {
        // A minimal instance of the Figure-2 phenomenon: ℓ = 2 tokens, two requesters that
        // each need both.  Exploration from the *clean* initial state must find the reachable
        // deadlock in which each requester hoards one token and neither can ever proceed.
        let tree = topology::builders::chain(3);
        let cfg = KlConfig::new(2, 2, 3);
        let needs = [0usize, 2, 2];
        let mut net = klex_core::naive::network(tree, cfg, drivers::from_needs(&needs));
        let report = Explorer::new(&mut net)
            .with_limits(Limits { max_configurations: 200_000, max_depth: usize::MAX })
            .run();
        assert!(report.exhaustive(), "the 3-node 2-token space must fit the limits");
        assert!(
            !report.deadlock_free(),
            "the naive protocol must reach a Figure-2-style deadlock (explored {} configurations)",
            report.configurations,
        );
        let witness = &report.deadlocks[0];
        assert_eq!(witness.blocked.len(), 2, "both requesters are blocked");
        // In the deadlock every resource token is reserved by a blocked requester.
        assert_eq!(witness.config.messages_in_flight(), 0);
        assert_eq!(witness.config.resource_tokens(), 2);
    }

    #[test]
    fn closure_holds_for_the_self_stabilizing_protocol_on_figure3() {
        // Closure (Definition 1): from a legitimate configuration, every reachable
        // configuration is legitimate.  Explore the full protocol from a stabilized
        // configuration of the Figure-3 instance and check the legitimacy predicate
        // everywhere.
        let tree = topology::builders::figure3_tree();
        let cfg = KlConfig::new(2, 2, 3).with_cmax(0);
        let mut net = crate::scenarios::stabilized_ss(
            tree,
            cfg,
            |_| drivers::AlwaysRequest::boxed(1),
            500_000,
        );
        let report = Explorer::new(&mut net)
            .with_limits(Limits { max_configurations: 150_000, max_depth: usize::MAX })
            .with_property(properties::legitimate(cfg))
            .with_property(properties::safety(cfg))
            .run();
        assert!(report.ok(), "closure violated: {:?}", report.violations);
        assert!(report.deadlock_free());
        assert!(
            report.configurations > 100,
            "the exploration should cover a non-trivial reachable set, got {}",
            report.configurations
        );
    }

    #[test]
    fn garbage_message_is_consumed_not_forwarded() {
        let mut net = tiny_naive();
        net.inject_into(1, 0, Message::Garbage(7));
        let report = Explorer::new(&mut net)
            .with_limits(Limits { max_configurations: 50_000, max_depth: usize::MAX })
            .continue_on_violation()
            .with_property(properties::no_garbage())
            .run();
        // The initial configuration violates no-garbage, but the violation is at depth 0 and
        // the garbage disappears after delivery (it is never retransmitted).
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].depth, 0);
        assert!(report.exhaustive());
    }
}
