//! Breadth-first exploration of the reachable configuration space.
//!
//! [`Explorer`] starts from the current configuration of a live [`Network`], and repeatedly:
//! restores a frontier configuration into the network, executes **one** activation (every
//! possible message delivery and every process tick is tried in turn), captures the successor
//! configuration, and checks the registered [`Property`]s on every configuration seen for the
//! first time.  Exploration is breadth-first, so any counterexample trace it reports is a
//! shortest one (in number of activations).
//!
//! # The delta successor engine
//!
//! Configurations never flow through the hot loop as [`Configuration`] values.  Each visited
//! configuration is held exactly once, in packed form, by a [`StateArena`]
//! (see [`crate::snapshot`]) and addressed by a dense [`StateId`].  The default sequential
//! engine ([`Explorer::run`], aka [`ExploreEngine::Delta`]) additionally eliminates the
//! per-transition full-state traffic:
//!
//! * the parent configuration is restored into the network **once per state**
//!   ([`crate::snapshot::restore_packed_mapped`], which also records every segment's byte
//!   span for free);
//! * each transition executes **in place** with an undo log
//!   ([`treenet::Network::execute_undoable`]): one node snapshot, the consumed message, and
//!   the pushed channels are the entire record;
//! * the successor's packed bytes are produced by **patching only the dirty segments** of
//!   the parent's bytes, and its hash by re-mixing only those segments'
//!   [`crate::snapshot::segment_term`]s — a tick that changed nothing is recognized from the
//!   dirty segments alone and skips interning entirely;
//! * the undo log then **reverts** the network to the parent for the next sibling;
//! * per-state bookkeeping (parent links, depths, recorded edges) lives in flat vectors
//!   indexed by state id, shared by the report and the recorded [`StateGraph`];
//! * full [`Configuration`] values are only decoded on cold paths: property checks on newly
//!   discovered states, and violation/deadlock witnesses.
//!
//! The pre-delta sequential engine — restore, execute, full capture, full hash, per
//! transition — is retained verbatim as [`Explorer::run_interned`]: it is the executable
//! oracle the delta-parity test suite checks the delta engine against (identical reachable
//! sets, frontier sizes per level, violation and deadlock reports).
//!
//! # Work-stealing parallel exploration
//!
//! [`Explorer::run_parallel`] splits a run into a parallel **discovery** phase and a
//! sequential **canonical replay**:
//!
//! * *Discovery.*  N workers — each owning a private network built by a caller-supplied
//!   factory and running the same delta hot loop as the sequential engine — pull states
//!   from per-worker deques, Chase-Lev style: owners push and pop at one end, an idle
//!   worker steals a batch from the opposite end of a victim's deque.  Successors are
//!   deduplicated concurrently in a [`crate::snapshot::ShardedArena`] (the
//!   [`StateArena`] lock-striped into 64 shards keyed by the top bits of the segmented
//!   hash) under *provisional* ids, and each worker logs, per expanded state, the ordered
//!   transition list the sequential loop would have produced.  The log is
//!   schedule-independent because activation enumeration is a pure function of the
//!   parent's bytes (deliveries in `(node, channel)` order, then ticks in node order).
//! * *Replay.*  A sequential pass walks the logs in canonical BFS discovery order,
//!   renumbering provisional ids into the dense [`StateId`]s a sequential run assigns and
//!   driving the same (private) `Engine` state machine [`Explorer::run_delta`] drives — it only
//!   substitutes an arena probe plus memcpy (replaying a logged transition) for the
//!   simulate-and-patch work the workers already did.  Any state the workers did not
//!   expand (beyond a depth limit as measured canonically, or abandoned after the
//!   discovery budget tripped) is *repaired* inline with a live delta expansion on the
//!   explorer's own network.  By induction over the BFS queue the replay issues the
//!   identical `Engine` call sequence as a sequential run, so sequential and parallel
//!   runs return field-for-field identical reports — same ids, same frontier sizes, same
//!   shortest traces, same graphs, same liveness lassos — at every thread count.
//!
//! The exploration is exhaustive with respect to scheduling: every interleaving the paper's
//! asynchronous model allows is covered, because at each configuration *every* enabled
//! activation is expanded.  It is bounded by [`Limits`]; if a limit is hit the report's
//! `truncated` flag is set and absence of violations is only meaningful up to that bound.

use crate::properties::Property;
use crate::snapshot::{capture_packed, restore_packed, CheckableNode, Configuration};
use crate::snapshot::{
    encode_channel_segment, encode_node_segment, restore_packed_mapped, segment_term,
    SegmentMap,
};
use crate::snapshot::{InternOutcome, ProvisionalId, ShardedArena, StateArena, StateId};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use topology::Topology;
use treenet::{Activation, Network, NodeId, StepUndo};

/// Which sequential exploration engine an [`Explorer`] run uses.
///
/// Both engines visit the identical reachable space in the identical BFS order and return
/// identical reports (the delta-parity test suite asserts it); they differ only in how a
/// successor configuration is produced from its parent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExploreEngine {
    /// Per transition: restore the parent's packed bytes into the network, execute, capture
    /// and fx-hash the full successor.  Retained as the executable oracle the delta engine
    /// is checked against.
    Interned,
    /// Per transition: execute in place with an undo log, re-pack only the dirty segments of
    /// the parent's packed bytes, patch the segmented hash incrementally, and revert.  The
    /// default engine.
    Delta,
}

/// Exploration bounds.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Maximum number of distinct configurations to visit.
    pub max_configurations: usize,
    /// Maximum exploration depth (number of activations from the initial configuration).
    pub max_depth: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits { max_configurations: 100_000, max_depth: usize::MAX }
    }
}

/// A property violation, with the shortest activation sequence that reaches it.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Name of the violated property.
    pub property: String,
    /// Human-readable description of what went wrong.
    pub detail: String,
    /// Depth (number of activations) of the violating configuration.
    pub depth: usize,
    /// The activation sequence leading from the initial configuration to the violation.
    pub trace: Vec<Activation>,
    /// The violating configuration itself.
    pub config: Configuration,
}

/// A reachable configuration in which requesters are blocked forever: no message is in flight
/// and no process activation changes the configuration.
#[derive(Clone, Debug)]
pub struct DeadlockWitness {
    /// Processes whose requests can never be satisfied from this configuration.
    pub blocked: Vec<NodeId>,
    /// Depth of the deadlocked configuration.
    pub depth: usize,
    /// The activation sequence leading to it.
    pub trace: Vec<Activation>,
    /// The deadlocked configuration.
    pub config: Configuration,
}

/// One outgoing transition of the explored state graph.
#[derive(Clone, Debug)]
pub struct Edge {
    /// The activation labelling the transition.
    pub action: Activation,
    /// Id of the successor configuration.
    pub target: StateId,
    /// Processes that entered their critical section during this transition.
    pub cs_entries: Vec<NodeId>,
}

/// The explored fragment of the configuration graph (kept only when
/// [`Explorer::record_graph`] is enabled); used by the starvation-cycle analysis.
///
/// States are stored packed in a [`StateArena`]; edges live in one flat vector sliced per
/// state id (CSR layout), which is possible because BFS expands states in id order.
#[derive(Clone, Debug, Default)]
pub struct StateGraph {
    arena: StateArena,
    edges: Vec<Edge>,
    /// `edge_starts[id]..edge_starts[id + 1]` delimits the edges of `id`; has `len + 1`
    /// entries (empty for the empty graph).
    edge_starts: Vec<u32>,
}

impl StateGraph {
    /// Number of configurations in the graph.
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    /// True when the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.arena.is_empty()
    }

    /// Decodes the configuration with id `id`.
    pub fn config(&self, id: usize) -> Configuration {
        self.arena.config(id as StateId)
    }

    /// The packed bytes of configuration `id` (zero-copy access for bulk scans).
    pub fn packed(&self, id: usize) -> &[u8] {
        self.arena.get(id as StateId)
    }

    /// Outgoing transitions of configuration `id`.
    pub fn edges(&self, id: usize) -> &[Edge] {
        let start = self.edge_starts[id] as usize;
        let end = self.edge_starts[id + 1] as usize;
        &self.edges[start..end]
    }

    /// Id of the initial configuration (always 0).
    pub fn initial(&self) -> usize {
        0
    }

    /// Total number of recorded transitions.
    pub fn transition_count(&self) -> usize {
        self.edges.len()
    }
}

/// Cheap structural facts about the recorded state graph, exported on
/// [`ExplorationReport::graph_summary`] when graph recording was enabled.
///
/// These are the checker-side raw features of the fuzzer's coverage signature (see
/// `analysis::coverage`): strongly-connected-component structure and channel-occupancy
/// extremes summarize the *shape* of the explored graph in a handful of integers, cheaply
/// (one linear Tarjan pass plus the per-configuration decode the liveness pass performs
/// anyway).  Identical across engines and thread counts — the graphs are identical by the
/// parity contract, and the summary is a pure function of the graph.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GraphSummary {
    /// Number of strongly connected components of the recorded graph.
    pub scc_count: usize,
    /// Size (in configurations) of the largest strongly connected component.
    pub largest_scc: usize,
    /// Number of non-trivial components: size ≥ 2, or a single state with a self-loop.
    pub nontrivial_sccs: usize,
    /// Largest total number of in-flight messages observed in any configuration.
    pub max_in_flight: usize,
    /// Largest occupancy of any single channel in any configuration.
    pub max_channel_occupancy: usize,
}

impl GraphSummary {
    /// Computes the summary of a recorded graph (empty graph ⇒ all-zero summary).
    pub fn of(graph: &StateGraph) -> GraphSummary {
        let n = graph.len();
        if n == 0 {
            return GraphSummary::default();
        }
        let in_scope = vec![true; n];
        let scc = crate::cycles::tarjan_scc(graph, &in_scope);
        let comp_count = scc.iter().max().map_or(0, |&c| c + 1);
        let mut sizes = vec![0usize; comp_count];
        for &comp in &scc {
            sizes[comp] += 1;
        }
        let mut self_loop = vec![false; comp_count];
        for id in 0..n {
            for edge in graph.edges(id) {
                if edge.target as usize == id {
                    self_loop[scc[id]] = true;
                }
            }
        }
        let mut summary = GraphSummary {
            scc_count: comp_count,
            largest_scc: sizes.iter().copied().max().unwrap_or(0),
            nontrivial_sccs: sizes
                .iter()
                .zip(&self_loop)
                .filter(|&(&size, &looped)| size >= 2 || looped)
                .count(),
            max_in_flight: 0,
            max_channel_occupancy: 0,
        };
        for id in 0..n {
            let config = graph.config(id);
            summary.max_in_flight = summary.max_in_flight.max(config.messages_in_flight());
            for per_node in &config.channels {
                for channel in per_node {
                    summary.max_channel_occupancy =
                        summary.max_channel_occupancy.max(channel.len());
                }
            }
        }
        summary
    }
}

/// The result of one exploration run.
#[derive(Clone, Debug, Default)]
pub struct ExplorationReport {
    /// Number of distinct configurations visited.
    pub configurations: usize,
    /// Number of transitions executed.
    pub transitions: usize,
    /// Largest depth reached.
    pub max_depth: usize,
    /// True when a limit was hit before the reachable space was exhausted.
    pub truncated: bool,
    /// Property violations (at most one per property, with shortest traces).
    pub violations: Vec<Violation>,
    /// Deadlocked configurations discovered.
    pub deadlocks: Vec<DeadlockWitness>,
    /// Number of configurations first discovered at each BFS depth (`frontier_sizes[d]` is
    /// the size of level `d`; the entries sum to `configurations`).  Identical across
    /// engines and thread counts — the per-level fingerprint the parity tests compare.
    pub frontier_sizes: Vec<usize>,
    /// Fair starvation lassos found by the liveness pass (one witness per starved victim);
    /// only populated when [`Explorer::check_liveness`] was enabled.  Emptiness proves
    /// (k, ℓ)-liveness only when the exploration was exhaustive — see [`crate::liveness`].
    pub liveness: Vec<crate::liveness::LassoWitness>,
    /// Bytes of packed configuration data held by the state arena when the run finished
    /// (its peak: the arena only grows during a run).
    pub arena_bytes: usize,
    /// Structural summary of the recorded state graph (SCC structure, channel-occupancy
    /// extremes); `None` unless graph recording ([`Explorer::record_graph`] or
    /// [`Explorer::check_liveness`]) was enabled.  Engine- and thread-count-independent,
    /// like every other field.
    pub graph_summary: Option<GraphSummary>,
}

impl ExplorationReport {
    /// True when no registered property was violated.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// True when no deadlocked configuration was found.
    pub fn deadlock_free(&self) -> bool {
        self.deadlocks.is_empty()
    }

    /// True when the whole reachable space (within the abstraction) was covered.
    pub fn exhaustive(&self) -> bool {
        !self.truncated
    }

    /// True when the liveness pass found no fair starvation lasso (vacuously true when the
    /// pass did not run).
    pub fn live(&self) -> bool {
        self.liveness.is_empty()
    }
}

/// Observer of a running exploration: throttled progress callbacks plus cooperative
/// cancellation.
///
/// An explorer with a registered observer calls [`ExploreProgress::on_progress`] every
/// [`PROGRESS_STRIDE`] expanded states (and once more when the run finishes) with the
/// current interned-configuration and transition counts, and polls
/// [`ExploreProgress::should_stop`] before every expansion.  A `true` answer abandons the
/// run: the report comes back with `truncated` set, exactly as if a [`Limits`] bound had
/// tripped.  Observers are shared across worker threads during parallel discovery, hence
/// the [`Sync`] bound; both methods default to no-ops so an observer can implement only
/// the half it cares about.
///
/// Observation never changes what a run computes — a cancelled run aside, reports are
/// bit-identical with and without an observer (the parity contract is indifferent to it).
pub trait ExploreProgress: Sync {
    /// Called with the configurations interned and transitions executed so far.
    fn on_progress(&self, configurations: usize, transitions: usize) {
        let _ = (configurations, transitions);
    }

    /// Polled before each expansion; returning `true` abandons the run (`truncated` is set).
    fn should_stop(&self) -> bool {
        false
    }
}

/// How many expansions pass between consecutive [`ExploreProgress::on_progress`] calls.
pub const PROGRESS_STRIDE: usize = 256;

/// Bounded-exhaustive explorer over the reachable configurations of a protocol network.
pub struct Explorer<'a, P: CheckableNode, T: Topology> {
    net: &'a mut Network<P, T>,
    limits: Limits,
    properties: Vec<Box<dyn Property>>,
    record_graph: bool,
    stop_on_violation: bool,
    check_liveness: bool,
    progress: Option<&'a dyn ExploreProgress>,
    graph: StateGraph,
}

impl<'a, P: CheckableNode, T: Topology> Explorer<'a, P, T> {
    /// Creates an explorer rooted at the network's current configuration.
    pub fn new(net: &'a mut Network<P, T>) -> Self {
        Explorer {
            net,
            limits: Limits::default(),
            properties: Vec::new(),
            record_graph: false,
            stop_on_violation: true,
            check_liveness: false,
            progress: None,
            graph: StateGraph::default(),
        }
    }

    /// Registers a progress observer (see [`ExploreProgress`]): throttled counters during
    /// the run plus a cooperative cancellation poll before every expansion.
    pub fn with_progress(mut self, progress: &'a dyn ExploreProgress) -> Self {
        self.progress = Some(progress);
        self
    }

    /// Overrides the exploration bounds.
    pub fn with_limits(mut self, limits: Limits) -> Self {
        self.limits = limits;
        self
    }

    /// Registers a property to check on every visited configuration.
    pub fn with_property(mut self, property: Box<dyn Property>) -> Self {
        self.properties.push(property);
        self
    }

    /// Keeps the explored state graph in memory for later cycle analysis
    /// (see [`crate::cycles::find_progress_cycle`]).
    pub fn record_graph(mut self, record: bool) -> Self {
        self.record_graph = record;
        self
    }

    /// Continue exploring after the first property violation (default: stop).
    pub fn continue_on_violation(mut self) -> Self {
        self.stop_on_violation = false;
        self
    }

    /// Runs the fair-cycle liveness pass ([`crate::liveness::find_fair_cycles`]) over the
    /// recorded graph after exploration finishes, populating
    /// [`ExplorationReport::liveness`].  Implies [`Explorer::record_graph`].
    pub fn check_liveness(mut self, check: bool) -> Self {
        self.check_liveness = check;
        if check {
            self.record_graph = true;
        }
        self
    }

    /// The state graph recorded by the last run, if recording was enabled.
    pub fn graph(&self) -> &StateGraph {
        &self.graph
    }

    /// Consumes the explorer and returns the recorded state graph.
    pub fn into_graph(self) -> StateGraph {
        self.graph
    }

    /// Runs the exploration on the current thread with the default ([`ExploreEngine::Delta`])
    /// engine and returns its report.
    pub fn run(&mut self) -> ExplorationReport {
        self.run_delta()
    }

    /// Runs the exploration with an explicit engine choice (parity tests and benchmarks).
    pub fn run_with(&mut self, engine: ExploreEngine) -> ExplorationReport {
        match engine {
            ExploreEngine::Interned => self.run_interned(),
            ExploreEngine::Delta => self.run_delta(),
        }
    }

    /// The delta successor engine: the sequential hot path.
    ///
    /// Per popped state the parent is restored **once** (recording its [`SegmentMap`] and
    /// per-segment hash terms); each transition then
    ///
    /// 1. snapshots the one activated node and executes in place, recording channel effects
    ///    in a [`StepUndo`] log;
    /// 2. re-encodes only the dirty segments (the activated node's state, the delivered
    ///    channel, each pushed channel) and compares them to the parent's — if none changed,
    ///    the transition is a self-loop and skips interning entirely;
    /// 3. otherwise patches the parent's segmented hash per dirty segment, splices the dirty
    ///    segments into a copy of the parent's packed bytes (straight memcpy of the
    ///    unchanged spans), and interns the successor with the precomputed hash;
    /// 4. reverts: pushed messages pop back off channel tails, the delivered message returns
    ///    to its head, and the saved node state is restored — the network is back in the
    ///    parent configuration for the next sibling.
    ///
    /// The restore → full capture → full hash triple of the interned engine is gone from the
    /// per-transition cost; what remains is O(touched state) work plus one memcpy.
    pub fn run_delta(&mut self) -> ExplorationReport {
        let progress = self.progress;
        let net = &mut *self.net;
        let mut scratch = DeltaScratch::for_net(net);
        let record_graph = self.record_graph;

        let mut engine =
            Engine::new(self.limits, &self.properties, self.record_graph, self.stop_on_violation);

        let mut parent_buf = Vec::new();
        capture_packed(net, &mut parent_buf);
        restore_packed_mapped(net, &parent_buf, &mut scratch.map);
        let h_initial = compute_terms(&parent_buf, &scratch.map, &mut scratch.terms);
        engine.admit_initial_hashed(&parent_buf, h_initial);

        let mut queue: VecDeque<StateId> = VecDeque::new();
        queue.push_back(0);

        let mut ticker = ProgressTicker::new(progress);
        'outer: while let Some(id) = queue.pop_front() {
            if ticker.observe(&mut engine) {
                break 'outer;
            }
            let depth = engine.depths[id as usize] as usize;
            engine.report.max_depth = engine.report.max_depth.max(depth);
            if depth >= engine.limits.max_depth {
                engine.report.truncated = true;
                continue;
            }
            engine.begin_expansion(id);

            // Load the parent once; all siblings are derived in place and reverted.
            parent_buf.clear();
            parent_buf.extend_from_slice(engine.arena.get(id));

            let (quiescent, stopped) = expand_state_delta(
                net,
                &mut scratch,
                &parent_buf,
                record_graph,
                &mut |act, step, cs_entries| {
                    match step {
                        DeltaStep::SelfLoop => engine.on_known_transition(act, id, cs_entries),
                        DeltaStep::Successor { bytes, hash } => {
                            if let Some(new_id) =
                                engine.on_transition_hashed(id, act, bytes, hash, cs_entries)
                            {
                                queue.push_back(new_id);
                            }
                        }
                    }
                    engine.stopped
                },
            );
            if stopped {
                break 'outer;
            }
            if quiescent {
                engine.on_quiescent(id);
            }
        }

        ticker.finish(&engine);
        self.finish_run(engine.finish())
    }

    /// The interned reference engine: per transition, restore the parent's packed bytes,
    /// execute, capture and hash the full successor.  Retained as the oracle the delta
    /// engine's parity suite runs against.
    pub fn run_interned(&mut self) -> ExplorationReport {
        let progress = self.progress;
        let net = &mut *self.net;
        let mut engine =
            Engine::new(self.limits, &self.properties, self.record_graph, self.stop_on_violation);
        let mut scratch = Vec::new();
        capture_packed(net, &mut scratch);
        engine.admit_initial(&scratch);

        let mut queue: VecDeque<StateId> = VecDeque::new();
        queue.push_back(0);

        let mut ticker = ProgressTicker::new(progress);
        'outer: while let Some(id) = queue.pop_front() {
            if ticker.observe(&mut engine) {
                break 'outer;
            }
            let depth = engine.depths[id as usize] as usize;
            engine.report.max_depth = engine.report.max_depth.max(depth);
            if depth >= engine.limits.max_depth {
                engine.report.truncated = true;
                continue;
            }
            engine.begin_expansion(id);

            let (activations, first_tick) = enumerate_activations(net, &engine.arena, id);

            let mut every_tick_is_self_loop = true;
            for (idx, act) in activations.iter().enumerate() {
                let (same_as_parent, cs_entries) = execute_transition(
                    net,
                    &engine.arena,
                    id,
                    *act,
                    &mut scratch,
                    engine.record_graph,
                );
                if idx >= first_tick && !same_as_parent {
                    every_tick_is_self_loop = false;
                }
                let admitted = engine.on_transition(id, *act, &scratch, cs_entries);
                if let Some(new_id) = admitted {
                    queue.push_back(new_id);
                }
                if engine.stopped {
                    break 'outer;
                }
            }

            if first_tick == 0 && every_tick_is_self_loop {
                engine.on_quiescent(id);
            }
        }

        ticker.finish(&engine);
        self.finish_run(engine.finish())
    }

    /// Runs the exploration on `threads` OS threads: work-stealing delta workers discover the
    /// space concurrently over a sharded arena, and a sequential replay renumbers their
    /// provisional ids into canonical BFS order (see the module docs).  The returned report —
    /// and the recorded graph and liveness witnesses — are field-for-field identical to
    /// [`Explorer::run`]'s at every thread count.
    ///
    /// `factory` builds one network per worker thread; it must produce networks of the same
    /// shape (topology, protocol, drivers) as the explorer's own — typically by calling the
    /// same scenario constructor.  Worker networks start from arbitrary states; every state
    /// they touch is overwritten by a packed restore before use.
    pub fn run_parallel<F>(&mut self, factory: F, threads: usize) -> ExplorationReport
    where
        F: Fn() -> Network<P, T> + Sync,
    {
        let threads = threads.max(1);
        if threads == 1 {
            return self.run();
        }

        // ---- Discovery: work-stealing delta workers over the sharded arena.
        let progress = self.progress;
        let net = &mut *self.net;
        let mut scratch = DeltaScratch::for_net(net);
        let mut root_buf = Vec::new();
        capture_packed(net, &mut root_buf);
        restore_packed_mapped(net, &root_buf, &mut scratch.map);
        let h_root = compute_terms(&root_buf, &scratch.map, &mut scratch.terms);

        let arena = ShardedArena::new();
        let (root_prov, fresh) = arena.intern_hashed(&root_buf, h_root);
        debug_assert!(fresh);

        // Workers can't enforce the configuration cap exactly (it is defined in terms of the
        // canonical discovery order they don't know), so they run to a generous multiple of
        // it; the replay enforces the exact cap and repairs any gap an early stop left.
        let budget = if self.limits.max_configurations == usize::MAX {
            usize::MAX
        } else {
            self.limits.max_configurations.saturating_mul(2).saturating_add(1024)
        };

        let pool = StealPool::new(threads);
        pool.push(0, (root_prov, 0));
        let record_graph = self.record_graph;
        let max_depth = self.limits.max_depth;

        let logs: Vec<WorkerLog> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    let pool = &pool;
                    let arena = &arena;
                    let factory = &factory;
                    scope.spawn(move || {
                        discover(w, pool, arena, factory, record_graph, max_depth, budget, progress)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        });

        // ---- Canonical replay: renumber provisional ids in BFS discovery order.
        let shards = arena.into_shards();
        // Provisional id -> packed (worker, record index); `u64::MAX` = never expanded.
        let mut rec_of: Vec<Vec<u64>> = shards.iter().map(|s| vec![u64::MAX; s.len()]).collect();
        for (w, log) in logs.iter().enumerate() {
            for (r, rec) in log.records.iter().enumerate() {
                let (shard, index) = ShardedArena::split(rec.parent);
                rec_of[shard][index as usize] = ((w as u64) << 32) | r as u64;
            }
        }

        let mut engine =
            Engine::new(self.limits, &self.properties, self.record_graph, self.stop_on_violation);
        engine.admit_initial_hashed(&root_buf, h_root);
        // Canonical id -> provisional id (`NO_PROVISIONAL` for states only the repair path
        // discovered).
        let mut prov_of: Vec<ProvisionalId> = vec![root_prov];
        let mut queue: VecDeque<StateId> = VecDeque::new();
        queue.push_back(0);
        let mut parent_buf = root_buf;

        let mut ticker = ProgressTicker::new(progress);
        'outer: while let Some(id) = queue.pop_front() {
            if ticker.observe(&mut engine) {
                break 'outer;
            }
            let depth = engine.depths[id as usize] as usize;
            engine.report.max_depth = engine.report.max_depth.max(depth);
            if depth >= engine.limits.max_depth {
                engine.report.truncated = true;
                continue;
            }
            engine.begin_expansion(id);

            let prov = prov_of[id as usize];
            let rec_ref = if prov == NO_PROVISIONAL {
                u64::MAX
            } else {
                let (shard, index) = ShardedArena::split(prov);
                rec_of[shard][index as usize]
            };

            if rec_ref != u64::MAX {
                // Replay the worker's log: an arena probe plus memcpy per transition.
                let log = &logs[(rec_ref >> 32) as usize];
                let rec = &log.records[(rec_ref & u64::from(u32::MAX)) as usize];
                let trans = &log.transitions
                    [rec.trans_start as usize..(rec.trans_start + rec.trans_len) as usize];
                for tr in trans {
                    let cs_entries = log.cs_pool
                        [tr.cs_start as usize..(tr.cs_start + tr.cs_len) as usize]
                        .to_vec();
                    if tr.successor == SELF_LOOP {
                        engine.on_known_transition(tr.action, id, cs_entries);
                    } else {
                        let (shard, index) = ShardedArena::split(tr.successor);
                        let bytes = shards[shard].get(index);
                        let hash = shards[shard].stored_hash(index);
                        if let Some(new_id) =
                            engine.on_transition_hashed(id, tr.action, bytes, hash, cs_entries)
                        {
                            debug_assert_eq!(prov_of.len(), new_id as usize);
                            prov_of.push(tr.successor);
                            queue.push_back(new_id);
                        }
                    }
                    if engine.stopped {
                        break 'outer;
                    }
                }
                if rec.quiescent {
                    engine.on_quiescent(id);
                }
            } else {
                // Repair: the workers never expanded this state (its discovery depth overshot
                // the limit although its canonical depth did not, or discovery was abandoned
                // at the budget) — expand it live, exactly like the sequential loop would.
                parent_buf.clear();
                parent_buf.extend_from_slice(engine.arena.get(id));
                let (quiescent, stopped) = expand_state_delta(
                    net,
                    &mut scratch,
                    &parent_buf,
                    record_graph,
                    &mut |act, step, cs_entries| {
                        match step {
                            DeltaStep::SelfLoop => {
                                engine.on_known_transition(act, id, cs_entries)
                            }
                            DeltaStep::Successor { bytes, hash } => {
                                if let Some(new_id) =
                                    engine.on_transition_hashed(id, act, bytes, hash, cs_entries)
                                {
                                    let shard = ShardedArena::shard_of(hash);
                                    let succ_prov = shards[shard]
                                        .lookup_hashed(bytes, hash)
                                        .map_or(NO_PROVISIONAL, |index| {
                                            ShardedArena::compose(shard, index)
                                        });
                                    debug_assert_eq!(prov_of.len(), new_id as usize);
                                    prov_of.push(succ_prov);
                                    queue.push_back(new_id);
                                }
                            }
                        }
                        engine.stopped
                    },
                );
                if stopped {
                    break 'outer;
                }
                if quiescent {
                    engine.on_quiescent(id);
                }
            }
        }

        ticker.finish(&engine);
        self.finish_run(engine.finish())
    }

    /// Stores the recorded graph and runs the optional liveness pass — the single exit path
    /// of every engine, so sequential, parallel, delta and interned runs all report
    /// identical liveness witnesses (they record identical graphs).
    fn finish_run(&mut self, (mut report, graph): (ExplorationReport, StateGraph)) -> ExplorationReport {
        self.graph = graph;
        if self.record_graph {
            report.graph_summary = Some(GraphSummary::of(&self.graph));
        }
        if self.check_liveness {
            report.liveness = crate::liveness::find_fair_cycles(&self.graph);
        }
        report
    }
}

/// Per-loop progress bookkeeping shared by the sequential engines and the canonical replay:
/// polls [`ExploreProgress::should_stop`] before every expansion and emits throttled
/// [`ExploreProgress::on_progress`] callbacks every [`PROGRESS_STRIDE`] expansions.
struct ProgressTicker<'a> {
    progress: Option<&'a dyn ExploreProgress>,
    since: usize,
}

impl<'a> ProgressTicker<'a> {
    fn new(progress: Option<&'a dyn ExploreProgress>) -> Self {
        ProgressTicker { progress, since: 0 }
    }

    /// Called once per popped state; returns `true` when the observer cancelled the run
    /// (the report's `truncated` flag is set before returning, so a cancelled run never
    /// claims exhaustiveness).
    fn observe(&mut self, engine: &mut Engine<'_>) -> bool {
        let Some(progress) = self.progress else { return false };
        if progress.should_stop() {
            engine.report.truncated = true;
            return true;
        }
        self.since += 1;
        if self.since >= PROGRESS_STRIDE {
            self.since = 0;
            progress.on_progress(engine.arena.len(), engine.report.transitions);
        }
        false
    }

    /// Emits the final counters when a run leaves its loop.
    fn finish(self, engine: &Engine<'_>) {
        if let Some(progress) = self.progress {
            progress.on_progress(engine.arena.len(), engine.report.transitions);
        }
    }
}

/// Enumerates the enabled activations of interned state `id`: one delivery per non-empty
/// channel followed by one tick per process.  Restores `id` into `net` as a side effect.
fn enumerate_activations<P: CheckableNode, T: Topology>(
    net: &mut Network<P, T>,
    arena: &StateArena,
    id: StateId,
) -> (Vec<Activation>, usize) {
    restore_packed(net, arena.get(id));
    let n = net.len();
    let mut activations = Vec::new();
    for v in 0..n {
        for l in 0..net.topology().degree(v) {
            if !net.channel(v, l).is_empty() {
                activations.push(Activation::Deliver { node: v, channel: l });
            }
        }
    }
    let first_tick = activations.len();
    for v in 0..n {
        activations.push(Activation::Tick { node: v });
    }
    (activations, first_tick)
}

/// Fills `terms` with every segment's hash term of `packed` and returns their XOR — the
/// [`crate::snapshot::segmented_hash`], kept term-by-term so the delta loop can patch it.
fn compute_terms(packed: &[u8], map: &SegmentMap, terms: &mut Vec<u64>) -> u64 {
    terms.clear();
    let mut hash = 0u64;
    for seg in 0..map.segments() {
        let term = segment_term(seg, map.segment(packed, seg));
        terms.push(term);
        hash ^= term;
    }
    hash
}

fn collect_cs_entries<P: CheckableNode, T: Topology>(net: &Network<P, T>) -> Vec<NodeId> {
    net.trace()
        .events()
        .iter()
        .filter(|e| matches!(e.event, treenet::Event::EnterCs { .. }))
        .map(|e| e.node)
        .collect()
}

/// Executes `act` from interned state `id` on `net`: restores the parent (borrowing its bytes
/// from the arena), runs the activation, and captures the successor into `scratch`.  Returns
/// whether the successor equals the parent (the tick self-loop test) and the critical-section
/// entries of the transition (empty unless `collect_cs`).
fn execute_transition<P: CheckableNode, T: Topology>(
    net: &mut Network<P, T>,
    arena: &StateArena,
    id: StateId,
    act: Activation,
    scratch: &mut Vec<u8>,
    collect_cs: bool,
) -> (bool, Vec<NodeId>) {
    restore_packed(net, arena.get(id));
    net.trace_mut().clear();
    net.execute(act);
    capture_packed(net, scratch);
    let cs_entries = if collect_cs { collect_cs_entries(net) } else { Vec::new() };
    let same_as_parent = scratch[..] == *arena.get(id);
    (same_as_parent, cs_entries)
}

/// Reusable buffers of one delta expansion engine — one set per sequential run and per
/// parallel discovery worker, so expansions allocate nothing per state.
struct DeltaScratch {
    /// Flat channel ids: channel `(v, l)` has flat index `chan_base[v] + l`.
    chan_base: Vec<usize>,
    /// Inverse of the flat indexing: flat channel index back to `(v, l)`.
    chan_pos: Vec<(usize, usize)>,
    map: SegmentMap,
    terms: Vec<u64>,
    undo: StepUndo<klex_core::Message>,
    activations: Vec<Activation>,
    dirty_chans: Vec<usize>,
    /// Dirty-segment patches: (segment index, span of the re-encoded bytes in `seg_buf`),
    /// in ascending parent-span order.
    patches: Vec<(usize, usize, usize)>,
    seg_buf: Vec<u8>,
    succ_buf: Vec<u8>,
}

impl DeltaScratch {
    fn for_net<P: CheckableNode, T: Topology>(net: &Network<P, T>) -> Self {
        let n = net.len();
        let mut chan_base = Vec::with_capacity(n + 1);
        let mut total_channels = 0usize;
        chan_base.push(0usize);
        for v in 0..n {
            total_channels += net.topology().degree(v);
            chan_base.push(total_channels);
        }
        let mut chan_pos = Vec::with_capacity(total_channels);
        for v in 0..n {
            for l in 0..net.topology().degree(v) {
                chan_pos.push((v, l));
            }
        }
        DeltaScratch {
            chan_base,
            chan_pos,
            map: SegmentMap::default(),
            terms: Vec::new(),
            undo: StepUndo::new(),
            activations: Vec::new(),
            dirty_chans: Vec::new(),
            patches: Vec::new(),
            seg_buf: Vec::new(),
            succ_buf: Vec::new(),
        }
    }
}

/// One derived transition, as handed to the sink of [`expand_state_delta`].
enum DeltaStep<'a> {
    /// The successor is bit-identical to the parent (no dirty segment): no splice, no hash,
    /// no arena traffic.
    SelfLoop,
    /// A proper successor: spliced packed bytes plus the incrementally patched segmented
    /// hash.  The bytes borrow the expansion's scratch buffer — copy to retain.
    Successor { bytes: &'a [u8], hash: u64 },
}

/// Expands one state with the delta discipline — restore the parent once, then per enabled
/// activation execute in place with an undo log, re-encode only the dirty segments, splice
/// and hash-patch, call `sink`, revert.  Activations are enumerated in the canonical order
/// (deliveries in `(node, channel)` order, then ticks in node order), a pure function of the
/// parent's bytes: every caller — sequential loop, discovery worker, replay repair — sees
/// the identical transition sequence, which is what the parity contract rests on.
///
/// `sink` returning `true` stops the expansion after reverting (remaining activations
/// untried).  Returns `(quiescent, stopped)`; `quiescent` means no message was in flight
/// and every tick was a self-loop — the precondition of a quiescent deadlock.
fn expand_state_delta<P, T>(
    net: &mut Network<P, T>,
    scratch: &mut DeltaScratch,
    parent_buf: &[u8],
    collect_cs: bool,
    sink: &mut dyn FnMut(Activation, DeltaStep<'_>, Vec<NodeId>) -> bool,
) -> (bool, bool)
where
    P: CheckableNode,
    T: Topology,
{
    let DeltaScratch {
        chan_base,
        chan_pos,
        map,
        terms,
        undo,
        activations,
        dirty_chans,
        patches,
        seg_buf,
        succ_buf,
    } = scratch;

    restore_packed_mapped(net, parent_buf, map);
    let h_parent = compute_terms(parent_buf, map, terms);
    let n = net.len();

    activations.clear();
    for v in 0..n {
        for l in 0..net.topology().degree(v) {
            if !net.channel(v, l).is_empty() {
                activations.push(Activation::Deliver { node: v, channel: l });
            }
        }
    }
    let first_tick = activations.len();
    for v in 0..n {
        activations.push(Activation::Tick { node: v });
    }

    let mut every_tick_is_self_loop = true;
    let mut stopped = false;
    for idx in 0..activations.len() {
        let act = activations[idx];
        let node = match act {
            Activation::Deliver { node, .. } | Activation::Tick { node } => node,
        };
        net.trace_mut().clear();
        let saved_state = net.node(node).capture_state();
        net.execute_undoable(act, undo);

        dirty_chans.clear();
        if let Some((dn, dl)) = undo.delivered_channel() {
            dirty_chans.push(chan_base[dn] + dl);
        }
        for &(sn, sl) in undo.sent_channels() {
            dirty_chans.push(chan_base[sn] + sl);
        }
        dirty_chans.sort_unstable();
        dirty_chans.dedup();

        // Re-encode the dirty segments; node segments precede channel segments in the
        // packed layout and dirty_chans is ascending, so pushing the node segment first
        // keeps `patches` in ascending span order for the splice.
        seg_buf.clear();
        patches.clear();
        let node_seg = map.node_segment(node);
        let start = seg_buf.len();
        encode_node_segment(seg_buf, &net.node(node).capture_state());
        if seg_buf[start..] != *map.segment(parent_buf, node_seg) {
            patches.push((node_seg, start, seg_buf.len()));
        }
        for &flat in dirty_chans.iter() {
            let seg = map.channel_segment(flat);
            let (cv, cl) = chan_pos[flat];
            let start = seg_buf.len();
            let channel = net.channel(cv, cl);
            encode_channel_segment(seg_buf, channel.len(), channel.iter());
            if seg_buf[start..] != *map.segment(parent_buf, seg) {
                patches.push((seg, start, seg_buf.len()));
            }
        }

        let same_as_parent = patches.is_empty();
        if idx >= first_tick && !same_as_parent {
            every_tick_is_self_loop = false;
        }
        let cs_entries = if collect_cs { collect_cs_entries(net) } else { Vec::new() };

        let stop = if same_as_parent {
            sink(act, DeltaStep::SelfLoop, cs_entries)
        } else {
            let mut hash = h_parent;
            succ_buf.clear();
            let mut cursor = 0usize;
            for &(seg, s, e) in patches.iter() {
                hash ^= terms[seg] ^ segment_term(seg, &seg_buf[s..e]);
                let (span_start, span_end) = map.span(seg);
                succ_buf.extend_from_slice(&parent_buf[cursor..span_start]);
                succ_buf.extend_from_slice(&seg_buf[s..e]);
                cursor = span_end;
            }
            succ_buf.extend_from_slice(&parent_buf[cursor..]);
            sink(act, DeltaStep::Successor { bytes: succ_buf.as_slice(), hash }, cs_entries)
        };

        // Revert to the parent configuration for the next sibling.
        net.revert(undo);
        net.node_mut(node).restore_state(&saved_state);

        if stop {
            stopped = true;
            break;
        }
    }

    (first_tick == 0 && every_tick_is_self_loop, stopped)
}

/// Sentinel "successor" in a worker log marking a self-loop transition.  Provisional ids
/// never reach `u32::MAX`: each shard caps its index space strictly below the sentinel.
const SELF_LOOP: ProvisionalId = u32::MAX;
/// Sentinel in the replay's canonical-id → provisional-id table for states the workers never
/// interned (discovered only by the repair path).
const NO_PROVISIONAL: ProvisionalId = u32::MAX;

/// One logged transition of a discovery worker.
struct LoggedTransition {
    action: Activation,
    /// Provisional id of the successor, or [`SELF_LOOP`].
    successor: ProvisionalId,
    /// Span of this transition's critical-section entries in the worker's `cs_pool`.
    cs_start: u32,
    cs_len: u32,
}

/// One expanded state in a worker's log: its provisional id plus the span of its
/// transitions in the worker's flat transition vector.
struct LoggedExpansion {
    parent: ProvisionalId,
    trans_start: u32,
    trans_len: u32,
    /// True when no message was in flight and every tick was a self-loop.
    quiescent: bool,
}

/// Everything one discovery worker learned, flattened into three vectors so logging a
/// transition is two pushes and no per-state allocation.
#[derive(Default)]
struct WorkerLog {
    records: Vec<LoggedExpansion>,
    transitions: Vec<LoggedTransition>,
    cs_pool: Vec<NodeId>,
}

/// A unit of discovery work: a provisional state id plus the depth along its discovery path
/// (an upper bound on the canonical BFS depth — any path is at least as long as the
/// shortest, which is all the worker-side depth horizon needs).
type WorkItem = (ProvisionalId, u32);

/// Most items a thief takes in one steal (bounded at half the victim's deque).
const STEAL_BATCH: usize = 64;

/// The work-stealing pool: one deque per worker plus termination and abandon bookkeeping.
/// Owners push and pop at the back; thieves steal a batch from the front — the Chase-Lev
/// split, with a mutex per deque instead of lock-free CAS (a steal locks exactly one deque,
/// so there is no lock ordering to get wrong, and steals are rare once the space fans out).
struct StealPool {
    deques: Vec<Mutex<VecDeque<WorkItem>>>,
    /// Queued + in-flight items; discovery is complete when this reaches zero.
    pending: AtomicUsize,
    /// Set when the discovery budget trips; workers drain out and the replay repairs the
    /// remainder sequentially.
    abandoned: AtomicBool,
}

impl StealPool {
    fn new(threads: usize) -> Self {
        StealPool {
            deques: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
            abandoned: AtomicBool::new(false),
        }
    }

    /// Enqueues one item on `worker`'s deque.  `pending` is raised *before* the item
    /// becomes stealable, so the count never under-reads while work is still reachable.
    fn push(&self, worker: usize, item: WorkItem) {
        self.pending.fetch_add(1, Ordering::SeqCst);
        self.deques[worker].lock().expect("unpoisoned deque").push_back(item);
    }

    /// Owner pop (newest first, for locality), falling back to stealing a batch from the
    /// front of the first non-empty victim deque (oldest first — the states a victim will
    /// not touch for the longest).
    fn pop(&self, worker: usize) -> Option<WorkItem> {
        if let Some(item) = self.deques[worker].lock().expect("unpoisoned deque").pop_back() {
            return Some(item);
        }
        let t = self.deques.len();
        for step in 1..t {
            let victim = (worker + step) % t;
            let mut stolen: VecDeque<WorkItem> = {
                let mut deque = self.deques[victim].lock().expect("unpoisoned deque");
                let take = deque.len().div_ceil(2).min(STEAL_BATCH);
                deque.drain(..take).collect()
            };
            if let Some(first) = stolen.pop_front() {
                if !stolen.is_empty() {
                    self.deques[worker].lock().expect("unpoisoned deque").append(&mut stolen);
                }
                return Some(first);
            }
        }
        None
    }

    /// Marks one previously popped item complete.
    fn complete_one(&self) {
        self.pending.fetch_sub(1, Ordering::SeqCst);
    }

    /// True when every enqueued item has been completed.
    fn done(&self) -> bool {
        self.pending.load(Ordering::SeqCst) == 0
    }
}

/// One discovery worker: pops (or steals) states, expands each with the shared delta loop on
/// its private network, interns successors into the sharded arena, and logs every transition
/// for the canonical replay.
#[allow(clippy::too_many_arguments)]
fn discover<P, T, F>(
    worker: usize,
    pool: &StealPool,
    arena: &ShardedArena,
    factory: &F,
    record_graph: bool,
    max_depth: usize,
    budget: usize,
    progress: Option<&dyn ExploreProgress>,
) -> WorkerLog
where
    P: CheckableNode,
    T: Topology,
    F: Fn() -> Network<P, T> + Sync,
{
    let mut net = factory();
    let mut scratch = DeltaScratch::for_net(&net);
    let mut parent_buf = Vec::new();
    let mut log = WorkerLog::default();

    loop {
        if pool.abandoned.load(Ordering::Relaxed) {
            break;
        }
        // A cancelled observer abandons discovery exactly like a tripped budget: workers
        // drain out and the canonical replay (which polls the observer itself) stops early.
        if progress.is_some_and(|p| p.should_stop()) {
            pool.abandoned.store(true, Ordering::Relaxed);
            break;
        }
        let Some((prov, depth)) = pool.pop(worker) else {
            if pool.done() {
                break;
            }
            std::thread::yield_now();
            continue;
        };
        // States at the depth horizon are left unexpanded, like the sequential loop leaves
        // them; the discovery depth can overshoot the canonical one, in which case the
        // replay repairs the gap.
        if (depth as usize) < max_depth {
            arena.fetch(prov, &mut parent_buf);
            let trans_start = log.transitions.len() as u32;
            let (quiescent, _) = expand_state_delta(
                &mut net,
                &mut scratch,
                &parent_buf,
                record_graph,
                &mut |action, step, cs_entries| {
                    let successor = match step {
                        DeltaStep::SelfLoop => SELF_LOOP,
                        DeltaStep::Successor { bytes, hash } => {
                            let (succ, inserted) = arena.intern_hashed(bytes, hash);
                            if inserted {
                                if arena.len() > budget {
                                    pool.abandoned.store(true, Ordering::Relaxed);
                                }
                                pool.push(worker, (succ, depth + 1));
                            }
                            succ
                        }
                    };
                    let cs_start = log.cs_pool.len() as u32;
                    log.cs_pool.extend_from_slice(&cs_entries);
                    log.transitions.push(LoggedTransition {
                        action,
                        successor,
                        cs_start,
                        cs_len: cs_entries.len() as u32,
                    });
                    false
                },
            );
            log.records.push(LoggedExpansion {
                parent: prov,
                trans_start,
                trans_len: log.transitions.len() as u32 - trans_start,
                quiescent,
            });
        }
        pool.complete_one();
    }
    log
}

/// The shared bookkeeping of an exploration run: the arena, flat per-state vectors, the
/// report under construction, and the graph recorder.  The sequential loop and the parallel
/// canonical replay drive exactly this state machine, which is what makes their reports
/// identical.
struct Engine<'p> {
    limits: Limits,
    properties: &'p [Box<dyn Property>],
    record_graph: bool,
    stop_on_violation: bool,
    arena: StateArena,
    /// `parents[id]` is the BFS predecessor and the activation reaching `id`; id 0 is the
    /// root and its entry is never read.
    parents: Vec<(StateId, Activation)>,
    depths: Vec<u32>,
    violated: Vec<String>,
    report: ExplorationReport,
    edges: Vec<Edge>,
    edge_starts: Vec<u32>,
    /// Set when `stop_on_violation` fires; callers abandon the remaining work.
    stopped: bool,
}

impl<'p> Engine<'p> {
    fn new(
        limits: Limits,
        properties: &'p [Box<dyn Property>],
        record_graph: bool,
        stop_on_violation: bool,
    ) -> Self {
        Engine {
            limits,
            properties,
            record_graph,
            stop_on_violation,
            arena: StateArena::new(),
            parents: Vec::new(),
            depths: Vec::new(),
            violated: Vec::new(),
            report: ExplorationReport::default(),
            edges: Vec::new(),
            edge_starts: Vec::new(),
            stopped: false,
        }
    }

    fn admit_initial(&mut self, packed: &[u8]) {
        self.admit_initial_hashed(packed, crate::snapshot::fx_hash(packed));
    }

    /// [`Engine::admit_initial`] with a caller-supplied hash.  A run must feed the engine
    /// one hash scheme throughout (see [`StateArena::intern_capped_hashed`]): the interned
    /// engine always passes fx hashes, the delta engine always passes segmented hashes.
    fn admit_initial_hashed(&mut self, packed: &[u8], hash: u64) {
        let outcome = self.arena.intern_capped_hashed(packed, hash, usize::MAX);
        debug_assert!(
            outcome == InternOutcome::Inserted(0),
            "the initial configuration must be the first interned"
        );
        self.parents.push((0, Activation::Tick { node: 0 }));
        self.depths.push(0);
        self.check_properties(0);
    }

    /// Marks the start of `id`'s expansion (edge bookkeeping relies on id order).
    fn begin_expansion(&mut self, id: StateId) {
        if self.record_graph {
            debug_assert_eq!(self.edge_starts.len(), id as usize);
            self.edge_starts.push(self.edges.len() as u32);
        }
    }

    /// Records a transition whose successor is already interned.
    fn on_known_transition(&mut self, action: Activation, target: StateId, cs_entries: Vec<NodeId>) {
        self.report.transitions += 1;
        if self.record_graph {
            self.edges.push(Edge { action, target, cs_entries });
        }
    }

    /// Records a transition given the successor's packed bytes; interns them, runs property
    /// checks when the state is new, and returns the new id when one was admitted.
    fn on_transition(
        &mut self,
        parent: StateId,
        action: Activation,
        packed: &[u8],
        cs_entries: Vec<NodeId>,
    ) -> Option<StateId> {
        self.on_transition_hashed(parent, action, packed, crate::snapshot::fx_hash(packed), cs_entries)
    }

    /// [`Engine::on_transition`] with a caller-supplied hash (the delta engine's
    /// incrementally patched segmented hash).
    fn on_transition_hashed(
        &mut self,
        parent: StateId,
        action: Activation,
        packed: &[u8],
        hash: u64,
        cs_entries: Vec<NodeId>,
    ) -> Option<StateId> {
        self.report.transitions += 1;
        let outcome =
            self.arena.intern_capped_hashed(packed, hash, self.limits.max_configurations);
        let (target, admitted) = match outcome {
            InternOutcome::Existing(id) => (Some(id), None),
            InternOutcome::Full => {
                self.report.truncated = true;
                (None, None)
            }
            InternOutcome::Inserted(id) => {
                self.parents.push((parent, action));
                self.depths.push(self.depths[parent as usize] + 1);
                self.check_properties(id);
                if self.stop_on_violation && !self.report.violations.is_empty() {
                    self.stopped = true;
                }
                (Some(id), Some(id))
            }
        };
        if self.record_graph {
            if let Some(target) = target {
                self.edges.push(Edge { action, target, cs_entries });
            }
        }
        admitted
    }

    /// Emits a deadlock witness for a quiescent state with unsatisfiable requesters.
    fn on_quiescent(&mut self, id: StateId) {
        let config = self.arena.config(id);
        let blocked = config.unsatisfied_requesters();
        if !blocked.is_empty() {
            self.report.deadlocks.push(DeadlockWitness {
                blocked,
                depth: self.depths[id as usize] as usize,
                trace: self.trace_to(id),
                config,
            });
        }
    }

    fn check_properties(&mut self, id: StateId) {
        if self.properties.is_empty() {
            return;
        }
        let config = self.arena.config(id);
        for property in self.properties {
            if self.violated.iter().any(|name| name == property.name()) {
                continue;
            }
            if let Err(detail) = property.check(&config) {
                self.violated.push(property.name().to_string());
                self.report.violations.push(Violation {
                    property: property.name().to_string(),
                    detail,
                    depth: self.depths[id as usize] as usize,
                    trace: self.trace_to(id),
                    config: config.clone(),
                });
            }
        }
    }

    /// Reconstructs the activation sequence from the initial configuration to `id`.
    fn trace_to(&self, mut id: StateId) -> Vec<Activation> {
        let mut trace = Vec::new();
        while id != 0 {
            let (parent, action) = self.parents[id as usize];
            trace.push(action);
            id = parent;
        }
        trace.reverse();
        trace
    }

    fn finish(mut self) -> (ExplorationReport, StateGraph) {
        self.report.configurations = self.arena.len();
        self.report.arena_bytes = self.arena.bytes_used();
        self.report.frontier_sizes = {
            let mut sizes = vec![0usize; self.depths.iter().max().map_or(0, |&d| d as usize + 1)];
            for &d in &self.depths {
                sizes[d as usize] += 1;
            }
            sizes
        };
        let graph = if self.record_graph {
            // States that were never expanded (beyond the depth limit, or abandoned after an
            // early stop) get empty edge ranges.
            while self.edge_starts.len() <= self.arena.len() {
                self.edge_starts.push(self.edges.len() as u32);
            }
            StateGraph { arena: self.arena, edges: self.edges, edge_starts: self.edge_starts }
        } else {
            StateGraph::default()
        };
        (self.report, graph)
    }
}

/// A faithful retention of the pre-interning exploration loop (full `Configuration` values in
/// a `HashMap`, cloned on every pop and push), kept as the reference point for the
/// `exhaustive_checker` benchmark's speedup measurements.  Counts configurations and
/// transitions only — no properties, graph recording, or deadlock detection.
pub mod baseline {
    use super::{Limits, Network, Topology};
    use crate::snapshot::{capture, restore, CheckableNode, Configuration};
    use std::collections::{HashMap, VecDeque};
    use treenet::Activation;

    /// Counts of one baseline exploration.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct BaselineReport {
        /// Number of distinct configurations visited.
        pub configurations: usize,
        /// Number of transitions executed.
        pub transitions: usize,
        /// True when the configuration limit was hit.
        pub truncated: bool,
    }

    /// Explores with the pre-interning engine: SipHash-keyed `HashMap<Configuration, usize>`
    /// visited set, full configuration clones on the hot path.
    pub fn explore<P: CheckableNode, T: Topology>(
        net: &mut Network<P, T>,
        limits: Limits,
    ) -> BaselineReport {
        let n = net.len();
        let degrees: Vec<usize> = (0..n).map(|v| net.topology().degree(v)).collect();
        let initial = capture(net);
        let mut ids: HashMap<Configuration, usize> = HashMap::new();
        let mut configs: Vec<Configuration> = Vec::new();
        let mut report = BaselineReport::default();
        ids.insert(initial.clone(), 0);
        configs.push(initial);
        let mut queue: VecDeque<usize> = VecDeque::new();
        queue.push_back(0);
        while let Some(id) = queue.pop_front() {
            let config = configs[id].clone();
            let mut activations: Vec<Activation> = Vec::new();
            for v in 0..n {
                for l in 0..degrees[v] {
                    if !config.channels[v][l].is_empty() {
                        activations.push(Activation::Deliver { node: v, channel: l });
                    }
                }
            }
            for v in 0..n {
                activations.push(Activation::Tick { node: v });
            }
            for act in activations {
                restore(net, &config);
                net.execute(act);
                let succ = capture(net);
                report.transitions += 1;
                if !ids.contains_key(&succ) {
                    if configs.len() >= limits.max_configurations {
                        report.truncated = true;
                        continue;
                    }
                    let new_id = configs.len();
                    ids.insert(succ.clone(), new_id);
                    configs.push(succ);
                    queue.push_back(new_id);
                }
            }
        }
        report.configurations = configs.len();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drivers;
    use crate::properties;
    use klex_core::KlConfig;
    use klex_core::Message;
    use treenet::CsState;

    /// A 2-node chain running the naive protocol with a single resource token, both processes
    /// perpetually requesting one unit: a minimal live instance whose state space is tiny.
    fn tiny_naive() -> Network<klex_core::naive::NaiveNode, topology::OrientedTree> {
        let tree = topology::builders::chain(2);
        let cfg = KlConfig::new(1, 1, 2);
        klex_core::naive::network(tree, cfg, |_| drivers::AlwaysRequest::boxed(1))
    }

    #[test]
    fn exploration_of_a_tiny_instance_terminates_and_is_exhaustive() {
        let mut net = tiny_naive();
        let cfg = KlConfig::new(1, 1, 2);
        let mut explorer = Explorer::new(&mut net)
            .with_limits(Limits { max_configurations: 50_000, max_depth: usize::MAX })
            .with_property(properties::safety(cfg));
        let report = explorer.run();
        assert!(report.exhaustive(), "2-node 1-token space must fit the limits");
        assert!(report.ok(), "safety must hold everywhere: {:?}", report.violations);
        assert!(report.configurations > 1);
        assert!(report.transitions >= report.configurations - 1);
    }

    #[test]
    fn single_requester_never_deadlocks_with_one_token() {
        let mut net = tiny_naive();
        let report = Explorer::new(&mut net)
            .with_limits(Limits { max_configurations: 50_000, max_depth: usize::MAX })
            .run();
        assert!(report.exhaustive());
        assert!(report.deadlock_free(), "deadlocks: {:?}", report.deadlocks);
    }

    #[test]
    fn violations_carry_shortest_traces() {
        // A property that is violated as soon as any process enters its critical section.
        // Instantaneous critical sections (AlwaysRequest) are invisible in captured
        // configurations (entry and exit happen within one activation), so use drivers that
        // hold the critical section across an activation.
        let make = || {
            let tree = topology::builders::chain(2);
            let cfg = KlConfig::new(1, 1, 2);
            klex_core::naive::network(tree, cfg, |_| drivers::HoldOneActivation::boxed(1))
        };
        let mut net = make();
        let report = Explorer::new(&mut net)
            .with_limits(Limits { max_configurations: 50_000, max_depth: usize::MAX })
            .with_property(properties::property("never-enter", |c| {
                if c.nodes.iter().any(|s| s.cs == CsState::In) {
                    Err("a process entered its critical section".into())
                } else {
                    Ok(())
                }
            }))
            .run();
        assert_eq!(report.violations.len(), 1);
        let violation = &report.violations[0];
        assert!(!violation.trace.is_empty());
        assert_eq!(violation.trace.len(), violation.depth);
        assert!(violation.config.nodes.iter().any(|s| s.cs == CsState::In));

        // Replay the trace on a fresh network and confirm it reaches the reported config.
        let mut fresh = make();
        for act in &violation.trace {
            fresh.execute(*act);
        }
        assert_eq!(crate::snapshot::capture(&fresh), violation.config);
    }

    #[test]
    fn limits_truncate_and_are_reported() {
        let mut net = tiny_naive();
        let report = Explorer::new(&mut net)
            .with_limits(Limits { max_configurations: 3, max_depth: usize::MAX })
            .run();
        assert!(report.truncated);
        assert!(report.configurations <= 3);
    }

    #[test]
    fn recorded_graph_matches_report_counts() {
        let mut net = tiny_naive();
        let mut explorer = Explorer::new(&mut net)
            .with_limits(Limits { max_configurations: 50_000, max_depth: usize::MAX })
            .record_graph(true);
        let report = explorer.run();
        let graph = explorer.graph();
        assert_eq!(graph.len(), report.configurations);
        assert!(graph.transition_count() > 0);
        // Every edge target is a valid configuration index.
        for id in 0..graph.len() {
            for edge in graph.edges(id) {
                assert!((edge.target as usize) < graph.len());
            }
        }
    }

    #[test]
    fn depth_limit_bounds_the_frontier() {
        let mut net = tiny_naive();
        let report = Explorer::new(&mut net)
            .with_limits(Limits { max_configurations: 50_000, max_depth: 2 })
            .run();
        assert!(report.max_depth <= 2);
        assert!(report.truncated, "a live protocol has configurations beyond depth 2");
    }

    #[test]
    fn naive_deadlock_is_reachable_on_a_minimal_figure2_instance() {
        // A minimal instance of the Figure-2 phenomenon: ℓ = 2 tokens, two requesters that
        // each need both.  Exploration from the *clean* initial state must find the reachable
        // deadlock in which each requester hoards one token and neither can ever proceed.
        let tree = topology::builders::chain(3);
        let cfg = KlConfig::new(2, 2, 3);
        let needs = [0usize, 2, 2];
        let mut net = klex_core::naive::network(tree, cfg, drivers::from_needs(&needs));
        let report = Explorer::new(&mut net)
            .with_limits(Limits { max_configurations: 200_000, max_depth: usize::MAX })
            .run();
        assert!(report.exhaustive(), "the 3-node 2-token space must fit the limits");
        assert!(
            !report.deadlock_free(),
            "the naive protocol must reach a Figure-2-style deadlock (explored {} configurations)",
            report.configurations,
        );
        let witness = &report.deadlocks[0];
        assert_eq!(witness.blocked.len(), 2, "both requesters are blocked");
        // In the deadlock every resource token is reserved by a blocked requester.
        assert_eq!(witness.config.messages_in_flight(), 0);
        assert_eq!(witness.config.resource_tokens(), 2);
    }

    #[test]
    fn closure_holds_for_the_self_stabilizing_protocol_on_figure3() {
        // Closure (Definition 1): from a legitimate configuration, every reachable
        // configuration is legitimate.  Explore the full protocol from a stabilized
        // configuration of the Figure-3 instance and check the legitimacy predicate
        // everywhere.
        let tree = topology::builders::figure3_tree();
        let cfg = KlConfig::new(2, 2, 3).with_cmax(0);
        let mut net = crate::scenarios::stabilized_ss(
            tree,
            cfg,
            |_| drivers::AlwaysRequest::boxed(1),
            500_000,
        );
        let report = Explorer::new(&mut net)
            .with_limits(Limits { max_configurations: 150_000, max_depth: usize::MAX })
            .with_property(properties::legitimate(cfg))
            .with_property(properties::safety(cfg))
            .run();
        assert!(report.ok(), "closure violated: {:?}", report.violations);
        assert!(report.deadlock_free());
        assert!(
            report.configurations > 100,
            "the exploration should cover a non-trivial reachable set, got {}",
            report.configurations
        );
    }

    #[test]
    fn garbage_message_is_consumed_not_forwarded() {
        let mut net = tiny_naive();
        net.inject_into(1, 0, Message::Garbage(7));
        let report = Explorer::new(&mut net)
            .with_limits(Limits { max_configurations: 50_000, max_depth: usize::MAX })
            .continue_on_violation()
            .with_property(properties::no_garbage())
            .run();
        // The initial configuration violates no-garbage, but the violation is at depth 0 and
        // the garbage disappears after delivery (it is never retransmitted).
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].depth, 0);
        assert!(report.exhaustive());
    }

    #[test]
    fn parallel_exploration_matches_sequential_on_a_seeded_7_node_tree() {
        // The satellite regression test: a 7-node random tree (fixed seed), two requesters
        // competing for two tokens plus a third small requester.  Sequential and parallel
        // exploration must visit identical state counts, record identically sized graphs, and
        // report identical deadlock depths.
        let needs = [0usize, 2, 0, 2, 0, 1, 0];
        let cfg = KlConfig::new(2, 2, 7);
        let make = || {
            let tree = topology::builders::random_tree(7, 0xD153A5E);
            klex_core::naive::network(tree, cfg, drivers::from_needs(&needs))
        };
        let limits = Limits { max_configurations: 2_000_000, max_depth: usize::MAX };

        let mut net = make();
        let mut seq_explorer = Explorer::new(&mut net).with_limits(limits).record_graph(true);
        let sequential = seq_explorer.run();
        let seq_graph = seq_explorer.into_graph();
        assert!(sequential.exhaustive(), "the 7-node instance must fit the limits");

        for threads in [2, 4] {
            let mut net = make();
            let mut par_explorer =
                Explorer::new(&mut net).with_limits(limits).record_graph(true);
            let parallel = par_explorer.run_parallel(make, threads);
            let par_graph = par_explorer.into_graph();

            assert_eq!(parallel.configurations, sequential.configurations);
            assert_eq!(parallel.transitions, sequential.transitions);
            assert_eq!(parallel.max_depth, sequential.max_depth);
            assert_eq!(parallel.truncated, sequential.truncated);
            assert_eq!(parallel.deadlocks.len(), sequential.deadlocks.len());
            for (p, s) in parallel.deadlocks.iter().zip(&sequential.deadlocks) {
                assert_eq!(p.depth, s.depth);
                assert_eq!(p.blocked, s.blocked);
                assert_eq!(p.config, s.config);
            }
            assert_eq!(par_graph.len(), seq_graph.len());
            assert_eq!(par_graph.transition_count(), seq_graph.transition_count());
            // Identical ids: spot-check that both graphs store the same packed states.
            for id in (0..seq_graph.len()).step_by(97) {
                assert_eq!(par_graph.packed(id), seq_graph.packed(id));
            }
        }
    }

    #[test]
    fn parallel_exploration_reports_identical_violation_depths() {
        let cfg = KlConfig::new(1, 1, 2);
        let make = || {
            let tree = topology::builders::chain(2);
            klex_core::naive::network(tree, cfg, |_| drivers::HoldOneActivation::boxed(1))
        };
        let never_enter = || {
            properties::property("never-enter", |c: &Configuration| {
                if c.nodes.iter().any(|s| s.cs == CsState::In) {
                    Err("a process entered its critical section".into())
                } else {
                    Ok(())
                }
            })
        };
        let limits = Limits { max_configurations: 50_000, max_depth: usize::MAX };
        let mut net = make();
        let sequential = Explorer::new(&mut net)
            .with_limits(limits)
            .with_property(never_enter())
            .run();
        let mut net = make();
        let parallel = Explorer::new(&mut net)
            .with_limits(limits)
            .with_property(never_enter())
            .run_parallel(make, 4);
        assert_eq!(sequential.violations.len(), 1);
        assert_eq!(parallel.violations.len(), 1);
        assert_eq!(parallel.violations[0].depth, sequential.violations[0].depth);
        assert_eq!(parallel.violations[0].trace, sequential.violations[0].trace);
        assert_eq!(parallel.violations[0].config, sequential.violations[0].config);
        assert_eq!(parallel.configurations, sequential.configurations);
        assert_eq!(parallel.transitions, sequential.transitions);
    }

    #[test]
    fn parallel_exploration_matches_sequential_under_truncation() {
        let cfg = KlConfig::new(1, 1, 2);
        let make = || {
            let tree = topology::builders::chain(2);
            klex_core::naive::network(tree, cfg, |_| drivers::AlwaysRequest::boxed(1))
        };
        let limits = Limits { max_configurations: 7, max_depth: usize::MAX };
        let mut net = make();
        let sequential = Explorer::new(&mut net).with_limits(limits).run();
        let mut net = make();
        let parallel = Explorer::new(&mut net).with_limits(limits).run_parallel(make, 3);
        assert!(sequential.truncated && parallel.truncated);
        assert_eq!(parallel.configurations, sequential.configurations);
        assert_eq!(parallel.transitions, sequential.transitions);
        assert_eq!(parallel.max_depth, sequential.max_depth);
    }

    #[test]
    fn parallel_exploration_matches_sequential_under_a_depth_limit() {
        // A finite depth limit exercises the replay's repair path: a worker can first reach
        // a state along a path longer than its canonical BFS depth and skip it at the
        // horizon, in which case the replay must expand it live.
        let needs = [0usize, 2, 0, 2, 0, 1, 0];
        let cfg = KlConfig::new(2, 2, 7);
        let make = || {
            let tree = topology::builders::random_tree(7, 0xD153A5E);
            klex_core::naive::network(tree, cfg, drivers::from_needs(&needs))
        };
        for max_depth in [2, 5, 9] {
            let limits = Limits { max_configurations: 2_000_000, max_depth };
            let mut net = make();
            let sequential = Explorer::new(&mut net).with_limits(limits).run();
            for threads in [2, 4] {
                let mut net = make();
                let parallel =
                    Explorer::new(&mut net).with_limits(limits).run_parallel(make, threads);
                assert_eq!(parallel.configurations, sequential.configurations);
                assert_eq!(parallel.transitions, sequential.transitions);
                assert_eq!(parallel.max_depth, sequential.max_depth);
                assert_eq!(parallel.truncated, sequential.truncated);
                assert_eq!(parallel.frontier_sizes, sequential.frontier_sizes);
            }
        }
    }

    #[test]
    fn delta_and_interned_engines_produce_identical_reports() {
        let limits = Limits { max_configurations: 200_000, max_depth: usize::MAX };
        let cfg = KlConfig::new(2, 2, 3);
        let needs = [0usize, 2, 2];
        let make = || {
            klex_core::naive::network(
                topology::builders::chain(3),
                cfg,
                drivers::from_needs(&needs),
            )
        };

        let mut net = make();
        let mut interned_explorer =
            Explorer::new(&mut net).with_limits(limits).record_graph(true);
        let interned = interned_explorer.run_with(ExploreEngine::Interned);
        let interned_graph = interned_explorer.into_graph();

        let mut net = make();
        let mut delta_explorer = Explorer::new(&mut net).with_limits(limits).record_graph(true);
        let delta = delta_explorer.run_with(ExploreEngine::Delta);
        let delta_graph = delta_explorer.into_graph();

        assert_eq!(delta.configurations, interned.configurations);
        assert_eq!(delta.transitions, interned.transitions);
        assert_eq!(delta.max_depth, interned.max_depth);
        assert_eq!(delta.frontier_sizes, interned.frontier_sizes);
        assert_eq!(delta.truncated, interned.truncated);
        assert_eq!(delta.deadlocks.len(), interned.deadlocks.len());
        for (d, i) in delta.deadlocks.iter().zip(&interned.deadlocks) {
            assert_eq!(d.depth, i.depth);
            assert_eq!(d.blocked, i.blocked);
            assert_eq!(d.trace, i.trace);
            assert_eq!(d.config, i.config);
        }
        // Identical graphs, id for id: same packed states, same edges.
        assert_eq!(delta_graph.len(), interned_graph.len());
        assert_eq!(delta_graph.transition_count(), interned_graph.transition_count());
        for id in 0..delta_graph.len() {
            assert_eq!(delta_graph.packed(id), interned_graph.packed(id), "state {id}");
            let de = delta_graph.edges(id);
            let ie = interned_graph.edges(id);
            assert_eq!(de.len(), ie.len());
            for (d, i) in de.iter().zip(ie) {
                assert_eq!(d.action, i.action);
                assert_eq!(d.target, i.target);
                assert_eq!(d.cs_entries, i.cs_entries);
            }
        }
    }

    #[test]
    fn delta_engine_respects_truncation_limits_identically() {
        let cfg = KlConfig::new(1, 1, 2);
        let make = || {
            klex_core::naive::network(topology::builders::chain(2), cfg, |_| {
                drivers::AlwaysRequest::boxed(1)
            })
        };
        let limits = Limits { max_configurations: 7, max_depth: usize::MAX };
        let mut net = make();
        let interned = Explorer::new(&mut net).with_limits(limits).run_with(ExploreEngine::Interned);
        let mut net = make();
        let delta = Explorer::new(&mut net).with_limits(limits).run_with(ExploreEngine::Delta);
        assert!(interned.truncated && delta.truncated);
        assert_eq!(delta.configurations, interned.configurations);
        assert_eq!(delta.transitions, interned.transitions);
        assert_eq!(delta.frontier_sizes, interned.frontier_sizes);
    }

    #[test]
    fn baseline_engine_agrees_with_the_interned_engine() {
        let limits = Limits { max_configurations: 200_000, max_depth: usize::MAX };
        let tree = topology::builders::chain(3);
        let cfg = KlConfig::new(2, 2, 3);
        let needs = [0usize, 2, 2];
        let mut net = klex_core::naive::network(tree, cfg, drivers::from_needs(&needs));
        let base = baseline::explore(&mut net, limits);
        let mut net = klex_core::naive::network(
            topology::builders::chain(3),
            cfg,
            drivers::from_needs(&needs),
        );
        let report = Explorer::new(&mut net).with_limits(limits).run();
        assert_eq!(base.configurations, report.configurations);
        assert_eq!(base.transitions, report.transitions);
        assert!(!base.truncated && !report.truncated);
    }
}
