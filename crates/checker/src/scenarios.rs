//! Ready-made networks in checkable form.
//!
//! The explorer's state abstraction excludes the root's timeout counter (see
//! [`crate::snapshot`]), so a network handed to the [`crate::Explorer`] must be built with an
//! effectively infinite timeout interval: the timer then cannot fire within any bounded
//! exploration and its hidden value is behaviourally irrelevant.  The paper itself only
//! requires the interval to be "sufficiently large"; an infinite interval is the limit of
//! that assumption and is sound as long as no message is lost after the initial configuration
//! — which is exactly the fault-free setting in which closure is defined.
//!
//! * [`ss_for_checking`] — the self-stabilizing protocol with the timeout disabled;
//! * [`launch_controller`] — injects the single controller message the root's first timeout
//!   would have produced, so the protocol can bootstrap without the timer;
//! * [`stabilized_ss`] — bootstraps and runs a fair schedule until the configuration is
//!   (sustainably) legitimate, returning a network ready for closure exploration.

use klex_core::{is_legitimate, KlConfig, Message, SsNode};
use topology::{OrientedTree, Topology};
use treenet::app::BoxedDriver;
use treenet::{Network, NodeId, RoundRobin};

/// A timeout interval that can never elapse within a bounded exploration.
pub const DISABLED_TIMEOUT: u64 = u64::MAX / 4;

/// Builds a self-stabilizing k-out-of-ℓ exclusion network whose root timeout is effectively
/// disabled, as required by the explorer's state abstraction.
pub fn ss_for_checking(
    tree: OrientedTree,
    cfg: KlConfig,
    driver_for: impl FnMut(NodeId) -> BoxedDriver,
) -> Network<SsNode, OrientedTree> {
    klex_core::ss::network(tree, cfg.with_timeout(DISABLED_TIMEOUT), driver_for)
}

/// Injects the controller message the root's first timeout would have sent (flag value 0, no
/// reset), so a timeout-disabled network can still bootstrap.  Must be called on a freshly
/// constructed network (root `Succ = 0`, `myC = 0`).
pub fn launch_controller(net: &mut Network<SsNode, OrientedTree>) {
    let root = net.topology().root();
    net.inject_from(root, 0, Message::Ctrl { c: 0, r: false, pt: 0, ppr: 0 });
}

/// Bootstraps a timeout-disabled network and runs a deterministic fair schedule until the
/// configuration has been legitimate for `2 · n · (2n − 2)` consecutive activations (long
/// enough for a full controller circulation at round-robin pace), then returns it.
///
/// The returned network is a genuine member of the paper's legitimate set and is the intended
/// starting point for closure exploration.
///
/// # Panics
///
/// Panics if legitimacy is not sustained within `max_steps` activations — that would indicate
/// a protocol bug, not an unlucky schedule (the schedule is deterministic).
pub fn stabilized_ss(
    tree: OrientedTree,
    cfg: KlConfig,
    driver_for: impl FnMut(NodeId) -> BoxedDriver,
    max_steps: u64,
) -> Network<SsNode, OrientedTree> {
    let n = tree.len();
    let mut net = ss_for_checking(tree, cfg, driver_for);
    launch_controller(&mut net);
    let mut sched = RoundRobin::new();
    let window = (2 * n * (2 * n).saturating_sub(2)).max(8) as u64;
    let mut consecutive = 0u64;
    for _ in 0..max_steps {
        net.step(&mut sched);
        if is_legitimate(&net, &cfg) {
            consecutive += 1;
            if consecutive >= window {
                return net;
            }
        } else {
            consecutive = 0;
        }
    }
    panic!(
        "the protocol did not reach a sustained legitimate configuration within {max_steps} \
         activations (n = {n}, l = {})",
        cfg.l
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drivers::{AlwaysRequest, NeverRequest};
    use klex_core::count_tokens;

    #[test]
    fn disabled_timeout_produces_no_spontaneous_controller() {
        let tree = topology::builders::figure3_tree();
        let cfg = KlConfig::new(1, 2, 3);
        let mut net = ss_for_checking(tree, cfg, |_| NeverRequest::boxed());
        let mut sched = RoundRobin::new();
        for _ in 0..5_000 {
            net.step(&mut sched);
        }
        assert_eq!(net.in_flight(), 0, "without the timer nothing is ever sent");
        assert_eq!(net.metrics().messages_sent, 0);
    }

    #[test]
    fn launch_controller_bootstraps_the_token_population() {
        let tree = topology::builders::figure3_tree();
        let cfg = KlConfig::new(1, 2, 3);
        let mut net = ss_for_checking(tree, cfg, |_| NeverRequest::boxed());
        launch_controller(&mut net);
        let mut sched = RoundRobin::new();
        for _ in 0..5_000 {
            net.step(&mut sched);
        }
        let census = count_tokens(&net);
        assert!(census.matches(2), "census after bootstrap: {census:?}");
    }

    #[test]
    fn stabilized_ss_returns_a_legitimate_configuration() {
        let tree = topology::builders::figure1_tree();
        let cfg = KlConfig::new(2, 3, 8).with_cmax(0);
        let net = stabilized_ss(tree, cfg, |_| AlwaysRequest::boxed(1), 500_000);
        assert!(is_legitimate(&net, &cfg));
    }
}
