//! Capturing and restoring protocol configurations.
//!
//! A *configuration* in the paper's sense is the product of all process states and channel
//! contents.  [`Configuration`] is the explorer's concrete representation of that: one
//! [`NodeState`] per process plus the full FIFO content of every incoming channel.  It is
//! `Eq + Hash`, so the explorer can recognise configurations it has already visited, and it
//! can be written back into a live [`Network`] so that the *actual* protocol code computes the
//! successors.
//!
//! # The state abstraction
//!
//! Two pieces of run-time state are deliberately **excluded** from the abstraction:
//!
//! * the logical clock (`now`) and the root's timeout counter — the paper treats the timeout
//!   interval as "sufficiently large"; checked networks are built with an effectively
//!   infinite interval (see [`crate::scenarios::ss_for_checking`]) so the timer can never
//!   fire during a bounded exploration and its value is behaviourally irrelevant;
//! * application-driver internals — the drivers of [`crate::drivers`] are stateless, so their
//!   behaviour is a function of the captured `State`/`Need` alone.
//!
//! Everything the protocol itself reads — `State`, `Need`, `RSet`, `Prio`, the counter-flushing
//! variables `myC`/`Succ`, the root's census counters and `Reset` flag, and every in-flight
//! message — is part of the abstraction.
//!
//! # Packed configurations and interning
//!
//! [`Configuration`] is convenient for property predicates and witnesses, but too heavy for
//! the explorer's hot loop: it is a Vec-of-Vecs structure whose cloning and (Sip-)hashing
//! dominated exploration time.  The exploration engine therefore works on a **packed**
//! representation instead: [`pack_configuration`] serializes a configuration into one flat,
//! canonical byte string (varint-encoded fields in a fixed order, so *equal configurations
//! produce equal bytes and vice versa*), [`capture_packed`] produces those bytes straight from
//! a live network without materializing a `Configuration`, and [`restore_packed`] writes them
//! back the same way.  A [`StateArena`] hash-conses packed configurations: each distinct
//! configuration is stored exactly once in one contiguous buffer and identified by a dense
//! `u32` id, with an open-addressing table over 64-bit fx hashes replacing the old
//! `HashMap<Configuration, usize>`.  [`unpack_configuration`] recovers a full
//! [`Configuration`] on the cold paths that need one (property violations, witnesses, cycle
//! analysis).
//!
//! # Segments and incremental hashing
//!
//! The packed encoding is naturally *segmented*: after the constant header, the buffer is a
//! sequence of per-node state segments followed by per-channel content segments, and a
//! single transition dirties only the activated node's segment plus the few channels it
//! touched.  [`SegmentMap`] records every segment's byte span (captured for free by
//! [`restore_packed_mapped`] during the parse a restore performs anyway), and
//! [`segmented_hash`] defines a whole-configuration hash as the XOR of per-segment terms
//! ([`segment_term`]) so it can be patched per dirty segment instead of recomputed over the
//! whole buffer.  The delta successor engine in [`crate::explore`] builds on exactly these
//! two primitives, interning through [`StateArena::intern_capped_hashed`] (one hash scheme
//! per arena — see its docs).

use klex_core::ss::SsRole;
use klex_core::{Message, SsNode};
use topology::Topology;
use treenet::{ChannelLabel, CsState, Network, Process};

/// The controller-related (self-stabilization) part of a process state.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum CtrlState {
    /// The root's Algorithm-1 variables.
    Root {
        /// Counter-flushing value `myC`.
        my_c: u64,
        /// Successor pointer `Succ`.
        succ: ChannelLabel,
        /// The `Reset` flag.
        reset: bool,
        /// `SToken`.
        s_token: u64,
        /// `SPush`.
        s_push: u8,
        /// `SPrio`.
        s_prio: u8,
    },
    /// A non-root process's Algorithm-2 variables.
    NonRoot {
        /// Counter-flushing value `myC`.
        my_c: u64,
        /// Successor pointer `Succ`.
        succ: ChannelLabel,
    },
}

/// The protocol-relevant local state of one process.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct NodeState {
    /// The paper's `State ∈ {Req, In, Out}`.
    pub cs: CsState,
    /// The paper's `Need`.
    pub need: usize,
    /// The paper's `RSet`, as a sorted multiset of channel labels.  Sorting is safe because
    /// `RSet` is a multiset: the retransmission target of a reserved token depends only on
    /// its own label, never on its position in the collection.
    pub rset: Vec<ChannelLabel>,
    /// The paper's `Prio` (`None` for protocol rungs without the priority token).
    pub prio: Option<ChannelLabel>,
    /// Whether the root has already created its initial tokens (naive / pusher / non-stabilizing
    /// rungs only; the self-stabilizing protocol has no such flag).
    pub bootstrapped: bool,
    /// Counter-flushing state (self-stabilizing protocol only).
    pub ctrl: Option<CtrlState>,
}

/// A global configuration: all process states plus all channel contents.
///
/// `channels[v][l]` is the FIFO content (head first) of node `v`'s incoming channel `l`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Configuration {
    /// Per-process protocol state.
    pub nodes: Vec<NodeState>,
    /// Per-channel in-flight messages, head first.
    pub channels: Vec<Vec<Vec<Message>>>,
}

impl Configuration {
    /// Total number of in-flight messages.
    pub fn messages_in_flight(&self) -> usize {
        self.channels.iter().flat_map(|per_node| per_node.iter().map(Vec::len)).sum()
    }

    /// Indices of processes that are unsatisfied requesters (`State = Req ∧ |RSet| < Need`).
    pub fn unsatisfied_requesters(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, s)| s.cs == CsState::Req && s.rset.len() < s.need)
            .map(|(v, _)| v)
            .collect()
    }

    /// Number of resource tokens in the configuration (in flight plus reserved).
    pub fn resource_tokens(&self) -> usize {
        self.in_flight_matching(Message::is_resource)
            + self.nodes.iter().map(|s| s.rset.len()).sum::<usize>()
    }

    /// Number of pusher tokens (always in flight: no process ever holds the pusher).
    pub fn pusher_tokens(&self) -> usize {
        self.in_flight_matching(Message::is_pusher)
    }

    /// Number of priority tokens, in flight plus held (`Prio ≠ ⊥`).
    pub fn priority_tokens(&self) -> usize {
        self.in_flight_matching(Message::is_priority)
            + self.nodes.iter().filter(|s| s.prio.is_some()).count()
    }

    /// Number of garbage (non-protocol) messages in flight.
    pub fn garbage_messages(&self) -> usize {
        self.in_flight_matching(|m| matches!(m, Message::Garbage(_)))
    }

    /// Resource units currently *in use* in the sense of the safety property: tokens reserved
    /// by processes executing their critical section.
    pub fn units_in_use(&self) -> usize {
        self.nodes.iter().filter(|s| s.cs == CsState::In).map(|s| s.rset.len()).sum()
    }

    fn in_flight_matching(&self, pred: impl Fn(&Message) -> bool) -> usize {
        self.channels
            .iter()
            .flat_map(|per_node| per_node.iter())
            .flat_map(|ch| ch.iter())
            .filter(|&m| pred(m))
            .count()
    }
}

/// A protocol process whose state can be captured into a [`NodeState`] and written back.
///
/// Implemented for every rung of the protocol ladder.  The contract is that
/// `restore(&capture())` is an identity on the behaviourally relevant state, and that two
/// processes with equal captures behave identically on every input (given stateless drivers).
pub trait CheckableNode: Process<Msg = Message> + klex_core::KlInspect {
    /// Captures the protocol-relevant local state.
    fn capture_state(&self) -> NodeState;

    /// Restores a previously captured state.
    fn restore_state(&mut self, state: &NodeState);
}

fn sorted(mut labels: Vec<ChannelLabel>) -> Vec<ChannelLabel> {
    labels.sort_unstable();
    labels
}

impl CheckableNode for klex_core::naive::NaiveNode {
    fn capture_state(&self) -> NodeState {
        NodeState {
            cs: self.app.state,
            need: self.app.need,
            rset: sorted(self.app.rset.clone()),
            prio: None,
            bootstrapped: self.bootstrapped,
            ctrl: None,
        }
    }

    fn restore_state(&mut self, state: &NodeState) {
        self.app.state = state.cs;
        self.app.need = state.need;
        self.app.rset = state.rset.clone();
        self.app.entered_at = 0;
        self.bootstrapped = state.bootstrapped;
    }
}

impl CheckableNode for klex_core::pusher::PusherNode {
    fn capture_state(&self) -> NodeState {
        NodeState {
            cs: self.app.state,
            need: self.app.need,
            rset: sorted(self.app.rset.clone()),
            prio: None,
            bootstrapped: self.bootstrapped,
            ctrl: None,
        }
    }

    fn restore_state(&mut self, state: &NodeState) {
        self.app.state = state.cs;
        self.app.need = state.need;
        self.app.rset = state.rset.clone();
        self.app.entered_at = 0;
        self.bootstrapped = state.bootstrapped;
    }
}

impl CheckableNode for klex_core::nonstab::NonStabNode {
    fn capture_state(&self) -> NodeState {
        NodeState {
            cs: self.app.state,
            need: self.app.need,
            rset: sorted(self.app.rset.clone()),
            prio: self.prio,
            bootstrapped: self.bootstrapped,
            ctrl: None,
        }
    }

    fn restore_state(&mut self, state: &NodeState) {
        self.app.state = state.cs;
        self.app.need = state.need;
        self.app.rset = state.rset.clone();
        self.app.entered_at = 0;
        self.prio = state.prio;
        self.bootstrapped = state.bootstrapped;
    }
}

impl CheckableNode for SsNode {
    fn capture_state(&self) -> NodeState {
        let ctrl = Some(match &self.role {
            SsRole::Root(r) => CtrlState::Root {
                my_c: r.my_c,
                succ: r.succ,
                reset: r.reset,
                s_token: r.s_token,
                s_push: r.s_push,
                s_prio: r.s_prio,
            },
            SsRole::NonRoot(st) => CtrlState::NonRoot { my_c: st.my_c, succ: st.succ },
        });
        NodeState {
            cs: self.app.state,
            need: self.app.need,
            rset: sorted(self.app.rset.clone()),
            prio: self.prio,
            bootstrapped: true,
            ctrl,
        }
    }

    fn restore_state(&mut self, state: &NodeState) {
        self.app.state = state.cs;
        self.app.need = state.need;
        self.app.rset = state.rset.clone();
        self.app.entered_at = 0;
        self.prio = state.prio;
        match (&mut self.role, &state.ctrl) {
            (SsRole::Root(r), Some(CtrlState::Root { my_c, succ, reset, s_token, s_push, s_prio })) => {
                r.my_c = *my_c;
                r.succ = *succ;
                r.reset = *reset;
                r.s_token = *s_token;
                r.s_push = *s_push;
                r.s_prio = *s_prio;
            }
            (SsRole::NonRoot(st), Some(CtrlState::NonRoot { my_c, succ })) => {
                st.my_c = *my_c;
                st.succ = *succ;
            }
            (role, ctrl) => {
                panic!("mismatched controller state for role {role:?}: {ctrl:?}");
            }
        }
    }
}

/// Captures the full configuration of `net`.
pub fn capture<P, T>(net: &Network<P, T>) -> Configuration
where
    P: CheckableNode,
    T: Topology,
{
    let n = net.len();
    let nodes = (0..n).map(|v| net.node(v).capture_state()).collect();
    let channels = (0..n)
        .map(|v| {
            (0..net.topology().degree(v))
                .map(|l| net.channel(v, l).iter().cloned().collect())
                .collect()
        })
        .collect();
    Configuration { nodes, channels }
}

/// Writes `config` back into `net`: process states are restored and every channel is cleared
/// and refilled.  The logical clock and metrics are left untouched (they are not part of the
/// abstraction).
///
/// # Panics
///
/// Panics if the configuration's shape (node count or channel degrees) does not match the
/// network.
pub fn restore<P, T>(net: &mut Network<P, T>, config: &Configuration)
where
    P: CheckableNode,
    T: Topology,
{
    assert_eq!(config.nodes.len(), net.len(), "configuration has the wrong number of processes");
    for (v, state) in config.nodes.iter().enumerate() {
        net.node_mut(v).restore_state(state);
    }
    for (v, per_node) in config.channels.iter().enumerate() {
        assert_eq!(
            per_node.len(),
            net.topology().degree(v),
            "configuration has the wrong degree for node {v}"
        );
        for (l, msgs) in per_node.iter().enumerate() {
            let mut ch = net.channel_mut(v, l);
            // `reset`, not `clear`: a restore discards run-time state, it does not model
            // fault-injected message loss, so the `lost` counter must not move (same
            // discipline as `restore_packed`).
            ch.reset();
            for m in msgs {
                ch.push(*m);
            }
        }
    }
}

// --------------------------------------------------------------------- packed representation

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(cursor: &mut &[u8]) -> u64 {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = cursor[0];
        *cursor = &cursor[1..];
        value |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return value;
        }
        shift += 7;
    }
}

fn cs_to_byte(cs: CsState) -> u8 {
    match cs {
        CsState::Out => 0,
        CsState::Req => 1,
        CsState::In => 2,
    }
}

fn cs_from_byte(byte: u8) -> CsState {
    match byte {
        0 => CsState::Out,
        1 => CsState::Req,
        2 => CsState::In,
        other => panic!("corrupt packed configuration: CsState tag {other}"),
    }
}

fn write_message(out: &mut Vec<u8>, msg: &Message) {
    match *msg {
        Message::ResT => out.push(1),
        Message::PushT => out.push(2),
        Message::PrioT => out.push(3),
        Message::Ctrl { c, r, pt, ppr } => {
            out.push(4);
            write_varint(out, c);
            out.push(u8::from(r));
            write_varint(out, pt);
            out.push(ppr);
        }
        Message::Garbage(x) => {
            out.push(5);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Message::Marker(s) => {
            out.push(6);
            out.extend_from_slice(&s.to_le_bytes());
        }
    }
}

fn read_message(cursor: &mut &[u8]) -> Message {
    let tag = cursor[0];
    *cursor = &cursor[1..];
    match tag {
        1 => Message::ResT,
        2 => Message::PushT,
        3 => Message::PrioT,
        4 => {
            let c = read_varint(cursor);
            let r = cursor[0] != 0;
            *cursor = &cursor[1..];
            let pt = read_varint(cursor);
            let ppr = cursor[0];
            *cursor = &cursor[1..];
            Message::Ctrl { c, r, pt, ppr }
        }
        5 => {
            let x = u16::from_le_bytes([cursor[0], cursor[1]]);
            *cursor = &cursor[2..];
            Message::Garbage(x)
        }
        6 => {
            let s = u32::from_le_bytes([cursor[0], cursor[1], cursor[2], cursor[3]]);
            *cursor = &cursor[4..];
            Message::Marker(s)
        }
        other => panic!("corrupt packed configuration: message tag {other}"),
    }
}

fn write_node_state(out: &mut Vec<u8>, state: &NodeState) {
    out.push(cs_to_byte(state.cs));
    write_varint(out, state.need as u64);
    write_varint(out, state.rset.len() as u64);
    for &label in &state.rset {
        write_varint(out, label as u64);
    }
    match state.prio {
        None => out.push(0),
        Some(label) => {
            out.push(1);
            write_varint(out, label as u64);
        }
    }
    out.push(u8::from(state.bootstrapped));
    match &state.ctrl {
        None => out.push(0),
        Some(CtrlState::Root { my_c, succ, reset, s_token, s_push, s_prio }) => {
            out.push(1);
            write_varint(out, *my_c);
            write_varint(out, *succ as u64);
            out.push(u8::from(*reset));
            write_varint(out, *s_token);
            out.push(*s_push);
            out.push(*s_prio);
        }
        Some(CtrlState::NonRoot { my_c, succ }) => {
            out.push(2);
            write_varint(out, *my_c);
            write_varint(out, *succ as u64);
        }
    }
}

fn read_node_state(cursor: &mut &[u8]) -> NodeState {
    let cs = cs_from_byte(cursor[0]);
    *cursor = &cursor[1..];
    let need = read_varint(cursor) as usize;
    let rset_len = read_varint(cursor) as usize;
    let rset = (0..rset_len).map(|_| read_varint(cursor) as usize).collect();
    let prio = match cursor[0] {
        0 => {
            *cursor = &cursor[1..];
            None
        }
        _ => {
            *cursor = &cursor[1..];
            Some(read_varint(cursor) as usize)
        }
    };
    let bootstrapped = cursor[0] != 0;
    *cursor = &cursor[1..];
    let ctrl_tag = cursor[0];
    *cursor = &cursor[1..];
    let ctrl = match ctrl_tag {
        0 => None,
        1 => {
            let my_c = read_varint(cursor);
            let succ = read_varint(cursor) as usize;
            let reset = cursor[0] != 0;
            *cursor = &cursor[1..];
            let s_token = read_varint(cursor);
            let s_push = cursor[0];
            let s_prio = cursor[1];
            *cursor = &cursor[2..];
            Some(CtrlState::Root { my_c, succ, reset, s_token, s_push, s_prio })
        }
        2 => {
            let my_c = read_varint(cursor);
            let succ = read_varint(cursor) as usize;
            Some(CtrlState::NonRoot { my_c, succ })
        }
        other => panic!("corrupt packed configuration: ctrl tag {other}"),
    };
    NodeState { cs, need, rset, prio, bootstrapped, ctrl }
}

/// Appends the canonical packed encoding of `config` to `out`.
///
/// The encoding is injective on [`Configuration`] values: two configurations are equal **iff**
/// their packed encodings are byte-for-byte equal (varints are always minimal, fields appear
/// in a fixed order, and every length is explicit).  [`unpack_configuration`] inverts it.
pub fn pack_configuration(config: &Configuration, out: &mut Vec<u8>) {
    write_varint(out, config.nodes.len() as u64);
    for state in &config.nodes {
        write_node_state(out, state);
    }
    for per_node in &config.channels {
        write_varint(out, per_node.len() as u64);
        for channel in per_node {
            write_varint(out, channel.len() as u64);
            for msg in channel {
                write_message(out, msg);
            }
        }
    }
}

/// Decodes a packed configuration produced by [`pack_configuration`] or [`capture_packed`].
///
/// # Panics
///
/// Panics on malformed input; packed bytes only ever come from this module's encoders.
pub fn unpack_configuration(mut bytes: &[u8]) -> Configuration {
    let cursor = &mut bytes;
    let n = read_varint(cursor) as usize;
    let nodes = (0..n).map(|_| read_node_state(cursor)).collect();
    let channels = (0..n)
        .map(|_| {
            let degree = read_varint(cursor) as usize;
            (0..degree)
                .map(|_| {
                    let len = read_varint(cursor) as usize;
                    (0..len).map(|_| read_message(cursor)).collect()
                })
                .collect()
        })
        .collect();
    assert!(cursor.is_empty(), "corrupt packed configuration: {} trailing bytes", cursor.len());
    Configuration { nodes, channels }
}

/// Captures the full configuration of `net` directly into its packed encoding, replacing the
/// contents of `out`.  Produces exactly the bytes `pack_configuration(&capture(net))` would,
/// without materializing the intermediate [`Configuration`].
pub fn capture_packed<P, T>(net: &Network<P, T>, out: &mut Vec<u8>)
where
    P: CheckableNode,
    T: Topology,
{
    out.clear();
    let n = net.len();
    write_varint(out, n as u64);
    for v in 0..n {
        write_node_state(out, &net.node(v).capture_state());
    }
    for v in 0..n {
        let degree = net.topology().degree(v);
        write_varint(out, degree as u64);
        for l in 0..degree {
            let channel = net.channel(v, l);
            write_varint(out, channel.len() as u64);
            for msg in channel.iter() {
                write_message(out, msg);
            }
        }
    }
}

/// Writes a packed configuration back into `net`, borrowing the bytes (the inverse of
/// [`capture_packed`], and the hot-path replacement for `restore(net, &config.clone())`).
///
/// # Panics
///
/// Panics if the packed shape (node count or channel degrees) does not match the network.
pub fn restore_packed<P, T>(net: &mut Network<P, T>, bytes: &[u8])
where
    P: CheckableNode,
    T: Topology,
{
    restore_packed_impl::<P, T, false>(net, bytes, &mut SegmentMap::default());
}

/// Like [`restore_packed`], additionally recording the byte span of every mutable segment
/// of the encoding into `map` (cleared first) — the per-state setup step of the delta
/// successor engine, which needs the spans to re-pack only the segments a transition
/// dirtied.  The parse pass the restore does anyway discovers every boundary, so recording
/// them is free.
pub fn restore_packed_mapped<P, T>(net: &mut Network<P, T>, bytes: &[u8], map: &mut SegmentMap)
where
    P: CheckableNode,
    T: Topology,
{
    restore_packed_impl::<P, T, true>(net, bytes, map);
}

fn restore_packed_impl<P, T, const RECORD: bool>(
    net: &mut Network<P, T>,
    bytes: &[u8],
    map: &mut SegmentMap,
) where
    P: CheckableNode,
    T: Topology,
{
    let total = bytes.len();
    let offset_of = |cursor: &[u8]| (total - cursor.len()) as u32;
    let mut bytes = bytes;
    let cursor = &mut bytes;
    if RECORD {
        map.node_spans.clear();
        map.chan_spans.clear();
    }
    let n = read_varint(cursor) as usize;
    assert_eq!(n, net.len(), "packed configuration has the wrong number of processes");
    for v in 0..n {
        let start = offset_of(cursor);
        let state = read_node_state(cursor);
        if RECORD {
            map.node_spans.push((start, offset_of(cursor)));
        }
        net.node_mut(v).restore_state(&state);
    }
    for v in 0..n {
        let degree = read_varint(cursor) as usize;
        assert_eq!(
            degree,
            net.topology().degree(v),
            "packed configuration has the wrong degree for node {v}"
        );
        for l in 0..degree {
            let start = offset_of(cursor);
            let len = read_varint(cursor) as usize;
            let mut channel = net.channel_mut(v, l);
            channel.reset();
            for _ in 0..len {
                channel.push(read_message(cursor));
            }
            drop(channel);
            if RECORD {
                map.chan_spans.push((start, offset_of(cursor)));
            }
        }
    }
}

// --------------------------------------------------------------- segment map & delta hashing

/// The byte spans of the **mutable segments** of one packed configuration: one segment per
/// node state and one per channel content, recorded by [`restore_packed_mapped`].
///
/// The remaining bytes of the encoding — the leading process count and the per-node degree
/// varints — are functions of the network *shape*, identical in every configuration of one
/// exploration, so they belong to no segment: a transition can never dirty them.
///
/// Segments are addressed by a single flat index: segment `s < n` is node `s`'s state,
/// segment `n + c` is the flat channel `c` (channels in `(node, label)` order).  This is the
/// index the incremental hash mixes into each segment's contribution ([`segment_term`]), so
/// configurations that exchange the contents of two segments hash differently.
#[derive(Clone, Debug, Default)]
pub struct SegmentMap {
    /// `node_spans[v]` is the span of node `v`'s encoded state.
    node_spans: Vec<(u32, u32)>,
    /// `chan_spans[c]` is the span of flat channel `c`'s encoding (count varint + messages).
    chan_spans: Vec<(u32, u32)>,
}

impl SegmentMap {
    /// Number of node segments.
    pub fn nodes(&self) -> usize {
        self.node_spans.len()
    }

    /// Number of channel segments.
    pub fn channels(&self) -> usize {
        self.chan_spans.len()
    }

    /// Total number of segments (nodes first, then channels).
    pub fn segments(&self) -> usize {
        self.node_spans.len() + self.chan_spans.len()
    }

    /// The flat segment index of node `v`'s state.
    pub fn node_segment(&self, v: usize) -> usize {
        debug_assert!(v < self.node_spans.len());
        v
    }

    /// The flat segment index of flat channel `c`.
    pub fn channel_segment(&self, c: usize) -> usize {
        self.node_spans.len() + c
    }

    /// The byte span `[start, end)` of segment `seg`.
    pub fn span(&self, seg: usize) -> (usize, usize) {
        let (start, end) = if seg < self.node_spans.len() {
            self.node_spans[seg]
        } else {
            self.chan_spans[seg - self.node_spans.len()]
        };
        (start as usize, end as usize)
    }

    /// The bytes of segment `seg` within `packed`.
    pub fn segment<'a>(&self, packed: &'a [u8], seg: usize) -> &'a [u8] {
        let (start, end) = self.span(seg);
        &packed[start..end]
    }
}

/// The contribution of segment `seg` holding `bytes` to the segmented configuration hash:
/// the fx hash of the segment bytes, mixed with the segment index so position matters.
///
/// The whole-configuration hash ([`segmented_hash`]) is the XOR of all segment terms, which
/// is what makes it *incrementally maintainable*: replacing segment `s`'s bytes updates the
/// hash as `h ^= segment_term(s, old) ^ segment_term(s, new)` — only dirty segments are
/// re-mixed, never the whole buffer.  XOR-combining is weaker than sequential mixing, but a
/// hash collision costs only one extra byte comparison in the arena probe; equality is
/// always decided on the bytes.
pub fn segment_term(seg: usize, bytes: &[u8]) -> u64 {
    const PHI: u64 = 0x9E37_79B9_7F4A_7C15;
    const K: u64 = 0x517c_c1b7_2722_0a95;
    (fx_hash(bytes) ^ (seg as u64 + 1).wrapping_mul(PHI)).wrapping_mul(K)
}

/// The segmented hash of a whole packed configuration: XOR of [`segment_term`] over every
/// segment of `map`.  This is the hash scheme of the delta successor engine; see
/// [`StateArena`] for the one-scheme-per-arena rule.
pub fn segmented_hash(packed: &[u8], map: &SegmentMap) -> u64 {
    let mut hash = 0u64;
    for seg in 0..map.segments() {
        hash ^= segment_term(seg, map.segment(packed, seg));
    }
    hash
}

/// Appends the canonical encoding of one channel segment — the count varint followed by the
/// messages head-first — exactly as [`capture_packed`] encodes it in place.
pub(crate) fn encode_channel_segment<'a>(
    out: &mut Vec<u8>,
    len: usize,
    msgs: impl Iterator<Item = &'a Message>,
) {
    write_varint(out, len as u64);
    for msg in msgs {
        write_message(out, msg);
    }
}

/// Appends the canonical encoding of one node-state segment (the delta engine's re-pack of
/// the single node a transition activated).
pub(crate) fn encode_node_segment(out: &mut Vec<u8>, state: &NodeState) {
    write_node_state(out, state);
}

// ------------------------------------------------------------------------------ state arena

/// The 64-bit fx hash (the `rustc-hash` multiply-xor scheme) over a byte string.
pub(crate) fn fx_hash(bytes: &[u8]) -> u64 {
    const K: u64 = 0x517c_c1b7_2722_0a95;
    let mut hash = 0u64;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        hash = (hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
    let mut tail = 0u64;
    for (i, &b) in chunks.remainder().iter().enumerate() {
        tail |= u64::from(b) << (8 * i);
    }
    hash = (hash.rotate_left(5) ^ (tail | ((bytes.len() as u64) << 56))).wrapping_mul(K);
    hash
}

/// A dense identifier of an interned configuration.
pub type StateId = u32;

/// The result of [`StateArena::intern_capped`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InternOutcome {
    /// The configuration was already interned under this id.
    Existing(StateId),
    /// The configuration was inserted fresh under this id.
    Inserted(StateId),
    /// The configuration is new but inserting it would exceed the cap; nothing was stored.
    Full,
}

/// A hash-consing store of packed configurations.
///
/// Every distinct packed configuration is stored exactly once, contiguously in one growing
/// byte buffer, and is identified by the dense [`StateId`] of its insertion order.  Lookup
/// uses an open-addressing table of fx hashes with linear probing; collisions fall back to a
/// byte comparison against the arena, so no separate key copies exist (unlike a
/// `HashMap<Vec<u8>, u32>`, which would store every configuration twice).
///
/// Reads ([`StateArena::get`], [`StateArena::lookup`]) take `&self`, so a frozen arena can be
/// shared across worker threads during parallel frontier expansion; interning requires
/// `&mut self` and happens on the coordinating thread.
#[derive(Clone, Debug, Default)]
pub struct StateArena {
    bytes: Vec<u8>,
    /// Prefix offsets: state `i` occupies `offsets[i]..offsets[i + 1]`; `offsets.len()` is
    /// `len + 1` (a single leading 0 when empty is elided — empty arena has no offsets).
    offsets: Vec<usize>,
    hashes: Vec<u64>,
    /// Open-addressing slots holding `id + 1` (0 = empty).  Power-of-two sized.
    slots: Vec<u32>,
}

impl StateArena {
    /// An empty arena.
    pub fn new() -> Self {
        StateArena::default()
    }

    /// Number of interned configurations.
    pub fn len(&self) -> usize {
        self.hashes.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.hashes.is_empty()
    }

    /// Total bytes of packed configuration data stored.
    pub fn bytes_used(&self) -> usize {
        self.bytes.len()
    }

    /// The packed bytes of state `id`.
    pub fn get(&self, id: StateId) -> &[u8] {
        let i = id as usize;
        &self.bytes[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Decodes state `id` into a full [`Configuration`].
    pub fn config(&self, id: StateId) -> Configuration {
        unpack_configuration(self.get(id))
    }

    /// Looks up previously interned bytes without modifying the arena.
    pub fn lookup(&self, packed: &[u8]) -> Option<StateId> {
        self.lookup_hashed(packed, fx_hash(packed))
    }

    /// Like [`StateArena::lookup`], with the key's hash supplied by the caller (the delta
    /// engine's incrementally maintained [`segmented_hash`]).  See
    /// [`StateArena::intern_capped_hashed`] for the one-scheme-per-arena rule.
    pub fn lookup_hashed(&self, packed: &[u8], hash: u64) -> Option<StateId> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut slot = (hash as usize) & mask;
        loop {
            match self.slots[slot] {
                0 => return None,
                stored => {
                    let id = stored - 1;
                    if self.hashes[id as usize] == hash && self.get(id) == packed {
                        return Some(id);
                    }
                }
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Interns `packed`, returning its id and whether it was newly inserted.
    pub fn intern(&mut self, packed: &[u8]) -> (StateId, bool) {
        match self.intern_capped(packed, usize::MAX) {
            InternOutcome::Existing(id) => (id, false),
            InternOutcome::Inserted(id) => (id, true),
            InternOutcome::Full => unreachable!("uncapped intern cannot be full"),
        }
    }

    /// Interns `packed` unless doing so would grow the arena beyond `cap` states: one hash
    /// and one table probe decide between "already present", "inserted", and "over the cap"
    /// (the hot-loop shape — a separate `lookup` + `intern` would hash and probe twice).
    pub fn intern_capped(&mut self, packed: &[u8], cap: usize) -> InternOutcome {
        self.intern_capped_hashed(packed, fx_hash(packed), cap)
    }

    /// Like [`StateArena::intern_capped`], with the key's hash supplied by the caller.
    ///
    /// **One hash scheme per arena.**  The table stores whatever hash accompanied each
    /// insertion and compares it against whatever hash accompanies each probe, so every
    /// operation on one arena must use the *same* key function: either let every call
    /// compute the fx hash (the [`StateArena::intern_capped`]/[`StateArena::lookup`]
    /// wrappers — the interned engine), or supply [`segmented_hash`] values everywhere (the
    /// delta engine, which maintains them incrementally).  Mixing schemes makes equal
    /// configurations invisible to each other and silently double-interns them.
    pub fn intern_capped_hashed(&mut self, packed: &[u8], hash: u64, cap: usize) -> InternOutcome {
        if self.slots.is_empty() {
            self.grow_slots(64);
        } else if (self.len() + 1) * 4 > self.slots.len() * 3 {
            self.grow_slots(self.slots.len() * 2);
        }
        let mask = self.slots.len() - 1;
        let mut slot = (hash as usize) & mask;
        loop {
            match self.slots[slot] {
                0 => break,
                stored => {
                    let id = stored - 1;
                    if self.hashes[id as usize] == hash && self.get(id) == packed {
                        return InternOutcome::Existing(id);
                    }
                }
            }
            slot = (slot + 1) & mask;
        }
        if self.len() >= cap {
            return InternOutcome::Full;
        }
        let id = self.len() as StateId;
        if self.offsets.is_empty() {
            self.offsets.push(0);
        }
        self.bytes.extend_from_slice(packed);
        self.offsets.push(self.bytes.len());
        self.hashes.push(hash);
        self.slots[slot] = id + 1;
        InternOutcome::Inserted(id)
    }

    /// The hash that accompanied state `id`'s insertion (under the arena's single hash
    /// scheme — see [`StateArena::intern_capped_hashed`]).  Lets a consumer that moves
    /// states between arenas of the same scheme re-intern without re-hashing.
    pub fn stored_hash(&self, id: StateId) -> u64 {
        self.hashes[id as usize]
    }

    fn grow_slots(&mut self, new_size: usize) {
        debug_assert!(new_size.is_power_of_two());
        self.slots = vec![0; new_size];
        let mask = new_size - 1;
        for (id, &hash) in self.hashes.iter().enumerate() {
            let mut slot = (hash as usize) & mask;
            while self.slots[slot] != 0 {
                slot = (slot + 1) & mask;
            }
            self.slots[slot] = id as u32 + 1;
        }
    }
}

// -------------------------------------------------------------------------- sharded arena

/// Number of lock stripes in a [`ShardedArena`] (a power of two).
///
/// 64 stripes keep the expected contention negligible for any realistic worker count (the
/// probability that two of `t` workers intern into the same shard at the same instant is
/// ≈ t²/2S), while the per-shard fixed cost (one empty [`StateArena`] each) stays trivial.
pub const ARENA_SHARDS: usize = 64;

const SHARD_BITS: u32 = ARENA_SHARDS.trailing_zeros();
/// Bits of a [`ProvisionalId`] carrying the in-shard insertion index.
const SHARD_INDEX_BITS: u32 = 32 - SHARD_BITS;
/// States one shard can hold; keeps every composed id strictly below `u32::MAX`, so the
/// explorer can use `u32::MAX` as a sentinel.
const SHARD_CAP: usize = (1usize << SHARD_INDEX_BITS) - 1;

/// A state id handed out by a [`ShardedArena`]: the shard index in the top [`ARENA_SHARDS`]
/// bits, the in-shard insertion index below.
///
/// Provisional ids are *stable* (a state keeps its id for the arena's lifetime) but — unlike
/// [`StateId`]s — **not dense and not discovery-ordered**: concurrent workers intern in
/// whatever order the schedule produces.  The parallel explorer renumbers them into
/// canonical [`StateId`]s during its sequential replay pass.
pub type ProvisionalId = u32;

/// A lock-striped, concurrently internable [`StateArena`]: `ARENA_SHARDS` independent
/// arenas, each behind its own mutex, with the shard selected by the **top** bits of the
/// 64-bit key hash (the bottom bits index the open-addressing slots *within* a shard, so
/// the two probes stay independent).
///
/// Shared-`&self` interning is what lets parallel exploration workers deduplicate states
/// without a global visited-set lock: two workers serialize only when their keys hash into
/// the same stripe.  The one-hash-scheme-per-arena rule of
/// [`StateArena::intern_capped_hashed`] applies across the whole sharded arena.
#[derive(Debug, Default)]
pub struct ShardedArena {
    shards: Vec<std::sync::Mutex<StateArena>>,
    len: std::sync::atomic::AtomicUsize,
}

impl ShardedArena {
    /// An empty arena with [`ARENA_SHARDS`] stripes.
    pub fn new() -> Self {
        ShardedArena {
            shards: (0..ARENA_SHARDS).map(|_| std::sync::Mutex::new(StateArena::new())).collect(),
            len: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// The shard a key with this hash belongs to.
    pub fn shard_of(hash: u64) -> usize {
        (hash >> (64 - SHARD_BITS)) as usize
    }

    /// Composes a provisional id from a shard index and an in-shard state id.
    pub fn compose(shard: usize, index: StateId) -> ProvisionalId {
        debug_assert!(shard < ARENA_SHARDS && (index as usize) < SHARD_CAP);
        ((shard as u32) << SHARD_INDEX_BITS) | index
    }

    /// Splits a provisional id into its shard index and in-shard state id.
    pub fn split(id: ProvisionalId) -> (usize, StateId) {
        ((id >> SHARD_INDEX_BITS) as usize, id & ((1 << SHARD_INDEX_BITS) - 1))
    }

    /// Total states interned across all shards.
    ///
    /// Monotone and safe to read concurrently; the count is updated after the owning
    /// shard's insertion completes, so it may momentarily trail an in-flight intern.
    pub fn len(&self) -> usize {
        self.len.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Interns `packed` under its caller-supplied hash, returning its provisional id and
    /// whether this call inserted it.  Locks exactly one shard.
    ///
    /// # Panics
    ///
    /// Panics if a single shard exceeds [`ARENA_SHARDS`]⁻¹ of the 32-bit id space (≈ 67M
    /// states per shard — beyond any exploration that fits in memory).
    pub fn intern_hashed(&self, packed: &[u8], hash: u64) -> (ProvisionalId, bool) {
        let shard = Self::shard_of(hash);
        let mut guard = self.shards[shard].lock().expect("unpoisoned shard");
        match guard.intern_capped_hashed(packed, hash, SHARD_CAP) {
            InternOutcome::Existing(index) => (Self::compose(shard, index), false),
            InternOutcome::Inserted(index) => {
                self.len.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                (Self::compose(shard, index), true)
            }
            InternOutcome::Full => panic!(
                "ShardedArena shard {shard} overflowed its {SHARD_CAP}-state id space"
            ),
        }
    }

    /// Looks up previously interned bytes (same hash scheme as the inserts) without
    /// modifying the arena.
    pub fn lookup_hashed(&self, packed: &[u8], hash: u64) -> Option<ProvisionalId> {
        let shard = Self::shard_of(hash);
        let guard = self.shards[shard].lock().expect("unpoisoned shard");
        guard.lookup_hashed(packed, hash).map(|index| Self::compose(shard, index))
    }

    /// Copies state `id`'s packed bytes into `out` (replacing its contents) and returns the
    /// hash it was interned under.  A copy, not a borrow: the shard's byte buffer can be
    /// reallocated by concurrent inserts, so bytes can't leave the lock by reference.
    pub fn fetch(&self, id: ProvisionalId, out: &mut Vec<u8>) -> u64 {
        let (shard, index) = Self::split(id);
        let guard = self.shards[shard].lock().expect("unpoisoned shard");
        out.clear();
        out.extend_from_slice(guard.get(index));
        guard.stored_hash(index)
    }

    /// Total bytes of packed configuration data across all shards.
    pub fn bytes_used(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("unpoisoned shard").bytes_used()).sum()
    }

    /// Unwraps the shards for single-threaded, lock-free reads (the replay pass runs after
    /// every worker has joined).  `shards()[s].get(i)` resolves provisional id
    /// `compose(s, i)`.
    pub fn into_shards(self) -> Vec<StateArena> {
        self.shards
            .into_iter()
            .map(|m| m.into_inner().expect("unpoisoned shard"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drivers::AlwaysRequest;
    use klex_core::KlConfig;
    use treenet::RoundRobin;

    fn ss_net() -> Network<SsNode, topology::OrientedTree> {
        let tree = topology::builders::figure3_tree();
        let cfg = KlConfig::new(2, 3, 3).with_timeout(u64::MAX / 4);
        klex_core::ss::network(tree, cfg, |_| AlwaysRequest::boxed(1))
    }

    #[test]
    fn capture_restore_roundtrip_is_identity() {
        let mut net = ss_net();
        // Put the network in a non-trivial state first.
        net.inject_from(0, 0, Message::Ctrl { c: 0, r: false, pt: 0, ppr: 0 });
        let mut sched = RoundRobin::new();
        for _ in 0..500 {
            net.step(&mut sched);
        }
        let snap = capture(&net);
        // Keep running, then restore and recapture: the captures must agree.
        for _ in 0..200 {
            net.step(&mut sched);
        }
        assert_ne!(capture(&net), snap, "the network should have moved on");
        restore(&mut net, &snap);
        assert_eq!(capture(&net), snap);
    }

    #[test]
    fn equal_captures_compare_and_hash_equal() {
        use std::collections::HashSet;
        let net = ss_net();
        let a = capture(&net);
        let b = capture(&net);
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn rset_order_does_not_distinguish_configurations() {
        let tree = topology::builders::figure1_tree();
        let cfg = KlConfig::new(3, 5, 8);
        let mut net1 = klex_core::naive::network(tree.clone(), cfg, |_| AlwaysRequest::boxed(3));
        let mut net2 = klex_core::naive::network(tree, cfg, |_| AlwaysRequest::boxed(3));
        net1.node_mut(1).app.state = CsState::Req;
        net1.node_mut(1).app.need = 3;
        net1.node_mut(1).app.rset = vec![2, 0, 1];
        net2.node_mut(1).app.state = CsState::Req;
        net2.node_mut(1).app.need = 3;
        net2.node_mut(1).app.rset = vec![0, 1, 2];
        assert_eq!(capture(&net1), capture(&net2));
    }

    #[test]
    fn configuration_helpers_report_tokens_and_requesters() {
        let tree = topology::builders::figure3_tree();
        let cfg = KlConfig::new(2, 3, 3);
        let mut net = klex_core::naive::network(tree, cfg, |_| AlwaysRequest::boxed(2));
        net.node_mut(1).app.state = CsState::Req;
        net.node_mut(1).app.need = 2;
        net.node_mut(1).app.rset = vec![0];
        net.inject_into(2, 0, Message::ResT);
        net.inject_into(2, 0, Message::PushT);
        let c = capture(&net);
        assert_eq!(c.messages_in_flight(), 2);
        assert_eq!(c.resource_tokens(), 2);
        assert_eq!(c.unsatisfied_requesters(), vec![1]);
    }

    #[test]
    #[should_panic(expected = "wrong number of processes")]
    fn restore_rejects_mismatched_shapes() {
        let mut net = ss_net();
        let mut config = capture(&net);
        config.nodes.pop();
        restore(&mut net, &config);
    }

    // ------------------------------------------------------------------ packed representation

    /// A deterministic soup of configurations with every field exercised: all three protocol
    /// roles' control states, every message variant (including extreme field values), empty
    /// and loaded channels, and every `CsState`.
    fn assorted_configurations() -> Vec<Configuration> {
        let ctrl_variants = [
            None,
            Some(CtrlState::Root {
                my_c: u64::MAX,
                succ: 3,
                reset: true,
                s_token: 1 << 40,
                s_push: 255,
                s_prio: 2,
            }),
            Some(CtrlState::NonRoot { my_c: 0, succ: 0 }),
            Some(CtrlState::NonRoot { my_c: 127, succ: 128 }),
        ];
        let messages = [
            Message::ResT,
            Message::PushT,
            Message::PrioT,
            Message::Ctrl { c: 0, r: false, pt: 0, ppr: 0 },
            Message::Ctrl { c: u64::MAX, r: true, pt: 300, ppr: 255 },
            Message::Garbage(0),
            Message::Garbage(u16::MAX),
        ];
        let mut configs = Vec::new();
        for (i, ctrl) in ctrl_variants.iter().enumerate() {
            for cs in [CsState::Out, CsState::Req, CsState::In] {
                let nodes = vec![
                    NodeState {
                        cs,
                        need: i * 127,
                        rset: (0..i).collect(),
                        prio: if i % 2 == 0 { None } else { Some(i) },
                        bootstrapped: i % 2 == 1,
                        ctrl: ctrl.clone(),
                    },
                    NodeState {
                        cs: CsState::Out,
                        need: 0,
                        rset: vec![],
                        prio: None,
                        bootstrapped: true,
                        ctrl: None,
                    },
                ];
                let channels = vec![
                    vec![messages.iter().copied().cycle().take(i + 1).collect()],
                    vec![vec![], messages[..i.min(messages.len())].to_vec()],
                ];
                configs.push(Configuration { nodes, channels });
            }
        }
        configs
    }

    #[test]
    fn packed_roundtrip_is_identity_on_assorted_configurations() {
        for config in assorted_configurations() {
            let mut packed = Vec::new();
            pack_configuration(&config, &mut packed);
            assert_eq!(unpack_configuration(&packed), config);
        }
    }

    #[test]
    fn equal_configurations_iff_equal_packed_bytes() {
        let configs = assorted_configurations();
        for (i, a) in configs.iter().enumerate() {
            for (j, b) in configs.iter().enumerate() {
                let mut pa = Vec::new();
                let mut pb = Vec::new();
                pack_configuration(a, &mut pa);
                pack_configuration(b, &mut pb);
                assert_eq!(a == b, pa == pb, "configs {i} and {j} disagree with their bytes");
            }
        }
    }

    #[test]
    fn capture_packed_matches_pack_of_capture() {
        let mut net = ss_net();
        net.inject_from(0, 0, Message::Ctrl { c: 0, r: false, pt: 0, ppr: 0 });
        let mut sched = RoundRobin::new();
        let mut scratch = Vec::new();
        for _ in 0..700 {
            net.step(&mut sched);
            capture_packed(&net, &mut scratch);
            let mut reference = Vec::new();
            pack_configuration(&capture(&net), &mut reference);
            assert_eq!(scratch, reference);
        }
    }

    #[test]
    fn restore_packed_roundtrips_through_a_live_network() {
        let mut net = ss_net();
        net.inject_from(0, 0, Message::Ctrl { c: 0, r: false, pt: 0, ppr: 0 });
        let mut sched = RoundRobin::new();
        for _ in 0..500 {
            net.step(&mut sched);
        }
        let mut snap = Vec::new();
        capture_packed(&net, &mut snap);
        for _ in 0..200 {
            net.step(&mut sched);
        }
        let mut moved_on = Vec::new();
        capture_packed(&net, &mut moved_on);
        assert_ne!(snap, moved_on, "the network should have moved on");
        restore_packed(&mut net, &snap);
        let mut recaptured = Vec::new();
        capture_packed(&net, &mut recaptured);
        assert_eq!(snap, recaptured);
        // And the packed snapshot decodes to exactly the structural capture.
        assert_eq!(unpack_configuration(&snap), capture(&net));
    }

    #[test]
    fn segment_map_tiles_the_mutable_bytes_and_reencodes_identically() {
        let mut net = ss_net();
        net.inject_from(0, 0, Message::Ctrl { c: 0, r: false, pt: 0, ppr: 0 });
        let mut sched = RoundRobin::new();
        for _ in 0..300 {
            net.step(&mut sched);
        }
        let mut packed = Vec::new();
        capture_packed(&net, &mut packed);
        let mut map = SegmentMap::default();
        restore_packed_mapped(&mut net, &packed, &mut map);

        let n = net.len();
        let total_channels: usize = (0..n).map(|v| net.topology().degree(v)).sum();
        assert_eq!(map.nodes(), n);
        assert_eq!(map.channels(), total_channels);
        assert_eq!(map.segments(), n + total_channels);

        // Spans are ordered, disjoint, in-bounds.
        let mut prev_end = 0;
        for seg in 0..map.segments() {
            let (start, end) = map.span(seg);
            assert!(start >= prev_end && start <= end && end <= packed.len());
            prev_end = end;
        }

        // Re-encoding every segment from the restored network reproduces its bytes.
        let mut scratch = Vec::new();
        for v in 0..n {
            scratch.clear();
            encode_node_segment(&mut scratch, &net.node(v).capture_state());
            assert_eq!(&scratch[..], map.segment(&packed, map.node_segment(v)), "node {v}");
        }
        let mut flat = 0;
        for v in 0..n {
            for l in 0..net.topology().degree(v) {
                scratch.clear();
                let channel = net.channel(v, l);
                encode_channel_segment(&mut scratch, channel.len(), channel.iter());
                assert_eq!(
                    &scratch[..],
                    map.segment(&packed, map.channel_segment(flat)),
                    "channel ({v}, {l})"
                );
                flat += 1;
            }
        }
    }

    #[test]
    fn segmented_hash_updates_incrementally_per_dirty_segment() {
        let mut net = ss_net();
        net.inject_from(0, 0, Message::Ctrl { c: 0, r: false, pt: 0, ppr: 0 });
        let mut sched = RoundRobin::new();
        for _ in 0..200 {
            net.step(&mut sched);
        }
        let mut before = Vec::new();
        capture_packed(&net, &mut before);
        let mut map = SegmentMap::default();
        restore_packed_mapped(&mut net, &before, &mut map);
        let mut h_before = segmented_hash(&before, &map);

        // Execute one activation and recapture; patch the hash only through the dirty
        // segments and compare with a from-scratch hash of the successor — maintained
        // across 50 consecutive steps so patching errors compound visibly.
        for _ in 0..50 {
            net.step(&mut sched);
            let mut after = Vec::new();
            capture_packed(&net, &mut after);
            let mut after_map = SegmentMap::default();
            restore_packed_mapped(&mut net, &after, &mut after_map);
            let mut patched = h_before;
            // Shape is constant, so segment counts agree; xor out/in only changed segments.
            for seg in 0..map.segments() {
                let old = map.segment(&before, seg);
                let new = after_map.segment(&after, seg);
                if old != new {
                    patched ^= segment_term(seg, old) ^ segment_term(seg, new);
                }
            }
            assert_eq!(patched, segmented_hash(&after, &after_map));
            before.clone_from(&after);
            map = after_map;
            h_before = patched;
        }
    }

    #[test]
    fn hashed_arena_ops_agree_with_the_default_scheme_when_given_fx_hashes() {
        let mut arena = StateArena::new();
        let keys: Vec<Vec<u8>> =
            (0..64u32).map(|i| i.to_le_bytes().repeat(3)).collect();
        for (i, key) in keys.iter().enumerate() {
            let outcome = arena.intern_capped_hashed(key, fx_hash(key), usize::MAX);
            assert_eq!(outcome, InternOutcome::Inserted(i as u32));
        }
        for (i, key) in keys.iter().enumerate() {
            assert_eq!(arena.lookup_hashed(key, fx_hash(key)), Some(i as u32));
            assert_eq!(arena.lookup(key), Some(i as u32));
        }
    }

    #[test]
    fn arena_interns_each_distinct_configuration_once() {
        let mut arena = StateArena::new();
        let configs = assorted_configurations();
        let mut packed: Vec<Vec<u8>> = Vec::new();
        for config in &configs {
            let mut bytes = Vec::new();
            pack_configuration(config, &mut bytes);
            packed.push(bytes);
        }
        let mut ids = Vec::new();
        for bytes in &packed {
            let (id, fresh) = arena.intern(bytes);
            assert!(fresh, "first insertion must be fresh");
            assert_eq!(id as usize, ids.len(), "ids are dense and in insertion order");
            ids.push(id);
        }
        assert_eq!(arena.len(), configs.len());
        // Re-interning and lookup both find the original ids; bytes are preserved.
        for (bytes, &id) in packed.iter().zip(&ids) {
            assert_eq!(arena.intern(bytes), (id, false));
            assert_eq!(arena.lookup(bytes), Some(id));
            assert_eq!(arena.get(id), &bytes[..]);
        }
        assert_eq!(arena.len(), configs.len());
        assert!(arena.lookup(b"not a packed configuration").is_none());
    }

    #[test]
    fn arena_survives_growth_across_many_states() {
        // Force several table growths and verify every id stays retrievable.
        let mut arena = StateArena::new();
        let mut keys = Vec::new();
        for i in 0..5_000u32 {
            let mut bytes = Vec::new();
            bytes.extend_from_slice(&i.to_le_bytes());
            bytes.extend_from_slice(&[0xAB; 7]);
            let (id, fresh) = arena.intern(&bytes);
            assert!(fresh);
            assert_eq!(id, i);
            keys.push(bytes);
        }
        for (i, key) in keys.iter().enumerate() {
            assert_eq!(arena.lookup(key), Some(i as u32));
        }
        assert_eq!(arena.len(), 5_000);
        assert!(arena.bytes_used() >= 5_000 * 11);
    }

    /// Satellite (shard collision): two distinct packed configurations whose hashes land in
    /// the same shard — here forced by interning them under the *same* hash — must intern to
    /// distinct provisional ids, both retrievable afterwards.
    #[test]
    fn sharded_arena_separates_colliding_states_within_one_shard() {
        let arena = ShardedArena::new();
        let a = b"packed configuration alpha".as_slice();
        let b = b"packed configuration beta!".as_slice();
        let hash = 0xDEAD_BEEF_CAFE_F00Du64;

        let (id_a, fresh_a) = arena.intern_hashed(a, hash);
        let (id_b, fresh_b) = arena.intern_hashed(b, hash);
        assert!(fresh_a && fresh_b);
        assert_ne!(id_a, id_b, "colliding states must get distinct ids");
        assert_eq!(ShardedArena::split(id_a).0, ShardedArena::split(id_b).0, "same shard");
        assert_eq!(arena.len(), 2);

        // Re-interning is idempotent and lookup agrees.
        assert_eq!(arena.intern_hashed(a, hash), (id_a, false));
        assert_eq!(arena.intern_hashed(b, hash), (id_b, false));
        assert_eq!(arena.lookup_hashed(a, hash), Some(id_a));
        assert_eq!(arena.lookup_hashed(b, hash), Some(id_b));

        // Fetch returns the exact bytes and the stored hash.
        let mut buf = Vec::new();
        assert_eq!(arena.fetch(id_a, &mut buf), hash);
        assert_eq!(buf, a);
        assert_eq!(arena.fetch(id_b, &mut buf), hash);
        assert_eq!(buf, b);
    }

    /// Concurrent interning of overlapping key sets from several threads agrees with a
    /// single-threaded [`StateArena`]: same total count, every key retrievable, and each
    /// key's provisional id consistent across the threads that interned it.
    #[test]
    fn sharded_arena_concurrent_interning_deduplicates_across_threads() {
        let arena = ShardedArena::new();
        let keys: Vec<Vec<u8>> = (0..512u32).map(|i| i.to_le_bytes().repeat(4)).collect();

        let ids: Vec<Vec<ProvisionalId>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let arena = &arena;
                    let keys = &keys;
                    scope.spawn(move || {
                        // Each thread interns every key, in a thread-dependent order.
                        let mut ids = vec![0; keys.len()];
                        for step in 0..keys.len() {
                            let i = (step * (2 * t + 1) + t) % keys.len();
                            let (id, _) = arena.intern_hashed(&keys[i], fx_hash(&keys[i]));
                            ids[i] = id;
                        }
                        ids
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("no panic")).collect()
        });

        assert_eq!(arena.len(), keys.len(), "every key interned exactly once");
        for per_thread in &ids {
            assert_eq!(per_thread, &ids[0], "ids are stable across interleavings");
        }
        let shards = arena.into_shards();
        assert_eq!(shards.iter().map(StateArena::len).sum::<usize>(), keys.len());
        for (i, key) in keys.iter().enumerate() {
            let (shard, index) = ShardedArena::split(ids[0][i]);
            assert_eq!(shards[shard].get(index), &key[..]);
        }
    }
}
