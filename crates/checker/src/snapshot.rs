//! Capturing and restoring protocol configurations.
//!
//! A *configuration* in the paper's sense is the product of all process states and channel
//! contents.  [`Configuration`] is the explorer's concrete representation of that: one
//! [`NodeState`] per process plus the full FIFO content of every incoming channel.  It is
//! `Eq + Hash`, so the explorer can recognise configurations it has already visited, and it
//! can be written back into a live [`Network`] so that the *actual* protocol code computes the
//! successors.
//!
//! # The state abstraction
//!
//! Two pieces of run-time state are deliberately **excluded** from the abstraction:
//!
//! * the logical clock (`now`) and the root's timeout counter — the paper treats the timeout
//!   interval as "sufficiently large"; checked networks are built with an effectively
//!   infinite interval (see [`crate::scenarios::ss_for_checking`]) so the timer can never
//!   fire during a bounded exploration and its value is behaviourally irrelevant;
//! * application-driver internals — the drivers of [`crate::drivers`] are stateless, so their
//!   behaviour is a function of the captured `State`/`Need` alone.
//!
//! Everything the protocol itself reads — `State`, `Need`, `RSet`, `Prio`, the counter-flushing
//! variables `myC`/`Succ`, the root's census counters and `Reset` flag, and every in-flight
//! message — is part of the abstraction.

use klex_core::ss::SsRole;
use klex_core::{Message, SsNode};
use topology::Topology;
use treenet::{ChannelLabel, CsState, Network, Process};

/// The controller-related (self-stabilization) part of a process state.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum CtrlState {
    /// The root's Algorithm-1 variables.
    Root {
        /// Counter-flushing value `myC`.
        my_c: u64,
        /// Successor pointer `Succ`.
        succ: ChannelLabel,
        /// The `Reset` flag.
        reset: bool,
        /// `SToken`.
        s_token: u64,
        /// `SPush`.
        s_push: u8,
        /// `SPrio`.
        s_prio: u8,
    },
    /// A non-root process's Algorithm-2 variables.
    NonRoot {
        /// Counter-flushing value `myC`.
        my_c: u64,
        /// Successor pointer `Succ`.
        succ: ChannelLabel,
    },
}

/// The protocol-relevant local state of one process.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct NodeState {
    /// The paper's `State ∈ {Req, In, Out}`.
    pub cs: CsState,
    /// The paper's `Need`.
    pub need: usize,
    /// The paper's `RSet`, as a sorted multiset of channel labels.  Sorting is safe because
    /// `RSet` is a multiset: the retransmission target of a reserved token depends only on
    /// its own label, never on its position in the collection.
    pub rset: Vec<ChannelLabel>,
    /// The paper's `Prio` (`None` for protocol rungs without the priority token).
    pub prio: Option<ChannelLabel>,
    /// Whether the root has already created its initial tokens (naive / pusher / non-stabilizing
    /// rungs only; the self-stabilizing protocol has no such flag).
    pub bootstrapped: bool,
    /// Counter-flushing state (self-stabilizing protocol only).
    pub ctrl: Option<CtrlState>,
}

/// A global configuration: all process states plus all channel contents.
///
/// `channels[v][l]` is the FIFO content (head first) of node `v`'s incoming channel `l`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Configuration {
    /// Per-process protocol state.
    pub nodes: Vec<NodeState>,
    /// Per-channel in-flight messages, head first.
    pub channels: Vec<Vec<Vec<Message>>>,
}

impl Configuration {
    /// Total number of in-flight messages.
    pub fn messages_in_flight(&self) -> usize {
        self.channels.iter().flat_map(|per_node| per_node.iter().map(Vec::len)).sum()
    }

    /// Indices of processes that are unsatisfied requesters (`State = Req ∧ |RSet| < Need`).
    pub fn unsatisfied_requesters(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, s)| s.cs == CsState::Req && s.rset.len() < s.need)
            .map(|(v, _)| v)
            .collect()
    }

    /// Number of resource tokens in the configuration (in flight plus reserved).
    pub fn resource_tokens(&self) -> usize {
        self.in_flight_matching(Message::is_resource)
            + self.nodes.iter().map(|s| s.rset.len()).sum::<usize>()
    }

    /// Number of pusher tokens (always in flight: no process ever holds the pusher).
    pub fn pusher_tokens(&self) -> usize {
        self.in_flight_matching(Message::is_pusher)
    }

    /// Number of priority tokens, in flight plus held (`Prio ≠ ⊥`).
    pub fn priority_tokens(&self) -> usize {
        self.in_flight_matching(Message::is_priority)
            + self.nodes.iter().filter(|s| s.prio.is_some()).count()
    }

    /// Number of garbage (non-protocol) messages in flight.
    pub fn garbage_messages(&self) -> usize {
        self.in_flight_matching(|m| matches!(m, Message::Garbage(_)))
    }

    /// Resource units currently *in use* in the sense of the safety property: tokens reserved
    /// by processes executing their critical section.
    pub fn units_in_use(&self) -> usize {
        self.nodes.iter().filter(|s| s.cs == CsState::In).map(|s| s.rset.len()).sum()
    }

    fn in_flight_matching(&self, pred: impl Fn(&Message) -> bool) -> usize {
        self.channels
            .iter()
            .flat_map(|per_node| per_node.iter())
            .flat_map(|ch| ch.iter())
            .filter(|&m| pred(m))
            .count()
    }
}

/// A protocol process whose state can be captured into a [`NodeState`] and written back.
///
/// Implemented for every rung of the protocol ladder.  The contract is that
/// `restore(&capture())` is an identity on the behaviourally relevant state, and that two
/// processes with equal captures behave identically on every input (given stateless drivers).
pub trait CheckableNode: Process<Msg = Message> + klex_core::KlInspect {
    /// Captures the protocol-relevant local state.
    fn capture_state(&self) -> NodeState;

    /// Restores a previously captured state.
    fn restore_state(&mut self, state: &NodeState);
}

fn sorted(mut labels: Vec<ChannelLabel>) -> Vec<ChannelLabel> {
    labels.sort_unstable();
    labels
}

impl CheckableNode for klex_core::naive::NaiveNode {
    fn capture_state(&self) -> NodeState {
        NodeState {
            cs: self.app.state,
            need: self.app.need,
            rset: sorted(self.app.rset.clone()),
            prio: None,
            bootstrapped: self.bootstrapped,
            ctrl: None,
        }
    }

    fn restore_state(&mut self, state: &NodeState) {
        self.app.state = state.cs;
        self.app.need = state.need;
        self.app.rset = state.rset.clone();
        self.app.entered_at = 0;
        self.bootstrapped = state.bootstrapped;
    }
}

impl CheckableNode for klex_core::pusher::PusherNode {
    fn capture_state(&self) -> NodeState {
        NodeState {
            cs: self.app.state,
            need: self.app.need,
            rset: sorted(self.app.rset.clone()),
            prio: None,
            bootstrapped: self.bootstrapped,
            ctrl: None,
        }
    }

    fn restore_state(&mut self, state: &NodeState) {
        self.app.state = state.cs;
        self.app.need = state.need;
        self.app.rset = state.rset.clone();
        self.app.entered_at = 0;
        self.bootstrapped = state.bootstrapped;
    }
}

impl CheckableNode for klex_core::nonstab::NonStabNode {
    fn capture_state(&self) -> NodeState {
        NodeState {
            cs: self.app.state,
            need: self.app.need,
            rset: sorted(self.app.rset.clone()),
            prio: self.prio,
            bootstrapped: self.bootstrapped,
            ctrl: None,
        }
    }

    fn restore_state(&mut self, state: &NodeState) {
        self.app.state = state.cs;
        self.app.need = state.need;
        self.app.rset = state.rset.clone();
        self.app.entered_at = 0;
        self.prio = state.prio;
        self.bootstrapped = state.bootstrapped;
    }
}

impl CheckableNode for SsNode {
    fn capture_state(&self) -> NodeState {
        let ctrl = Some(match &self.role {
            SsRole::Root(r) => CtrlState::Root {
                my_c: r.my_c,
                succ: r.succ,
                reset: r.reset,
                s_token: r.s_token,
                s_push: r.s_push,
                s_prio: r.s_prio,
            },
            SsRole::NonRoot(st) => CtrlState::NonRoot { my_c: st.my_c, succ: st.succ },
        });
        NodeState {
            cs: self.app.state,
            need: self.app.need,
            rset: sorted(self.app.rset.clone()),
            prio: self.prio,
            bootstrapped: true,
            ctrl,
        }
    }

    fn restore_state(&mut self, state: &NodeState) {
        self.app.state = state.cs;
        self.app.need = state.need;
        self.app.rset = state.rset.clone();
        self.app.entered_at = 0;
        self.prio = state.prio;
        match (&mut self.role, &state.ctrl) {
            (SsRole::Root(r), Some(CtrlState::Root { my_c, succ, reset, s_token, s_push, s_prio })) => {
                r.my_c = *my_c;
                r.succ = *succ;
                r.reset = *reset;
                r.s_token = *s_token;
                r.s_push = *s_push;
                r.s_prio = *s_prio;
            }
            (SsRole::NonRoot(st), Some(CtrlState::NonRoot { my_c, succ })) => {
                st.my_c = *my_c;
                st.succ = *succ;
            }
            (role, ctrl) => {
                panic!("mismatched controller state for role {role:?}: {ctrl:?}");
            }
        }
    }
}

/// Captures the full configuration of `net`.
pub fn capture<P, T>(net: &Network<P, T>) -> Configuration
where
    P: CheckableNode,
    T: Topology,
{
    let n = net.len();
    let nodes = (0..n).map(|v| net.node(v).capture_state()).collect();
    let channels = (0..n)
        .map(|v| {
            (0..net.topology().degree(v))
                .map(|l| net.channel(v, l).iter().cloned().collect())
                .collect()
        })
        .collect();
    Configuration { nodes, channels }
}

/// Writes `config` back into `net`: process states are restored and every channel is cleared
/// and refilled.  The logical clock and metrics are left untouched (they are not part of the
/// abstraction).
///
/// # Panics
///
/// Panics if the configuration's shape (node count or channel degrees) does not match the
/// network.
pub fn restore<P, T>(net: &mut Network<P, T>, config: &Configuration)
where
    P: CheckableNode,
    T: Topology,
{
    assert_eq!(config.nodes.len(), net.len(), "configuration has the wrong number of processes");
    for (v, state) in config.nodes.iter().enumerate() {
        net.node_mut(v).restore_state(state);
    }
    for (v, per_node) in config.channels.iter().enumerate() {
        assert_eq!(
            per_node.len(),
            net.topology().degree(v),
            "configuration has the wrong degree for node {v}"
        );
        for (l, msgs) in per_node.iter().enumerate() {
            let ch = net.channel_mut(v, l);
            ch.clear();
            for m in msgs {
                ch.push(*m);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drivers::AlwaysRequest;
    use klex_core::KlConfig;
    use treenet::RoundRobin;

    fn ss_net() -> Network<SsNode, topology::OrientedTree> {
        let tree = topology::builders::figure3_tree();
        let cfg = KlConfig::new(2, 3, 3).with_timeout(u64::MAX / 4);
        klex_core::ss::network(tree, cfg, |_| AlwaysRequest::boxed(1))
    }

    #[test]
    fn capture_restore_roundtrip_is_identity() {
        let mut net = ss_net();
        // Put the network in a non-trivial state first.
        net.inject_from(0, 0, Message::Ctrl { c: 0, r: false, pt: 0, ppr: 0 });
        let mut sched = RoundRobin::new();
        for _ in 0..500 {
            net.step(&mut sched);
        }
        let snap = capture(&net);
        // Keep running, then restore and recapture: the captures must agree.
        for _ in 0..200 {
            net.step(&mut sched);
        }
        assert_ne!(capture(&net), snap, "the network should have moved on");
        restore(&mut net, &snap);
        assert_eq!(capture(&net), snap);
    }

    #[test]
    fn equal_captures_compare_and_hash_equal() {
        use std::collections::HashSet;
        let net = ss_net();
        let a = capture(&net);
        let b = capture(&net);
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn rset_order_does_not_distinguish_configurations() {
        let tree = topology::builders::figure1_tree();
        let cfg = KlConfig::new(3, 5, 8);
        let mut net1 = klex_core::naive::network(tree.clone(), cfg, |_| AlwaysRequest::boxed(3));
        let mut net2 = klex_core::naive::network(tree, cfg, |_| AlwaysRequest::boxed(3));
        net1.node_mut(1).app.state = CsState::Req;
        net1.node_mut(1).app.need = 3;
        net1.node_mut(1).app.rset = vec![2, 0, 1];
        net2.node_mut(1).app.state = CsState::Req;
        net2.node_mut(1).app.need = 3;
        net2.node_mut(1).app.rset = vec![0, 1, 2];
        assert_eq!(capture(&net1), capture(&net2));
    }

    #[test]
    fn configuration_helpers_report_tokens_and_requesters() {
        let tree = topology::builders::figure3_tree();
        let cfg = KlConfig::new(2, 3, 3);
        let mut net = klex_core::naive::network(tree, cfg, |_| AlwaysRequest::boxed(2));
        net.node_mut(1).app.state = CsState::Req;
        net.node_mut(1).app.need = 2;
        net.node_mut(1).app.rset = vec![0];
        net.inject_into(2, 0, Message::ResT);
        net.inject_into(2, 0, Message::PushT);
        let c = capture(&net);
        assert_eq!(c.messages_in_flight(), 2);
        assert_eq!(c.resource_tokens(), 2);
        assert_eq!(c.unsatisfied_requesters(), vec![1]);
    }

    #[test]
    #[should_panic(expected = "wrong number of processes")]
    fn restore_rejects_mismatched_shapes() {
        let mut net = ss_net();
        let mut config = capture(&net);
        config.nodes.pop();
        restore(&mut net, &config);
    }
}
