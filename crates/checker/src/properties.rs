//! Configuration predicates checked on every explored configuration.
//!
//! Properties are pure functions of a [`Configuration`]; they correspond to the global
//! predicates the paper's proofs reason about:
//!
//! * [`safety`] — the safety clause of the k-out-of-ℓ exclusion specification (each process
//!   uses at most `k` units, at most `ℓ` units are in use, no process hoards more than `k`
//!   reservations);
//! * [`exact_census`] — the token population is exactly (ℓ resource, 1 pusher, 1 priority),
//!   the invariant Lemmas 6–8 establish;
//! * [`legitimate`] — the conjunction used as the empirical legitimate set: exact census,
//!   no garbage messages, and safety — checking it on every configuration reachable from a
//!   legitimate one is exactly the *closure* half of Definition 1;
//! * [`no_garbage`] — no corrupted message survives;
//! * [`bounded_channels`] — no channel ever holds more than a given number of messages
//!   (a sanity property of the token-circulation design: legitimate executions never
//!   accumulate unbounded traffic).

use crate::snapshot::Configuration;
use klex_core::KlConfig;

/// A predicate over configurations, named for reporting.
pub trait Property {
    /// Short name used in reports (e.g. `"safety"`).
    fn name(&self) -> &str;

    /// Returns `Err(description)` when the property is violated in `config`.
    fn check(&self, config: &Configuration) -> Result<(), String>;
}

struct Named<F> {
    name: &'static str,
    check: F,
}

impl<F> Property for Named<F>
where
    F: Fn(&Configuration) -> Result<(), String>,
{
    fn name(&self) -> &str {
        self.name
    }

    fn check(&self, config: &Configuration) -> Result<(), String> {
        (self.check)(config)
    }
}

/// Builds a property from a name and a closure.
pub fn property(
    name: &'static str,
    check: impl Fn(&Configuration) -> Result<(), String> + 'static,
) -> Box<dyn Property> {
    Box::new(Named { name, check })
}

/// The safety clause of the k-out-of-ℓ exclusion specification.
pub fn safety(cfg: KlConfig) -> Box<dyn Property> {
    property("safety", move |c| {
        for (v, s) in c.nodes.iter().enumerate() {
            if s.rset.len() > cfg.k {
                return Err(format!(
                    "process {v} reserves {} tokens but k = {}",
                    s.rset.len(),
                    cfg.k
                ));
            }
        }
        let in_use = c.units_in_use();
        if in_use > cfg.l {
            return Err(format!("{in_use} units in use but l = {}", cfg.l));
        }
        Ok(())
    })
}

/// The token population is exactly (ℓ, 1, 1).
pub fn exact_census(cfg: KlConfig) -> Box<dyn Property> {
    property("exact-census", move |c| {
        let (res, push, prio) = (c.resource_tokens(), c.pusher_tokens(), c.priority_tokens());
        if res == cfg.l && push == 1 && prio == 1 {
            Ok(())
        } else {
            Err(format!(
                "census is ({res} resource, {push} pusher, {prio} priority), expected ({}, 1, 1)",
                cfg.l
            ))
        }
    })
}

/// No garbage (non-protocol) message is in flight.
pub fn no_garbage() -> Box<dyn Property> {
    property("no-garbage", |c| {
        let g = c.garbage_messages();
        if g == 0 {
            Ok(())
        } else {
            Err(format!("{g} garbage messages in flight"))
        }
    })
}

/// The legitimacy predicate: exact census, no garbage, and safety.  Checking this on every
/// reachable configuration from a legitimate start is the closure property of Definition 1.
pub fn legitimate(cfg: KlConfig) -> Box<dyn Property> {
    let census = exact_census(cfg);
    let garbage = no_garbage();
    let safe = safety(cfg);
    property("legitimate", move |c| {
        census.check(c)?;
        garbage.check(c)?;
        safe.check(c)
    })
}

/// No channel ever holds more than `bound` in-flight messages.
pub fn bounded_channels(bound: usize) -> Box<dyn Property> {
    property("bounded-channels", move |c| {
        for (v, per_node) in c.channels.iter().enumerate() {
            for (l, ch) in per_node.iter().enumerate() {
                if ch.len() > bound {
                    return Err(format!(
                        "channel ({v}, {l}) holds {} messages, bound is {bound}",
                        ch.len()
                    ));
                }
            }
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::NodeState;
    use klex_core::Message;
    use treenet::CsState;

    fn node(cs: CsState, need: usize, rset: Vec<usize>, prio: Option<usize>) -> NodeState {
        NodeState { cs, need, rset, prio, bootstrapped: true, ctrl: None }
    }

    fn config(nodes: Vec<NodeState>, channels: Vec<Vec<Vec<Message>>>) -> Configuration {
        Configuration { nodes, channels }
    }

    fn kl(k: usize, l: usize) -> KlConfig {
        KlConfig::new(k, l, 3)
    }

    #[test]
    fn safety_accepts_bounded_use_and_rejects_hoarding() {
        let ok = config(
            vec![node(CsState::In, 2, vec![0, 1], None), node(CsState::Out, 0, vec![], None)],
            vec![vec![vec![]], vec![vec![]]],
        );
        assert!(safety(kl(2, 3)).check(&ok).is_ok());

        let hoarder = config(
            vec![node(CsState::Req, 2, vec![0, 0, 1], None)],
            vec![vec![vec![]]],
        );
        let err = safety(kl(2, 3)).check(&hoarder).unwrap_err();
        assert!(err.contains("reserves 3"));
    }

    #[test]
    fn safety_rejects_global_overuse() {
        let too_many = config(
            vec![
                node(CsState::In, 2, vec![0, 0], None),
                node(CsState::In, 2, vec![0, 0], None),
            ],
            vec![vec![vec![]], vec![vec![]]],
        );
        assert!(safety(kl(2, 3)).check(&too_many).is_err());
    }

    #[test]
    fn exact_census_counts_held_and_in_flight_tokens() {
        let c = config(
            vec![node(CsState::Req, 2, vec![0], Some(0)), node(CsState::Out, 0, vec![], None)],
            vec![
                vec![vec![Message::ResT, Message::PushT]],
                vec![vec![Message::ResT]],
            ],
        );
        // 1 reserved + 2 in flight = 3 resource tokens; 1 pusher; 1 held priority.
        assert!(exact_census(kl(2, 3)).check(&c).is_ok());
        assert!(exact_census(kl(2, 4)).check(&c).is_err());
    }

    #[test]
    fn no_garbage_flags_corrupted_messages() {
        let clean = config(vec![node(CsState::Out, 0, vec![], None)], vec![vec![vec![]]]);
        assert!(no_garbage().check(&clean).is_ok());
        let dirty = config(
            vec![node(CsState::Out, 0, vec![], None)],
            vec![vec![vec![Message::Garbage(3)]]],
        );
        assert!(no_garbage().check(&dirty).is_err());
    }

    #[test]
    fn legitimate_is_the_conjunction() {
        let c = config(
            vec![node(CsState::Out, 0, vec![], None), node(CsState::Out, 0, vec![], None)],
            vec![
                vec![vec![Message::ResT, Message::ResT, Message::ResT, Message::PushT, Message::PrioT]],
                vec![vec![]],
            ],
        );
        assert!(legitimate(kl(2, 3)).check(&c).is_ok());
        let mut wrong = c.clone();
        wrong.channels[1][0].push(Message::PrioT);
        assert!(legitimate(kl(2, 3)).check(&wrong).is_err());
    }

    #[test]
    fn bounded_channels_reports_the_offending_link() {
        let c = config(
            vec![node(CsState::Out, 0, vec![], None)],
            vec![vec![vec![Message::ResT, Message::ResT, Message::ResT]]],
        );
        assert!(bounded_channels(3).check(&c).is_ok());
        let err = bounded_channels(2).check(&c).unwrap_err();
        assert!(err.contains("(0, 0)"));
    }
}
