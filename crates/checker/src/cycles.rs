//! Starvation-cycle (livelock) detection on the explored state graph.
//!
//! Figure 3 of the paper exhibits an execution of the pusher-only protocol in which process
//! `a` requests two units and never obtains them, while the other two processes keep entering
//! their critical sections forever.  In state-graph terms, that execution is a **reachable
//! cycle** of configurations along which
//!
//! * the victim stays an unsatisfied requester in *every* configuration, and
//! * at least one *other* process enters its critical section (so the cycle describes real
//!   progress by the rest of the system, not a stuttering execution in which messages are
//!   simply never delivered — the latter would contradict the fairness assumption).
//!
//! [`find_progress_cycle`] searches the graph recorded by an [`crate::Explorer`] (with
//! [`crate::Explorer::record_graph`] enabled) for such a cycle.  On the Figure-3 instance it
//! finds one for the pusher-only protocol and none for the priority-augmented protocol —
//! exactly the distinction the paper introduces the priority token for.
//!
//! The analysis is engine-agnostic: the delta and interned engines (see
//! [`crate::ExploreEngine`]) assign identical state ids and record identical edge lists, so
//! a cycle witness found on one engine's graph is valid verbatim on the other's — the
//! delta-parity suite relies on this when cross-checking witnesses.

use crate::explore::StateGraph;
use crate::snapshot::Configuration;
use treenet::{Activation, CsState, NodeId};

/// A reachable cycle along which `victim` is never served while others keep making progress.
#[derive(Clone, Debug)]
pub struct CycleWitness {
    /// Configuration indices (into the explored graph) forming the cycle, in order; the last
    /// configuration has a transition back to the first.
    pub states: Vec<usize>,
    /// The activations labelling the cycle's transitions (same length as `states`).
    pub actions: Vec<Activation>,
    /// Processes (other than the victim) that enter their critical section along the cycle.
    pub progress_nodes: Vec<NodeId>,
}

impl CycleWitness {
    /// Length of the cycle in transitions.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True when the witness is empty (never produced by the search).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }
}

fn victim_starves(config: &Configuration, victim: NodeId) -> bool {
    let s = &config.nodes[victim];
    s.cs == CsState::Req && s.rset.len() < s.need
}

/// Searches for a reachable cycle of configurations in which `victim` remains an unsatisfied
/// requester throughout while at least one other process enters its critical section along
/// the cycle.  Returns `None` when no such cycle exists in the explored graph.
///
/// The graph must have been recorded by an exhaustive exploration for a `None` answer to mean
/// "no such livelock exists" (check [`crate::ExplorationReport::exhaustive`]).
pub fn find_progress_cycle(graph: &StateGraph, victim: NodeId) -> Option<CycleWitness> {
    let n = graph.len();
    if n == 0 {
        return None;
    }
    // Restrict to configurations in which the victim is an unsatisfied requester.  States
    // are decoded from their packed arena form once, here, and never again.
    let in_scope: Vec<bool> =
        (0..n).map(|id| victim_starves(&graph.config(id), victim)).collect();

    // Strongly connected components of the restricted subgraph (iterative Tarjan).
    let scc = tarjan_scc(graph, &in_scope);

    // A qualifying cycle exists iff some SCC contains a "progress edge" (one along which a
    // process other than the victim enters its critical section) between two of its members.
    for id in 0..n {
        if !in_scope[id] {
            continue;
        }
        for edge in graph.edges(id) {
            let target = edge.target as usize;
            if !in_scope[target] || scc[id] != scc[target] {
                continue;
            }
            let progress: Vec<NodeId> =
                edge.cs_entries.iter().copied().filter(|&v| v != victim).collect();
            if progress.is_empty() {
                continue;
            }
            // Self-loops with progress are already a cycle; otherwise close the loop by
            // walking back from the edge's target to its source inside the SCC.
            let closing_path = if target == id {
                Some(Vec::new())
            } else {
                path_within(graph, &in_scope, &scc, target, id)
            };
            if let Some(path) = closing_path {
                // Node/action sequence: id --edge--> target --path--> id.
                let mut states = vec![id];
                let mut actions = vec![edge.action];
                let mut progress_nodes = progress;
                let mut cursor = target;
                for &(action, next) in &path {
                    states.push(cursor);
                    actions.push(action);
                    if let Some(e) = graph
                        .edges(cursor)
                        .iter()
                        .find(|e| e.target as usize == next && e.action == action)
                    {
                        progress_nodes
                            .extend(e.cs_entries.iter().copied().filter(|&v| v != victim));
                    }
                    cursor = next;
                }
                debug_assert_eq!(cursor, id);
                progress_nodes.sort_unstable();
                progress_nodes.dedup();
                return Some(CycleWitness { states, actions, progress_nodes });
            }
        }
    }
    None
}

/// Shortest path (as `(action, node)` steps) from `from` to `to` using only in-scope nodes of
/// the same SCC.  Returns `None` when unreachable.
fn path_within(
    graph: &StateGraph,
    in_scope: &[bool],
    scc: &[usize],
    from: usize,
    to: usize,
) -> Option<Vec<(Activation, usize)>> {
    use std::collections::VecDeque;
    let mut prev: Vec<Option<(usize, Activation)>> = vec![None; graph.len()];
    let mut seen = vec![false; graph.len()];
    let mut queue = VecDeque::new();
    seen[from] = true;
    queue.push_back(from);
    while let Some(u) = queue.pop_front() {
        if u == to {
            break;
        }
        for edge in graph.edges(u) {
            let v = edge.target as usize;
            if !seen[v] && in_scope[v] && scc[v] == scc[from] {
                seen[v] = true;
                prev[v] = Some((u, edge.action));
                queue.push_back(v);
            }
        }
    }
    if !seen[to] {
        return None;
    }
    let mut path = Vec::new();
    let mut cursor = to;
    while cursor != from {
        let (parent, action) = prev[cursor].expect("path reconstruction");
        path.push((action, cursor));
        cursor = parent;
    }
    path.reverse();
    Some(path)
}

/// Iterative Tarjan SCC restricted to `in_scope` nodes.  Out-of-scope nodes get their own
/// singleton component id and are never grouped with anything.  Shared with the fair-cycle
/// liveness pass ([`crate::liveness`]), which runs it per candidate victim.
pub(crate) fn tarjan_scc(graph: &StateGraph, in_scope: &[bool]) -> Vec<usize> {
    let n = graph.len();
    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![UNSET; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut next_comp = 0usize;

    for start in 0..n {
        if index[start] != UNSET || !in_scope[start] {
            continue;
        }
        // Explicit DFS stack: (node, next-edge-to-visit).
        let mut call_stack: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut edge_idx)) = call_stack.last_mut() {
            if *edge_idx == 0 {
                index[v] = next_index;
                lowlink[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            let edges = graph.edges(v);
            let mut descended = false;
            while *edge_idx < edges.len() {
                let w = edges[*edge_idx].target as usize;
                *edge_idx += 1;
                if !in_scope[w] {
                    continue;
                }
                if index[w] == UNSET {
                    call_stack.push((w, 0));
                    descended = true;
                    break;
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            }
            if descended {
                continue;
            }
            // Finished v.
            call_stack.pop();
            if let Some(&(parent, _)) = call_stack.last() {
                lowlink[parent] = lowlink[parent].min(lowlink[v]);
            }
            if lowlink[v] == index[v] {
                loop {
                    let w = stack.pop().expect("tarjan stack underflow");
                    on_stack[w] = false;
                    comp[w] = next_comp;
                    if w == v {
                        break;
                    }
                }
                next_comp += 1;
            }
        }
    }
    // Give out-of-scope nodes unique component ids.
    for v in 0..n {
        if comp[v] == UNSET {
            comp[v] = next_comp;
            next_comp += 1;
        }
    }
    comp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drivers;
    use crate::explore::{Explorer, Limits};
    use klex_core::KlConfig;

    /// Explores the Figure-3 instance (2-out-of-3 exclusion on the 3-node tree, needs
    /// r=1, a=2, b=1) under the given protocol constructor and returns the recorded graph.
    fn explore_figure3<P>(
        mut net: treenet::Network<P, topology::OrientedTree>,
        max_configs: usize,
    ) -> (crate::ExplorationReport, StateGraph)
    where
        P: crate::CheckableNode,
    {
        let mut explorer = Explorer::new(&mut net)
            .with_limits(Limits { max_configurations: max_configs, max_depth: usize::MAX })
            .record_graph(true);
        let report = explorer.run();
        let graph = explorer.into_graph();
        (report, graph)
    }

    fn figure3_needs() -> [usize; 3] {
        [1, 2, 1]
    }

    #[test]
    fn pusher_only_protocol_has_a_starvation_cycle_on_figure3() {
        // The livelock of Figure 3 needs the small requesters (r and b) to be *inside* their
        // critical sections when the pusher passes them, so they keep their tokens while the
        // large requester `a` is forced to release — hence the holding drivers.
        let tree = topology::builders::figure3_tree();
        let cfg = KlConfig::new(2, 3, 3);
        let net = klex_core::pusher::network(
            tree,
            cfg,
            drivers::from_needs_holding(&figure3_needs()),
        );
        let (report, graph) = explore_figure3(net, 600_000);
        assert!(report.exhaustive(), "Figure-3 state space must fit the limits");
        let witness = find_progress_cycle(&graph, 1)
            .expect("the pusher-only protocol livelocks process a on the Figure-3 instance");
        assert!(!witness.is_empty());
        assert!(
            witness.progress_nodes.iter().any(|&v| v != 1),
            "other processes make progress along the cycle"
        );
    }

    #[test]
    fn pusher_only_protocol_with_instantaneous_critical_sections_has_no_cycle() {
        // A finding of the exhaustive analysis (recorded in EXPERIMENTS.md): the Figure-3
        // livelock requires critical sections that span activations.  With instantaneous
        // critical sections no process ever holds a token while the pusher passes, the FIFO
        // channels keep every token moving, and no reachable cycle starves the big requester.
        let tree = topology::builders::figure3_tree();
        let cfg = KlConfig::new(2, 3, 3);
        let net = klex_core::pusher::network(tree, cfg, drivers::from_needs(&figure3_needs()));
        let (report, graph) = explore_figure3(net, 300_000);
        assert!(report.exhaustive());
        assert!(find_progress_cycle(&graph, 1).is_none());
    }

    #[test]
    fn priority_token_removes_the_starvation_cycle_on_figure3() {
        let tree = topology::builders::figure3_tree();
        let cfg = KlConfig::new(2, 3, 3);
        let net = klex_core::nonstab::network(
            tree,
            cfg,
            drivers::from_needs_holding(&figure3_needs()),
        );
        let (report, graph) = explore_figure3(net, 1_500_000);
        assert!(report.exhaustive(), "Figure-3 state space must fit the limits");
        assert!(
            find_progress_cycle(&graph, 1).is_none(),
            "with the priority token no reachable cycle starves process a"
        );
    }

    #[test]
    fn cycle_search_returns_none_on_an_empty_or_progress_free_graph() {
        let graph = StateGraph::default();
        assert!(find_progress_cycle(&graph, 0).is_none());
    }
}
